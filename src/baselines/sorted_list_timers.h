// Scheme 2 — ordered list / timer queues (Section 3.2).
//
// Timers are stored in a doubly-linked list sorted by *absolute* expiry time; the
// earliest timer sits at the head (Figure 2). PER_TICK_BOOKKEEPING increments the
// time of day and expires from the head while head.expiry <= now, so its latency is
// O(1) plus actual expiries. START_TIMER pays for this with an O(n) insertion scan.
// STOP_TIMER is O(1) via the stored record pointer and double links.
//
// The insertion scan direction is configurable because the paper analyzes both:
// searching from the head costs on average 2 + (2/3)n for negative-exponential
// intervals and 2 + n/2 for uniform (results it cites from Reeves [4]); "for a
// negative exponential distribution we can reduce the average cost to 2 + n/3 by
// searching the list from the rear", and rear search is O(1) when all intervals are
// equal (new timers always belong at the tail). The sec32-insertion-cost bench
// measures elements examined per insert and compares against those closed forms.
//
// Equal expiry times are kept in FIFO order under both strategies (a new timer goes
// after existing equal ones), so differential tests across schemes see a canonical
// expiry order. VMS and UNIX used algorithms of this family (Section 3.2).

#ifndef TWHEEL_SRC_BASELINES_SORTED_LIST_TIMERS_H_
#define TWHEEL_SRC_BASELINES_SORTED_LIST_TIMERS_H_

#include <cstddef>
#include <optional>

#include "src/base/assert.h"

#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

enum class SearchDirection : std::uint8_t {
  kFromFront,  // scan head -> tail for the first record due later than the new one
  kFromRear,   // scan tail -> head for the last record due no later than the new one
};

class SortedListTimers final : public TimerServiceBase {
 public:
  explicit SortedListTimers(SearchDirection direction = SearchDirection::kFromFront,
                            std::size_t max_timers = 0)
      : TimerServiceBase(max_timers), direction_(direction) {}

  ~SortedListTimers() override {
    while (TimerRecord* rec = list_.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place reschedule: O(1) unlink plus the configured O(n) insertion scan
  // with the new absolute expiry. The record — and the caller's handle — stay
  // valid throughout.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final {
    return direction_ == SearchDirection::kFromFront ? "scheme2-sorted-front"
                                                     : "scheme2-sorted-rear";
  }

  // "Scheme 2 needs O(n) extra space for the forward and back pointers between
  // queue elements": links (16) + absolute expiry (8) + cookie (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 32;
    return profile;
  }

  // Earliest outstanding expiry, for the hardware-single-timer mode the paper
  // describes ("the hardware timer is set to expire at the time at which the timer
  // at the head of the list is due"); 0 when no timer is outstanding.
  Tick NextExpiry() const {
    const TimerRecord* head = list_.front();
    return head == nullptr ? 0 : head->expiry_tick;
  }

  // Hardware-single-timer capability: O(1) head peek, O(1) clock jump.
  std::optional<Tick> NextExpiryHint() const final {
    const TimerRecord* head = list_.front();
    return head == nullptr ? std::nullopt : std::optional<Tick>(head->expiry_tick);
  }
  bool FastForward(Tick target) final {
    TWHEEL_ASSERT(target >= now_);
    const TimerRecord* head = list_.front();
    TWHEEL_ASSERT_MSG(head == nullptr || target < head->expiry_tick,
                      "FastForward would skip an expiry");
    now_ = target;
    return true;
  }

 private:
  // Link `rec` (expiry_tick already set) at its sorted position, scanning in the
  // configured direction; shared by StartTimer and RestartTimer.
  void InsertSorted(TimerRecord* rec);

  SearchDirection direction_;
  IntrusiveList<TimerRecord> list_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_SORTED_LIST_TIMERS_H_
