#include "src/baselines/heap_timers.h"

namespace twheel {

StartResult HeapTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  heap_.push_back(nullptr);
  Place(heap_.size() - 1, rec);
  SiftUp(heap_.size() - 1);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HeapTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  RemoveAt(rec->heap_index);
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError HeapTimers::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  StampRestart(rec, new_interval);
  // The classic decrease/increase-key: the record keeps its array slot until
  // one sift settles it (only one of the two can move it).
  SiftDown(rec->heap_index);
  SiftUp(rec->heap_index);
  return TimerError::kOk;
}

std::size_t HeapTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  while (!heap_.empty()) {
    TimerRecord* root = heap_[0];
    ++counts_.comparisons;
    if (root->expiry_tick > now_) {
      break;
    }
    // A re-armed root sifts to its new position (expiry > now), so the loop
    // terminates.
    if (TryFirePeriodic(root)) {
      ++expired;
      continue;
    }
    RemoveAt(0);
    Expire(root);
    ++expired;
  }
  if (heap_.empty() && expired == 0) {
    ++counts_.empty_slot_checks;
  }
  return expired;
}

void HeapTimers::SiftUp(std::size_t i) {
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    ++counts_.comparisons;
    if (!Less(heap_[i], heap_[parent])) {
      break;
    }
    TimerRecord* child = heap_[i];
    Place(i, heap_[parent]);
    Place(parent, child);
    i = parent;
  }
}

void HeapTimers::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t l = 2 * i + 1;
    std::size_t r = 2 * i + 2;
    if (l < n) {
      ++counts_.comparisons;
      if (Less(heap_[l], heap_[smallest])) {
        smallest = l;
      }
    }
    if (r < n) {
      ++counts_.comparisons;
      if (Less(heap_[r], heap_[smallest])) {
        smallest = r;
      }
    }
    if (smallest == i) {
      break;
    }
    TimerRecord* tmp = heap_[i];
    Place(i, heap_[smallest]);
    Place(smallest, tmp);
    i = smallest;
  }
}

void HeapTimers::RemoveAt(std::size_t i) {
  TimerRecord* removed = heap_[i];
  std::size_t last = heap_.size() - 1;
  if (i != last) {
    Place(i, heap_[last]);
    heap_.pop_back();
    // The moved element may violate order in either direction.
    SiftDown(i);
    SiftUp(i);
  } else {
    heap_.pop_back();
  }
  removed->heap_index = TimerRecord::kNoIndex;
}

bool HeapTimers::CheckHeapInvariant() const {
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    std::size_t parent = (i - 1) / 2;
    if (Less(heap_[i], heap_[parent])) {
      return false;
    }
    if (heap_[i]->heap_index != i) {
      return false;
    }
  }
  return heap_.empty() || heap_[0]->heap_index == 0;
}

}  // namespace twheel
