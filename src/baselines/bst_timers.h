// Scheme 3 (b) — unbalanced binary search tree (Section 4.1.1).
//
// The paper reports (citing Myhrhaug [7]) that "unbalanced binary trees are less
// expensive than balanced binary trees" on average, but warns: "Unfortunately,
// unbalanced binary trees easily degenerate into a linear list; this can happen, for
// instance, if a set of equal timer intervals are inserted." This implementation
// exists to demonstrate both halves of that sentence: the fig6-trees bench shows
// O(log n) starts for random intervals and the linear-list collapse for constant
// intervals (keys are (expiry, seq), so a constant interval stream is strictly
// increasing and every insert walks the right spine).
//
// STOP_TIMER deletes the record's node directly (parent pointers, standard BST
// deletion) — the structural work is O(1) amortized plus an O(height) successor walk
// when the node has two children; Figure 6 lists tree stops as O(1)/O(log n).
//
// The tree links live in the COLD record (timer_record.h): nodes here are
// ColdTimerRecord*, and key comparisons hop to the hot twin through node->hot.
// The hop is a deliberate trade — the tree baselines were already O(log n)
// pointer-chasing per op, while keeping their three pointers + rank out of the
// shared hot record is what lets every wheel scheme fit one cache line.

#ifndef TWHEEL_SRC_BASELINES_BST_TIMERS_H_
#define TWHEEL_SRC_BASELINES_BST_TIMERS_H_

#include <cstddef>
#include <optional>

#include "src/base/assert.h"

#include "src/core/timer_service.h"

namespace twheel {

class BstTimers final : public TimerServiceBase {
 public:
  explicit BstTimers(std::size_t max_timers = 0) : TimerServiceBase(max_timers) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(height) in-place reschedule: standard delete + re-insert of the same
  // node with the new key; no record release, handle stays valid.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final { return "scheme3-bst"; }

  // Per record: three tree pointers (24) + expiry (8) + cookie (8) + seq (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 48;
    return profile;
  }

  // Hardware-single-timer capability: O(height) min peek, O(1) clock jump.
  std::optional<Tick> NextExpiryHint() const final {
    if (root_ == nullptr) {
      return std::nullopt;
    }
    return MinimumConst(root_)->hot->expiry_tick;
  }
  bool FastForward(Tick target) final {
    TWHEEL_ASSERT(target >= now_);
    TWHEEL_ASSERT_MSG(root_ == nullptr || target < MinimumConst(root_)->hot->expiry_tick,
                      "FastForward would skip an expiry");
    now_ = target;
    return true;
  }

  // Diagnostics for tests / the degeneration bench.
  std::size_t HeightSlow() const { return Height(root_); }
  bool CheckBstInvariant() const { return CheckSubtree(root_, nullptr, nullptr); }

 private:
  static bool Less(const ColdTimerRecord* a, const ColdTimerRecord* b) {
    if (a->hot->expiry_tick != b->hot->expiry_tick) {
      return a->hot->expiry_tick < b->hot->expiry_tick;
    }
    return a->hot->seq < b->hot->seq;
  }

  // Descend from the root and attach `node` (key already set on its hot twin);
  // shared by StartTimer and RestartTimer.
  void InsertNode(ColdTimerRecord* node);
  ColdTimerRecord* Minimum(ColdTimerRecord* node) const;
  static const ColdTimerRecord* MinimumConst(const ColdTimerRecord* node) {
    while (node->left != nullptr) {
      node = node->left;
    }
    return node;
  }
  // Replace the subtree rooted at `u` with the one rooted at `v` (v may be null).
  void Transplant(ColdTimerRecord* u, ColdTimerRecord* v);
  void Remove(ColdTimerRecord* z);

  static std::size_t Height(const ColdTimerRecord* node);
  static bool CheckSubtree(const ColdTimerRecord* node, const ColdTimerRecord* lo,
                           const ColdTimerRecord* hi);

  ColdTimerRecord* root_ = nullptr;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_BST_TIMERS_H_
