// Scheme 3 (b) — unbalanced binary search tree (Section 4.1.1).
//
// The paper reports (citing Myhrhaug [7]) that "unbalanced binary trees are less
// expensive than balanced binary trees" on average, but warns: "Unfortunately,
// unbalanced binary trees easily degenerate into a linear list; this can happen, for
// instance, if a set of equal timer intervals are inserted." This implementation
// exists to demonstrate both halves of that sentence: the fig6-trees bench shows
// O(log n) starts for random intervals and the linear-list collapse for constant
// intervals (keys are (expiry, seq), so a constant interval stream is strictly
// increasing and every insert walks the right spine).
//
// STOP_TIMER deletes the record's node directly (parent pointers, standard BST
// deletion) — the structural work is O(1) amortized plus an O(height) successor walk
// when the node has two children; Figure 6 lists tree stops as O(1)/O(log n).

#ifndef TWHEEL_SRC_BASELINES_BST_TIMERS_H_
#define TWHEEL_SRC_BASELINES_BST_TIMERS_H_

#include <cstddef>
#include <optional>

#include "src/base/assert.h"

#include "src/core/timer_service.h"

namespace twheel {

class BstTimers final : public TimerServiceBase {
 public:
  explicit BstTimers(std::size_t max_timers = 0) : TimerServiceBase(max_timers) {}

  StartResult StartTimer(Duration interval, RequestId request_id) override;
  TimerError StopTimer(TimerHandle handle) override;
  // O(height) in-place reschedule: standard delete + re-insert of the same
  // node with the new key; no record release, handle stays valid.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) override;
  std::size_t PerTickBookkeeping() override;
  std::string_view name() const override { return "scheme3-bst"; }

  // Per record: three tree pointers (24) + expiry (8) + cookie (8) + seq (8).
  SpaceProfile Space() const override {
    SpaceProfile profile;
    profile.essential_record_bytes = 48;
    return profile;
  }

  // Hardware-single-timer capability: O(height) min peek, O(1) clock jump.
  std::optional<Tick> NextExpiryHint() const override {
    if (root_ == nullptr) {
      return std::nullopt;
    }
    return MinimumConst(root_)->expiry_tick;
  }
  bool FastForward(Tick target) override {
    TWHEEL_ASSERT(target >= now_);
    TWHEEL_ASSERT_MSG(root_ == nullptr || target < MinimumConst(root_)->expiry_tick,
                      "FastForward would skip an expiry");
    now_ = target;
    return true;
  }

  // Diagnostics for tests / the degeneration bench.
  std::size_t HeightSlow() const { return Height(root_); }
  bool CheckBstInvariant() const { return CheckSubtree(root_, nullptr, nullptr); }

 private:
  static bool Less(const TimerRecord* a, const TimerRecord* b) {
    if (a->expiry_tick != b->expiry_tick) {
      return a->expiry_tick < b->expiry_tick;
    }
    return a->seq < b->seq;
  }

  // Descend from the root and attach `rec` (key already set); shared by
  // StartTimer and RestartTimer.
  void InsertNode(TimerRecord* rec);
  TimerRecord* Minimum(TimerRecord* node) const;
  static const TimerRecord* MinimumConst(const TimerRecord* node) {
    while (node->left != nullptr) {
      node = node->left;
    }
    return node;
  }
  // Replace the subtree rooted at `u` with the one rooted at `v` (v may be null).
  void Transplant(TimerRecord* u, TimerRecord* v);
  void Remove(TimerRecord* z);

  static std::size_t Height(const TimerRecord* node);
  static bool CheckSubtree(const TimerRecord* node, const TimerRecord* lo,
                           const TimerRecord* hi);

  TimerRecord* root_ = nullptr;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_BST_TIMERS_H_
