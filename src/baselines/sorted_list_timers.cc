#include "src/baselines/sorted_list_timers.h"

namespace twheel {

StartResult SortedListTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  InsertSorted(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

void SortedListTimers::InsertSorted(TimerRecord* rec) {
  if (direction_ == SearchDirection::kFromFront) {
    // First record strictly later than the new one; insert before it. Equal keys are
    // passed over, preserving FIFO among equals.
    TimerRecord* cur = list_.front();
    while (cur != nullptr) {
      ++counts_.comparisons;
      if (cur->expiry_tick > rec->expiry_tick) {
        break;
      }
      cur = list_.Next(cur);
    }
    if (cur == nullptr) {
      list_.PushBack(rec);
    } else {
      list_.InsertBefore(rec, cur);
    }
  } else {
    // Last record due no later than the new one; insert after it (i.e. before its
    // successor). Scanning stops at the first key <= new, so equals stay FIFO.
    TimerRecord* cur = list_.back();
    while (cur != nullptr) {
      ++counts_.comparisons;
      if (cur->expiry_tick <= rec->expiry_tick) {
        break;
      }
      cur = list_.Prev(cur);
    }
    if (cur == nullptr) {
      list_.PushFront(rec);
    } else {
      TimerRecord* next = list_.Next(cur);
      if (next == nullptr) {
        list_.PushBack(rec);
      } else {
        list_.InsertBefore(rec, next);
      }
    }
  }
}

TimerError SortedListTimers::RestartTimer(TimerHandle handle,
                                          Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();
  StampRestart(rec, new_interval);
  // Re-run the configured insertion scan with the fresh key; the record keeps
  // its identity (and links storage), so no allocation or generation bump.
  InsertSorted(rec);
  return TimerError::kOk;
}

TimerError SortedListTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t SortedListTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  // "PER_TICK_PROCESSING need only increment the current time of day, and compare it
  // with the head of the list" (Section 3.2).
  while (true) {
    TimerRecord* head = list_.front();
    if (head == nullptr) {
      ++counts_.empty_slot_checks;
      break;
    }
    ++counts_.comparisons;
    if (head->expiry_tick > now_) {
      break;
    }
    // A re-armed head re-inserts at now + period (> now), so the loop
    // terminates.
    if (TryFirePeriodic(head)) {
      ++expired;
      continue;
    }
    head->Unlink();
    Expire(head);
    ++expired;
  }
  return expired;
}

}  // namespace twheel
