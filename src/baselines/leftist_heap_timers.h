// Scheme 3 (c) — leftist tree (mergeable heap) with lazy cancellation.
//
// Leftist trees are on the paper's list of tree-based priority queues ("these
// include unbalanced binary trees, heaps, post-order and end-order trees, and
// leftist-trees [4,6]"). This implementation deliberately pairs the structure with
// the *simulation-style* cancellation policy the paper criticizes in Section 4.2:
// "it is sufficient to mark the notice as 'Canceled' and wait until the event is
// scheduled... In a timer module, STOP_TIMER may be called frequently; such an
// approach can cause the memory needs to grow unboundedly beyond the number of
// timers outstanding at any time."
//
// STOP_TIMER is therefore O(1) (set a flag) but the record's storage is reclaimed
// only when it reaches the root. RetainedRecords() exposes the gap between allocated
// and live timers so tests and the fig6-trees bench can measure exactly the growth
// the paper warns about.
//
// Nodes are the COLD records (timer_record.h), keyed through node->hot like the
// other tree baselines — see bst_timers.h for the trade. The cancelled flag stays
// HOT: StopTimer is the one O(1) hot op this scheme has, and keeping the flag next
// to the key means the root-discard loop never touches a second line to test it.

#ifndef TWHEEL_SRC_BASELINES_LEFTIST_HEAP_TIMERS_H_
#define TWHEEL_SRC_BASELINES_LEFTIST_HEAP_TIMERS_H_

#include <cstddef>

#include "src/core/timer_service.h"

namespace twheel {

class LeftistHeapTimers final : public TimerServiceBase {
 public:
  explicit LeftistHeapTimers(std::size_t max_timers = 0) : TimerServiceBase(max_timers) {}

  ~LeftistHeapTimers() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place reschedule. Lazy cancellation cannot express a restart (an
  // earlier deadline would surface too late), so this is the eager path: the
  // node's subtree is cut out via its parent pointer, its children merge into
  // its old position, ranks re-settle up the parent chain (stopping at the
  // first unchanged rank — the standard O(log n) arbitrary-delete), and the
  // re-stamped node merges back at the root. The record is never released.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final { return "scheme3-leftist"; }

  // Per record: two child pointers (16) + expiry (8) + cookie (8) + seq (8) +
  // null-path length and cancel flag (8). Lazy cancellation means the *count* of
  // resident records can exceed outstanding() (see RetainedRecords).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 48;
    return profile;
  }

  // Outstanding excludes records cancelled but not yet physically removed.
  std::size_t outstanding() const final {
    return TimerServiceBase::outstanding() - cancelled_retained_;
  }

  // Cancelled records still occupying memory — the Section 4.2 growth.
  std::size_t RetainedRecords() const { return cancelled_retained_; }

  // Leftist invariant (heap order + null-path-length rule), for property tests.
  bool CheckLeftistInvariant() const { return CheckSubtree(root_) >= 0; }

 private:
  static bool Less(const ColdTimerRecord* a, const ColdTimerRecord* b) {
    if (a->hot->expiry_tick != b->hot->expiry_tick) {
      return a->hot->expiry_tick < b->hot->expiry_tick;
    }
    return a->hot->seq < b->hot->seq;
  }

  // Merge maintains child->parent links (RestartTimer's detach needs them);
  // the caller owns the returned root's parent pointer.
  ColdTimerRecord* Merge(ColdTimerRecord* a, ColdTimerRecord* b);
  void PopRoot();
  // Cut `x`'s subtree out of the tree, splicing Merge(x->left, x->right) into
  // its place, and restore ranks/leftist shape up the parent chain.
  void Detach(ColdTimerRecord* x);
  void FixUpFrom(ColdTimerRecord* node);
  // Returns the subtree's null-path length, or -2 on invariant violation.
  static std::int64_t CheckSubtree(const ColdTimerRecord* node);

  ColdTimerRecord* root_ = nullptr;
  std::size_t cancelled_retained_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_LEFTIST_HEAP_TIMERS_H_
