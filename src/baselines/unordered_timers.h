// Scheme 1 — the straightforward scheme (Section 3.1).
//
// "START_TIMER finds a memory location and sets that location to the specified timer
// interval. Every T units, PER_TICK_BOOKKEEPING will decrement each outstanding
// timer; if any timer becomes zero, EXPIRY_PROCESSING is called."
//
// Latencies (Figure 4): START_TIMER O(1), STOP_TIMER O(1),
// PER_TICK_BOOKKEEPING O(n). Minimum possible space: one record per timer, no
// auxiliary structure beyond the membership list that lets the per-tick scan find
// records (the paper's "memory location" per timer; we thread them on an intrusive
// list rather than scanning a static array, which preserves both latencies).
//
// The paper deems it appropriate when there are few outstanding timers, most timers
// are stopped within a few ticks, or per-tick processing is done by hardware — the
// fig4-schemes12 bench shows exactly where it stops being appropriate.

#ifndef TWHEEL_SRC_BASELINES_UNORDERED_TIMERS_H_
#define TWHEEL_SRC_BASELINES_UNORDERED_TIMERS_H_

#include <cstddef>

#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

// Section 3.1's footnote, made concrete: "instead of doing a DECREMENT, we can
// store the absolute time at which timers expire and do a COMPARE. This option is
// valid for all timer schemes we describe; the choice between them will depend on
// the size of the time-of-day field, the cost of each instruction, and the
// hardware." Scheme 1 demonstrates both modes; the per-tick scan is O(n) either
// way, differing only in whether it writes (decrement) or merely reads (compare)
// each record.
enum class Scheme1Mode : std::uint8_t {
  kDecrement,  // the paper's default: count each record down to zero
  kCompare,    // store absolute expiry, compare against the time of day
};

class UnorderedTimers final : public TimerServiceBase {
 public:
  explicit UnorderedTimers(std::size_t max_timers = 0,
                           Scheme1Mode mode = Scheme1Mode::kDecrement)
      : TimerServiceBase(max_timers), mode_(mode) {}

  ~UnorderedTimers() override {
    while (TimerRecord* rec = records_.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(1) in-place reschedule: reset the count (or absolute expiry) and move the
  // record to the live list's head — the same position a fresh start takes, so
  // a restart from inside an expiry handler is not decremented on the tick that
  // restarted it.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final {
    return mode_ == Scheme1Mode::kDecrement ? "scheme1-unordered"
                                            : "scheme1-unordered-compare";
  }

  // "Scheme 1 needs the minimum space possible": no fixed structure; per record,
  // membership links (16) + count-or-expiry (8) + cookie (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 32;
    return profile;
  }

 private:
  Scheme1Mode mode_;
  IntrusiveList<TimerRecord> records_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_UNORDERED_TIMERS_H_
