// Scheme 3 (d) — balanced (AVL) binary search tree.
//
// Figure 6's footnote is specifically about this structure: "STOP_TIMER is O(1) for
// unbalanced trees and O(log(n)) — because of the need to rebalance the tree after
// a deletion — for balanced trees." And Section 4.1.1 reports (from Myhrhaug [7])
// that "unbalanced binary trees are less expensive than balanced binary trees" on
// average. This AVL implementation exists so both halves of that comparison are
// measurable: its START_TIMER and STOP_TIMER are O(log n) *worst case* — constant
// intervals cannot degenerate it the way they collapse BstTimers — but every
// operation pays rotation overhead the unbalanced tree skips.
//
// Keys are (expiry_tick, seq) like the other tree baselines; nodes are the COLD
// records (timer_record.h) with heights in ColdTimerRecord::rank, and key access
// hops to the hot twin through node->hot — see bst_timers.h for the trade.

#ifndef TWHEEL_SRC_BASELINES_AVL_TIMERS_H_
#define TWHEEL_SRC_BASELINES_AVL_TIMERS_H_

#include <cstddef>
#include <optional>

#include "src/base/assert.h"
#include "src/core/timer_service.h"

namespace twheel {

class AvlTimers final : public TimerServiceBase {
 public:
  explicit AvlTimers(std::size_t max_timers = 0) : TimerServiceBase(max_timers) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(lg n) in-place reschedule: balanced delete + re-insert of the same node
  // with the new key; no record release, handle stays valid.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final { return "scheme3-avl"; }

  // Per record: three tree pointers (24) + expiry (8) + cookie (8) + seq (8) +
  // height (4, padded to 8) — the balance bookkeeping is the "extra space" of a
  // balanced tree.
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 56;
    return profile;
  }

  // Hardware-single-timer capability, like the other peekable schemes.
  std::optional<Tick> NextExpiryHint() const final {
    if (root_ == nullptr) {
      return std::nullopt;
    }
    return MinimumConst(root_)->hot->expiry_tick;
  }
  bool FastForward(Tick target) final {
    TWHEEL_ASSERT(target >= now_);
    TWHEEL_ASSERT_MSG(root_ == nullptr || target < MinimumConst(root_)->hot->expiry_tick,
                      "FastForward would skip an expiry");
    now_ = target;
    return true;
  }

  // Diagnostics: AVL invariant (BST order, parent links, height fields, balance
  // factors in [-1, 1]) and tree height, for property tests and the fig6 bench.
  bool CheckAvlInvariant() const { return CheckSubtree(root_).valid; }
  std::size_t HeightSlow() const { return root_ == nullptr ? 0 : root_->rank; }
  std::uint64_t rotations() const { return rotations_; }

 private:
  static bool Less(const ColdTimerRecord* a, const ColdTimerRecord* b) {
    if (a->hot->expiry_tick != b->hot->expiry_tick) {
      return a->hot->expiry_tick < b->hot->expiry_tick;
    }
    return a->hot->seq < b->hot->seq;
  }

  static std::int32_t HeightOf(const ColdTimerRecord* node) {
    return node == nullptr ? 0 : node->rank;
  }
  static void UpdateHeight(ColdTimerRecord* node);
  static std::int32_t BalanceOf(const ColdTimerRecord* node) {
    return HeightOf(node->left) - HeightOf(node->right);
  }
  static const ColdTimerRecord* MinimumConst(const ColdTimerRecord* node) {
    while (node->left != nullptr) {
      node = node->left;
    }
    return node;
  }

  // Replace the subtree rooted at `u` with `v` (v may be null) in u's parent.
  void Transplant(ColdTimerRecord* u, ColdTimerRecord* v);
  ColdTimerRecord* RotateLeft(ColdTimerRecord* x);
  ColdTimerRecord* RotateRight(ColdTimerRecord* x);
  // Restore the AVL property at `node`; returns the subtree's (possibly new) root.
  ColdTimerRecord* Rebalance(ColdTimerRecord* node);
  // Walk from `node` to the root, updating heights and rebalancing.
  void RetraceFrom(ColdTimerRecord* node);

  void Insert(ColdTimerRecord* node);
  void Remove(ColdTimerRecord* z);

  struct CheckResult {
    bool valid = false;
    std::int32_t height = 0;
  };
  static CheckResult CheckSubtree(const ColdTimerRecord* node);

  ColdTimerRecord* root_ = nullptr;
  std::uint64_t rotations_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_AVL_TIMERS_H_
