#include "src/baselines/avl_timers.h"

#include <algorithm>

namespace twheel {

StartResult AvlTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  Insert(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError AvlTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  Remove(rec);
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError AvlTimers::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  // O(lg n) re-key: balanced delete + balanced re-insert of the same node; the
  // record is never released, so the handle's generation survives.
  Remove(rec);
  StampRestart(rec, new_interval);
  Insert(rec);
  return TimerError::kOk;
}

std::size_t AvlTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  while (root_ != nullptr) {
    TimerRecord* min = const_cast<TimerRecord*>(MinimumConst(root_));
    ++counts_.comparisons;
    if (min->expiry_tick > now_) {
      break;
    }
    // A re-armed minimum re-inserts with key now + period (> now), so the
    // loop terminates.
    if (TryFirePeriodic(min)) {
      ++expired;
      continue;
    }
    Remove(min);
    Expire(min);
    ++expired;
  }
  if (root_ == nullptr && expired == 0) {
    ++counts_.empty_slot_checks;
  }
  return expired;
}

void AvlTimers::UpdateHeight(TimerRecord* node) {
  node->rank = 1 + std::max(HeightOf(node->left), HeightOf(node->right));
}

void AvlTimers::Transplant(TimerRecord* u, TimerRecord* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) {
    v->parent = u->parent;
  }
}

TimerRecord* AvlTimers::RotateLeft(TimerRecord* x) {
  ++rotations_;
  TimerRecord* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) {
    y->left->parent = x;
  }
  Transplant(x, y);
  y->left = x;
  x->parent = y;
  UpdateHeight(x);
  UpdateHeight(y);
  return y;
}

TimerRecord* AvlTimers::RotateRight(TimerRecord* x) {
  ++rotations_;
  TimerRecord* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) {
    y->right->parent = x;
  }
  Transplant(x, y);
  y->right = x;
  x->parent = y;
  UpdateHeight(x);
  UpdateHeight(y);
  return y;
}

TimerRecord* AvlTimers::Rebalance(TimerRecord* node) {
  UpdateHeight(node);
  std::int32_t balance = BalanceOf(node);
  if (balance > 1) {
    if (BalanceOf(node->left) < 0) {
      RotateLeft(node->left);  // left-right case
    }
    return RotateRight(node);
  }
  if (balance < -1) {
    if (BalanceOf(node->right) > 0) {
      RotateRight(node->right);  // right-left case
    }
    return RotateLeft(node);
  }
  return node;
}

void AvlTimers::RetraceFrom(TimerRecord* node) {
  while (node != nullptr) {
    node = Rebalance(node);
    node = node->parent;
  }
}

void AvlTimers::Insert(TimerRecord* rec) {
  rec->left = rec->right = rec->parent = nullptr;
  rec->rank = 1;

  TimerRecord* parent = nullptr;
  TimerRecord* cur = root_;
  bool went_left = false;
  while (cur != nullptr) {
    ++counts_.comparisons;
    parent = cur;
    went_left = Less(rec, cur);
    cur = went_left ? cur->left : cur->right;
  }
  rec->parent = parent;
  if (parent == nullptr) {
    root_ = rec;
    return;
  }
  if (went_left) {
    parent->left = rec;
  } else {
    parent->right = rec;
  }
  RetraceFrom(parent);
}

void AvlTimers::Remove(TimerRecord* z) {
  // The lowest node whose subtree height may have changed; retrace from there.
  TimerRecord* retrace_start;
  if (z->left == nullptr) {
    retrace_start = z->parent;
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    retrace_start = z->parent;
    Transplant(z, z->left);
  } else {
    TimerRecord* y = const_cast<TimerRecord*>(MinimumConst(z->right));  // successor
    if (y->parent != z) {
      retrace_start = y->parent;
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    } else {
      retrace_start = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->rank = z->rank;
  }
  if (retrace_start != nullptr) {
    RetraceFrom(retrace_start);
  }
  z->left = z->right = z->parent = nullptr;
  z->rank = 0;
}

AvlTimers::CheckResult AvlTimers::CheckSubtree(const TimerRecord* node) {
  if (node == nullptr) {
    return {true, 0};
  }
  CheckResult left = CheckSubtree(node->left);
  CheckResult right = CheckSubtree(node->right);
  if (!left.valid || !right.valid) {
    return {false, 0};
  }
  if (node->left != nullptr &&
      (node->left->parent != node || !Less(node->left, node))) {
    return {false, 0};
  }
  if (node->right != nullptr &&
      (node->right->parent != node || !Less(node, node->right))) {
    return {false, 0};
  }
  std::int32_t height = 1 + std::max(left.height, right.height);
  if (node->rank != height) {
    return {false, 0};
  }
  if (left.height - right.height > 1 || right.height - left.height > 1) {
    return {false, 0};
  }
  return {true, height};
}

}  // namespace twheel
