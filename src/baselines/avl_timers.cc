#include "src/baselines/avl_timers.h"

#include <algorithm>

namespace twheel {

StartResult AvlTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  Insert(&cold(rec));
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError AvlTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  Remove(&cold(rec));
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError AvlTimers::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  // O(lg n) re-key: balanced delete + balanced re-insert of the same node; the
  // record is never released, so the handle's generation survives.
  ColdTimerRecord* node = &cold(rec);
  Remove(node);
  StampRestart(rec, new_interval);
  Insert(node);
  return TimerError::kOk;
}

std::size_t AvlTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  while (root_ != nullptr) {
    ColdTimerRecord* min = const_cast<ColdTimerRecord*>(MinimumConst(root_));
    ++counts_.comparisons;
    if (min->hot->expiry_tick > now_) {
      break;
    }
    // A re-armed minimum re-inserts with key now + period (> now), so the
    // loop terminates.
    if (TryFirePeriodic(min->hot)) {
      ++expired;
      continue;
    }
    Remove(min);
    Expire(min->hot);
    ++expired;
  }
  if (root_ == nullptr && expired == 0) {
    ++counts_.empty_slot_checks;
  }
  return expired;
}

void AvlTimers::UpdateHeight(ColdTimerRecord* node) {
  node->rank = 1 + std::max(HeightOf(node->left), HeightOf(node->right));
}

void AvlTimers::Transplant(ColdTimerRecord* u, ColdTimerRecord* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) {
    v->parent = u->parent;
  }
}

ColdTimerRecord* AvlTimers::RotateLeft(ColdTimerRecord* x) {
  ++rotations_;
  ColdTimerRecord* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) {
    y->left->parent = x;
  }
  Transplant(x, y);
  y->left = x;
  x->parent = y;
  UpdateHeight(x);
  UpdateHeight(y);
  return y;
}

ColdTimerRecord* AvlTimers::RotateRight(ColdTimerRecord* x) {
  ++rotations_;
  ColdTimerRecord* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) {
    y->right->parent = x;
  }
  Transplant(x, y);
  y->right = x;
  x->parent = y;
  UpdateHeight(x);
  UpdateHeight(y);
  return y;
}

ColdTimerRecord* AvlTimers::Rebalance(ColdTimerRecord* node) {
  UpdateHeight(node);
  std::int32_t balance = BalanceOf(node);
  if (balance > 1) {
    if (BalanceOf(node->left) < 0) {
      RotateLeft(node->left);  // left-right case
    }
    return RotateRight(node);
  }
  if (balance < -1) {
    if (BalanceOf(node->right) > 0) {
      RotateRight(node->right);  // right-left case
    }
    return RotateLeft(node);
  }
  return node;
}

void AvlTimers::RetraceFrom(ColdTimerRecord* node) {
  while (node != nullptr) {
    node = Rebalance(node);
    node = node->parent;
  }
}

void AvlTimers::Insert(ColdTimerRecord* node) {
  node->left = node->right = node->parent = nullptr;
  node->rank = 1;

  ColdTimerRecord* parent = nullptr;
  ColdTimerRecord* cur = root_;
  bool went_left = false;
  while (cur != nullptr) {
    ++counts_.comparisons;
    parent = cur;
    went_left = Less(node, cur);
    cur = went_left ? cur->left : cur->right;
  }
  node->parent = parent;
  if (parent == nullptr) {
    root_ = node;
    return;
  }
  if (went_left) {
    parent->left = node;
  } else {
    parent->right = node;
  }
  RetraceFrom(parent);
}

void AvlTimers::Remove(ColdTimerRecord* z) {
  // The lowest node whose subtree height may have changed; retrace from there.
  ColdTimerRecord* retrace_start;
  if (z->left == nullptr) {
    retrace_start = z->parent;
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    retrace_start = z->parent;
    Transplant(z, z->left);
  } else {
    ColdTimerRecord* y = const_cast<ColdTimerRecord*>(MinimumConst(z->right));  // successor
    if (y->parent != z) {
      retrace_start = y->parent;
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    } else {
      retrace_start = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->rank = z->rank;
  }
  if (retrace_start != nullptr) {
    RetraceFrom(retrace_start);
  }
  z->left = z->right = z->parent = nullptr;
  z->rank = 0;
}

AvlTimers::CheckResult AvlTimers::CheckSubtree(const ColdTimerRecord* node) {
  if (node == nullptr) {
    return {true, 0};
  }
  CheckResult left = CheckSubtree(node->left);
  CheckResult right = CheckSubtree(node->right);
  if (!left.valid || !right.valid) {
    return {false, 0};
  }
  if (node->left != nullptr &&
      (node->left->parent != node || !Less(node->left, node))) {
    return {false, 0};
  }
  if (node->right != nullptr &&
      (node->right->parent != node || !Less(node, node->right))) {
    return {false, 0};
  }
  std::int32_t height = 1 + std::max(left.height, right.height);
  if (node->rank != height) {
    return {false, 0};
  }
  if (left.height - right.height > 1 || right.height - left.height > 1) {
    return {false, 0};
  }
  return {true, height};
}

}  // namespace twheel
