#include "src/baselines/unordered_timers.h"

namespace twheel {

StartResult UnorderedTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  rec->remaining = interval;
  records_.PushFront(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError UnorderedTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError UnorderedTimers::RestartTimer(TimerHandle handle,
                                         Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();
  StampRestart(rec, new_interval);
  rec->remaining = new_interval;
  records_.PushFront(rec);
  return TimerError::kOk;
}

std::size_t UnorderedTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  if (records_.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  // DECREMENT every outstanding timer (Section 3.1). The population is spliced out
  // and walked via its head: expiry handlers may re-arm (new records go to the live
  // list and are not decremented until the next tick) and may stop any unvisited
  // sibling (unlinking it from the pending list without invalidating the walk).
  std::size_t expired = 0;
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(records_);
  while (TimerRecord* rec = pending.front()) {
    ++counts_.decrement_visits;
    const bool due = mode_ == Scheme1Mode::kDecrement ? (--rec->remaining == 0)
                                                      : rec->expiry_tick <= now_;
    if (due) {
      // Non-final periodic fire: RestartTimer moves the record from `pending`
      // back to the live list (resetting `remaining`), skipping this tick's
      // remaining decrements as a fresh start would.
      if (TryFirePeriodic(rec)) {
        ++expired;
        continue;
      }
      rec->Unlink();
      Expire(rec);
      ++expired;
    } else {
      rec->Unlink();
      records_.PushBack(rec);
    }
  }
  return expired;
}

}  // namespace twheel
