#include "src/baselines/leftist_heap_timers.h"

namespace twheel {

LeftistHeapTimers::~LeftistHeapTimers() {
  // Cancelled records are still owned by the arena; nothing to do here. The arena
  // destructor reclaims all storage.
}

StartResult LeftistHeapTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  ColdTimerRecord* node = &cold(rec);
  node->left = node->right = node->parent = nullptr;
  node->rank = 0;
  rec->cancelled = false;
  root_ = Merge(root_, node);
  root_->parent = nullptr;
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError LeftistHeapTimers::RestartTimer(TimerHandle handle,
                                           Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  if (rec->cancelled) {
    return TimerError::kNoSuchTimer;
  }
  ColdTimerRecord* node = &cold(rec);
  Detach(node);
  StampRestart(rec, new_interval);
  root_ = Merge(root_, node);
  root_->parent = nullptr;
  return TimerError::kOk;
}

TimerError LeftistHeapTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr || rec->cancelled) {
    return TimerError::kNoSuchTimer;
  }
  // Lazy: O(1) flag set; storage reclaimed when the record surfaces at the root.
  rec->cancelled = true;
  ++cancelled_retained_;
  ++counts_.delete_unlink_ops;
  return TimerError::kOk;
}

std::size_t LeftistHeapTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  while (root_ != nullptr) {
    if (root_->hot->cancelled) {
      // Discard the cancelled notice, as a simulation scheduler would.
      ColdTimerRecord* dead = root_;
      PopRoot();
      --cancelled_retained_;
      ReleaseRecord(dead->hot);
      continue;
    }
    ++counts_.comparisons;
    if (root_->hot->expiry_tick > now_) {
      break;
    }
    // A re-armed root detaches and re-merges with key now + period (> now), so
    // the loop terminates.
    if (TryFirePeriodic(root_->hot)) {
      ++expired;
      continue;
    }
    ColdTimerRecord* due = root_;
    PopRoot();
    Expire(due->hot);
    ++expired;
  }
  if (root_ == nullptr && expired == 0) {
    ++counts_.empty_slot_checks;
  }
  return expired;
}

ColdTimerRecord* LeftistHeapTimers::Merge(ColdTimerRecord* a, ColdTimerRecord* b) {
  if (a == nullptr) {
    return b;
  }
  if (b == nullptr) {
    return a;
  }
  ++counts_.comparisons;
  if (Less(b, a)) {
    ColdTimerRecord* tmp = a;
    a = b;
    b = tmp;
  }
  a->right = Merge(a->right, b);
  a->right->parent = a;
  std::int32_t left_rank = a->left ? a->left->rank : -1;
  std::int32_t right_rank = a->right ? a->right->rank : -1;
  if (left_rank < right_rank) {
    ColdTimerRecord* tmp = a->left;
    a->left = a->right;
    a->right = tmp;
    std::int32_t t = left_rank;
    left_rank = right_rank;
    right_rank = t;
  }
  a->rank = right_rank + 1;
  return a;
}

void LeftistHeapTimers::PopRoot() {
  ColdTimerRecord* old = root_;
  root_ = Merge(old->left, old->right);
  if (root_ != nullptr) {
    root_->parent = nullptr;
  }
  old->left = old->right = old->parent = nullptr;
  old->rank = 0;
}

void LeftistHeapTimers::Detach(ColdTimerRecord* x) {
  ColdTimerRecord* sub = Merge(x->left, x->right);
  ColdTimerRecord* p = x->parent;
  if (sub != nullptr) {
    sub->parent = p;
  }
  if (p == nullptr) {
    root_ = sub;
  } else {
    if (p->left == x) {
      p->left = sub;
    } else {
      p->right = sub;
    }
    FixUpFrom(p);
  }
  x->left = x->right = x->parent = nullptr;
  x->rank = 0;
}

void LeftistHeapTimers::FixUpFrom(ColdTimerRecord* node) {
  while (node != nullptr) {
    std::int32_t left_rank = node->left ? node->left->rank : -1;
    std::int32_t right_rank = node->right ? node->right->rank : -1;
    if (left_rank < right_rank) {
      ColdTimerRecord* tmp = node->left;
      node->left = node->right;
      node->right = tmp;
      const std::int32_t t = left_rank;
      left_rank = right_rank;
      right_rank = t;
    }
    const std::int32_t new_rank = right_rank + 1;
    if (node->rank == new_rank) {
      // Rank unchanged: every ancestor's shape constraint still holds.
      break;
    }
    node->rank = new_rank;
    node = node->parent;
  }
}

std::int64_t LeftistHeapTimers::CheckSubtree(const ColdTimerRecord* node) {
  if (node == nullptr) {
    return -1;
  }
  std::int64_t l = CheckSubtree(node->left);
  std::int64_t r = CheckSubtree(node->right);
  if (l == -2 || r == -2 || l < r) {
    return -2;  // leftist rule: npl(left) >= npl(right)
  }
  if (node->left != nullptr && Less(node->left, node)) {
    return -2;  // heap order
  }
  if (node->right != nullptr && Less(node->right, node)) {
    return -2;
  }
  if (node->left != nullptr && node->left->parent != node) {
    return -2;  // parent links (RestartTimer's detach relies on them)
  }
  if (node->right != nullptr && node->right->parent != node) {
    return -2;
  }
  if (node->rank != r + 1) {
    return -2;
  }
  return r + 1;
}

}  // namespace twheel
