// Scheme 3 (a) — binary min-heap priority queue (Section 4.1.1).
//
// "For large n, tree-based data structures are better... They attempt to reduce the
// latency in Scheme 2 for START_TIMER from O(n) to O(log(n))." A binary heap is the
// classic array-backed priority queue: START_TIMER is O(log n) (sift-up),
// PER_TICK_BOOKKEEPING compares the root's expiry with the clock (O(1) when nothing
// expires). STOP_TIMER is O(log n): each record stores its heap index
// (TimerRecord::heap_index), so cancellation removes the record directly — no lazy
// "mark cancelled" growth (Section 4.2 explains why a timer module can't afford
// that; the leftist-heap baseline demonstrates the lazy alternative).
//
// Keys are (expiry_tick, seq): the start-order tiebreak makes equal expiries pop in
// FIFO order, matching the canonical order used by the differential tests.

#ifndef TWHEEL_SRC_BASELINES_HEAP_TIMERS_H_
#define TWHEEL_SRC_BASELINES_HEAP_TIMERS_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/assert.h"

#include "src/core/timer_service.h"

namespace twheel {

class HeapTimers final : public TimerServiceBase {
 public:
  explicit HeapTimers(std::size_t max_timers = 0) : TimerServiceBase(max_timers) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(log n) in-place reschedule: re-key the record at its current heap
  // position via the stored heap_index and sift in whichever direction the new
  // key demands — no removal, no reallocation, handle stays valid.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final { return "scheme3-heap"; }

  // Per record: expiry (8) + cookie (8) + seq tiebreak (8) + heap index (4, padded);
  // plus the pointer array itself as population-dependent auxiliary storage.
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 32;
    profile.auxiliary_bytes = heap_.capacity() * sizeof(TimerRecord*);
    return profile;
  }

  // Heap-order invariant check for property tests. O(n).
  bool CheckHeapInvariant() const;

  // Hardware-single-timer capability: O(1) root peek, O(1) clock jump.
  std::optional<Tick> NextExpiryHint() const final {
    return heap_.empty() ? std::nullopt : std::optional<Tick>(heap_[0]->expiry_tick);
  }
  bool FastForward(Tick target) final {
    TWHEEL_ASSERT(target >= now_);
    TWHEEL_ASSERT_MSG(heap_.empty() || target < heap_[0]->expiry_tick,
                      "FastForward would skip an expiry");
    now_ = target;
    return true;
  }

 private:
  static bool Less(const TimerRecord* a, const TimerRecord* b) {
    if (a->expiry_tick != b->expiry_tick) {
      return a->expiry_tick < b->expiry_tick;
    }
    return a->seq < b->seq;
  }

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void Place(std::size_t i, TimerRecord* rec) {
    heap_[i] = rec;
    rec->heap_index = static_cast<std::uint32_t>(i);
  }
  // Remove the record at heap position i (any position), preserving heap order.
  void RemoveAt(std::size_t i);

  std::vector<TimerRecord*> heap_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASELINES_HEAP_TIMERS_H_
