#include "src/baselines/bst_timers.h"

#include <algorithm>

namespace twheel {

StartResult BstTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  InsertNode(&cold(rec));
  ++counts_.insert_link_ops;
  return rec->self;
}

void BstTimers::InsertNode(ColdTimerRecord* node) {
  node->left = node->right = node->parent = nullptr;

  ColdTimerRecord* parent = nullptr;
  ColdTimerRecord* cur = root_;
  bool went_left = false;
  while (cur != nullptr) {
    ++counts_.comparisons;
    parent = cur;
    went_left = Less(node, cur);
    cur = went_left ? cur->left : cur->right;
  }
  node->parent = parent;
  if (parent == nullptr) {
    root_ = node;
  } else if (went_left) {
    parent->left = node;
  } else {
    parent->right = node;
  }
}

TimerError BstTimers::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  // Standard BST re-key: detach the node (successor transplant), re-stamp, and
  // re-descend with the new key. The record is never released, so the handle's
  // generation survives.
  ColdTimerRecord* node = &cold(rec);
  Remove(node);
  StampRestart(rec, new_interval);
  InsertNode(node);
  return TimerError::kOk;
}

TimerError BstTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  Remove(&cold(rec));
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t BstTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  std::size_t expired = 0;
  while (root_ != nullptr) {
    ColdTimerRecord* min = Minimum(root_);
    ++counts_.comparisons;
    if (min->hot->expiry_tick > now_) {
      break;
    }
    // A re-armed minimum re-descends with key now + period (> now), so the
    // loop terminates.
    if (TryFirePeriodic(min->hot)) {
      ++expired;
      continue;
    }
    Remove(min);
    Expire(min->hot);
    ++expired;
  }
  if (root_ == nullptr && expired == 0) {
    ++counts_.empty_slot_checks;
  }
  return expired;
}

ColdTimerRecord* BstTimers::Minimum(ColdTimerRecord* node) const {
  while (node->left != nullptr) {
    node = node->left;
  }
  return node;
}

void BstTimers::Transplant(ColdTimerRecord* u, ColdTimerRecord* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) {
    v->parent = u->parent;
  }
}

void BstTimers::Remove(ColdTimerRecord* z) {
  if (z->left == nullptr) {
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    Transplant(z, z->left);
  } else {
    ColdTimerRecord* y = Minimum(z->right);  // successor; has no left child
    if (y->parent != z) {
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
  }
  z->left = z->right = z->parent = nullptr;
}

std::size_t BstTimers::Height(const ColdTimerRecord* node) {
  if (node == nullptr) {
    return 0;
  }
  return 1 + std::max(Height(node->left), Height(node->right));
}

bool BstTimers::CheckSubtree(const ColdTimerRecord* node, const ColdTimerRecord* lo,
                             const ColdTimerRecord* hi) {
  if (node == nullptr) {
    return true;
  }
  if (lo != nullptr && !Less(lo, node)) {
    return false;
  }
  if (hi != nullptr && !Less(node, hi)) {
    return false;
  }
  if (node->left != nullptr && node->left->parent != node) {
    return false;
  }
  if (node->right != nullptr && node->right->parent != node) {
    return false;
  }
  return CheckSubtree(node->left, lo, node) && CheckSubtree(node->right, node, hi);
}

}  // namespace twheel
