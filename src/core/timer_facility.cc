#include "src/core/timer_facility.h"

#include "src/baselines/avl_timers.h"
#include "src/baselines/bst_timers.h"
#include "src/baselines/heap_timers.h"
#include "src/baselines/leftist_heap_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/core/basic_wheel.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hybrid_wheel.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/lawn/lawn_timers.h"

namespace twheel {

std::unique_ptr<TimerService> MakeTimerService(const FacilityConfig& config) {
  switch (config.scheme) {
    case SchemeId::kScheme1Unordered:
      return std::make_unique<UnorderedTimers>(config.max_timers);
    case SchemeId::kScheme2SortedFront:
      return std::make_unique<SortedListTimers>(SearchDirection::kFromFront,
                                                config.max_timers);
    case SchemeId::kScheme2SortedRear:
      return std::make_unique<SortedListTimers>(SearchDirection::kFromRear,
                                                config.max_timers);
    case SchemeId::kScheme3Heap:
      return std::make_unique<HeapTimers>(config.max_timers);
    case SchemeId::kScheme3Bst:
      return std::make_unique<BstTimers>(config.max_timers);
    case SchemeId::kScheme3Avl:
      return std::make_unique<AvlTimers>(config.max_timers);
    case SchemeId::kScheme3Leftist:
      return std::make_unique<LeftistHeapTimers>(config.max_timers);
    case SchemeId::kScheme4BasicWheel:
      return std::make_unique<BasicWheel>(config.wheel_size, config.overflow,
                                          config.max_timers);
    case SchemeId::kScheme4HybridList:
      return std::make_unique<HybridWheel>(config.wheel_size, config.max_timers);
    case SchemeId::kScheme5HashedSorted:
      return std::make_unique<HashedWheelSorted>(config.wheel_size, config.max_timers);
    case SchemeId::kScheme6HashedUnsorted:
      return std::make_unique<HashedWheelUnsorted>(config.wheel_size, config.max_timers);
    case SchemeId::kScheme7Hierarchical: {
      HierarchicalWheelOptions options;
      options.overflow = config.overflow;
      options.migration = config.migration;
      options.max_timers = config.max_timers;
      options.slop_bits = config.slop_bits;
      return std::make_unique<HierarchicalWheel>(config.level_sizes, options);
    }
    case SchemeId::kScheme8Lawn: {
      lawn::LawnOptions options;
      options.max_distinct_ttls = config.lawn_max_distinct_ttls;
      options.slop_bits = config.slop_bits;
      options.max_timers = config.max_timers;
      return std::make_unique<lawn::LawnTimers>(options);
    }
  }
  TWHEEL_ASSERT_MSG(false, "unknown SchemeId");
  return nullptr;
}

const char* SchemeName(SchemeId id) {
  switch (id) {
    case SchemeId::kScheme1Unordered:
      return "scheme1-unordered";
    case SchemeId::kScheme2SortedFront:
      return "scheme2-sorted-front";
    case SchemeId::kScheme2SortedRear:
      return "scheme2-sorted-rear";
    case SchemeId::kScheme3Heap:
      return "scheme3-heap";
    case SchemeId::kScheme3Bst:
      return "scheme3-bst";
    case SchemeId::kScheme3Avl:
      return "scheme3-avl";
    case SchemeId::kScheme3Leftist:
      return "scheme3-leftist";
    case SchemeId::kScheme4BasicWheel:
      return "scheme4-basic-wheel";
    case SchemeId::kScheme4HybridList:
      return "scheme4-2-hybrid";
    case SchemeId::kScheme5HashedSorted:
      return "scheme5-hashed-sorted";
    case SchemeId::kScheme6HashedUnsorted:
      return "scheme6-hashed-unsorted";
    case SchemeId::kScheme7Hierarchical:
      return "scheme7-hierarchical";
    case SchemeId::kScheme8Lawn:
      return "scheme8-lawn";
  }
  return "unknown";
}

}  // namespace twheel
