// The timer record shared by every scheme, split hot/cold by access frequency.
//
// One timer is one (hot, cold) record pair, slab-allocated at the same slot of a
// PairedSlabArena (src/base/slab_arena.h) so both addresses are stable while the
// hot record is linked into wheel slots, sorted lists, heaps, or trees.
//
// TimerRecord — the HOT record — carries exactly the fields the per-operation
// paths touch (links, keys, placement indices) and is pinned to one cache line:
// a static_assert below fails the build the moment a new field pushes it past 64
// bytes. At millions of live timers the record layout IS the data structure — a
// wheel tick that walks a bucket pulls one line per resident, not three — so a
// field earns a hot slot only if StartTimer/StopTimer/RestartTimer or the tick
// scan reads it; everything else goes cold. Two unions keep disjoint schemes
// from paying for each other: Scheme 1's per-tick decrement target overlays the
// hashed wheels' revolution count, and the heap's array index overlays the
// wheels' slot index (no scheme uses both members of either pair).
//
// ColdTimerRecord carries the fields touched at most once per timer lifetime or
// only by the tree baselines: the client cookie delivered at expiry, the
// periodic cadence, and the per-baseline tree links. The tree schemes (BST,
// AVL, leftist) link cold records directly and hop to the hot twin through the
// `hot` back-pointer for key comparisons — their per-op cost is O(log n)
// pointer-chasing either way, while the wheels' O(1) paths never load a cold
// line outside expiry dispatch.
//
// The pairing rule for new fields: hot if any scheme's start/stop/restart/tick
// path reads it per operation, cold otherwise — and the hot addition must fit
// the 64-byte budget or displace something colder (tests/core/layout_test.cc
// pins the current layout so a displacement is a deliberate, reviewed change).

#ifndef TWHEEL_SRC_CORE_TIMER_RECORD_H_
#define TWHEEL_SRC_CORE_TIMER_RECORD_H_

#include <cstdint>
#include <limits>

#include "src/base/intrusive_list.h"
#include "src/base/types.h"

namespace twheel {

struct TimerRecord : ListNode {
  static constexpr std::uint32_t kNoIndex = std::numeric_limits<std::uint32_t>::max();

  // -- Common to all schemes: the key and the handle -------------------------------
  Tick expiry_tick = 0;   // absolute tick at which the timer is due
  TimerHandle self;       // this record's own handle (arena slot + generation)
  std::uint64_t seq = 0;  // start order; tiebreak so equal expiries stay FIFO
  Duration interval = 0;  // effective interval (after clamp/quantize); re-filing
                          // and Lawn's TTL-bucket lookup key on it per op

  // -- Scheme 1 / Schemes 5-6: the per-visit counter -------------------------------
  // Scheme 1 decrements `remaining` once per tick; Schemes 5/6 decrement `rounds`
  // (remaining full wheel revolutions) once per cursor visit. No scheme uses both.
  union {
    std::uint64_t rounds = 0;
    Duration remaining;
  };

  // -- Placement index: where the record currently sits ----------------------------
  // Wheels/Lawn: slot (bucket) index, so StopTimer can clear the slot's occupancy
  // bit in O(1) when it empties; kNoIndex when not in a slot (hybrid/Lawn overflow
  // annex). Heap: position in the pointer array for O(log n) arbitrary deletion.
  // No scheme uses both.
  union {
    std::uint32_t home_slot = kNoIndex;
    std::uint32_t heap_index;
  };

  // -- Scheme 7 (hierarchy): which wheel currently holds the record ----------------
  std::uint8_t level = 0;
  std::uint8_t migrations_done = 0;  // for the single-migration precision variant

  // -- Lazy cancellation (leftist-heap baseline, Section 4.2's simulation idiom) ---
  bool cancelled = false;
};

// Hot records are pinned to one cache line. This static_assert is the layout
// contract: a change that grows the record past 64 bytes fails every build.
static_assert(sizeof(TimerRecord) <= 64,
              "TimerRecord (hot) must fit one 64-byte cache line");

// Cold twin, stored in the parallel slab of the same arena slot. Touched at
// allocation, at expiry dispatch, on periodic re-arm decisions, and by the tree
// baselines — never by the wheels' per-op hot paths.
struct ColdTimerRecord {
  // Back-pointer to the hot twin (same arena slot); lets the tree baselines
  // navigate cold links and reach the key without an arena lookup.
  TimerRecord* hot = nullptr;

  // -- Delivery: the paper's Request_ID, handed to the ExpiryHandler ---------------
  RequestId request_id = 0;
  Tick start_tick = 0;  // absolute tick at which START_TIMER (or a restart) ran

  // -- Periodic registration (StartPeriodic) ---------------------------------------
  // period == 0 marks a one-shot. A firing periodic record is relinked to the next
  // multiple of `period` instead of released; repeats_left counts total remaining
  // fires (TimerService::kRepeatForever == 0 means unbounded, 1 means this fire is
  // the last). RestartTimer leaves both fields untouched: a restart moves the next
  // deadline but keeps the cadence and the remaining-fire budget.
  Duration period = 0;
  std::uint64_t repeats_left = 0;

  // -- Scheme 3 (BST / AVL / leftist tree) -----------------------------------------
  ColdTimerRecord* left = nullptr;
  ColdTimerRecord* right = nullptr;
  ColdTimerRecord* parent = nullptr;
  std::int32_t rank = 0;  // AVL height / leftist null-path length
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_TIMER_RECORD_H_
