// The timer record shared by every scheme.
//
// One record per outstanding timer, slab-allocated (src/base/slab_arena.h) so its
// address is stable while linked into wheel slots, sorted lists, heaps, or trees.
// Rather than a per-scheme record type, a single fat record carries the union of the
// fields the seven schemes need; the few dozen extra bytes per timer buy a uniform
// arena, a uniform handle type, and the ability to run differential tests that drive
// every scheme with identical workloads. A production deployment would keep only the
// fields of its chosen scheme; the layout cost is documented here deliberately.

#ifndef TWHEEL_SRC_CORE_TIMER_RECORD_H_
#define TWHEEL_SRC_CORE_TIMER_RECORD_H_

#include <cstdint>
#include <limits>

#include "src/base/intrusive_list.h"
#include "src/base/types.h"

namespace twheel {

struct TimerRecord : ListNode {
  static constexpr std::uint32_t kNoIndex = std::numeric_limits<std::uint32_t>::max();

  // -- Common to all schemes -------------------------------------------------------
  RequestId request_id = 0;  // client cookie, delivered to the ExpiryHandler
  TimerHandle self;          // this record's own handle (arena slot + generation)
  Tick start_tick = 0;       // absolute tick at which START_TIMER ran
  Duration interval = 0;     // requested interval
  Tick expiry_tick = 0;      // absolute tick at which the timer is due
  std::uint64_t seq = 0;     // start order; tiebreak so equal expiries stay FIFO

  // -- Periodic registration (StartPeriodic) ---------------------------------------
  // period == 0 marks a one-shot. A firing periodic record is relinked to the next
  // multiple of `period` instead of released; repeats_left counts total remaining
  // fires (TimerService::kRepeatForever == 0 means unbounded, 1 means this fire is
  // the last). RestartTimer leaves both fields untouched: a restart moves the next
  // deadline but keeps the cadence and the remaining-fire budget.
  Duration period = 0;
  std::uint64_t repeats_left = 0;

  // -- Scheme 1 (straightforward): per-tick DECREMENT target -----------------------
  Duration remaining = 0;

  // -- Schemes 5/6 (hashed wheels): the quotient ("high order bits") --------------
  // Scheme 6 stores the number of remaining full wheel revolutions and decrements it
  // each time the cursor passes; Scheme 5 stores the absolute revolution number so
  // bucket order is stable (see hashed_wheel_sorted.h for the equivalence argument).
  std::uint64_t rounds = 0;

  // -- Scheme 3 (binary heap): position for O(log n) arbitrary deletion ------------
  std::uint32_t heap_index = kNoIndex;

  // -- Scheme 3 (BST / leftist tree) ------------------------------------------------
  TimerRecord* left = nullptr;
  TimerRecord* right = nullptr;
  TimerRecord* parent = nullptr;
  std::int32_t rank = 0;  // leftist tree null-path length

  // -- Scheme 7 (hierarchy): which wheel currently holds the record ----------------
  std::uint8_t level = 0;
  std::uint8_t migrations_done = 0;  // for the single-migration precision variant

  // -- Schemes 4-7 (wheels): slot index currently holding the record ---------------
  // Lets StopTimer clear the slot's occupancy bit in O(1) when the slot empties
  // (base/bitmap.h). kNoIndex when the record is not in a wheel slot (e.g. the
  // hybrid wheel's overflow annex). For Scheme 7 the slot is within `level`.
  std::uint32_t home_slot = kNoIndex;

  // -- Lazy cancellation (leftist-heap baseline, Section 4.2's simulation idiom) ---
  bool cancelled = false;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_TIMER_RECORD_H_
