// Scheme 7 — hierarchical timing wheels (Section 6.2, Figures 10 and 11).
//
// "To represent all possible timer values within a 32 bit range, we do not need a
// 2^32 element array. Instead we can use a number of arrays, each of different
// granularity" — the paper's example being 100-day / 24-hour / 60-minute / 60-second
// arrays: 244 slots instead of 8.64 million.
//
// Level L has size_L slots of granularity g_L = size_0 * ... * size_{L-1} ticks
// (g_0 = 1); the hierarchy spans prod(size_i) ticks. START_TIMER selects the level
// the way the paper's worked example does — "we insert the timer into a list
// beginning 1 (11 - 10 hours) element ahead of the current hour pointer in the hour
// array": the *highest* level whose unit digit of the absolute expiry differs from
// the current time's (O(m) to find, m = number of levels), filing the record in slot
// (E/g_L) mod size_L. The sub-g_L remainder of the expiry stays implicit in the
// record's absolute expiry_tick (the paper "store[s] the remainder in this
// location"). When a level-L slot is visited, each record either expires (no
// remainder) or *migrates* to the next level whose digit still differs, exactly like
// the 15-minute-15-second remainder moving from the hour array to the minute array
// between Figures 10 and 11. A timer migrates at most m-1 times, which is the
// c(7)*m bound of the paper's Scheme 6 vs Scheme 7 cost comparison. (Selecting the
// lowest *sufficient* level instead would halve migrations for boundary-crossing
// short timers, but it is not what the paper describes; see DESIGN.md.)
//
// Where the paper keeps "a 60 second timer ... used to update the minute array",
// this implementation advances the minute/hour/day cursors directly whenever
// now mod g_L == 0. The two formulations do identical work at identical ticks; ours
// just does not thread the maintenance timers through the client-visible arrays.
//
// MigrationPolicy implements the precision trade-offs of Section 6.2:
//  * kFull        — migrate level by level; expiry is exact (default).
//  * kNone        — Wick Nichols' suggestion: each timer gets a mode by magnitude
//                   (the coarsest level whose unit fits in the interval) and fires
//                   at the slot visit nearest its exact expiry, with no migration;
//                   the error is at most half that granularity — the paper's "loss
//                   in precision of up to 50%".
//  * kSingleStep  — "improve the precision by allowing just one migration between
//                   adjacent lists": one hop to level L-1, then expire at that
//                   level's visit; error bounded by g_{L-1}.

#ifndef TWHEEL_SRC_CORE_HIERARCHICAL_WHEEL_H_
#define TWHEEL_SRC_CORE_HIERARCHICAL_WHEEL_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

enum class MigrationPolicy : std::uint8_t {
  kFull,
  kNone,
  kSingleStep,
};

struct HierarchicalWheelOptions {
  OverflowPolicy overflow = OverflowPolicy::kReject;
  MigrationPolicy migration = MigrationPolicy::kFull;
  std::size_t max_timers = 0;
  // Slop-bits reduced precision (src/core/slop.h, after ponyc): effective
  // intervals round UP to multiples of 2^slop_bits before range validation and
  // placement, so a timer fires late by < 2^slop_bits ticks but never early.
  // Coarse grains reduce deadline diversity — fewer level boundaries crossed,
  // fewer migrations — the precision-for-throughput knob of Section 6.2's
  // migration policies, but with a differential-checkable exact bound.
  // Orthogonal to MigrationPolicy (quantization happens before placement).
  std::uint32_t slop_bits = 0;
};

class HierarchicalWheel final : public TimerServiceBase {
 public:
  // `level_sizes` lists slot counts from finest (granularity 1 tick) to coarsest,
  // e.g. {60, 60, 24, 100} for the paper's second/minute/hour/day example. Between
  // 2 and 8 levels, each of size >= 2.
  HierarchicalWheel(std::span<const std::size_t> level_sizes,
                    HierarchicalWheelOptions options = {});

  ~HierarchicalWheel() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place reschedule: O(1) unlink from the current (level, slot), then the
  // O(m) digit-rule re-file, with both occupancy bitmaps maintained and the
  // migration allowance reset. kIntervalOutOfRange leaves the old deadline.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // kFull: exact — earliest absolute expiry among residents (bitmap-confined O(n)
  // scan). kNone: exact — the earliest occupied-slot visit fires everything in
  // that slot. kSingleStep: a conservative lower bound (the earliest occupied
  // visit may migrate rather than fire); never later than the true next expiry,
  // which is what jump-drivers need.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme7-hierarchical"; }

  std::size_t num_levels() const { return levels_.size(); }
  std::uint32_t slop_bits() const { return slop_bits_; }
  Duration granularity(std::size_t level) const { return levels_[level].granularity; }
  // Longest startable interval. One coarsest-granularity unit is reserved: when the
  // current time sits just before a top-level unit boundary, an interval above
  // span - g_top could need a slot a full top-level revolution away.
  Duration max_interval() const { return span_ - levels_.back().granularity; }

  // Diagnostics: total records currently filed at `level` (O(slots + records)).
  std::size_t LevelPopulationSlow(std::size_t level) const;

  // Fixed: the sum of the level arrays plus one occupancy bitmap per level —
  // "instead of 100 * 24 * 60 * 60 = 8.64 million locations ... we need only
  // 100 + 24 + 60 + 60 = 244 locations". Per record: links (16) + expiry (8) +
  // cookie (8) + level byte (padded to 8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    for (const Level& level : levels_) {
      profile.fixed_bytes += level.size * sizeof(IntrusiveList<TimerRecord>) +
                             OccupancyBitmap::BytesFor(level.size);
    }
    profile.essential_record_bytes = 40;
    return profile;
  }

 private:
  struct Level {
    std::size_t size = 0;
    Duration granularity = 0;
    // Power-of-two fast path for the digit arithmetic on the start/restart and
    // advance hot paths: the common configurations use power-of-two level
    // sizes, making every granularity (a product of finer sizes) a power of
    // two as well, so unit extraction and slot reduction become a shift and a
    // mask instead of two 64-bit divisions. unit_shift is meaningful only when
    // pow2_granularity, slot_mask only when pow2_size; odd-sized hierarchies
    // (60/60/24/100) keep the division path.
    std::uint8_t unit_shift = 0;
    bool pow2_granularity = false;
    std::uint64_t slot_mask = 0;
    bool pow2_size = false;
    std::vector<IntrusiveList<TimerRecord>> slots;
    OccupancyBitmap occupancy{1};  // re-sized in the constructor

    // The level-L unit digit of an absolute tick (t / granularity).
    std::uint64_t UnitOf(Tick t) const {
      return pow2_granularity ? t >> unit_shift : t / granularity;
    }
    // t mod granularity: zero exactly at this level's cursor-advance ticks.
    Tick OffsetInUnit(Tick t) const {
      return pow2_granularity ? (t & (granularity - 1)) : t % granularity;
    }
    // unit mod size: the slot a unit digit files into.
    std::size_t SlotOf(std::uint64_t unit) const {
      return static_cast<std::size_t>(pow2_size ? (unit & slot_mask)
                                                : unit % size);
    }
  };

  // Highest level whose unit digit of `expiry` differs from the current time's
  // (the paper's insertion rule). Counts one comparison per level examined.
  std::size_t FindLevel(Tick expiry);
  // File `rec` (expiry already fixed) at FindLevel(expiry).
  void Insert(TimerRecord* rec);
  // MigrationPolicy::kNone placement: magnitude-selected level, nearest slot visit.
  void InsertNoMigration(TimerRecord* rec);
  // File `rec` into `slot_index` of `level`, maintaining the occupancy bit.
  void FileAt(std::size_t level, std::size_t slot_index, TimerRecord* rec);
  // Process one visited slot at `level`; returns expiries dispatched.
  std::size_t VisitSlot(std::size_t level, std::size_t slot_index);
  // The visits the per-tick loop performs at the current (already advanced) tick:
  // level 0, then each coarser level whose granularity divides now.
  std::size_t RunVisitsAtNow();
  // Earliest future tick at which any level's cursor visits an occupied slot.
  // Every visit between now and that tick would only probe empty slots. Sound
  // because a level's current-unit slot was fully drained when its unit began, so
  // every record filed at level L sits d units ahead of the current unit with
  // d in [1, size_L] (d == size_L for a slot one full revolution out, which is
  // exactly NextSetDistance's distance-size convention), and its visit tick is
  // (unit + d) * granularity_L.
  std::optional<Tick> NextOccupiedVisitTick() const;
  // Shared body of AdvanceTo / FastForward; `count_ticks` is false for
  // FastForward ("the hardware intercepts all clock ticks").
  std::size_t BatchAdvance(Tick target, bool count_ticks);

  std::vector<Level> levels_;
  Duration span_ = 1;  // product of level sizes
  OverflowPolicy overflow_;
  MigrationPolicy migration_;
  std::uint32_t slop_bits_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_HIERARCHICAL_WHEEL_H_
