#include "src/core/hierarchical_wheel.h"

#include <bit>

#include "src/base/assert.h"
#include "src/core/slop.h"

namespace twheel {

HierarchicalWheel::HierarchicalWheel(std::span<const std::size_t> level_sizes,
                                     HierarchicalWheelOptions options)
    : TimerServiceBase(options.max_timers),
      overflow_(options.overflow),
      migration_(options.migration),
      slop_bits_(options.slop_bits) {
  TWHEEL_ASSERT_MSG(level_sizes.size() >= 2 && level_sizes.size() <= 8,
                    "hierarchy needs 2..8 levels");
  levels_.reserve(level_sizes.size());
  for (std::size_t size : level_sizes) {
    TWHEEL_ASSERT_MSG(size >= 2, "each level needs at least two slots");
    Level level;
    level.size = size;
    level.granularity = span_;
    if (std::has_single_bit(static_cast<std::uint64_t>(span_))) {
      level.pow2_granularity = true;
      level.unit_shift = static_cast<std::uint8_t>(
          std::countr_zero(static_cast<std::uint64_t>(span_)));
    }
    if (std::has_single_bit(static_cast<std::uint64_t>(size))) {
      level.pow2_size = true;
      level.slot_mask = static_cast<std::uint64_t>(size) - 1;
    }
    level.slots = std::vector<IntrusiveList<TimerRecord>>(size);
    level.occupancy = OccupancyBitmap(size);
    TWHEEL_ASSERT_MSG(span_ <= ~Duration{0} / size, "hierarchy span overflows 64 bits");
    span_ *= size;
    levels_.push_back(std::move(level));
  }
}

HierarchicalWheel::~HierarchicalWheel() {
  for (Level& level : levels_) {
    for (auto& slot : level.slots) {
      while (TimerRecord* rec = slot.front()) {
        rec->Unlink();
        ReleaseRecord(rec);
      }
    }
  }
}

StartResult HierarchicalWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  interval = QuantizeIntervalUp(interval, slop_bits_);
  if (interval > max_interval()) {
    if (overflow_ == OverflowPolicy::kReject) {
      return TimerError::kIntervalOutOfRange;
    }
    interval = max_interval();
  }

  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  rec->migrations_done = 0;
  if (migration_ == MigrationPolicy::kNone) {
    InsertNoMigration(rec);
  } else {
    Insert(rec);
  }
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HierarchicalWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  Level& lv = levels_[rec->level];
  if (lv.slots[rec->home_slot].empty()) {
    lv.occupancy.Clear(rec->home_slot);
  }
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError HierarchicalWheel::RestartTimer(TimerHandle handle,
                                           Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  new_interval = QuantizeIntervalUp(new_interval, slop_bits_);
  if (new_interval > max_interval()) {
    if (overflow_ == OverflowPolicy::kReject) {
      return TimerError::kIntervalOutOfRange;
    }
    new_interval = max_interval();
  }
  rec->Unlink();
  Level& old_level = levels_[rec->level];
  if (old_level.slots[rec->home_slot].empty()) {
    old_level.occupancy.Clear(rec->home_slot);
  }
  StampRestart(rec, new_interval);
  // A restarted timer is a fresh placement: the digit rule (or no-migration
  // rounding) runs against the current time, and its migration allowance
  // resets with it.
  rec->migrations_done = 0;
  if (migration_ == MigrationPolicy::kNone) {
    InsertNoMigration(rec);
  } else {
    Insert(rec);
  }
  return TimerError::kOk;
}

std::size_t HierarchicalWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  return RunVisitsAtNow();
}

std::size_t HierarchicalWheel::RunVisitsAtNow() {
  std::size_t expired = VisitSlot(0, levels_[0].SlotOf(now_));
  // Advance the coarser arrays whenever a full revolution of the next-finer one
  // completes — the work the paper's built-in "60 second timer" does. Granularities
  // divide each other, so the first misaligned level ends the cascade.
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    const Level& lv = levels_[level];
    if (lv.OffsetInUnit(now_) != 0) {
      break;
    }
    expired += VisitSlot(level, lv.SlotOf(lv.UnitOf(now_)));
  }
  return expired;
}

std::size_t HierarchicalWheel::FindLevel(Tick expiry) {
  // "Depending on the algorithm, we may need O(m) time ... to find the right table
  // to insert the timer": the paper's digit rule — the highest level whose unit
  // number for the expiry differs from the current time's. Expiry > now guarantees
  // at least the level-0 digit differs. The range check in StartTimer guarantees the
  // chosen slot is less than one revolution away: at the highest differing level all
  // coarser digits agree, confining expiry and now to one unit of the level above.
  for (std::size_t level = levels_.size(); level-- > 1;) {
    ++counts_.comparisons;
    const Level& lv = levels_[level];
    if (lv.UnitOf(expiry) != lv.UnitOf(now_)) {
      return level;
    }
  }
  ++counts_.comparisons;
  return 0;
}

void HierarchicalWheel::FileAt(std::size_t level, std::size_t slot_index,
                               TimerRecord* rec) {
  rec->level = static_cast<std::uint8_t>(level);
  rec->home_slot = static_cast<std::uint32_t>(slot_index);
  levels_[level].slots[slot_index].PushBack(rec);
  levels_[level].occupancy.Set(slot_index);
}

void HierarchicalWheel::Insert(TimerRecord* rec) {
  const std::size_t level = FindLevel(rec->expiry_tick);
  const Level& lv = levels_[level];
  FileAt(level, lv.SlotOf(lv.UnitOf(rec->expiry_tick)), rec);
}

void HierarchicalWheel::InsertNoMigration(TimerRecord* rec) {
  // Wick Nichols' no-migration mode gives each timer a *mode* by magnitude
  // ("different timer modes, one for hour timers, one for minute timers"): the
  // coarsest level whose unit fits inside the interval. The timer fires at the slot
  // visit nearest its exact expiry — "round off to the nearest hour and only set the
  // timer in hours" — so the error is at most half that level's granularity, the
  // paper's "loss in precision of up to 50%". If rounding would land beyond one
  // revolution (interval within half a unit of the level's full span, from an
  // unaligned now), the timer escalates one level, where the same rounding argument
  // applies with granularity still close to the interval.
  std::size_t level = 0;
  while (level + 1 < levels_.size() &&
         levels_[level + 1].granularity <= rec->interval) {
    ++counts_.comparisons;
    ++level;
  }
  for (; level < levels_.size(); ++level) {
    const Level& lv = levels_[level];
    ++counts_.comparisons;
    const std::uint64_t target_unit =
        lv.UnitOf(rec->expiry_tick + lv.granularity / 2);
    const std::uint64_t distance = target_unit - lv.UnitOf(now_);
    if (distance >= 1 && distance <= lv.size) {
      FileAt(level, lv.SlotOf(target_unit), rec);
      return;
    }
  }
  TWHEEL_ASSERT_MSG(false, "no-migration insert failed despite range check");
}

std::size_t HierarchicalWheel::VisitSlot(std::size_t level, std::size_t slot_index) {
  IntrusiveList<TimerRecord>& slot = levels_[level].slots[slot_index];
  if (slot.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  // Splice the slot out and drain via its head: every resident leaves (expires or
  // migrates), and expiry handlers may stop not-yet-visited siblings (unlinking
  // them from the pending list) or start new timers (which can never target the
  // slot being visited — the digit rule files a same-residue expiry at a coarser
  // level) without invalidating the walk.
  levels_[level].occupancy.Clear(slot_index);
  std::size_t expired = 0;
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(slot);
  while (TimerRecord* rec = pending.front()) {
    ++counts_.decrement_visits;

    const Duration remaining = rec->expiry_tick - now_;  // 0 when due exactly now
    bool expire_now = false;
    switch (migration_) {
      case MigrationPolicy::kFull:
        expire_now = (remaining == 0);
        break;
      case MigrationPolicy::kNone:
        // Fire at the slot visit; the interval was rounded at start time.
        expire_now = true;
        break;
      case MigrationPolicy::kSingleStep:
        // One hop to the adjacent finer level, then fire at that level's visit.
        expire_now = (remaining == 0) || level == 0 || rec->migrations_done >= 1 ||
                     remaining < levels_[level - 1].granularity;
        break;
    }

    if (expire_now) {
      if (migration_ == MigrationPolicy::kFull) {
        TWHEEL_ASSERT(rec->expiry_tick == now_);
      }
      // Non-final periodic fire: RestartTimer unlinks from `pending`, re-runs
      // the digit rule (or no-migration rounding) against the current time, and
      // refiles — never back into the slot being visited.
      if (TryFirePeriodic(rec)) {
        ++expired;
        continue;
      }
      rec->Unlink();
      Expire(rec);
      ++expired;
    } else if (migration_ == MigrationPolicy::kSingleStep) {
      rec->Unlink();
      ++counts_.migrations;
      ++rec->migrations_done;
      const Level& below = levels_[level - 1];
      FileAt(level - 1, below.SlotOf(below.UnitOf(rec->expiry_tick)), rec);
    } else {
      // Full migration: re-file by expiry; lands at a strictly finer level because
      // this level's unit boundary has been reached.
      rec->Unlink();
      ++counts_.migrations;
      ++rec->migrations_done;
      Insert(rec);
    }
  }
  return expired;
}

std::optional<Tick> HierarchicalWheel::NextOccupiedVisitTick() const {
  std::optional<Tick> best;
  for (const Level& lv : levels_) {
    const std::uint64_t unit = lv.UnitOf(now_);
    const std::optional<std::size_t> dist =
        lv.occupancy.NextSetDistance(lv.SlotOf(unit));
    if (dist.has_value()) {
      const Tick visit = (unit + *dist) * lv.granularity;
      if (!best.has_value() || visit < *best) {
        best = visit;
      }
    }
  }
  return best;
}

std::size_t HierarchicalWheel::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  return BatchAdvance(target, /*count_ticks=*/true);
}

std::size_t HierarchicalWheel::BatchAdvance(Tick target, bool count_ticks) {
  std::size_t expired = 0;
  while (now_ < target) {
    const std::optional<Tick> next = NextOccupiedVisitTick();
    const Tick stop = (next.has_value() && *next < target) ? *next : target;
    // Credit the slot probes the per-tick loop would have made on (now, stop) —
    // and at `stop` itself when nothing is visited there — one per level whose
    // cursor moves, all provably landing on empty slots.
    const Tick probe_limit = (next.has_value() && *next == stop) ? stop - 1 : stop;
    for (const Level& lv : levels_) {
      counts_.slots_skipped += lv.UnitOf(probe_limit) - lv.UnitOf(now_);
    }
    if (count_ticks) {
      counts_.ticks += stop - now_;
    }
    now_ = stop;
    if (next.has_value() && *next == stop) {
      expired += RunVisitsAtNow();
    }
  }
  return expired;
}

std::optional<Tick> HierarchicalWheel::NextExpiryHint() const {
  if (migration_ == MigrationPolicy::kFull) {
    // Exact: visits only migrate until the expiry's own tick, so the earliest
    // outstanding absolute expiry is the answer; the bitmap confines the scan to
    // occupied slots.
    std::optional<Tick> best;
    for (const Level& lv : levels_) {
      lv.occupancy.ForEachSet([&](std::size_t slot_index) {
        const IntrusiveList<TimerRecord>& slot = lv.slots[slot_index];
        for (const TimerRecord* rec = slot.front(); rec != nullptr;
             rec = slot.Next(rec)) {
          if (!best.has_value() || rec->expiry_tick < *best) {
            best = rec->expiry_tick;
          }
        }
      });
    }
    return best;
  }
  // kNone fires whole slots at their visit, so the earliest occupied visit is
  // exact; kSingleStep may migrate at that visit instead, making this a
  // conservative (never-late) lower bound — see the header contract.
  return NextOccupiedVisitTick();
}

bool HierarchicalWheel::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  // Unlike the flat wheels, dead time may still contain visits that *migrate*
  // records downward (kFull); the batch walk performs them but, per the
  // precondition, can never dispatch an expiry.
  const std::size_t fired = BatchAdvance(target, /*count_ticks=*/false);
  TWHEEL_ASSERT_MSG(fired == 0, "FastForward dispatched an expiry");
  return true;
}

std::size_t HierarchicalWheel::LevelPopulationSlow(std::size_t level) const {
  std::size_t total = 0;
  for (const auto& slot : levels_[level].slots) {
    total += slot.CountSlow();
  }
  return total;
}

}  // namespace twheel
