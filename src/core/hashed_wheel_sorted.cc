#include "src/core/hashed_wheel_sorted.h"

#include "src/base/assert.h"

namespace twheel {

HashedWheelSorted::HashedWheelSorted(std::size_t table_size, std::size_t max_timers)
    : TimerServiceBase(max_timers), shift_(Log2Floor(table_size)), slots_(table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(table_size) && table_size >= 2,
                    "table size must be a power of two >= 2");
}

HashedWheelSorted::~HashedWheelSorted() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult HashedWheelSorted::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  // Low-order bits pick the slot; high-order bits (the revolution on which the
  // timer is due) go into the bucket, kept sorted as in Scheme 2.
  std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = rec->expiry_tick >> shift_;

  IntrusiveList<TimerRecord>& bucket = slots_[slot_index];
  TimerRecord* cur = bucket.front();
  while (cur != nullptr) {
    ++counts_.comparisons;
    if (cur->rounds > rec->rounds || (cur->rounds == rec->rounds && cur->seq > rec->seq)) {
      break;
    }
    cur = bucket.Next(cur);
  }
  if (cur == nullptr) {
    bucket.PushBack(rec);
  } else {
    bucket.InsertBefore(rec, cur);
  }
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HashedWheelSorted::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t HashedWheelSorted::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  IntrusiveList<TimerRecord>& bucket = slots_[now_ & mask()];
  if (bucket.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  const std::uint64_t revolution = now_ >> shift_;
  std::size_t expired = 0;
  // Sorted bucket: only the head needs examining; expire while it is due on this
  // revolution (its expiry tick is then exactly now).
  while (TimerRecord* head = bucket.front()) {
    ++counts_.comparisons;
    if (head->rounds != revolution) {
      break;
    }
    TWHEEL_ASSERT(head->expiry_tick == now_);
    head->Unlink();
    Expire(head);
    ++expired;
  }
  return expired;
}

}  // namespace twheel
