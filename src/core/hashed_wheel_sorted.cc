#include "src/core/hashed_wheel_sorted.h"

#include "src/base/assert.h"

namespace twheel {

HashedWheelSorted::HashedWheelSorted(std::size_t table_size, std::size_t max_timers)
    : TimerServiceBase(max_timers),
      shift_(Log2Floor(table_size)),
      slots_(table_size),
      occupancy_(table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(table_size) && table_size >= 2,
                    "table size must be a power of two >= 2");
}

HashedWheelSorted::~HashedWheelSorted() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult HashedWheelSorted::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  // Low-order bits pick the slot; high-order bits (the revolution on which the
  // timer is due) go into the bucket, kept sorted as in Scheme 2.
  std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = rec->expiry_tick >> shift_;
  rec->home_slot = static_cast<std::uint32_t>(slot_index);

  IntrusiveList<TimerRecord>& bucket = slots_[slot_index];
  TimerRecord* cur = bucket.front();
  while (cur != nullptr) {
    ++counts_.comparisons;
    if (cur->rounds > rec->rounds || (cur->rounds == rec->rounds && cur->seq > rec->seq)) {
      break;
    }
    cur = bucket.Next(cur);
  }
  if (cur == nullptr) {
    bucket.PushBack(rec);
  } else {
    bucket.InsertBefore(rec, cur);
  }
  occupancy_.Set(slot_index);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HashedWheelSorted::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError HashedWheelSorted::RestartTimer(TimerHandle handle,
                                           Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  StampRestart(rec, new_interval);
  // Re-file exactly as StartTimer would, keyed by the fresh absolute expiry.
  // The record keeps its original seq, so among same-revolution entries it
  // re-enters the bucket at its start-order position — the same canonical FIFO
  // the oracle reproduces.
  const std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = rec->expiry_tick >> shift_;
  rec->home_slot = static_cast<std::uint32_t>(slot_index);
  IntrusiveList<TimerRecord>& bucket = slots_[slot_index];
  TimerRecord* cur = bucket.front();
  while (cur != nullptr) {
    ++counts_.comparisons;
    if (cur->rounds > rec->rounds ||
        (cur->rounds == rec->rounds && cur->seq > rec->seq)) {
      break;
    }
    cur = bucket.Next(cur);
  }
  if (cur == nullptr) {
    bucket.PushBack(rec);
  } else {
    bucket.InsertBefore(rec, cur);
  }
  occupancy_.Set(slot_index);
  return TimerError::kOk;
}

std::size_t HashedWheelSorted::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  return VisitCursorBucket();
}

std::size_t HashedWheelSorted::VisitCursorBucket() {
  const std::size_t index = now_ & mask();
  IntrusiveList<TimerRecord>& bucket = slots_[index];
  if (bucket.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  const std::uint64_t revolution = now_ >> shift_;
  std::size_t expired = 0;
  // Sorted bucket: only the head needs examining; expire while it is due on this
  // revolution (its expiry tick is then exactly now). A re-arm from a handler can
  // only insert for a later revolution (intervals that are multiples of TableSize
  // land back here with rounds > revolution), so the head loop terminates.
  while (TimerRecord* head = bucket.front()) {
    ++counts_.comparisons;
    if (head->rounds != revolution) {
      break;
    }
    TWHEEL_ASSERT(head->expiry_tick == now_);
    // Non-final periodic fire: the sorted refile moves the head to a later
    // expiry (same-bucket periods land at rounds > revolution), so the head
    // loop still terminates.
    if (TryFirePeriodic(head)) {
      ++expired;
      continue;
    }
    head->Unlink();
    Expire(head);
    ++expired;
  }
  if (bucket.empty()) {
    occupancy_.Clear(index);
  }
  return expired;
}

std::size_t HashedWheelSorted::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  std::size_t expired = 0;
  while (now_ < target) {
    const Duration remaining = target - now_;
    // Jump to the next occupied bucket. Unlike Scheme 6 there is no per-visit
    // mutation: a stop there is one head comparison (possibly finding the head due
    // on a later revolution) — still far cheaper than probing every empty slot.
    const std::optional<std::size_t> dist =
        occupancy_.NextSetDistance(now_ & mask());
    if (!dist.has_value() || *dist > remaining) {
      counts_.ticks += remaining;
      counts_.slots_skipped += remaining;
      now_ = target;
      break;
    }
    counts_.ticks += *dist;
    counts_.slots_skipped += *dist - 1;
    now_ += *dist;
    expired += VisitCursorBucket();
  }
  return expired;
}

std::optional<Tick> HashedWheelSorted::NextExpiryHint() const {
  std::optional<Tick> best;
  occupancy_.ForEachSet([&](std::size_t index) {
    const TimerRecord* head = slots_[index].front();
    TWHEEL_ASSERT_MSG(head != nullptr, "occupancy bit set on an empty bucket");
    if (!best.has_value() || head->expiry_tick < *best) {
      best = head->expiry_tick;
    }
  });
  return best;
}

bool HashedWheelSorted::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  // Bucket order is keyed by absolute revolution numbers, so a pure clock jump
  // needs no per-revolution maintenance (the cursor is now & mask).
  counts_.slots_skipped += target - now_;
  now_ = target;
  return true;
}

}  // namespace twheel
