#include "src/core/hashed_wheel_unsorted.h"

#include "src/base/assert.h"

namespace twheel {

HashedWheelUnsorted::HashedWheelUnsorted(std::size_t table_size, std::size_t max_timers)
    : TimerServiceBase(max_timers), shift_(Log2Floor(table_size)), slots_(table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(table_size) && table_size >= 2,
                    "table size must be a power of two >= 2");
}

HashedWheelUnsorted::~HashedWheelUnsorted() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult HashedWheelUnsorted::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  // Slot = low-order bits of the absolute expiry (equivalently, current time pointer
  // plus the interval's remainder mod TableSize). Rounds = full revolutions the
  // cursor must still make before the expiry visit: the cursor reaches this slot for
  // the first time within the next TableSize ticks, then once per revolution, so a
  // timer of interval I waits (I - 1) / TableSize *additional* visits.
  std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = (interval - 1) >> shift_;
  slots_[slot_index].PushBack(rec);  // unsorted: O(1) worst-case START_TIMER
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HashedWheelUnsorted::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t HashedWheelUnsorted::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  IntrusiveList<TimerRecord>& bucket = slots_[now_ & mask()];
  if (bucket.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  // "We must decrement the high order bits for every element in the [bucket],
  // exactly as in Scheme 1." The bucket is spliced out and walked via its head so
  // that expiry handlers may freely re-arm timers (a re-arm whose interval is a
  // multiple of TableSize lands back in *this* bucket and must wait a revolution,
  // not be visited now) and may stop any not-yet-visited sibling (which unlinks it
  // from the pending list without invalidating the walk).
  std::size_t expired = 0;
  IntrusiveList<TimerRecord> pending;
  pending.SpliceBack(bucket);
  while (TimerRecord* rec = pending.front()) {
    rec->Unlink();
    ++counts_.decrement_visits;
    if (rec->rounds == 0) {
      TWHEEL_ASSERT(rec->expiry_tick == now_);
      Expire(rec);
      ++expired;
    } else {
      --rec->rounds;
      bucket.PushBack(rec);
    }
  }
  return expired;
}

}  // namespace twheel
