#include "src/core/hashed_wheel_unsorted.h"

#include "src/base/assert.h"

namespace twheel {

HashedWheelUnsorted::HashedWheelUnsorted(std::size_t table_size, std::size_t max_timers)
    : TimerServiceBase(max_timers),
      shift_(Log2Floor(table_size)),
      slots_(table_size),
      occupancy_(table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(table_size) && table_size >= 2,
                    "table size must be a power of two >= 2");
}

HashedWheelUnsorted::~HashedWheelUnsorted() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult HashedWheelUnsorted::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  // Slot = low-order bits of the absolute expiry (equivalently, current time pointer
  // plus the interval's remainder mod TableSize). Rounds = full revolutions the
  // cursor must still make before the expiry visit: the cursor reaches this slot for
  // the first time within the next TableSize ticks, then once per revolution, so a
  // timer of interval I waits (I - 1) / TableSize *additional* visits.
  std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = (interval - 1) >> shift_;
  rec->home_slot = static_cast<std::uint32_t>(slot_index);
  slots_[slot_index].PushBack(rec);  // unsorted: O(1) worst-case START_TIMER
  occupancy_.Set(slot_index);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HashedWheelUnsorted::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError HashedWheelUnsorted::RestartTimer(TimerHandle handle,
                                             Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  StampRestart(rec, new_interval);
  // Same placement arithmetic as StartTimer, relative to the current cursor. A
  // restart from inside an expiry handler whose new interval is a multiple of
  // TableSize relinks into the bucket being swept — safe, because the sweep
  // walks the spliced-out pending list, so the next visit is a revolution away,
  // which is exactly what rounds = (I - 1) >> shift counts on.
  const std::uint64_t slot_index = rec->expiry_tick & mask();
  rec->rounds = (new_interval - 1) >> shift_;
  rec->home_slot = static_cast<std::uint32_t>(slot_index);
  slots_[slot_index].PushBack(rec);
  occupancy_.Set(slot_index);
  return TimerError::kOk;
}

std::size_t HashedWheelUnsorted::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  return VisitCursorBucket();
}

std::size_t HashedWheelUnsorted::VisitCursorBucket() {
  const std::size_t index = now_ & mask();
  IntrusiveList<TimerRecord>& bucket = slots_[index];
  if (bucket.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  // "We must decrement the high order bits for every element in the [bucket],
  // exactly as in Scheme 1." The bucket is spliced out and walked via its head so
  // that expiry handlers may freely re-arm timers (a re-arm whose interval is a
  // multiple of TableSize lands back in *this* bucket and must wait a revolution,
  // not be visited now) and may stop any not-yet-visited sibling (which unlinks it
  // from the pending list without invalidating the walk).
  occupancy_.Clear(index);
  std::size_t expired = 0;
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(bucket);
  while (TimerRecord* rec = pending.front()) {
    ++counts_.decrement_visits;
    if (rec->rounds == 0) {
      TWHEEL_ASSERT(rec->expiry_tick == now_);
      // Non-final periodic fire: RestartTimer relinks the still-linked record
      // (a period that is a multiple of TableSize lands back in `bucket`, a
      // revolution away — never in `pending`), then the handler runs.
      if (TryFirePeriodic(rec)) {
        ++expired;
        continue;
      }
      rec->Unlink();
      Expire(rec);
      ++expired;
    } else {
      rec->Unlink();
      --rec->rounds;
      bucket.PushBack(rec);
      occupancy_.Set(index);
    }
  }
  return expired;
}

std::size_t HashedWheelUnsorted::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  return BatchAdvance(target, /*count_ticks=*/true);
}

std::size_t HashedWheelUnsorted::BatchAdvance(Tick target, bool count_ticks) {
  std::size_t expired = 0;
  while (now_ < target) {
    const Duration remaining = target - now_;
    // Next occupied bucket ahead of the cursor; distance table_size() means the
    // cursor's own bucket, one full revolution away. Every occupied bucket must be
    // visited (rounds decrement), so the jump stops there even if nothing is due.
    const std::optional<std::size_t> dist =
        occupancy_.NextSetDistance(now_ & mask());
    if (!dist.has_value() || *dist > remaining) {
      if (count_ticks) {
        counts_.ticks += remaining;
      }
      counts_.slots_skipped += remaining;
      now_ = target;
      break;
    }
    if (count_ticks) {
      counts_.ticks += *dist;
    }
    counts_.slots_skipped += *dist - 1;
    now_ += *dist;
    expired += VisitCursorBucket();
  }
  return expired;
}

std::optional<Tick> HashedWheelUnsorted::NextExpiryHint() const {
  std::optional<Tick> best;
  occupancy_.ForEachSet([&](std::size_t index) {
    for (const TimerRecord* rec = slots_[index].front(); rec != nullptr;
         rec = slots_[index].Next(rec)) {
      if (!best.has_value() || rec->expiry_tick < *best) {
        best = rec->expiry_tick;
      }
    }
  });
  return best;
}

bool HashedWheelUnsorted::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  // Unlike the pure cursor jump of BasicWheel, revolution counts must still be
  // maintained: the walk visits occupied buckets it crosses (decrementing rounds)
  // but, per the precondition, can never dispatch an expiry.
  const std::size_t fired = BatchAdvance(target, /*count_ticks=*/false);
  TWHEEL_ASSERT_MSG(fired == 0, "FastForward dispatched an expiry");
  return true;
}

}  // namespace twheel
