// Scheme 4 — the basic timing wheel for bounded intervals (Section 5, Figure 8).
//
// "The current time is represented by a pointer to an element in a circular buffer
// with dimensions [0, MaxInterval - 1]. To set a timer at j units past current time,
// we index into Element (i + j mod MaxInterval), and put the timer at the head of a
// list of timers that will expire at a time = CurrentTime + j units."
//
// Because the wheel turns one slot per tick (unlike the logic-simulation wheels of
// Section 4.2, which rotate only once per MaxInterval or MaxInterval/2 units), every
// timer with interval < MaxInterval lands in the array — there is no overflow list.
// START_TIMER, STOP_TIMER and PER_TICK_BOOKKEEPING are all O(1); the per-tick cost
// of stepping through an empty slot is absorbed by the entity that must increment
// the clock anyway (the paper's key observation about bucket sorts vs timers).
//
// Intervals >= MaxInterval are outside the scheme's contract; OverflowPolicy selects
// between rejecting them (the paper's "guarantee that all timers are set for periods
// less than MaxInterval") and clamping to MaxInterval - 1 (useful when the caller
// tolerates early expiry, e.g. coarse failure detectors).
//
// One deliberate deviation: timers are appended to the *tail* of a slot's list, not
// its head. Both are O(1); FIFO order among timers due at the same tick gives every
// scheme in the library the same canonical expiry order, which the differential
// tests rely on.
//
// An occupancy bitmap (base/bitmap.h) mirrors slot emptiness so AdvanceTo can jump
// the cursor straight to the next populated slot. Because intervals are < wheel
// size, the bitmap distance from the cursor is exactly the distance to the next
// expiry, which also makes NextExpiryHint / FastForward exact for this scheme.

#ifndef TWHEEL_SRC_CORE_BASIC_WHEEL_H_
#define TWHEEL_SRC_CORE_BASIC_WHEEL_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

class BasicWheel final : public TimerServiceBase {
 public:
  // `max_interval` is the wheel size: the longest startable timer is
  // max_interval - 1 ticks.
  explicit BasicWheel(std::size_t max_interval,
                      OverflowPolicy policy = OverflowPolicy::kReject,
                      std::size_t max_timers = 0);

  ~BasicWheel() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(1) in-place reschedule: unlink from the current slot, relink at
  // cursor + new_interval, maintaining both slots' occupancy bits. The handle
  // stays valid; on kIntervalOutOfRange the timer keeps its old deadline.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // Exact: cursor-to-next-set-bit distance (intervals < wheel size, so the slot
  // under the cursor is never occupied outside a drain).
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme4-basic-wheel"; }

  std::size_t max_interval() const { return slots_.size(); }
  std::size_t cursor() const { return cursor_; }

  // Fixed: one list head per slot plus the occupancy bitmap — the memory-for-speed
  // trade of a bucket sort ("it is difficult to justify 2^32 words of memory to
  // implement 32 bit timers"). Per record: links (16) + expiry (8) + cookie (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes = slots_.size() * sizeof(IntrusiveList<TimerRecord>) +
                          OccupancyBitmap::BytesFor(slots_.size());
    profile.essential_record_bytes = 32;
    return profile;
  }

 private:
  // Expire everything in the slot under the cursor. The whole slot is spliced into
  // a local batch first, so handlers that re-arm timers never race the walk.
  std::size_t DrainCursorSlot();

  OverflowPolicy policy_;
  std::vector<IntrusiveList<TimerRecord>> slots_;
  OccupancyBitmap occupancy_;
  std::size_t cursor_ = 0;  // the paper's "current time pointer"
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_BASIC_WHEEL_H_
