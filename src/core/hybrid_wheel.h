// The Section 5 hybrid: a bounded timing wheel with an ordered-list annex.
//
// "Still memory is finite: it is difficult to justify 2^32 words of memory to
// implement 32 bit timers. One solution is to implement timers within some range
// using this scheme and the allowed memory. Timers greater than this value are
// implemented using, say, Scheme 2."
//
// Intervals below the wheel size get Scheme 4's O(1) everything; longer intervals
// go to a Scheme 2 ordered list keyed by absolute expiry. PER_TICK_BOOKKEEPING is
// one slot visit plus one head comparison — still O(1) outside expiries. The trade
// is START_TIMER for long timers: O(n_long), acceptable exactly when long timers
// are rare (the common OS profile the paper assumes for this remedy). Long timers
// expire from the list directly; they never migrate into the wheel, so there is no
// periodic drain cost (contrast the TEGAS overflow rescan of Section 4.2).
//
// STOP_TIMER is O(1) for both residences: records unlink intrusively wherever they
// live.

#ifndef TWHEEL_SRC_CORE_HYBRID_WHEEL_H_
#define TWHEEL_SRC_CORE_HYBRID_WHEEL_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

class HybridWheel final : public TimerServiceBase {
 public:
  // Intervals in [1, wheel_size) take the wheel; longer ones take the list.
  explicit HybridWheel(std::size_t wheel_size, std::size_t max_timers = 0);

  ~HybridWheel() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place reschedule across all four residence transitions (wheel<->wheel,
  // wheel<->annex): O(1) unlink, then the same placement decision as
  // StartTimer (O(1) wheel relink or sorted annex insert).
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // Exact: min(wheel's cursor-to-next-set-bit distance, overflow list head). Both
  // sides are exact — the wheel's because intervals there are < wheel size, the
  // annex's because it is ordered by absolute expiry.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme4-2-hybrid"; }

  std::size_t wheel_size() const { return slots_.size(); }
  std::size_t OverflowCountSlow() const { return overflow_.CountSlow(); }

  // Fixed: the wheel's list heads, its occupancy bitmap, and the annex list's
  // head. Per record: links (16) + expiry (8) + cookie (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes =
        (slots_.size() + 1) * sizeof(IntrusiveList<TimerRecord>) +
        OccupancyBitmap::BytesFor(slots_.size());
    profile.essential_record_bytes = 32;
    return profile;
  }

 private:
  // Expire the slot under the cursor (splice-drain, as BasicWheel) and then any
  // due heads of the overflow annex. Returns expiries dispatched.
  std::size_t DrainCursorSlot();
  std::size_t DrainDueOverflow();

  std::vector<IntrusiveList<TimerRecord>> slots_;
  IntrusiveList<TimerRecord> overflow_;  // Scheme 2 list, ascending absolute expiry
  OccupancyBitmap occupancy_;            // wheel slots only; the annex has a head
  std::size_t cursor_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_HYBRID_WHEEL_H_
