// Scheme 5 — hashed timing wheel with sorted per-bucket lists (Section 6.1.1).
//
// For arbitrary 2^B-bit intervals with a table of 2^k slots: the low-order k bits of
// the interval select a slot relative to the current-time pointer (a single AND when
// the table is a power of two, which this implementation requires), and the
// high-order bits — the number of remaining wheel revolutions — are "stored in a
// list pointed to by the index" (Figure 9). Each bucket is maintained exactly like a
// Scheme 2 ordered list, so PER_TICK_BOOKKEEPING only examines the bucket head:
// O(1) unless timers actually expire.
//
// Latencies: START_TIMER averages O(1) when n < TableSize and the hash spreads
// timers evenly, but its worst case is O(n) — the paper's reason for concluding that
// "Scheme 5 depends too much on the hash distribution to be generally useful."
// STOP_TIMER is O(1); "a pleasing observation is that the scheme reduces to Scheme 2
// if the array size is 1" (verified by a differential test with table_size == 1...
// we require >= 2 slots for the wheel to be a wheel, and test the reduction against
// table_size == 2 plus an explicit Scheme 2 run).
//
// Representation note: the paper says the per-tick scan "decrements" the high-order
// bits of the bucket head. Decrementing only the observable head of a sorted bucket
// once per revolution is equivalent to tracking the *absolute* revolution number
// (expiry_tick >> k) and comparing it with the current revolution (now >> k): both
// expire a record on exactly the revolution where its residue reaches zero, and the
// absolute form keeps bucket order immutable after insertion. We store the absolute
// revolution in TimerRecord::rounds; the sort key (rounds, seq) equals sorting by
// (expiry_tick, seq) because all records in a bucket share their low k bits.

#ifndef TWHEEL_SRC_CORE_HASHED_WHEEL_SORTED_H_
#define TWHEEL_SRC_CORE_HASHED_WHEEL_SORTED_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/bits.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

class HashedWheelSorted final : public TimerServiceBase {
 public:
  // `table_size` must be a power of two >= 2 (the paper's AND-instruction hash).
  explicit HashedWheelSorted(std::size_t table_size, std::size_t max_timers = 0);

  ~HashedWheelSorted() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place reschedule: O(1) unlink plus the Scheme 2 sorted re-insert into
  // the new bucket (O(bucket) comparisons), occupancy bits maintained.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // Exact, O(occupied buckets): each occupied bucket's head is its minimum (the
  // Scheme 2 sort order), so the hint is the least head expiry over set bits.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme5-hashed-sorted"; }

  std::size_t table_size() const { return slots_.size(); }

  // Fixed: the hash table's list heads plus the occupancy bitmap. Per record:
  // links (16) + revolution / high-order bits (8) + cookie (8) + expiry (8) + seq
  // for stable order (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes = slots_.size() * sizeof(IntrusiveList<TimerRecord>) +
                          OccupancyBitmap::BytesFor(slots_.size());
    profile.essential_record_bytes = 48;
    return profile;
  }

 private:
  std::uint64_t mask() const { return slots_.size() - 1; }

  // Head-compare drain of the bucket under the current time.
  std::size_t VisitCursorBucket();

  std::uint32_t shift_;  // log2(table_size)
  std::vector<IntrusiveList<TimerRecord>> slots_;
  OccupancyBitmap occupancy_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_HASHED_WHEEL_SORTED_H_
