#include "src/core/hybrid_wheel.h"

#include <algorithm>

#include "src/base/assert.h"

namespace twheel {

HybridWheel::HybridWheel(std::size_t wheel_size, std::size_t max_timers)
    : TimerServiceBase(max_timers), slots_(wheel_size), occupancy_(wheel_size) {
  TWHEEL_ASSERT_MSG(wheel_size >= 2, "wheel needs at least two slots");
}

HybridWheel::~HybridWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
  while (TimerRecord* rec = overflow_.front()) {
    rec->Unlink();
    ReleaseRecord(rec);
  }
}

StartResult HybridWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  if (interval < slots_.size()) {
    const std::size_t index = (cursor_ + interval) % slots_.size();
    rec->home_slot = static_cast<std::uint32_t>(index);
    slots_[index].PushBack(rec);
    occupancy_.Set(index);
  } else {
    // Scheme 2 annex: sorted insert from the front by (expiry, FIFO among equals).
    // Annex residents keep home_slot == kNoIndex; they never enter the wheel.
    TimerRecord* cur = overflow_.front();
    while (cur != nullptr) {
      ++counts_.comparisons;
      if (cur->expiry_tick > rec->expiry_tick) {
        break;
      }
      cur = overflow_.Next(cur);
    }
    if (cur == nullptr) {
      overflow_.PushBack(rec);
    } else {
      overflow_.InsertBefore(rec, cur);
    }
  }
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HybridWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();  // O(1) regardless of residence
  ++counts_.delete_unlink_ops;
  if (rec->home_slot != TimerRecord::kNoIndex && slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError HybridWheel::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();  // O(1) regardless of residence
  if (rec->home_slot != TimerRecord::kNoIndex && slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  StampRestart(rec, new_interval);
  // Residence is re-decided from scratch, so all four transitions
  // (wheel<->wheel, wheel<->annex) fall out of the same two branches
  // StartTimer uses.
  if (new_interval < slots_.size()) {
    const std::size_t index = (cursor_ + new_interval) % slots_.size();
    rec->home_slot = static_cast<std::uint32_t>(index);
    slots_[index].PushBack(rec);
    occupancy_.Set(index);
  } else {
    rec->home_slot = TimerRecord::kNoIndex;
    TimerRecord* cur = overflow_.front();
    while (cur != nullptr) {
      ++counts_.comparisons;
      if (cur->expiry_tick > rec->expiry_tick) {
        break;
      }
      cur = overflow_.Next(cur);
    }
    if (cur == nullptr) {
      overflow_.PushBack(rec);
    } else {
      overflow_.InsertBefore(rec, cur);
    }
  }
  return TimerError::kOk;
}

std::size_t HybridWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  cursor_ = (cursor_ + 1) % slots_.size();
  return DrainCursorSlot() + DrainDueOverflow();
}

std::size_t HybridWheel::DrainCursorSlot() {
  IntrusiveList<TimerRecord>& slot = slots_[cursor_];
  if (slot.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  // As BasicWheel: wheel intervals are < wheel size, so everything here is due
  // exactly now; splice the whole slot out in O(1) before dispatching.
  occupancy_.Clear(cursor_);
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(slot);
  std::size_t expired = 0;
  while (TimerRecord* rec = pending.front()) {
    TWHEEL_ASSERT(rec->expiry_tick == now_);
    // Non-final periodic fires relink in place (wheel or annex, re-decided by
    // the period) before the handler runs.
    if (TryFirePeriodic(rec)) {
      ++expired;
      continue;
    }
    rec->Unlink();
    Expire(rec);
    ++expired;
  }
  return expired;
}

std::size_t HybridWheel::DrainDueOverflow() {
  // Scheme 2 head check for the long timers.
  std::size_t expired = 0;
  while (true) {
    TimerRecord* head = overflow_.front();
    if (head == nullptr) {
      break;
    }
    ++counts_.comparisons;
    if (head->expiry_tick > now_) {
      break;
    }
    // A re-armed head refiles at now + period (> now), so the loop terminates.
    if (TryFirePeriodic(head)) {
      ++expired;
      continue;
    }
    head->Unlink();
    Expire(head);
    ++expired;
  }
  return expired;
}

std::size_t HybridWheel::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  std::size_t expired = 0;
  while (now_ < target) {
    const Duration remaining = target - now_;
    // Next event is the earlier of the wheel's next occupied slot and the annex
    // head (the annex is ordered, so its head is its minimum; it is strictly in
    // the future outside a drain).
    const std::optional<std::size_t> dist = occupancy_.NextSetDistance(cursor_);
    Duration step = remaining + 1;
    if (dist.has_value()) {
      step = std::min<Duration>(step, *dist);
    }
    if (const TimerRecord* head = overflow_.front()) {
      TWHEEL_ASSERT(head->expiry_tick > now_);
      step = std::min<Duration>(step, head->expiry_tick - now_);
    }
    if (step > remaining) {
      counts_.ticks += remaining;
      counts_.slots_skipped += remaining;
      cursor_ = (cursor_ + remaining) % slots_.size();
      now_ = target;
      break;
    }
    counts_.ticks += step;
    counts_.slots_skipped += step - 1;
    cursor_ = (cursor_ + step) % slots_.size();
    now_ += step;
    // The stop may be annex-driven with an empty slot under the cursor; the probe
    // is then an honest empty_slot_check, same as the per-tick loop would pay.
    expired += DrainCursorSlot();
    expired += DrainDueOverflow();
  }
  return expired;
}

std::optional<Tick> HybridWheel::NextExpiryHint() const {
  const std::optional<std::size_t> dist = occupancy_.NextSetDistance(cursor_);
  const TimerRecord* head = overflow_.front();
  std::optional<Tick> best;
  if (dist.has_value()) {
    best = now_ + *dist;
  }
  if (head != nullptr && (!best.has_value() || head->expiry_tick < *best)) {
    best = head->expiry_tick;
  }
  return best;
}

bool HybridWheel::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  const Duration delta = target - now_;
  counts_.slots_skipped += delta;
  cursor_ = (cursor_ + delta) % slots_.size();
  now_ = target;
  return true;
}

}  // namespace twheel
