#include "src/core/hybrid_wheel.h"

#include "src/base/assert.h"

namespace twheel {

HybridWheel::HybridWheel(std::size_t wheel_size, std::size_t max_timers)
    : TimerServiceBase(max_timers), slots_(wheel_size) {
  TWHEEL_ASSERT_MSG(wheel_size >= 2, "wheel needs at least two slots");
}

HybridWheel::~HybridWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
  while (TimerRecord* rec = overflow_.front()) {
    rec->Unlink();
    ReleaseRecord(rec);
  }
}

StartResult HybridWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  if (interval < slots_.size()) {
    slots_[(cursor_ + interval) % slots_.size()].PushBack(rec);
  } else {
    // Scheme 2 annex: sorted insert from the front by (expiry, FIFO among equals).
    TimerRecord* cur = overflow_.front();
    while (cur != nullptr) {
      ++counts_.comparisons;
      if (cur->expiry_tick > rec->expiry_tick) {
        break;
      }
      cur = overflow_.Next(cur);
    }
    if (cur == nullptr) {
      overflow_.PushBack(rec);
    } else {
      overflow_.InsertBefore(rec, cur);
    }
  }
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError HybridWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();  // O(1) regardless of residence
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t HybridWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  cursor_ = (cursor_ + 1) % slots_.size();
  std::size_t expired = 0;

  IntrusiveList<TimerRecord>& slot = slots_[cursor_];
  if (slot.empty()) {
    ++counts_.empty_slot_checks;
  } else {
    while (TimerRecord* rec = slot.front()) {
      TWHEEL_ASSERT(rec->expiry_tick == now_);
      rec->Unlink();
      Expire(rec);
      ++expired;
    }
  }

  // Scheme 2 head check for the long timers.
  while (true) {
    TimerRecord* head = overflow_.front();
    if (head == nullptr) {
      break;
    }
    ++counts_.comparisons;
    if (head->expiry_tick > now_) {
      break;
    }
    head->Unlink();
    Expire(head);
    ++expired;
  }
  return expired;
}

}  // namespace twheel
