// Static-dispatch facade: the zero-virtual-call path to a concrete scheme.
//
// Every scheme in this library is reachable two ways:
//
//   1. Through the virtual `TimerService` interface (timer_service.h) — the
//      oracle, the differential driver, the factory, wrappers like
//      LockedService, and any caller that picks a scheme at runtime.
//   2. Through `StaticTimerFacility<Scheme>` below — a by-value wrapper whose
//      every forwarding call is *qualified* (`scheme_.Scheme::StartTimer`), so
//      dispatch is resolved at compile time regardless of optimization level,
//      the calls inline, and the per-op cost is exactly the scheme's own code.
//      This is the path benches and the networked server use when the scheme is
//      known at build time; bench_static_dispatch records what it saves.
//
// Correct-by-construction guarantee: the facility adds NO logic — every method
// is a one-line forward to the same member functions the virtual path invokes
// on the same object. `StaticFacadeService<Scheme>` then re-wraps the facility
// in the virtual interface so the differential harness can drive the static
// path with the full oracle alphabet (restart, periodic, AdvanceTo, …) and
// prove the two paths byte-identical (tests/verify/static_facade_test.cc). The
// layering means a divergence could only come from the facade's forwarding
// itself, which is exactly what the equivalence suite pins.
//
// Composite default ops (StartPeriodic's arena stamp, TryFirePeriodic's re-arm)
// internally call back through `this` and stay devirtualizable-but-virtual in
// unoptimized builds; the four hot client ops (start/stop/restart/tick) are
// overridden directly by every scheme, so their qualified calls here bottom out
// in straight-line scheme code with no indirection at all.

#ifndef TWHEEL_SRC_CORE_STATIC_FACILITY_H_
#define TWHEEL_SRC_CORE_STATIC_FACILITY_H_

#include <cstddef>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>

#include "src/core/timer_service.h"

namespace twheel {

template <typename Scheme>
class StaticTimerFacility {
  static_assert(std::is_base_of_v<TimerService, Scheme>,
                "StaticTimerFacility wraps a concrete TimerService scheme");
  static_assert(std::is_final_v<Scheme>,
                "wrap only final schemes: a subclass could make the qualified "
                "calls below skip its overrides");

 public:
  template <typename... Args>
  explicit StaticTimerFacility(Args&&... args)
      : scheme_(std::forward<Args>(args)...) {}

  StaticTimerFacility(const StaticTimerFacility&) = delete;
  StaticTimerFacility& operator=(const StaticTimerFacility&) = delete;

  // -- The four hot ops: statically dispatched, inlinable ------------------------
  StartResult StartTimer(Duration interval, RequestId request_id) {
    return scheme_.Scheme::StartTimer(interval, request_id);
  }
  TimerError StopTimer(TimerHandle handle) {
    return scheme_.Scheme::StopTimer(handle);
  }
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) {
    return scheme_.Scheme::RestartTimer(handle, new_interval);
  }
  std::size_t PerTickBookkeeping() { return scheme_.Scheme::PerTickBookkeeping(); }

  // -- The rest of the interface, same qualified-forward shape -------------------
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = TimerService::kRepeatForever) {
    return scheme_.Scheme::StartPeriodic(interval, request_id, repeat_for);
  }
  std::size_t AdvanceTo(Tick target) { return scheme_.Scheme::AdvanceTo(target); }
  std::size_t AdvanceBy(Duration n) {
    std::size_t total = 0;
    for (Duration i = 0; i < n; ++i) {
      total += scheme_.Scheme::PerTickBookkeeping();
    }
    return total;
  }
  std::optional<Tick> NextExpiryHint() const { return scheme_.Scheme::NextExpiryHint(); }
  bool FastForward(Tick target) { return scheme_.Scheme::FastForward(target); }

  Tick now() const { return scheme_.Scheme::now(); }
  std::size_t outstanding() const { return scheme_.Scheme::outstanding(); }
  metrics::OpCounts counts() const { return scheme_.Scheme::counts(); }
  std::string_view name() const { return scheme_.Scheme::name(); }
  TimerService::SpaceProfile Space() const { return scheme_.Scheme::Space(); }
  void set_expiry_handler(ExpiryHandler handler) {
    scheme_.Scheme::set_expiry_handler(std::move(handler));
  }

  // Escape hatch for scheme-specific diagnostics (CheckBstInvariant, cursor(), …).
  Scheme& scheme() { return scheme_; }
  const Scheme& scheme() const { return scheme_; }

 private:
  Scheme scheme_;
};

// Virtual adapter over the static path, so the oracle/differential harness can
// drive StaticTimerFacility<Scheme> through the TimerService alphabet and pin
// it exact-match against the plain virtual twin. Also the shape a runtime
// scheme switch would use without giving up the static path elsewhere.
template <typename Scheme>
class StaticFacadeService final : public TimerService {
 public:
  template <typename... Args>
  explicit StaticFacadeService(Args&&... args)
      : facility_(std::forward<Args>(args)...) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final {
    return facility_.StartTimer(interval, request_id);
  }
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) final {
    return facility_.StartPeriodic(interval, request_id, repeat_for);
  }
  TimerError StopTimer(TimerHandle handle) final { return facility_.StopTimer(handle); }
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final {
    return facility_.RestartTimer(handle, new_interval);
  }
  std::size_t PerTickBookkeeping() final { return facility_.PerTickBookkeeping(); }
  std::size_t AdvanceTo(Tick target) final { return facility_.AdvanceTo(target); }
  std::optional<Tick> NextExpiryHint() const final { return facility_.NextExpiryHint(); }
  bool FastForward(Tick target) final { return facility_.FastForward(target); }

  Tick now() const final { return facility_.now(); }
  std::size_t outstanding() const final { return facility_.outstanding(); }
  metrics::OpCounts counts() const final { return facility_.counts(); }
  std::string_view name() const final { return facility_.name(); }
  SpaceProfile Space() const final { return facility_.Space(); }
  void set_expiry_handler(ExpiryHandler handler) final {
    facility_.set_expiry_handler(std::move(handler));
  }

  StaticTimerFacility<Scheme>& facility() { return facility_; }

 private:
  StaticTimerFacility<Scheme> facility_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_STATIC_FACILITY_H_
