#include "src/core/basic_wheel.h"

#include "src/base/assert.h"

namespace twheel {

BasicWheel::BasicWheel(std::size_t max_interval, OverflowPolicy policy,
                       std::size_t max_timers)
    : TimerServiceBase(max_timers), policy_(policy), slots_(max_interval) {
  TWHEEL_ASSERT_MSG(max_interval >= 2, "wheel needs at least two slots");
}

BasicWheel::~BasicWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult BasicWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  if (interval >= slots_.size()) {
    if (policy_ == OverflowPolicy::kReject) {
      return TimerError::kIntervalOutOfRange;
    }
    interval = slots_.size() - 1;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  std::size_t index = (cursor_ + interval) % slots_.size();
  slots_[index].PushBack(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError BasicWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t BasicWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  cursor_ = (cursor_ + 1) % slots_.size();
  IntrusiveList<TimerRecord>& slot = slots_[cursor_];
  if (slot.empty()) {
    // "If the element is 0 (no list of timers waiting to expire), no more work is
    // done on that timer tick."
    ++counts_.empty_slot_checks;
    return 0;
  }
  // Every record in this slot is due exactly now: intervals are < MaxInterval, so a
  // slot can never hold timers for a future revolution.
  std::size_t expired = 0;
  while (TimerRecord* rec = slot.front()) {
    TWHEEL_ASSERT(rec->expiry_tick == now_);
    rec->Unlink();
    Expire(rec);
    ++expired;
  }
  return expired;
}

}  // namespace twheel
