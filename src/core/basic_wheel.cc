#include "src/core/basic_wheel.h"

#include "src/base/assert.h"

namespace twheel {

BasicWheel::BasicWheel(std::size_t max_interval, OverflowPolicy policy,
                       std::size_t max_timers)
    : TimerServiceBase(max_timers),
      policy_(policy),
      slots_(max_interval),
      occupancy_(max_interval) {
  TWHEEL_ASSERT_MSG(max_interval >= 2, "wheel needs at least two slots");
}

BasicWheel::~BasicWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult BasicWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  if (interval >= slots_.size()) {
    if (policy_ == OverflowPolicy::kReject) {
      return TimerError::kIntervalOutOfRange;
    }
    interval = slots_.size() - 1;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  std::size_t index = (cursor_ + interval) % slots_.size();
  rec->home_slot = static_cast<std::uint32_t>(index);
  slots_[index].PushBack(rec);
  occupancy_.Set(index);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError BasicWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError BasicWheel::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  if (new_interval >= slots_.size()) {
    if (policy_ == OverflowPolicy::kReject) {
      return TimerError::kIntervalOutOfRange;
    }
    new_interval = slots_.size() - 1;
  }
  rec->Unlink();
  if (slots_[rec->home_slot].empty()) {
    occupancy_.Clear(rec->home_slot);
  }
  StampRestart(rec, new_interval);
  const std::size_t index = (cursor_ + new_interval) % slots_.size();
  rec->home_slot = static_cast<std::uint32_t>(index);
  slots_[index].PushBack(rec);
  occupancy_.Set(index);
  return TimerError::kOk;
}

std::size_t BasicWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  cursor_ = (cursor_ + 1) % slots_.size();
  return DrainCursorSlot();
}

std::size_t BasicWheel::DrainCursorSlot() {
  IntrusiveList<TimerRecord>& slot = slots_[cursor_];
  if (slot.empty()) {
    // "If the element is 0 (no list of timers waiting to expire), no more work is
    // done on that timer tick."
    ++counts_.empty_slot_checks;
    return 0;
  }
  // Every record in this slot is due exactly now: intervals are < MaxInterval, so a
  // slot can never hold timers for a future revolution. Splice the whole slot out
  // in O(1): handlers may re-arm into the wheel (never into this slot — intervals
  // are >= 1 and < MaxInterval) without racing the batch walk.
  occupancy_.Clear(cursor_);
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(slot);
  std::size_t expired = 0;
  while (TimerRecord* rec = pending.front()) {
    TWHEEL_ASSERT(rec->expiry_tick == now_);
    // Non-final periodic fires relink the still-linked record back into the
    // wheel (delay in [1, MaxInterval), so never this slot) and dispatch.
    if (TryFirePeriodic(rec)) {
      ++expired;
      continue;
    }
    rec->Unlink();
    Expire(rec);
    ++expired;
  }
  return expired;
}

std::size_t BasicWheel::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  std::size_t expired = 0;
  while (now_ < target) {
    const Duration remaining = target - now_;
    const std::optional<std::size_t> dist = occupancy_.NextSetDistance(cursor_);
    if (!dist.has_value() || *dist > remaining) {
      // Nothing due on (now, target]: jump clock and cursor in one step.
      counts_.ticks += remaining;
      counts_.slots_skipped += remaining;
      cursor_ = (cursor_ + remaining) % slots_.size();
      now_ = target;
      break;
    }
    counts_.ticks += *dist;
    counts_.slots_skipped += *dist - 1;
    cursor_ = (cursor_ + *dist) % slots_.size();
    now_ += *dist;
    expired += DrainCursorSlot();
  }
  return expired;
}

std::optional<Tick> BasicWheel::NextExpiryHint() const {
  const std::optional<std::size_t> dist = occupancy_.NextSetDistance(cursor_);
  if (!dist.has_value()) {
    return std::nullopt;
  }
  return now_ + *dist;
}

bool BasicWheel::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  const Duration delta = target - now_;
  counts_.slots_skipped += delta;
  cursor_ = (cursor_ + delta) % slots_.size();
  now_ = target;
  return true;
}

}  // namespace twheel
