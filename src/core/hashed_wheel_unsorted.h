// Scheme 6 — hashed timing wheel with unsorted per-bucket lists (Section 6.1.2).
//
// The paper's recommendation for a general-purpose OS timer facility (together with
// Scheme 7), and the scheme the authors implemented on a VAX for Section 7.
//
// START_TIMER is O(1) worst case: hash the expiry's low-order bits to a slot (an AND
// — table sizes must be powers of two) and append; the high-order bits are kept as a
// count of remaining wheel revolutions in TimerRecord::rounds. PER_TICK_BOOKKEEPING
// walks the *entire* bucket under the cursor, decrementing each record's revolution
// count and expiring those that reach zero — exactly Scheme 1 confined to one
// bucket.
//
// The paper's sharpest observation (reproduced by bench_sec6_burstiness): "every
// TableSize ticks we decrement once all timers that are still living. Thus for n
// timers we do n/TableSize work on average per tick" — *regardless of the hash
// distribution*. The hash only controls the variance ("burstiness"): if all n timers
// hash to one bucket we do O(n) work every TableSize-th tick and O(1) otherwise,
// with the same mean. Hence the cheap AND hash is not just adequate but preferable —
// an "arbitrary hash function... would require PER_TICK_BOOKKEEPING to compute the
// hash on each timer tick."
//
// Batched advancement caveat specific to this scheme: rounds counts *cursor visits
// remaining*, so an occupied bucket must still be visited (and its residents
// decremented) once per revolution even when nothing in it is due — only empty
// buckets can be skipped outright. AdvanceTo therefore stops at every occupied
// bucket the cursor crosses; with a sparse table that is still a popcount-sized
// number of stops instead of one probe per tick.

#ifndef TWHEEL_SRC_CORE_HASHED_WHEEL_UNSORTED_H_
#define TWHEEL_SRC_CORE_HASHED_WHEEL_UNSORTED_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/bits.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel {

class HashedWheelUnsorted final : public TimerServiceBase {
 public:
  // `table_size` must be a power of two >= 2.
  explicit HashedWheelUnsorted(std::size_t table_size, std::size_t max_timers = 0);

  ~HashedWheelUnsorted() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(1) in-place reschedule: unlink, recompute (slot, rounds) for the new
  // interval, relink — both buckets' occupancy bits maintained.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // Exact, but O(n) in outstanding timers: the bitmap confines the scan to live
  // buckets, within which each record's absolute expiry is examined. Use for
  // jump-driving sparse wheels, not as a hot-path query.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme6-hashed-unsorted"; }

  std::size_t table_size() const { return slots_.size(); }
  // Occupancy of the bucket the cursor will visit next, for burstiness studies.
  std::size_t BucketSizeSlow(std::size_t index) const { return slots_[index].CountSlow(); }

  // Fixed: the hash table's list heads plus the occupancy bitmap. Per record:
  // links (16) + remaining rounds (8) + cookie (8) + expiry (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes = slots_.size() * sizeof(IntrusiveList<TimerRecord>) +
                          OccupancyBitmap::BytesFor(slots_.size());
    profile.essential_record_bytes = 40;
    return profile;
  }

 private:
  std::uint64_t mask() const { return slots_.size() - 1; }

  // The Scheme 1 sweep of the bucket under the current time: decrement every
  // resident's revolution count, expire those reaching zero.
  std::size_t VisitCursorBucket();
  // Shared body of AdvanceTo / FastForward; `count_ticks` is false for FastForward
  // ("the hardware intercepts all clock ticks").
  std::size_t BatchAdvance(Tick target, bool count_ticks);

  std::uint32_t shift_;  // log2(table_size)
  std::vector<IntrusiveList<TimerRecord>> slots_;
  OccupancyBitmap occupancy_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_HASHED_WHEEL_UNSORTED_H_
