// Slop-bits reduced precision — the ponyc runtime's knob, made verifiable.
//
// Pony's timer wheel keeps a per-wheel "slop" shift: deadlines are quantized to
// 2^slop-nanosecond grains ("No slop bits means trying for nanosecond resolution;
// 10 bits is approximately microsecond resolution; 20 bits approximately
// millisecond"). Coarser grains collapse nearby deadlines into shared buckets,
// trading fire-time precision for fewer distinct deadlines — which is throughput
// on any structure whose cost grows with deadline diversity (the Lawn store's
// bucket count, a hierarchy's migration traffic).
//
// The rule here differs from ponyc's raw right-shift in one deliberate way: the
// effective interval is rounded UP to the next multiple of 2^slop_bits. A timer
// may therefore fire late by at most 2^slop_bits - 1 ticks but NEVER early —
// firing before the requested deadline would break every client that uses a
// timer as a deadline guard, and every invariant in this repository's
// verification stack (no-early-fire is torture-tested). The bound is exact and
// closed under the quantization: a quantized interval re-quantizes to itself, so
// periodic cadences (period = the effective interval) re-arm with zero drift.
//
// Every consumer — lawn::LawnTimers, HierarchicalWheel, verify::OracleTimers,
// and the differential driver's expiry predictions — applies this one function,
// so "precision loss" is a differential-checked property, not a fuzzy tolerance:
// with equal slop_bits on both sides the schemes must still match the oracle
// tick-for-tick.

#ifndef TWHEEL_SRC_CORE_SLOP_H_
#define TWHEEL_SRC_CORE_SLOP_H_

#include <cstdint>

#include "src/base/types.h"

namespace twheel {

// Smallest multiple of 2^slop_bits that is >= interval. Identity for
// slop_bits == 0 and for intervals already on the grain. Never returns less
// than `interval`, so a quantized timer can be late (< 2^slop_bits ticks) but
// never early. Zero intervals are the caller's problem: every scheme rejects
// them before quantizing, so kZeroInterval semantics are slop-independent.
inline Duration QuantizeIntervalUp(Duration interval, std::uint32_t slop_bits) {
  if (slop_bits == 0) {
    return interval;
  }
  const Duration grain = Duration{1} << slop_bits;
  return (interval + grain - 1) & ~(grain - 1);
}

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_SLOP_H_
