// Factory facade over all seven schemes.
//
// Examples, benches, and differential tests construct schemes uniformly from a
// FacilityConfig; this is also the recommended entry point for library users who
// want to switch schemes by configuration rather than by type (the paper's
// conclusion is itself a decision table: Scheme 1 for a handful of timers, Scheme 2
// with hardware single-timer support, Schemes 6/7 for a general facility).

#ifndef TWHEEL_SRC_CORE_TIMER_FACILITY_H_
#define TWHEEL_SRC_CORE_TIMER_FACILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/timer_service.h"
#include "src/core/hierarchical_wheel.h"
#include "src/baselines/sorted_list_timers.h"

namespace twheel {

enum class SchemeId : std::uint8_t {
  kScheme1Unordered,
  kScheme2SortedFront,
  kScheme2SortedRear,
  kScheme3Heap,
  kScheme3Bst,
  kScheme3Avl,
  kScheme3Leftist,
  kScheme4BasicWheel,
  kScheme4HybridList,
  kScheme5HashedSorted,
  kScheme6HashedUnsorted,
  kScheme7Hierarchical,
  // Post-paper: the Lawn bounded-distinct-TTL store (src/lawn/lawn_timers.h).
  kScheme8Lawn,
};

// All SchemeIds, in paper order — handy for "run everything" loops.
inline constexpr SchemeId kAllSchemes[] = {
    SchemeId::kScheme1Unordered,    SchemeId::kScheme2SortedFront,
    SchemeId::kScheme2SortedRear,   SchemeId::kScheme3Heap,
    SchemeId::kScheme3Bst,          SchemeId::kScheme3Avl,
    SchemeId::kScheme3Leftist,
    SchemeId::kScheme4BasicWheel,   SchemeId::kScheme4HybridList,
    SchemeId::kScheme5HashedSorted,
    SchemeId::kScheme6HashedUnsorted, SchemeId::kScheme7Hierarchical,
    SchemeId::kScheme8Lawn,
};

struct FacilityConfig {
  SchemeId scheme = SchemeId::kScheme6HashedUnsorted;

  // Scheme 4: wheel size (maximum interval + 1). Schemes 5/6: table size (power of
  // two). Ignored by list/tree schemes.
  std::size_t wheel_size = 256;

  // Scheme 7: slot counts, finest level first.
  std::vector<std::size_t> level_sizes = {256, 64, 64, 64};

  OverflowPolicy overflow = OverflowPolicy::kReject;
  MigrationPolicy migration = MigrationPolicy::kFull;
  std::size_t max_timers = 0;

  // Scheme 8: distinct-TTL bucket cap (0 = unbounded); beyond it, new TTL
  // values fall back to the shared sorted overflow list (lawn_timers.h).
  std::size_t lawn_max_distinct_ttls = 4096;

  // Schemes 7 and 8: slop-bits reduced precision (src/core/slop.h). Effective
  // intervals are rounded up to multiples of 2^slop_bits — late by less than
  // one grain, never early. 0 = exact. Other schemes ignore it.
  std::uint32_t slop_bits = 0;
};

// Construct the configured scheme. Never returns null.
std::unique_ptr<TimerService> MakeTimerService(const FacilityConfig& config);

// Short stable identifier ("scheme6-hashed-unsorted") for a SchemeId, without
// constructing a service.
const char* SchemeName(SchemeId id);

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_TIMER_FACILITY_H_
