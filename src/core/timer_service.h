// The paper's four-routine timer-module model (Section 2), as an abstract interface.
//
//   START_TIMER(Interval, Request_ID, Expiry_Action)  -> StartTimer()
//   STOP_TIMER(Request_ID)                            -> StopTimer()
//   PER_TICK_BOOKKEEPING                              -> PerTickBookkeeping()
//   EXPIRY_PROCESSING                                 -> the installed ExpiryHandler
//
// Differences from the paper's sketch, and why:
//  * StartTimer returns a TimerHandle instead of the client keying stops by
//    Request_ID: the handle is the "pointer to the element" the paper says
//    START_TIMER should store so STOP_TIMER is O(1) on doubly linked lists, made
//    safe by a generation counter (stopping an already-expired timer returns
//    kNoSuchTimer instead of corrupting a recycled record).
//  * The Expiry_Action is one handler per service plus a 64-bit RequestId cookie per
//    timer, matching kernel practice and avoiding per-timer std::function allocation.
//  * Time never comes from a wall clock. The owner calls PerTickBookkeeping() once
//    per simulated tick, which is exactly the paper's model of a hardware clock
//    interrupting the host.
//
// Every implementation maintains metrics::OpCounts so benches can report costs in
// the paper's currency (elementary operations / VAX instructions) as well as in
// wall-clock time.

#ifndef TWHEEL_SRC_CORE_TIMER_SERVICE_H_
#define TWHEEL_SRC_CORE_TIMER_SERVICE_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "src/base/expected.h"
#include "src/base/slab_arena.h"
#include "src/base/types.h"
#include "src/core/timer_record.h"
#include "src/metrics/op_counts.h"

namespace twheel {

using StartResult = Expected<TimerHandle, TimerError>;

// What a bounded-range scheme does with an interval beyond its span (Schemes 4, 7).
enum class OverflowPolicy : std::uint8_t {
  kReject,  // StartTimer returns kIntervalOutOfRange
  kClamp,   // interval saturates to the scheme's maximum representable interval
};

// EXPIRY_PROCESSING: invoked synchronously from within PerTickBookkeeping for each
// expired timer, with the client's cookie and the current tick.
using ExpiryHandler = std::function<void(RequestId, Tick)>;

class TimerService {
 public:
  virtual ~TimerService() = default;

  // START_TIMER. `interval` is in ticks, measured from the current tick; an interval
  // of k expires on the k-th subsequent PerTickBookkeeping call. Zero intervals are
  // rejected with kZeroInterval (an "expire now" is not a timer).
  virtual StartResult StartTimer(Duration interval, RequestId request_id) = 0;

  // repeat_for value meaning "fire until stopped".
  static constexpr std::uint64_t kRepeatForever = 0;

  // Periodic START_TIMER: fires every `interval` ticks, `repeat_for` times in
  // total (kRepeatForever = until stopped). The first fire is at now + interval;
  // subsequent fires keep phase — each is due exactly `interval` after the
  // previous one. The returned handle stays valid across every non-final fire:
  // the arena record is relinked in place on the expiry path (never released),
  // so StopTimer/RestartTimer work between fires with the original handle and
  // generation. RestartTimer on a periodic timer moves only the NEXT deadline;
  // the cadence and remaining-fire budget continue from there. The final fire of
  // a finite registration releases the record like a one-shot expiry.
  //
  // Default: kNotSupported. TimerServiceBase provides the arena-backed
  // implementation every scheme inherits; wrappers forward.
  virtual StartResult StartPeriodic(Duration interval, RequestId request_id,
                                    std::uint64_t repeat_for = kRepeatForever) {
    (void)interval;
    (void)request_id;
    (void)repeat_for;
    return TimerError::kNotSupported;
  }

  // STOP_TIMER. Returns kOk if the timer was outstanding and is now cancelled;
  // kNoSuchTimer if the handle is stale (already expired, already stopped, invalid).
  virtual TimerError StopTimer(TimerHandle handle) = 0;

  // RESTART_TIMER — reschedule an outstanding timer to expire `new_interval`
  // ticks from now, keeping its cookie. This is the hot operation of the
  // paper's motivating clients (Section 2's TCP retransmission and keepalive
  // timers restart on every ACK; they almost never expire). Returns kOk on
  // success, kZeroInterval for new_interval == 0, kNoSuchTimer for a stale
  // handle, and kIntervalOutOfRange from bounded-range schemes under
  // OverflowPolicy::kReject — in which case the timer is left untouched at its
  // old deadline.
  //
  // Contract on success: the handle (and its generation) REMAINS VALID — the
  // caller keeps using the same handle for later stops and restarts. Every
  // scheme in this repository honors that with an in-place override (unlink /
  // relink, sift, or rotate — never freeing the record).
  //
  // Default: kNotSupported. An earlier default implemented the semantic
  // definition as StopTimer + StartTimer through the public interface, but that
  // cannot recover the client's cookie — it silently restarted the timer with
  // RequestId{0}, so the eventual expiry delivered the wrong cookie. A restart
  // that loses the cookie is worse than no restart; services without arena
  // access must refuse rather than guess (TimerServiceBase provides the
  // cookie-preserving arena-aware fallback).
  virtual TimerError RestartTimer(TimerHandle handle, Duration new_interval) {
    (void)handle;
    if (new_interval == 0) {
      return TimerError::kZeroInterval;
    }
    return TimerError::kNotSupported;
  }

  // PER_TICK_BOOKKEEPING. Advances the clock by one tick and dispatches
  // EXPIRY_PROCESSING for every timer due at the new time. Returns the number of
  // timers that expired on this tick.
  virtual std::size_t PerTickBookkeeping() = 0;

  virtual Tick now() const = 0;
  virtual std::size_t outstanding() const = 0;
  // Returned by value: thread-safe services (LockedService, ShardedWheel) snapshot
  // their counters under their own locks, and a reference would escape that lock and
  // race with the next caller. Single-threaded schemes just copy ~90 bytes.
  // Concurrent-dispatch contract (ShardedWheel under a DispatchPool): the snapshot
  // may be taken while N drainers are mid-dispatch, so individual fields can lag
  // each other transiently — but once the service quiesces (outstanding() == 0,
  // no driver running), the conservation law
  //   start_calls == expiries + successful cancels + outstanding
  // holds exactly whenever no start was rejected, no matter how many drainers
  // raced (the deferred wheel reports claim-point client-view counters, not the
  // inner wheels' ghost-inflated totals — see ShardedWheel::counts()).
  virtual metrics::OpCounts counts() const = 0;
  virtual std::string_view name() const = 0;

  virtual void set_expiry_handler(ExpiryHandler handler) = 0;

  // SPACE — the paper's second performance measure ("the memory required for the
  // data structures used by the timer module", Section 2). Reported in three parts
  // so the paper's space commentary is checkable: Scheme 1 "uses one record per
  // outstanding timer, the minimum space possible"; Scheme 2 "needs O(n) extra
  // space for the forward and back pointers"; Scheme 7 needs 244 slots where a flat
  // wheel needs 8.64 million.
  struct SpaceProfile {
    // Bytes of structure owned regardless of population: wheel slot arrays,
    // hierarchy levels, chip busy bits. Zero for the list/tree schemes.
    std::size_t fixed_bytes = 0;
    // Bytes per outstanding timer that this scheme's algorithm inherently needs
    // (key, cookie, links/indices) — the minimal record a scheme-specific
    // deployment would allocate.
    std::size_t essential_record_bytes = 0;
    // Bytes per record actually allocated: the shared hot/cold pair that lets one
    // arena serve every scheme (see timer_record.h for the placement rule). The
    // hot record is the per-op cache footprint; the cold twin is only touched at
    // allocation, expiry dispatch, and by the tree baselines.
    std::size_t hot_record_bytes = sizeof(TimerRecord);
    std::size_t cold_record_bytes = sizeof(ColdTimerRecord);
    std::size_t actual_record_bytes = sizeof(TimerRecord) + sizeof(ColdTimerRecord);
    // Population-dependent auxiliary storage beyond the records themselves, at its
    // current size (e.g. the binary heap's pointer array capacity).
    std::size_t auxiliary_bytes = 0;
  };
  virtual SpaceProfile Space() const = 0;

  // Optional capability behind Section 3.2's hardware-single-timer variant: "the
  // hardware timer is set to expire at the time at which the timer at the head of
  // the list is due to expire. The hardware intercepts all clock ticks and
  // interrupts the host only when a timer actually expires."
  //
  // NextExpiryHint returns the earliest outstanding expiry when the scheme can
  // answer without a full per-record scan (ordered list: head; heap: root; BST:
  // leftmost; wheels: an occupancy-bitmap scan — see each scheme for its cost and
  // exactness); nullopt when it cannot or when no timer is outstanding. Schemes
  // whose hint is a conservative lower bound (never later than the true next
  // expiry) document that on the override; callers jumping to hint-1 stay safe
  // either way. FastForward advances the clock to `target` without per-tick calls;
  // it requires now() <= target and target strictly before the next expiry, and
  // returns false (doing nothing) on schemes without the capability. Ticks crossed
  // this way are NOT counted in OpCounts ("the hardware intercepts all clock
  // ticks"). Together they let a driver sleep through dead time — see
  // sim::Simulator::RunUntilIdleJumping.
  virtual std::optional<Tick> NextExpiryHint() const { return std::nullopt; }
  virtual bool FastForward(Tick /*target*/) { return false; }

  // Batched PER_TICK_BOOKKEEPING: advance the clock to exactly `target` (which
  // must be >= now()), dispatching every expiry in between in the same order the
  // per-tick loop would, and counting every simulated tick in OpCounts::ticks.
  // Returns total expiries. This default loops PerTickBookkeeping, so every
  // scheme — and the differential oracle — is correct by construction; the wheel
  // schemes override it with an O(popcount) occupancy-bitmap jump that never
  // probes an empty slot (counted in OpCounts::slots_skipped / batch_advances).
  virtual std::size_t AdvanceTo(Tick target) {
    std::size_t total = 0;
    while (now() < target) {
      total += PerTickBookkeeping();
    }
    return total;
  }

  // Convenience: run `n` ticks one at a time; returns total expiries. Kept as an
  // explicitly un-batched loop — it is the baseline AdvanceTo is benchmarked
  // against (bench/bench_sparse_tick.cc).
  std::size_t AdvanceBy(Duration n) {
    std::size_t total = 0;
    for (Duration i = 0; i < n; ++i) {
      total += PerTickBookkeeping();
    }
    return total;
  }
};

// Shared implementation plumbing: the record arena, clock, expiry dispatch, and op
// counters. Schemes derive from this and implement the data-structure specifics.
class TimerServiceBase : public TimerService {
 public:
  // `max_timers` bounds the arena; 0 = unbounded.
  explicit TimerServiceBase(std::size_t max_timers = 0) : arena_(max_timers) {}

  Tick now() const final { return now_; }
  // Live records in the arena. Lazy-deletion schemes (leftist heap) override this to
  // exclude cancelled-but-not-yet-reclaimed records.
  std::size_t outstanding() const override { return arena_.live(); }

  // Measured arena slab footprint — whole chunks, free slots included. These
  // are the numbers behind bench_static_dispatch's space-at-scale sweep: what
  // the record store actually costs at N live timers, not sizeof arithmetic.
  std::size_t hot_slab_bytes() const { return arena_.hot_slab_bytes(); }
  std::size_t cold_slab_bytes() const { return arena_.cold_slab_bytes(); }
  metrics::OpCounts counts() const final { return counts_; }
  void set_expiry_handler(ExpiryHandler handler) final { handler_ = std::move(handler); }

  // Cookie-preserving stop+start fallback: recovers the client's RequestId from
  // the arena before the stop, so the rescheduled timer keeps its cookie — but
  // the arena recycles the slot, so the caller's handle is burned. Every scheme
  // in this repository overrides this with an in-place relink that keeps the
  // handle valid; the fallback remains for derived services outside the
  // differential matrix (sim::TegasWheel, hw::ChipAssistedWheel).
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) override {
    if (new_interval == 0) {
      return TimerError::kZeroInterval;
    }
    TimerRecord* rec = Resolve(handle);
    if (rec == nullptr) {
      return TimerError::kNoSuchTimer;
    }
    const ColdTimerRecord& old_cold = cold(rec);
    const RequestId request_id = old_cold.request_id;
    const Duration period = old_cold.period;
    const std::uint64_t repeats_left = old_cold.repeats_left;
    const TimerError stopped = StopTimer(handle);
    if (stopped != TimerError::kOk) {
      return stopped;
    }
    StartResult restarted = StartTimer(new_interval, request_id);
    if (!restarted.has_value()) {
      return restarted.error();
    }
    // A restarted periodic keeps its cadence and remaining-fire budget even
    // across the handle burn.
    ColdTimerRecord& fresh = cold(Resolve(restarted.value()));
    fresh.period = period;
    fresh.repeats_left = repeats_left;
    return TimerError::kOk;
  }

  // Arena-backed periodic registration: a one-shot start plus the cadence
  // stamped on the record. The cadence follows the *effective* interval (after
  // any OverflowPolicy::kClamp saturation), which keeps every expiry-path
  // re-arm delay within the scheme's validated range by construction.
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) override {
    StartResult started = this->StartTimer(interval, request_id);
    if (!started.has_value()) {
      return started;
    }
    TimerRecord* rec = Resolve(started.value());
    ColdTimerRecord& c = cold(rec);
    c.period = rec->interval;
    c.repeats_left = repeat_for;
    ++counts_.periodic_starts;
    return started;
  }

 protected:
  // Allocate and pre-fill a hot/cold record pair; nullptr when the arena is full.
  // The arena placement-news both records fresh, so a recycled slot cannot
  // resurrect a previous timer's periodic cadence or tree links.
  TimerRecord* AllocateRecord(Duration interval, RequestId request_id) {
    auto [rec, ref] = arena_.Allocate();
    if (rec == nullptr) {
      return nullptr;
    }
    rec->self = TimerHandle{ref.slot, ref.generation};
    rec->seq = next_seq_++;
    rec->interval = interval;
    rec->expiry_tick = now_ + interval;
    ColdTimerRecord* c = arena_.ColdOf(ref.slot);
    c->hot = rec;
    c->request_id = request_id;
    c->start_tick = now_;
    return rec;
  }

  TimerRecord* Resolve(TimerHandle handle) const {
    return arena_.Get(SlabRef{handle.slot, handle.generation});
  }

  // The cold twin of a live hot record (same arena slot, parallel slab). Valid
  // exactly while `rec` is live; per-op hot paths must not call this — it pulls
  // a second cache line (see timer_record.h for what lives where and why).
  ColdTimerRecord& cold(const TimerRecord* rec) const {
    return *arena_.ColdOf(rec->self.slot);
  }

  // Return a record's storage to the arena (after unlinking it from any structure).
  void ReleaseRecord(TimerRecord* rec) {
    arena_.Free(SlabRef{rec->self.slot, rec->self.generation});
  }

  // Shared prologue for the in-place RestartTimer overrides: validate the new
  // interval and resolve the handle. On failure returns nullptr with *error
  // set; the scheme's structures are untouched.
  TimerRecord* ResolveForRestart(TimerHandle handle, Duration new_interval,
                                 TimerError* error) const {
    if (new_interval == 0) {
      *error = TimerError::kZeroInterval;
      return nullptr;
    }
    TimerRecord* rec = Resolve(handle);
    if (rec == nullptr) {
      *error = TimerError::kNoSuchTimer;
      return nullptr;
    }
    return rec;
  }

  // Shared epilogue: re-stamp the record's schedule fields (the caller then
  // re-files it by the fresh expiry_tick) and account the restart. A restart is
  // deliberately neither a start nor a stop in OpCounts: the conservation law
  // stays start_calls == expiries + cancels + outstanding.
  void StampRestart(TimerRecord* rec, Duration new_interval) {
    cold(rec).start_tick = now_;
    rec->interval = new_interval;
    rec->expiry_tick = now_ + new_interval;
    ++counts_.restart_calls;
    ++counts_.restart_relink_ops;
  }

  // Phase-stable re-arm target: the next multiple of `period` after the fire,
  // caught up past now_ if dispatch ran late (batched advances never do; the
  // catch-up guards derived drivers). The returned delay is in [1, period], so
  // a re-arm of an in-range period can never be rejected for range.
  Duration NextPeriodicDelay(Tick expiry_tick, Duration period) const {
    Tick target = expiry_tick + period;
    if (target <= now_) {
      target += ((now_ - target) / period + 1) * period;
    }
    return target - now_;
  }

  // Expiry-path fast path for periodic records, called by every scheme's drain
  // loop on a due record BEFORE unlinking it. A non-final periodic fire relinks
  // the still-live record to the next phase-stable deadline via the scheme's
  // in-place RestartTimer machinery — the arena is never touched, the handle
  // and generation survive — then dispatches the handler. Dispatch happens
  // AFTER the re-arm, so a handler cancelling its own timer (StopTimer on the
  // just-fired handle) finds it live and gets kOk. Returns true when the fire
  // was fully handled here; false sends the record down the normal Expire path
  // (one-shot, final fire, or a re-arm the scheme rejected — then accounted as
  // a periodic_drop and degraded to a final expiry).
  bool TryFirePeriodic(TimerRecord* rec) {
    ColdTimerRecord& c = cold(rec);
    if (c.period == 0 || c.repeats_left == 1) {
      return false;
    }
    const RequestId id = c.request_id;
    const Duration delay = NextPeriodicDelay(rec->expiry_tick, c.period);
    if (RearmPeriodic(rec, delay) != TimerError::kOk) {
      // Degrade to a one-shot so the caller's Expire releases it exactly once.
      c.period = 0;
      ++counts_.periodic_drops;
      return false;
    }
    if (c.repeats_left > 1) {
      --c.repeats_left;
    }
    ++counts_.periodic_fires;
    ++counts_.expiry_dispatches;
    if (handler_) {
      handler_(id, now_);
    }
    return true;
  }

  // How TryFirePeriodic moves the record. The default routes through the
  // scheme's own in-place RestartTimer override (the PR 4 relink machinery:
  // wheels unlink/relink in O(1) maintaining occupancy bitmaps, heaps sift,
  // trees rotate) and reclassifies the accounting: an expiry-path re-arm is not
  // a client restart.
  virtual TimerError RearmPeriodic(TimerRecord* rec, Duration delay) {
    const TimerError err = this->RestartTimer(rec->self, delay);
    if (err == TimerError::kOk) {
      --counts_.restart_calls;
      --counts_.restart_relink_ops;
      ++counts_.periodic_rearm_relinks;
    }
    return err;
  }

  // Dispatch EXPIRY_PROCESSING for `rec` and release it. The record must already be
  // unlinked from the scheme's structures. Periodic safety net: a derived service
  // that never calls TryFirePeriodic (sim::TegasWheel, hw::ChipAssistedWheel) still
  // gets correct periodic semantics here via a stop+start re-arm; a rejected
  // re-arm is a documented drop (periodic_drops) that degrades to a final expiry
  // instead of aborting.
  void Expire(TimerRecord* rec) {
    const ColdTimerRecord& c = cold(rec);
    const RequestId id = c.request_id;
    if (c.period != 0 && c.repeats_left != 1) {
      const Duration period = c.period;
      const std::uint64_t repeats = c.repeats_left;
      const Duration delay = NextPeriodicDelay(rec->expiry_tick, period);
      ReleaseRecord(rec);
      StartResult rearmed = this->StartTimer(delay, id);
      if (rearmed.has_value()) {
        ColdTimerRecord& fresh = cold(Resolve(rearmed.value()));
        fresh.period = period;
        fresh.repeats_left = repeats > 1 ? repeats - 1 : repeats;
        --counts_.start_calls;  // a re-arm is not a client start
        ++counts_.periodic_fires;
        ++counts_.expiry_dispatches;
        if (handler_) {
          handler_(id, now_);
        }
        return;
      }
      ++counts_.periodic_drops;
      ++counts_.expiries;
      ++counts_.expiry_dispatches;
      if (handler_) {
        handler_(id, now_);
      }
      return;
    }
    ++counts_.expiries;
    ++counts_.expiry_dispatches;
    ReleaseRecord(rec);
    if (handler_) {
      handler_(id, now_);
    }
  }

  Tick now_ = 0;
  metrics::OpCounts counts_;

 private:
  PairedSlabArena<TimerRecord, ColdTimerRecord> arena_;
  ExpiryHandler handler_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_CORE_TIMER_SERVICE_H_
