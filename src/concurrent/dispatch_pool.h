// DispatchPool — the MPMC half of the concurrent wheel: N drainer threads
// advance and deliver a ShardedWheel's shards in parallel, with work stealing
// over published expiry batches.
//
// PR 3 made *submission* scale (wait-free MPSC enqueues), but the tick side
// stayed a single drainer sweeping every shard, so expiry throughput was flat
// no matter how many cores existed — the Appendix A.2 criticism, one layer up.
// DispatchPool completes the pipeline: shards are partitioned round-robin
// across drainers (shard s belongs to drainer s % N), and each drainer runs
// ShardedWheel's split tick protocol for its shards:
//
//   AdvanceShard(s, t)   owner-only — drain s's submission ring, advance s's
//                        inner wheel to the absolute tick t, claim the
//                        collected expiries against the registration words
//                        (all under s's mutex), publish the survivors as one
//                        FireBatch on s's lock-free batch stack.
//   DispatchShard(s)     anyone — take s's dispatch rights with one CAS,
//                        deliver the published batches oldest-first, release.
//
// Work stealing happens at the dispatch step: a drainer that has finished its
// own shards sweeps the other shards' batch stacks and delivers whatever is
// sitting there (counted in OpCounts::dispatch_steals). Because batches are
// only published after the owning advance fully claimed them, a thief can
// never touch a half-drained bucket, and because delivery is serialized by the
// per-shard rights flag, per-shard expiry order survives stealing. Clock
// advancement itself is never stolen — the drain-under-mutex contract keeps a
// single advancer per shard at a time.
//
// Two driving modes:
//   * manual  (tick_period == 0): the owner thread calls AdvanceTo(target) and
//     blocks until every shard reached the target and every batch was
//     delivered. This is the mode benchmarks and lockstep tests use.
//   * ticker  (tick_period > 0): every drainer self-paces against the wall
//     clock like TickerThread — each delivers its own shards' ticks as the
//     periods elapse, with bounded catch-up chunks so Stop() stays prompt —
//     making the pool a true "per-shard tickers" deployment. Shard cursors may
//     transiently diverge; the wheel's now() is the committed minimum, and
//     Stop() re-converges nothing: driving the wheel afterwards (absolute-
//     target AdvanceTo) realigns every shard.
//
// The pool assumes it is the service's only clock driver while running (other
// threads may start/stop/restart timers freely — that is the point).

#ifndef TWHEEL_SRC_CONCURRENT_DISPATCH_POOL_H_
#define TWHEEL_SRC_CONCURRENT_DISPATCH_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/concurrent/sharded_wheel.h"

namespace twheel::concurrent {

struct DispatchOptions {
  // Drainer threads. May exceed the shard count: surplus drainers own no
  // shards and act as pure stealers (dispatch helpers).
  std::size_t drainers = 2;
  // Allow drainers to deliver batches of shards they do not own.
  bool steal = true;
  // 0 = manual mode (AdvanceTo-driven); > 0 = every drainer self-paces its
  // shards at this wall-clock period per tick.
  std::chrono::microseconds tick_period{0};
  // Catch-up granularity: the most ticks one AdvanceShard call may cover.
  // Stop() can only interrupt between calls, so this bounds shutdown latency
  // to one chunk's worth of expiry work per drainer.
  std::uint64_t max_chunk_ticks = 1024;
};

class DispatchPool {
 public:
  // Does not take ownership; `wheel` must outlive the pool. Threads start
  // immediately (in ticker mode, tick 1 is due one period after construction).
  DispatchPool(ShardedWheel& wheel, DispatchOptions options);

  DispatchPool(const DispatchPool&) = delete;
  DispatchPool& operator=(const DispatchPool&) = delete;

  ~DispatchPool();

  // Manual mode only: publish `target`, wake the drainers, and block until
  // every shard's cursor reached it, every published batch was delivered, and
  // the wheel's now() committed. Returns the number of fires dispatched by the
  // pool during the wait (all epochs' worth since the previous call). Must not
  // be called concurrently with itself; returns early (with the fires so far)
  // if Stop() is called mid-advance.
  std::size_t AdvanceTo(Tick target);

  // Idempotent; blocks until every drainer exited, then delivers any batches
  // still sitting on the stacks (serially, on this thread) and commits now()
  // to the minimum shard cursor. No bookkeeping runs after Stop returns. A
  // catch-up burst is abandoned between chunks, never waited out.
  void Stop();

  std::size_t drainers() const { return threads_.size(); }
  bool owns(std::size_t drainer, std::uint32_t shard) const {
    return shard % threads_.size() == drainer;
  }
  std::uint64_t fires_dispatched() const {
    return fires_dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void DrainerLoop(std::size_t index);
  // Advance the shards `index` owns toward `target` in bounded chunks,
  // dispatching after every chunk. Returns false if aborted by Stop().
  bool AdvanceOwned(std::size_t index, Tick target);
  // One pass over the other drainers' shards, delivering any published
  // batches. Returns fires delivered.
  std::size_t StealSweep(std::size_t index);
  // True once every shard reached `target` with nothing left to deliver.
  bool EpochDone(Tick target) const;
  // now() := min over shard cursors (monotone; safe to race).
  void CommitCompletedClock();

  ShardedWheel& wheel_;
  const DispatchOptions options_;
  // Ticker mode: the shared wall-clock origin every drainer paces against.
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mutex_;
  std::condition_variable wakeup_;   // drainers wait here (manual mode / pacing)
  std::condition_variable done_;     // AdvanceTo's barrier wait
  std::atomic<Tick> target_{0};      // manual mode: latest requested target
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> fires_dispatched_{0};

  std::vector<std::thread> threads_;  // last: started after everything else
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_DISPATCH_POOL_H_
