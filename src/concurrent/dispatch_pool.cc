#include "src/concurrent/dispatch_pool.h"

#include <algorithm>

#include "src/base/assert.h"

namespace twheel::concurrent {

DispatchPool::DispatchPool(ShardedWheel& wheel, DispatchOptions options)
    : wheel_(wheel), options_(options) {
  TWHEEL_ASSERT_MSG(options_.drainers >= 1, "pool needs at least one drainer");
  TWHEEL_ASSERT_MSG(options_.max_chunk_ticks >= 1, "chunk must cover >= 1 tick");
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(options_.drainers);
  for (std::size_t i = 0; i < options_.drainers; ++i) {
    threads_.emplace_back([this, i] { DrainerLoop(i); });
  }
}

DispatchPool::~DispatchPool() { Stop(); }

void DispatchPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
  }
  wakeup_.notify_all();
  done_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  // All drainers have exited; anything still on a batch stack was claimed but
  // not delivered (a burst abandoned between chunks never *publishes* partial
  // work, but a drainer can be stopped between publish and dispatch). Deliver
  // it serially here so exactly-once holds across shutdown — these calls run
  // on the caller's thread, before Stop returns, so the "no bookkeeping after
  // Stop" contract is kept.
  for (std::uint32_t s = 0; s < wheel_.num_shards(); ++s) {
    fires_dispatched_.fetch_add(wheel_.DispatchShard(s, /*owner=*/true),
                                std::memory_order_relaxed);
  }
  CommitCompletedClock();
}

std::size_t DispatchPool::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(options_.tick_period.count() == 0,
                    "manual AdvanceTo on a ticker-mode pool");
  const std::uint64_t before = fires_dispatched_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Tick cur = target_.load(std::memory_order_relaxed);
    while (cur < target &&
           !target_.compare_exchange_weak(cur, target,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
  }
  wakeup_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Timed re-check instead of a bare predicate wait: the barrier condition
    // is a function of lock-free wheel state (cursors, batch stacks, rights
    // flags), not of anything guarded by mutex_, so a notification can never
    // be relied on to pair with the final state transition.
    while (!stopping_.load(std::memory_order_relaxed) && !EpochDone(target)) {
      done_.wait_for(lock, std::chrono::microseconds(200));
    }
  }
  CommitCompletedClock();
  return static_cast<std::size_t>(
      fires_dispatched_.load(std::memory_order_relaxed) - before);
}

void DispatchPool::DrainerLoop(std::size_t index) {
  if (options_.tick_period.count() > 0) {
    // Ticker mode: self-paced per-shard tickers. Each drainer is the wall
    // clock for its own shards, exactly like TickerThread is for a whole
    // service: it delivers as many ticks as full periods have elapsed,
    // catching up through bounded chunks, then sleeps until the next period
    // boundary. Different drainers' shards advance independently — that is
    // the point — and the wheel's now() tracks the slowest shard.
    using Clock = std::chrono::steady_clock;
    Tick delivered = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_.load(std::memory_order_relaxed)) {
      const auto due = static_cast<Tick>((Clock::now() - epoch_) /
                                         options_.tick_period);
      if (delivered < due) {
        lock.unlock();
        if (AdvanceOwned(index, due)) {
          delivered = due;
          // Opportunistic stealing before going back to sleep: deliver other
          // shards' published batches while this drainer would otherwise idle.
          while (StealSweep(index) > 0) {
          }
          CommitCompletedClock();
        }
        lock.lock();
        continue;
      }
      wakeup_.wait_until(
          lock, epoch_ + (delivered + 1) * options_.tick_period,
          [this] { return stopping_.load(std::memory_order_relaxed); });
    }
    return;
  }

  // Manual mode: advance to each published target, then keep stealing until
  // the whole epoch is delivered (an idle drainer lending its core to a
  // burst-hit shard is exactly the scaling mechanism under test).
  Tick completed = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    const Tick t = target_.load(std::memory_order_acquire);
    if (t > completed) {
      lock.unlock();
      if (AdvanceOwned(index, t)) {
        completed = t;
      }
      while (options_.steal && !stopping_.load(std::memory_order_relaxed) &&
             !EpochDone(t)) {
        if (StealSweep(index) == 0) {
          std::this_thread::yield();
        }
      }
      CommitCompletedClock();
      done_.notify_all();
      lock.lock();
      continue;
    }
    wakeup_.wait(lock, [this, completed] {
      return stopping_.load(std::memory_order_relaxed) ||
             target_.load(std::memory_order_relaxed) > completed;
    });
  }
}

bool DispatchPool::AdvanceOwned(std::size_t index, Tick target) {
  const std::size_t n = options_.drainers;
  // Interleave chunks across the owned shards instead of running each shard to
  // completion: during a long catch-up every owned shard's clock lags by at
  // most one chunk relative to its siblings, and Stop() is honored between
  // every chunk.
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (std::uint32_t s = static_cast<std::uint32_t>(index);
         s < wheel_.num_shards(); s += static_cast<std::uint32_t>(n)) {
      if (stopping_.load(std::memory_order_relaxed)) {
        return false;
      }
      const Tick cursor = wheel_.ShardCursor(s);
      if (cursor >= target) {
        continue;
      }
      const Tick next = std::min<Tick>(cursor + options_.max_chunk_ticks, target);
      wheel_.AdvanceShard(s, next);
      fires_dispatched_.fetch_add(wheel_.DispatchShard(s, /*owner=*/true),
                                  std::memory_order_relaxed);
      if (next < target) {
        all_done = false;
      }
    }
  }
  return true;
}

std::size_t DispatchPool::StealSweep(std::size_t index) {
  if (!options_.steal) {
    return 0;
  }
  std::size_t fired = 0;
  for (std::uint32_t s = 0; s < wheel_.num_shards(); ++s) {
    if (s % options_.drainers == index) {
      continue;  // own shards are dispatched inline by AdvanceOwned
    }
    if (wheel_.HasPendingBatches(s)) {
      fired += wheel_.DispatchShard(s, /*owner=*/false);
    }
  }
  fires_dispatched_.fetch_add(fired, std::memory_order_relaxed);
  return fired;
}

bool DispatchPool::EpochDone(Tick target) const {
  // Order matters: a shard's batches are published before its cursor (release)
  // reaches the target, and HasPendingBatches reads the stack head before the
  // rights flag, so "cursor reached target, stack empty, rights free" read in
  // this order proves the shard's epoch work is fully delivered.
  for (std::uint32_t s = 0; s < wheel_.num_shards(); ++s) {
    if (wheel_.ShardCursor(s) < target) {
      return false;
    }
  }
  for (std::uint32_t s = 0; s < wheel_.num_shards(); ++s) {
    if (wheel_.HasPendingBatches(s)) {
      return false;
    }
  }
  return true;
}

void DispatchPool::CommitCompletedClock() {
  Tick min_cursor = 0;
  for (std::uint32_t s = 0; s < wheel_.num_shards(); ++s) {
    const Tick c = wheel_.ShardCursor(s);
    min_cursor = s == 0 ? c : std::min(min_cursor, c);
  }
  wheel_.CommitNow(min_cursor);
}

}  // namespace twheel::concurrent
