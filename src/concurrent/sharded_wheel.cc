#include "src/concurrent/sharded_wheel.h"

#include <utility>

#include "src/base/assert.h"

namespace twheel::concurrent {

ShardedWheel::ShardedWheel(std::size_t shards, std::size_t table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(shards) && shards >= 1 && shards <= 256,
                    "shard count must be a power of two in [1, 256]");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->wheel = std::make_unique<HashedWheelUnsorted>(table_size);
    shards_.push_back(std::move(shard));
  }
}

StartResult ShardedWheel::StartTimer(Duration interval, RequestId request_id) {
  const std::uint32_t index = static_cast<std::uint32_t>(
      next_shard_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1));
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  StartResult result = shard.wheel->StartTimer(interval, request_id);
  if (!result.has_value()) {
    return result;
  }
  TimerHandle inner = result.value();
  TWHEEL_ASSERT_MSG(inner.slot <= kSlotMask, "shard exceeded 2^24 concurrent timers");
  return TimerHandle{(index << kShardShift) | inner.slot, inner.generation};
}

TimerError ShardedWheel::StopTimer(TimerHandle handle) {
  if (!handle.valid()) {
    return TimerError::kNoSuchTimer;
  }
  const std::uint32_t index = handle.slot >> kShardShift;
  if (index >= shards_.size()) {
    return TimerError::kNoSuchTimer;
  }
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.wheel->StopTimer(TimerHandle{handle.slot & kSlotMask, handle.generation});
}

std::size_t ShardedWheel::PerTickBookkeeping() {
  // Collect under each shard's lock, dispatch outside all locks.
  std::vector<std::pair<RequestId, Tick>> expired;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.wheel->set_expiry_handler([&expired](RequestId id, Tick when) {
      expired.emplace_back(id, when);
    });
    shard.wheel->PerTickBookkeeping();
  }
  now_.fetch_add(1, std::memory_order_relaxed);

  ExpiryHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (handler) {
    for (const auto& [id, when] : expired) {
      handler(id, when);
    }
  }
  return expired.size();
}

std::size_t ShardedWheel::outstanding() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    total += shard_ptr->wheel->outstanding();
  }
  return total;
}

const metrics::OpCounts& ShardedWheel::counts() const {
  std::lock_guard<std::mutex> merged_lock(counts_mutex_);
  merged_counts_ = metrics::OpCounts{};
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    merged_counts_ += shard_ptr->wheel->counts();
  }
  // Ticks are per-shard internally; report wall ticks.
  merged_counts_.ticks = now_.load(std::memory_order_relaxed);
  return merged_counts_;
}

TimerService::SpaceProfile ShardedWheel::Space() const {
  SpaceProfile profile;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    SpaceProfile shard_profile = shard_ptr->wheel->Space();
    profile.fixed_bytes += shard_profile.fixed_bytes;
    profile.essential_record_bytes = shard_profile.essential_record_bytes;
  }
  return profile;
}

void ShardedWheel::set_expiry_handler(ExpiryHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

}  // namespace twheel::concurrent
