#include "src/concurrent/sharded_wheel.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace twheel::concurrent {

ShardedWheel::Shard::~Shard() {
  // Batches are normally drained before the wheel is torn down (DispatchPool
  // dispatches everything pending in Stop()); free stragglers regardless so an
  // aborted test cannot leak them.
  FireBatch* chain = batch_head.exchange(nullptr, std::memory_order_acquire);
  while (chain != nullptr) {
    FireBatch* next = chain->next;
    delete chain;
    chain = next;
  }
}

ShardedWheel::ShardedWheel(std::size_t shards, std::size_t table_size) {
  Construct(shards, table_size, nullptr);
}

ShardedWheel::ShardedWheel(std::size_t shards, std::size_t table_size,
                           const SubmitOptions& submit) {
  Construct(shards, table_size, &submit);
}

void ShardedWheel::Construct(std::size_t shards, std::size_t table_size,
                             const SubmitOptions* submit) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(shards) && shards >= 1 && shards <= 256,
                    "shard count must be a power of two in [1, 256]");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->wheel = std::make_unique<HashedWheelUnsorted>(table_size);
    if (submit != nullptr) {
      shard->submit = std::make_unique<ShardSubmitQueue>(*submit);
    }
    // Install the collector exactly once, pointing at storage that lives as long
    // as the shard itself. Installing a lambda that captures a tick-local vector
    // would leave the wheel's handler dangling after the tick returns — any expiry
    // dispatched outside that call (a future destructor drain, an overlapping
    // tick) would then write through a dead stack frame. Shard::collected is only
    // touched under Shard::mutex, which every wheel call already holds.
    Shard* raw = shard.get();
    raw->wheel->set_expiry_handler([raw](RequestId id, Tick when) {
      raw->collected.emplace_back(id, when);
    });
    shards_.push_back(std::move(shard));
  }
}

StartResult ShardedWheel::StartTimer(Duration interval, RequestId request_id) {
  const std::uint32_t index = static_cast<std::uint32_t>(
      next_shard_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1));
  Shard& shard = *shards_[index];
  if (shard.submit != nullptr) {
    client_starts_.fetch_add(1, std::memory_order_relaxed);
    if (interval == 0) {
      return TimerError::kZeroInterval;  // match the inner wheel's policy
    }
    // Lock-free path: capture the absolute deadline now, enqueue the command.
    // A tick racing this call may advance the clock before the command drains;
    // the drain then registers the remaining interval (min 1), so the timer
    // fires at max(deadline, drain tick + 1).
    const Tick deadline = now_.load(std::memory_order_acquire) + interval;
    StartResult result = shard.submit->SubmitStart(request_id, deadline);
    if (!result.has_value()) {
      return result;
    }
    live_.fetch_add(1, std::memory_order_relaxed);
    const TimerHandle local = result.value();
    return TimerHandle{(index << kShardShift) | local.slot, local.generation};
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  StartResult result = shard.wheel->StartTimer(interval, request_id);
  if (!result.has_value()) {
    return result;
  }
  TimerHandle inner = result.value();
  TWHEEL_ASSERT_MSG(inner.slot <= kSlotMask, "shard exceeded 2^24 concurrent timers");
  return TimerHandle{(index << kShardShift) | inner.slot, inner.generation};
}

StartResult ShardedWheel::StartPeriodic(Duration interval, RequestId request_id,
                                        std::uint64_t repeat_for) {
  const std::uint32_t index = static_cast<std::uint32_t>(
      next_shard_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1));
  Shard& shard = *shards_[index];
  if (shard.submit != nullptr) {
    client_starts_.fetch_add(1, std::memory_order_relaxed);
    if (interval == 0) {
      return TimerError::kZeroInterval;  // match the inner wheel's policy
    }
    // Same lock-free path as StartTimer; the cadence and repeat budget travel
    // in the registration entry, and the word carries the sticky periodic bit
    // (see ShardSubmitQueue::SubmitStartPeriodic).
    const Tick deadline = now_.load(std::memory_order_acquire) + interval;
    StartResult result = shard.submit->SubmitStartPeriodic(
        request_id, deadline, interval, repeat_for);
    if (!result.has_value()) {
      return result;
    }
    live_.fetch_add(1, std::memory_order_relaxed);
    client_periodic_starts_.fetch_add(1, std::memory_order_relaxed);
    const TimerHandle local = result.value();
    return TimerHandle{(index << kShardShift) | local.slot, local.generation};
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  StartResult result = shard.wheel->StartPeriodic(interval, request_id, repeat_for);
  if (!result.has_value()) {
    return result;
  }
  TimerHandle inner = result.value();
  TWHEEL_ASSERT_MSG(inner.slot <= kSlotMask, "shard exceeded 2^24 concurrent timers");
  return TimerHandle{(index << kShardShift) | inner.slot, inner.generation};
}

TimerError ShardedWheel::StopTimer(TimerHandle handle) {
  if (!handle.valid()) {
    return TimerError::kNoSuchTimer;
  }
  const std::uint32_t index = handle.slot >> kShardShift;
  if (index >= shards_.size()) {
    return TimerError::kNoSuchTimer;
  }
  Shard& shard = *shards_[index];
  if (shard.submit != nullptr) {
    // Client-view attempt count (the locked inner wheels count every attempt
    // that reaches them; see counts()).
    client_stops_.fetch_add(1, std::memory_order_relaxed);
    // Lock-free path: the CAS inside SubmitCancel is the commit point; kOk
    // means the timer can no longer fire, whether or not its start command has
    // even drained yet (pending-cancel reconciliation).
    const TimerError err =
        shard.submit->SubmitCancel(handle.slot & kSlotMask, handle.generation);
    if (err == TimerError::kOk) {
      live_.fetch_sub(1, std::memory_order_relaxed);
    }
    return err;
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.wheel->StopTimer(TimerHandle{handle.slot & kSlotMask, handle.generation});
}

TimerError ShardedWheel::RestartTimer(TimerHandle handle, Duration new_interval) {
  if (!handle.valid()) {
    return TimerError::kNoSuchTimer;
  }
  const std::uint32_t index = handle.slot >> kShardShift;
  if (index >= shards_.size()) {
    return TimerError::kNoSuchTimer;
  }
  Shard& shard = *shards_[index];
  if (shard.submit != nullptr) {
    if (new_interval == 0) {
      return TimerError::kZeroInterval;  // match the inner wheel's policy
    }
    // Lock-free path: capture the new absolute deadline and commit via the
    // entry word (reserve-commit-publish, see SubmitRestart). A restart is
    // neither a start nor a cancel, so live_ is untouched either way.
    const Tick deadline = now_.load(std::memory_order_acquire) + new_interval;
    const TimerError err = shard.submit->SubmitRestart(
        handle.slot & kSlotMask, handle.generation, deadline);
    if (err == TimerError::kOk) {
      client_restarts_.fetch_add(1, std::memory_order_relaxed);
    }
    return err;
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.wheel->RestartTimer(
      TimerHandle{handle.slot & kSlotMask, handle.generation}, new_interval);
}

std::size_t ShardedWheel::DrainSubmissions() {
  std::size_t total = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.submit == nullptr) {
      return 0;
    }
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.submit->Drain(*shard.wheel);
  }
  return total;
}

std::size_t ShardedWheel::PerTickBookkeeping() {
  // Collect under each shard's lock, dispatch outside all locks. The permanent
  // per-shard collector (installed in the constructor) stages expiries in
  // Shard::collected; we drain each shard's stage while still holding its lock.
  // MPSC mode drains the shard's submission ring first — same lock acquisition —
  // so every command enqueued before this call is registered before its shard
  // advances.
  const bool mpsc = deferred();
  const Tick target = now_.load(std::memory_order_relaxed) + 1;
  std::vector<PendingExpiry> pending;
  std::vector<std::pair<RequestId, Tick>> fires;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (mpsc) {
      shard.submit->Drain(*shard.wheel);
    }
    // Shard clocks normally tick in lockstep with now_; a shard a DispatchPool
    // already carried past `target` (a stopped ticker-mode pool leaves shards
    // at unequal cursors) has covered this tick and must not tick twice.
    const Tick inner_now = shard.wheel->now();
    if (inner_now + 1 == target) {
      shard.wheel->PerTickBookkeeping();
    } else if (inner_now < target) {
      shard.wheel->AdvanceTo(target);
    }
    shard.cursor.store(shard.wheel->now(), std::memory_order_release);
    if (mpsc) {
      for (const auto& [id, when] : shard.collected) {
        pending.push_back(PendingExpiry{s, id, when});
      }
    } else {
      fires.insert(fires.end(), shard.collected.begin(), shard.collected.end());
    }
    shard.collected.clear();
  }
  now_.fetch_add(1, std::memory_order_release);

  if (mpsc) {
    ClaimFires(pending, fires);
  }
  return Dispatch(fires);
}

std::size_t ShardedWheel::AdvanceTo(Tick target) {
  const Tick base = now_.load(std::memory_order_relaxed);
  TWHEEL_ASSERT_MSG(target >= base, "AdvanceTo target is in the past");
  const Duration delta = target - base;
  if (delta == 0) {
    return 0;
  }
  // One lock acquisition per shard for the whole batch: drain the shard's
  // submission ring (MPSC mode), then advance. Targets are absolute (not
  // now()+delta per shard): shard clocks normally tick in lockstep, but a
  // DispatchPool in ticker mode advances shards independently, so a shard
  // whose cursor already passed `target` is skipped rather than over-advanced
  // — driving the wheel globally after a pool stopped re-converges every shard
  // onto `target`. The drain-then-advance order is what makes the
  // NextExpiryHint contract sound for callers that jump: a start whose enqueue
  // completed before this call is registered here, before any slot it could
  // land in is crossed.
  const bool mpsc = deferred();
  std::vector<PendingExpiry> pending;
  std::vector<std::pair<RequestId, Tick>> fires;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (mpsc) {
      shard.submit->Drain(*shard.wheel);
    }
    if (shard.wheel->now() < target) {
      shard.wheel->AdvanceTo(target);
    }
    shard.cursor.store(shard.wheel->now(), std::memory_order_release);
    if (mpsc) {
      for (const auto& [id, when] : shard.collected) {
        pending.push_back(PendingExpiry{s, id, when});
      }
    } else {
      fires.insert(fires.end(), shard.collected.begin(), shard.collected.end());
    }
    shard.collected.clear();
  }
  CommitNow(target);

  // Each shard's stage is already chronological; the stable merge re-establishes
  // cross-shard tick order while keeping FIFO order within a tick (shards are
  // visited in the same order PerTickBookkeeping would visit them).
  if (mpsc) {
    std::stable_sort(pending.begin(), pending.end(),
                     [](const auto& a, const auto& b) { return a.when < b.when; });
    ClaimFires(pending, fires);
  } else {
    std::stable_sort(fires.begin(), fires.end(),
                     [](const auto& a, const auto& b) { return a.second < b.second; });
  }
  return Dispatch(fires);
}

bool ShardedWheel::ResolveClaim(std::uint32_t shard_index,
                                const RequestId& inner_id, Tick when,
                                std::vector<std::pair<RequestId, Tick>>& fires) {
  RequestId client_id = 0;
  switch (shards_[shard_index]->submit->ClaimFire(
      ShardSubmitQueue::InnerIdIndex(inner_id),
      ShardSubmitQueue::InnerIdGeneration(inner_id), &client_id)) {
    case ShardSubmitQueue::FireResolution::kDeliver:
      fires.emplace_back(client_id, when);
      client_fired_laps_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShardSubmitQueue::FireResolution::kDeliverFinal:
      fires.emplace_back(client_id, when);
      client_expiries_.fetch_add(1, std::memory_order_relaxed);
      live_.fetch_sub(1, std::memory_order_relaxed);
      break;
    case ShardSubmitQueue::FireResolution::kStopInner:
      return true;
    case ShardSubmitQueue::FireResolution::kSuppress:
      break;
  }
  return false;
}

void ShardedWheel::ClaimFires(const std::vector<PendingExpiry>& expired,
                              std::vector<std::pair<RequestId, Tick>>& fires) {
  // Two-pass commit: claim every collected expiry (one-shots and final
  // periodic fires bump their entry's generation, so StopTimer on them now
  // returns kNoSuchTimer; non-final periodic fires bump the word's fire epoch,
  // keeping the handle live) before the caller dispatches any handler. Entries
  // whose cancel won the race are suppressed and reclaimed inside ClaimFire —
  // except cancelled periodic entries whose re-armed inner record is still
  // live, which need the shard mutex and are resolved in a third pass below.
  fires.reserve(fires.size() + expired.size());
  std::vector<PendingExpiry> stop_inner;
  for (const PendingExpiry& e : expired) {
    if (ResolveClaim(e.shard, e.id, e.when, fires)) {
      stop_inner.push_back(e);
    }
  }
  // Rare path (a cancel whose prompt-removal command was dropped, caught here
  // at the cancelled periodic's next fire): stop the ghost inner record under
  // its shard's mutex and reclaim the entry. live_ was already decremented by
  // the cancel's commit.
  for (const PendingExpiry& e : stop_inner) {
    Shard& shard = *shards_[e.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.submit->ReclaimCancelledPeriodic(
        ShardSubmitQueue::InnerIdIndex(e.id),
        ShardSubmitQueue::InnerIdGeneration(e.id), *shard.wheel);
  }
}

std::size_t ShardedWheel::AdvanceShard(std::uint32_t shard_index, Tick target) {
  TWHEEL_ASSERT_MSG(shard_index < shards_.size(), "AdvanceShard: no such shard");
  Shard& shard = *shards_[shard_index];
  const bool mpsc = shard.submit != nullptr;
  std::vector<std::pair<RequestId, Tick>> fires;
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (mpsc) {
    shard.submit->Drain(*shard.wheel);
  }
  if (shard.wheel->now() < target) {
    shard.wheel->AdvanceTo(target);
  }
  if (mpsc) {
    // Claim while still holding the shard mutex: every fire is committed
    // against its registration word before the batch can become visible to any
    // dispatcher, so a thief can only ever claim a fully-drained, fully-claimed
    // bucket — never a half-drained one.
    fires.reserve(shard.collected.size());
    for (const auto& [id, when] : shard.collected) {
      if (ResolveClaim(shard_index, id, when, fires)) {
        // Ghost periodic record whose cancel won: the reclaim needs the shard
        // mutex, which this path already holds.
        shard.submit->ReclaimCancelledPeriodic(
            ShardSubmitQueue::InnerIdIndex(id),
            ShardSubmitQueue::InnerIdGeneration(id), *shard.wheel);
      }
    }
  } else {
    fires = std::move(shard.collected);
  }
  shard.collected.clear();
  const std::size_t claimed = fires.size();
  if (claimed != 0) {
    auto* batch = new FireBatch{++shard.published_seq, std::move(fires), nullptr};
    // Release so the dispatcher's acquire exchange of batch_head sees the
    // fully-built batch; the failure order can stay relaxed because a failed
    // CAS publishes nothing.
    FireBatch* head = shard.batch_head.load(std::memory_order_relaxed);
    do {
      batch->next = head;
    } while (!shard.batch_head.compare_exchange_weak(
        head, batch, std::memory_order_release, std::memory_order_relaxed));
    dispatch_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  // Publish the cursor last (release): once the pool's barrier observes
  // cursor >= target, every batch this advance produced is already on the
  // stack, so "all cursors reached the target and all stacks are empty" is a
  // sound quiesce condition.
  shard.cursor.store(shard.wheel->now(), std::memory_order_release);
  return claimed;
}

std::size_t ShardedWheel::DispatchShard(std::uint32_t shard_index, bool owner) {
  TWHEEL_ASSERT_MSG(shard_index < shards_.size(), "DispatchShard: no such shard");
  Shard& shard = *shards_[shard_index];
  std::size_t delivered = 0;
  // Dispatch rights: one drainer at a time delivers this shard's batches, so
  // per-shard delivery stays serial and FIFO even when stolen. Losers leave
  // immediately — the rights holder re-checks the stack before releasing, so a
  // batch published while it was dispatching is never stranded.
  while (shard.batch_head.load(std::memory_order_acquire) != nullptr) {
    if (shard.dispatch_busy.exchange(true, std::memory_order_acquire)) {
      break;
    }
    // Sole rights holder from here: take the whole stack in one exchange and
    // reverse the newest-first chain into publication order.
    FireBatch* chain = shard.batch_head.exchange(nullptr, std::memory_order_acquire);
    FireBatch* fifo = nullptr;
    while (chain != nullptr) {
      FireBatch* next = chain->next;
      chain->next = fifo;
      fifo = chain;
      chain = next;
    }
    while (fifo != nullptr) {
      FireBatch* next = fifo->next;
      // Protocol self-check, surfaced as a counter instead of trusted: batches
      // arrive in exactly the order the shard advances published them (seq is
      // dense), and expiry ticks never run backwards within a shard.
      if (fifo->seq != shard.dispatched_seq + 1 ||
          (!fifo->fires.empty() &&
           fifo->fires.front().second < shard.last_dispatched_when)) {
        dispatch_order_violations_.fetch_add(1, std::memory_order_relaxed);
      }
      shard.dispatched_seq = fifo->seq;
      if (!fifo->fires.empty()) {
        shard.last_dispatched_when = fifo->fires.back().second;
      }
      if (!owner) {
        dispatch_steals_.fetch_add(1, std::memory_order_relaxed);
      }
      delivered += Dispatch(fifo->fires);
      delete fifo;
      fifo = next;
    }
    shard.dispatch_busy.store(false, std::memory_order_release);
  }
  return delivered;
}

void ShardedWheel::CommitNow(Tick target) {
  // Monotone max: now() is the globally *completed* clock, so it only moves
  // once the caller (DispatchPool's barrier, or the single-driver paths) has
  // seen every shard reach `target`.
  Tick cur = now_.load(std::memory_order_relaxed);
  while (cur < target && !now_.compare_exchange_weak(cur, target,
                                                     std::memory_order_release,
                                                     std::memory_order_relaxed)) {
  }
}

Tick ShardedWheel::ShardCursor(std::uint32_t shard_index) const {
  TWHEEL_ASSERT_MSG(shard_index < shards_.size(), "ShardCursor: no such shard");
  return shards_[shard_index]->cursor.load(std::memory_order_acquire);
}

bool ShardedWheel::HasPendingBatches(std::uint32_t shard_index) const {
  TWHEEL_ASSERT_MSG(shard_index < shards_.size(),
                    "HasPendingBatches: no such shard");
  const Shard& shard = *shards_[shard_index];
  // Head before rights flag — see the header comment for why this order makes
  // a false return authoritative.
  if (shard.batch_head.load(std::memory_order_acquire) != nullptr) {
    return true;
  }
  return shard.dispatch_busy.load(std::memory_order_acquire);
}

std::size_t ShardedWheel::Dispatch(
    const std::vector<std::pair<RequestId, Tick>>& fires) {
  ExpiryHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (handler) {
    for (const auto& [id, when] : fires) {
      handler(id, when);
    }
  }
  return fires.size();
}

std::optional<Tick> ShardedWheel::NextExpiryHint() const {
  std::optional<Tick> best;
  const auto fold = [&best](std::optional<Tick> hint) {
    if (hint.has_value() && (!best.has_value() || *hint < *best)) {
      best = hint;
    }
  };
  for (const auto& shard_ptr : shards_) {
    if (shard_ptr->submit != nullptr) {
      // Pending (not-yet-drained) submissions first: EarliestPending is never
      // later than the deadline of any submission completed before this call,
      // so the merged hint cannot skip past one.
      fold(shard_ptr->submit->EarliestPending());
    }
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    fold(shard_ptr->wheel->NextExpiryHint());
  }
  return best;
}

bool ShardedWheel::FastForward(Tick target) {
  // The single-writer precondition (nothing due before target) cannot be verified
  // atomically across shards, so delegate to AdvanceTo: anything that does come
  // due — including timers whose start commands are still queued and drain at
  // the head of the batch — is dispatched rather than silently skipped, and
  // dead time is still crossed in one batch per shard.
  AdvanceTo(target);
  return true;
}

std::size_t ShardedWheel::outstanding() const {
  if (deferred()) {
    // Started minus {fired, cancelled}; counts timers still awaiting their
    // drain as outstanding (the client holds a live handle for them).
    return static_cast<std::size_t>(live_.load(std::memory_order_relaxed));
  }
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    total += shard_ptr->wheel->outstanding();
  }
  return total;
}

metrics::OpCounts ShardedWheel::counts() const {
  metrics::OpCounts merged;
  for (const auto& shard_ptr : shards_) {
    if (shard_ptr->submit != nullptr) {
      merged.enqueued_starts += shard_ptr->submit->enqueued_starts();
      merged.drained_commands += shard_ptr->submit->drained_commands();
      merged.submit_retries += shard_ptr->submit->submit_retries();
      merged.restart_coalesced += shard_ptr->submit->coalesced_restarts();
    }
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    merged += shard_ptr->wheel->counts();
  }
  // Ticks are per-shard internally; report wall ticks.
  merged.ticks = now_.load(std::memory_order_relaxed);
  if (deferred()) {
    // Report the client's view of START_TIMER: the inner wheels only see the
    // drained registrations (and never see cancelled-before-drain starts).
    merged.start_calls = client_starts_.load(std::memory_order_relaxed);
    // Same for restarts: one committed client restart may surface in the inner
    // wheels as a relink, a relink-after-suppressed-fire (a fresh inner
    // start), or nothing at all (cancelled before its command drained).
    merged.restart_calls = client_restarts_.load(std::memory_order_relaxed);
    // And for periodic registrations (the off-cadence first-fire relink at
    // drain is bookkeeping, not a client restart — it is already excluded by
    // the restart_calls override above).
    merged.periodic_starts = client_periodic_starts_.load(std::memory_order_relaxed);
    // Client-view deliveries and stop attempts: the inner wheels count ghost
    // expiries (a cancelled timer whose prompt removal lost the race to its
    // own collection — the claim suppresses the fire, but the inner wheel
    // already counted it) and only the drained removal commands. Under N
    // concurrent drainers those races are routine, so the snapshot reports the
    // claim-point counters instead; with them the conservation law
    //   start_calls == expiries + successful cancels + outstanding
    // is exact at quiesce whenever no start was rejected, no matter how many
    // drainers raced (each start resolves exactly once as a delivered final
    // fire, a committed cancel, or a live registration).
    merged.expiries = client_expiries_.load(std::memory_order_relaxed);
    merged.periodic_fires = client_fired_laps_.load(std::memory_order_relaxed);
    merged.stop_calls = client_stops_.load(std::memory_order_relaxed);
  }
  merged.dispatch_batches = dispatch_batches_.load(std::memory_order_relaxed);
  merged.dispatch_steals = dispatch_steals_.load(std::memory_order_relaxed);
  return merged;
}

TimerService::SpaceProfile ShardedWheel::Space() const {
  SpaceProfile profile;
  for (const auto& shard_ptr : shards_) {
    if (shard_ptr->submit != nullptr) {
      profile.fixed_bytes += shard_ptr->submit->FixedBytes();
    }
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    SpaceProfile shard_profile = shard_ptr->wheel->Space();
    profile.fixed_bytes += shard_profile.fixed_bytes;
    profile.essential_record_bytes = shard_profile.essential_record_bytes;
  }
  return profile;
}

void ShardedWheel::set_expiry_handler(ExpiryHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

}  // namespace twheel::concurrent
