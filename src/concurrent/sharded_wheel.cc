#include "src/concurrent/sharded_wheel.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace twheel::concurrent {

ShardedWheel::ShardedWheel(std::size_t shards, std::size_t table_size) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(shards) && shards >= 1 && shards <= 256,
                    "shard count must be a power of two in [1, 256]");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->wheel = std::make_unique<HashedWheelUnsorted>(table_size);
    // Install the collector exactly once, pointing at storage that lives as long
    // as the shard itself. Installing a lambda that captures a tick-local vector
    // would leave the wheel's handler dangling after the tick returns — any expiry
    // dispatched outside that call (a future destructor drain, an overlapping
    // tick) would then write through a dead stack frame. Shard::collected is only
    // touched under Shard::mutex, which every wheel call already holds.
    Shard* raw = shard.get();
    raw->wheel->set_expiry_handler([raw](RequestId id, Tick when) {
      raw->collected.emplace_back(id, when);
    });
    shards_.push_back(std::move(shard));
  }
}

StartResult ShardedWheel::StartTimer(Duration interval, RequestId request_id) {
  const std::uint32_t index = static_cast<std::uint32_t>(
      next_shard_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1));
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  StartResult result = shard.wheel->StartTimer(interval, request_id);
  if (!result.has_value()) {
    return result;
  }
  TimerHandle inner = result.value();
  TWHEEL_ASSERT_MSG(inner.slot <= kSlotMask, "shard exceeded 2^24 concurrent timers");
  return TimerHandle{(index << kShardShift) | inner.slot, inner.generation};
}

TimerError ShardedWheel::StopTimer(TimerHandle handle) {
  if (!handle.valid()) {
    return TimerError::kNoSuchTimer;
  }
  const std::uint32_t index = handle.slot >> kShardShift;
  if (index >= shards_.size()) {
    return TimerError::kNoSuchTimer;
  }
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.wheel->StopTimer(TimerHandle{handle.slot & kSlotMask, handle.generation});
}

std::size_t ShardedWheel::PerTickBookkeeping() {
  // Collect under each shard's lock, dispatch outside all locks. The permanent
  // per-shard collector (installed in the constructor) stages expiries in
  // Shard::collected; we drain each shard's stage while still holding its lock.
  std::vector<std::pair<RequestId, Tick>> expired;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.wheel->PerTickBookkeeping();
    expired.insert(expired.end(), shard.collected.begin(), shard.collected.end());
    shard.collected.clear();
  }
  now_.fetch_add(1, std::memory_order_relaxed);

  ExpiryHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (handler) {
    for (const auto& [id, when] : expired) {
      handler(id, when);
    }
  }
  return expired.size();
}

std::size_t ShardedWheel::AdvanceTo(Tick target) {
  const Tick base = now_.load(std::memory_order_relaxed);
  TWHEEL_ASSERT_MSG(target >= base, "AdvanceTo target is in the past");
  const Duration delta = target - base;
  if (delta == 0) {
    return 0;
  }
  // One lock acquisition per shard for the whole batch. Shard clocks tick in
  // lockstep with the wall clock, so each inner wheel advances by the same delta.
  std::vector<std::pair<RequestId, Tick>> expired;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.wheel->AdvanceTo(shard.wheel->now() + delta);
    expired.insert(expired.end(), shard.collected.begin(), shard.collected.end());
    shard.collected.clear();
  }
  now_.fetch_add(delta, std::memory_order_relaxed);

  // Each shard's stage is already chronological; the stable merge re-establishes
  // cross-shard tick order while keeping FIFO order within a tick (shards are
  // visited in the same order PerTickBookkeeping would visit them).
  std::stable_sort(expired.begin(), expired.end(),
                   [](const auto& a, const auto& b) { return a.second < b.second; });

  ExpiryHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (handler) {
    for (const auto& [id, when] : expired) {
      handler(id, when);
    }
  }
  return expired.size();
}

std::optional<Tick> ShardedWheel::NextExpiryHint() const {
  std::optional<Tick> best;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    const std::optional<Tick> hint = shard_ptr->wheel->NextExpiryHint();
    if (hint.has_value() && (!best.has_value() || *hint < *best)) {
      best = hint;
    }
  }
  return best;
}

bool ShardedWheel::FastForward(Tick target) {
  // The single-writer precondition (nothing due before target) cannot be verified
  // atomically across shards, so delegate to AdvanceTo: anything that does come
  // due is dispatched rather than silently skipped, and dead time is still
  // crossed in one batch per shard.
  AdvanceTo(target);
  return true;
}

std::size_t ShardedWheel::outstanding() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    total += shard_ptr->wheel->outstanding();
  }
  return total;
}

metrics::OpCounts ShardedWheel::counts() const {
  metrics::OpCounts merged;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    merged += shard_ptr->wheel->counts();
  }
  // Ticks are per-shard internally; report wall ticks.
  merged.ticks = now_.load(std::memory_order_relaxed);
  return merged;
}

TimerService::SpaceProfile ShardedWheel::Space() const {
  SpaceProfile profile;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    SpaceProfile shard_profile = shard_ptr->wheel->Space();
    profile.fixed_bytes += shard_profile.fixed_bytes;
    profile.essential_record_bytes = shard_profile.essential_record_bytes;
  }
  return profile;
}

void ShardedWheel::set_expiry_handler(ExpiryHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

}  // namespace twheel::concurrent
