// Deferred-registration submission runtime for the sharded wheel.
//
// Appendix A.2 wants O(1), independent critical sections; the sharded wheel
// delivers that, but producers still contend with the tick path on the shard
// mutex. This layer removes the producer-side lock entirely: StartTimer and
// StopTimer become lock-free enqueues of start/cancel *commands* onto a bounded
// per-shard MPSC ring (base/mpsc_queue.h), and the tick driver drains the ring
// at tick/batch boundaries — before advancing — while it already holds the
// shard mutex. The visible semantics move from "registered immediately" to
// "registered at the next drain" (Netty's HashedWheelTimer popularized the
// shape); the timer still fires at exactly `enqueue-time now + interval`
// whenever its command drains before that tick is crossed, because the command
// carries the absolute deadline minted at enqueue time.
//
// Handles are minted at enqueue time from a per-shard registration table: a
// fixed slab of entries with a lock-free (tagged Treiber) free list and a
// packed atomic {restarts, state, generation} word per entry. The word is the
// single linearization point for every race in the system:
//
//             StartTimer            drain(start cmd)        inner expiry
//   kFree ──────────────► kPending ───────────────► kRegistered ─────► kFree
//                            │                          │     (gen+1, dispatch)
//                  StopTimer │                StopTimer │
//                            ▼                          ▼
//                   kCancelledPending          kCancelledRegistered
//                            │ drain(start cmd)         │ drain(cancel cmd)
//                            ▼                          ▼  or suppressed expiry
//                     kFree (gen+1)               kFree (gen+1)
//
// RestartTimer adds no state — it rides a saturating in-flight counter packed
// into the word's high bits. SubmitRestart is reserve-commit-publish: it
// reserves a ring ticket (unpublished, so the drainer parks before it), then
// *commits* with one CAS that increments the counter while the state is still
// kPending or kRegistered, and only then publishes the kRestart command into
// the reserved cell (the new absolute deadline travels in the command, never
// through shared entry fields; a failed commit publishes an inert kNoop
// instead). Committing strictly before the command becomes drainable is what
// makes Apply's counter accounting sound: a drained live-state kRestart
// command always finds its own commit's increment still pending (counter>0),
// so it can never be dropped with an orphaned suppression ticket left behind.
// The commit CAS is the restart-vs-fire-vs-cancel referee:
//
//   * Fire claims the word only when the counter is zero; a nonzero counter
//     suppresses the dispatch WITHOUT reclaiming (the queued restart command
//     re-registers the timer at its new deadline, minting a fresh inner record
//     if the old one was consumed by the suppressed expiry). So a committed
//     restart can never fire at the old deadline.
//   * If the fire's claim CAS wins first, the restarter's commit CAS observes
//     the bumped generation and returns kNoSuchTimer — exactly one of
//     {old-deadline fire, restart} happens, never both.
//   * A cancel zeroes the counter as it commits; in-flight restart commands
//     then observe the cancelled state at drain and help reclaim instead of
//     relinking (covering a dropped cancel command after a suppressed fire).
//   * A restart that finds the start command still pending commits the same
//     way (counter bump on kPending); it coalesces onto the SAME registration
//     entry — one handle, one table slot, no second allocation — and the
//     relink command drains right behind the start in FIFO order. These are
//     counted restart_coalesced.
//
//   * A cancel is *committed* by one CAS on the word (StopTimer returns kOk
//     synchronously); the cancel command in the ring only makes the inner-wheel
//     removal prompt. If the ring is full the command is simply dropped and the
//     removal happens lazily — at the start command's drain (cancel arrived
//     before its start drained: the pending-cancel reconciliation) or at the
//     inner expiry (the claim pass sees kCancelledRegistered and suppresses the
//     dispatch).
//   * Expiry dispatch claims the word (kRegistered → kFree, generation bumped)
//     *before* any client handler runs, so a cancel racing an expiry resolves
//     to exactly one of {fired, cancelled}, and a handler stopping a same-tick
//     sibling gets kNoSuchTimer — the same committed-at-tick-start contract the
//     differential oracle pins.
//   * Stale handles (fired, cancelled, fabricated) fail the generation check.
//
// Backpressure when a ring or the table fills is a policy: kReject surfaces
// kNoCapacity from StartTimer (and drops cancel commands, falling back to lazy
// reclamation); kSpin waits for the drainer, trading wait-freedom for
// lossless submission.
//
// Periodic timers ride the same word. A periodic registration sets a sticky
// periodic bit (bit 48) at publish; the inner wheel is registered with the true
// cadence and repeat budget, so its own expiry path re-arms the inner record in
// place and every fire — final and non-final — surfaces through ClaimFire. A
// non-final fire must NOT retire the entry (the client handle survives between
// fires), so its claim is an *epoch bump*: a CAS that increments the word's
// fire-epoch bits (49..63) while generation, state, and the restart counter
// stay put. The bump is a real write, so it serializes against the cancel and
// restart CASes exactly like the one-shot claim does — a cancel that commits
// first suppresses the dispatch; a cancel that commits after only stops future
// fires. The final fire of a finite periodic claims kRegistered -> kFree like a
// one-shot. A committed restart re-phases the NEXT lap: the in-flight restart
// counter suppresses (defers to the moved deadline) only a one-shot's fire or
// the final lap, whose inner record the expiry consumed — a non-final lap has
// already consumed budget via the inner re-arm and is delivered at the old
// cadence, so the series never under-delivers its budget. Bits 48..63 are
// "sticky": every live-state transition preserves them, and only reclaim
// (generation bump to kFree) clears them.

#ifndef TWHEEL_SRC_CONCURRENT_SUBMISSION_H_
#define TWHEEL_SRC_CONCURRENT_SUBMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <thread>

#include "src/base/assert.h"
#include "src/base/bits.h"
#include "src/base/mpsc_queue.h"
#include "src/base/types.h"
#include "src/core/timer_service.h"

namespace twheel::concurrent {

// What a producer does when a submission ring (or the registration table) is
// full: reject the operation upward, or spin until the tick driver drains.
enum class SubmitPolicy : std::uint8_t { kReject, kSpin };

struct SubmitOptions {
  // Per-shard command ring capacity; power of two >= 2. Bounds how many
  // start/cancel commands may await one drain.
  std::size_t ring_capacity = 1024;
  // Per-shard registration table capacity (concurrent live + pending timers per
  // shard); must be <= 2^24 so the entry index fits the handle's slot bits.
  std::size_t registration_capacity = 4096;
  SubmitPolicy on_full = SubmitPolicy::kReject;
};

// One shard's submission state: command ring + registration table. All methods
// prefixed Submit*/Earliest are producer-safe (lock-free); Drain and ClaimFire
// are driver-side — Drain must run under the shard mutex, ClaimFire is
// mutex-free but races are resolved by the entry word.
class ShardSubmitQueue {
 public:
  explicit ShardSubmitQueue(const SubmitOptions& options)
      : policy_(options.on_full),
        capacity_(options.registration_capacity),
        entries_(new Entry[options.registration_capacity]),
        next_(new std::atomic<std::uint32_t>[options.registration_capacity]),
        ring_(options.ring_capacity) {
    TWHEEL_ASSERT_MSG(capacity_ >= 2 && capacity_ <= (1u << 24),
                      "registration capacity must be in [2, 2^24]");
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      next_[i].store(i + 1 == capacity_ ? kNilIndex : i + 1,
                     std::memory_order_relaxed);
    }
    free_head_.store(PackHead(0, 0), std::memory_order_relaxed);
  }

  // ---- Producer side -------------------------------------------------------

  // Mint a handle and enqueue the start command. `deadline` is the absolute
  // expiry tick captured by the caller (now + interval). The returned handle's
  // slot is the *local* entry index; the wheel ORs in its shard bits.
  StartResult SubmitStart(RequestId client_id, Tick deadline) {
    return StartCommon(client_id, deadline, /*period=*/0, /*repeats=*/0);
  }

  // Periodic variant: the first fire is at `deadline`, subsequent fires every
  // `period` ticks, `repeats` times in total (0 = forever). The entry's word
  // carries the sticky periodic bit from publish on; the cadence and budget
  // travel in entry fields written before the publish.
  StartResult SubmitStartPeriodic(RequestId client_id, Tick deadline,
                                  Duration period, std::uint64_t repeats) {
    return StartCommon(client_id, deadline, period, repeats);
  }

 private:
  StartResult StartCommon(RequestId client_id, Tick deadline, Duration period,
                          std::uint64_t repeats) {
    std::uint64_t retries = 0;
    std::uint32_t index;
    while (!AllocEntry(&index, &retries)) {
      if (policy_ == SubmitPolicy::kReject) {
        FlushRetries(retries);
        return TimerError::kNoCapacity;
      }
      std::this_thread::yield();  // kSpin: wait for the drainer to reclaim
      ++retries;
    }
    Entry& entry = entries_[index];
    const std::uint32_t generation =
        GenerationOf(entry.word.load(std::memory_order_relaxed));
    entry.client_id.store(client_id, std::memory_order_relaxed);
    entry.deadline = deadline;
    entry.inner = kInvalidHandle;
    entry.period.store(period, std::memory_order_relaxed);
    entry.repeats.store(repeats, std::memory_order_relaxed);
    entry.word.store(Pack(generation, State::kPending) |
                         (period != 0 ? kPeriodicBit : 0),
                     std::memory_order_release);
    // Record the deadline for NextExpiryHint *before* publishing the command,
    // so a hint computed after a completed submission is never later than this
    // timer's expiry (see EarliestPending for the reset protocol).
    UpdateEarliest(deadline);
    if (!Push(Command{Command::Kind::kStart, index, generation}, &retries)) {
      // Ring full under kReject. Nobody else holds the handle yet, so the
      // rollback is private: retire the generation and free the entry.
      entry.word.store(Pack(generation + 1, State::kFree),
                       std::memory_order_release);
      FreeEntry(index);
      FlushRetries(retries);
      return TimerError::kNoCapacity;
    }
    enqueued_starts_.fetch_add(1, std::memory_order_relaxed);
    FlushRetries(retries);
    return TimerHandle{index, generation};
  }

 public:
  // Commit a cancel (one CAS on the word) and enqueue the removal command.
  // Returns kOk iff this call won the timer — i.e. the timer can no longer
  // fire. The command enqueue is best-effort under kReject (lazy reclamation
  // covers a dropped command).
  TimerError SubmitCancel(std::uint32_t index, std::uint32_t generation) {
    if (index >= capacity_) {
      return TimerError::kNoSuchTimer;
    }
    Entry& entry = entries_[index];
    std::uint64_t word = entry.word.load(std::memory_order_acquire);
    for (;;) {
      if (GenerationOf(word) != generation) {
        return TimerError::kNoSuchTimer;  // fired, reclaimed, or fabricated
      }
      State desired;
      switch (StateOf(word)) {
        case State::kPending:
          desired = State::kCancelledPending;
          break;
        case State::kRegistered:
          desired = State::kCancelledRegistered;
          break;
        default:
          return TimerError::kNoSuchTimer;  // already cancelled
      }
      // Zeroing the restart counter is deliberate: committed-but-undrained
      // restart commands observe the cancelled state at drain and help
      // reclaim. The sticky bits (periodic flag, fire epoch) survive — the
      // suppression passes still need to know the entry was periodic.
      if (entry.word.compare_exchange_weak(
              word, (word & kStickyMask) | Pack(generation, desired),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        break;
      }
      submit_retries_.fetch_add(1, std::memory_order_relaxed);
      // `word` was reloaded; states only move forward, so this terminates.
    }
    std::uint64_t retries = 0;
    (void)Push(Command{Command::Kind::kCancel, index, generation}, &retries);
    FlushRetries(retries);
    return TimerError::kOk;
  }

  // Commit an in-place restart to `new_deadline`. Reserve-commit-publish: a
  // ring ticket is reserved FIRST (if the ring is full under kReject the call
  // returns kNoCapacity with no state changed and the timer unmoved at its old
  // deadline), then one CAS increments the word's restart counter while the
  // entry is still kPending/kRegistered, and only then is the kRestart command
  // published into the reserved cell. The drainer parks at the unpublished
  // cell, so it can never observe the command before the commit's outcome is
  // decided — a drained live-state kRestart command is therefore always
  // committed (counter > 0 at its drain), and a committed restart always has
  // its relink command in the ring. kOk is authoritative: the timer will not
  // fire at its old deadline (a nonzero counter suppresses the claim in
  // ClaimFire) and the handle stays valid. If a fire or cancel wins the word
  // first, the reserved cell is published as an inert kNoop and the caller
  // gets kNoSuchTimer — exactly-once either way.
  TimerError SubmitRestart(std::uint32_t index, std::uint32_t generation,
                           Tick new_deadline) {
    if (index >= capacity_) {
      return TimerError::kNoSuchTimer;
    }
    Entry& entry = entries_[index];
    std::uint64_t retries = 0;
    for (;;) {
      std::uint64_t word = entry.word.load(std::memory_order_acquire);
      if (GenerationOf(word) != generation) {
        FlushRetries(retries);
        return TimerError::kNoSuchTimer;  // fired, reclaimed, or fabricated
      }
      {
        const State s = StateOf(word);
        if (s != State::kPending && s != State::kRegistered) {
          FlushRetries(retries);
          return TimerError::kNoSuchTimer;  // already cancelled
        }
        if (RestartsOf(word) == kMaxRestarts) {
          if (policy_ == SubmitPolicy::kReject) {
            FlushRetries(retries);
            return TimerError::kNoCapacity;  // drainer stalled; nothing changed
          }
          // kSpin: wait for the drainer to retire in-flight restarts. Safe to
          // wait here — no ring ticket is held, so the drainer is not parked
          // behind this producer.
          std::this_thread::yield();
          ++retries;
          continue;
        }
      }
      // Record the (possibly earlier) deadline for NextExpiryHint before the
      // command can become drainable — same protocol as SubmitStart. A failed
      // commit leaves the hint stale-early, which the contract allows.
      UpdateEarliest(new_deadline);
      std::uint64_t ticket;
      if (!Reserve(&ticket, &retries)) {
        FlushRetries(retries);
        return TimerError::kNoCapacity;  // nothing changed; old deadline stands
      }
      TimerError result;
      bool saturated = false;
      for (;;) {
        if (GenerationOf(word) != generation) {
          result = TimerError::kNoSuchTimer;  // the fire won
          break;
        }
        const State s = StateOf(word);
        if (s != State::kPending && s != State::kRegistered) {
          result = TimerError::kNoSuchTimer;  // a cancel won
          break;
        }
        if (RestartsOf(word) == kMaxRestarts) {
          // 255 OTHER commits landed between the pre-reserve check and this
          // CAS. Waiting for a decrement here would deadlock: the commands
          // that decrement may hold tickets parked behind our unpublished
          // cell. Abandon the ticket and (under kSpin) retry from the top.
          saturated = true;
          break;
        }
        if (entry.word.compare_exchange_weak(
                word,
                (word & kStickyMask) |
                    PackFull(generation, s, RestartsOf(word) + 1),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          if (s == State::kPending) {
            coalesced_restarts_.fetch_add(1, std::memory_order_relaxed);
          }
          enqueued_restarts_.fetch_add(1, std::memory_order_relaxed);
          result = TimerError::kOk;
          break;
        }
        ++retries;
      }
      if (saturated) {
        ring_.Publish(ticket, Command{Command::Kind::kNoop, 0, 0});
        if (policy_ == SubmitPolicy::kReject) {
          FlushRetries(retries);
          return TimerError::kNoCapacity;
        }
        std::this_thread::yield();
        ++retries;
        continue;
      }
      // Publish the reserved cell regardless of the commit's outcome — the
      // drainer (and every later ticket) is parked behind it. A failed commit
      // must not publish the kRestart command: a matching-generation live-state
      // drain would steal a committed restart's decrement. kNoop is inert.
      ring_.Publish(ticket, result == TimerError::kOk
                                ? Command{Command::Kind::kRestart, index,
                                          generation, new_deadline}
                                : Command{Command::Kind::kNoop, 0, 0});
      FlushRetries(retries);
      return result;
    }
  }

  // Conservative earliest deadline among commands that may still be awaiting a
  // drain; nullopt when none are known. Never later than the true earliest for
  // any submission whose Push completed before this call (it may be stale-early
  // for commands that have since drained — the inner wheel's own hint covers
  // those exactly).
  std::optional<Tick> EarliestPending() const {
    const Tick t = earliest_pending_.load(std::memory_order_acquire);
    if (t == kNoPending) {
      return std::nullopt;
    }
    return t;
  }

  // ---- Driver side ---------------------------------------------------------

  // Drain up to one ring's worth of commands into `wheel`, registering starts
  // (at `deadline - wheel.now()`, clamped to 1 for deadlines the clock already
  // passed) and removing cancelled timers. MUST run under the shard mutex —
  // that is what serializes ring consumption and entry registration. Returns
  // the number of commands consumed.
  std::size_t Drain(TimerService& wheel) {
    const Tick observed = earliest_pending_.load(std::memory_order_acquire);
    bool emptied = false;
    const std::size_t drained = ring_.Drain(
        ring_.capacity(),
        [&](const Command& cmd) { Apply(cmd, wheel); }, &emptied);
    drained_commands_.fetch_add(drained, std::memory_order_relaxed);
    if (emptied) {
      // Everything published up to the cut is now in the wheel, so the hint
      // this drain observed is covered by the inner wheel. Reset it — unless a
      // producer recorded a new deadline meanwhile, in which case the CAS fails
      // and the (conservative) newer minimum survives.
      Tick expected = observed;
      earliest_pending_.compare_exchange_strong(expected, kNoPending,
                                                std::memory_order_acq_rel);
    }
    return drained;
  }

  // How one collected inner-wheel expiry resolved against the entry word.
  enum class FireResolution : std::uint8_t {
    kSuppress,      // nothing to dispatch; any reclaim already happened here
    kDeliver,       // dispatch; the entry stays live (non-final periodic fire)
    kDeliverFinal,  // dispatch; the entry was claimed and reclaimed
    kStopInner,     // a cancel won, but the periodic's re-armed inner record is
                    // still live — the caller must resolve it under the shard
                    // mutex via ReclaimCancelledPeriodic
  };

  // Resolve an inner-wheel expiry for entry (index, generation); fills
  // `client_id` on the kDeliver* outcomes. One-shots and final periodic fires
  // claim the word (generation bump, entry reclaimed); non-final periodic fires
  // claim by bumping the sticky fire-epoch bits so the handle survives — either
  // way the claim is a CAS, so a racing cancel or restart resolves exactly
  // once. Thread-safe against producers; the wheel calls it for every collected
  // expiry *before* dispatching any client handler, which is what commits a
  // tick's expiry set at the start of the tick.
  FireResolution ClaimFire(std::uint32_t index, std::uint32_t generation,
                           RequestId* client_id) {
    Entry& entry = entries_[index];
    std::uint64_t word = entry.word.load(std::memory_order_acquire);
    for (;;) {
      if (GenerationOf(word) != generation) {
        // A drained cancel command already reclaimed the entry.
        return FireResolution::kSuppress;
      }
      const bool periodic = (word & kPeriodicBit) != 0;
      // Mirrors the inner record's remaining-fire budget (see
      // DecrementRepeats); 1 means the fire being resolved was the final one.
      const std::uint64_t repeats =
          periodic ? entry.repeats.load(std::memory_order_relaxed) : 1;
      switch (StateOf(word)) {
        case State::kRegistered: {
          if (RestartsOf(word) != 0 && !(periodic && repeats != 1)) {
            // A committed restart is awaiting its drain: suppress this
            // (old-deadline) dispatch but do NOT reclaim — the inner record
            // was consumed by this expiry (a one-shot's only fire or a
            // periodic's final lap), so the restart command re-registers it
            // at the moved deadline and the deferred fire still arrives:
            // the budget is conserved, just re-phased.
            //
            // A non-final periodic lap is NOT suppressed: the inner wheel's
            // re-arm already consumed one lap of the budget, so swallowing
            // the dispatch here would under-deliver the series (the client
            // was promised exactly `repeats` laps). The lap is delivered at
            // the old cadence and the pending restart re-phases the NEXT lap
            // when its command drains and relinks the live inner record.
            return FireResolution::kSuppress;
          }
          // Relaxed read ordered by the word acquire; a stale value (the entry
          // recycled between the load above and here) dies with the failed CAS.
          const RequestId id = entry.client_id.load(std::memory_order_relaxed);
          if (periodic && repeats != 1) {
            // Non-final periodic fire: the claim is an epoch bump. The word
            // changes — so the cancel/restart CASes serialize against it — but
            // generation, state, and the client's handle all survive.
            if (entry.word.compare_exchange_weak(
                    word, word + kEpochIncrement, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
              DecrementRepeats(entry);
              *client_id = id;
              return FireResolution::kDeliver;
            }
            continue;  // a canceller or restarter intervened; re-resolve
          }
          if (entry.word.compare_exchange_weak(
                  word, Pack(generation + 1, State::kFree),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            *client_id = id;
            FreeEntry(index);
            return FireResolution::kDeliverFinal;
          }
          continue;  // a canceller or restarter intervened between load and CAS
        }
        case State::kCancelledRegistered:
          if (periodic && repeats != 1) {
            // Cancel won, but this non-final fire already re-armed the inner
            // record — it must be stopped under the shard mutex before the
            // entry can be reclaimed, or it would fire as a ghost forever.
            return FireResolution::kStopInner;
          }
          // Cancel won after the inner record was consumed by this expiry.
          // Reclaim (the cancel command, if any, sees the bumped generation
          // and no-ops).
          (void)TryReclaim(index, generation, State::kCancelledRegistered);
          return FireResolution::kSuppress;
        default:
          // kPending/kCancelledPending cannot reach the inner wheel; kFree with
          // a matching generation cannot exist (reclaim bumps it). Defensive:
          return FireResolution::kSuppress;
      }
    }
  }

  // Driver-side, MUST run under the shard mutex: stop the still-armed inner
  // record of a cancelled periodic entry and reclaim the entry. The mutex
  // serializes this against the cancel command's own drain (Apply), so exactly
  // one of them stops the inner record and wins the reclaim CAS.
  void ReclaimCancelledPeriodic(std::uint32_t index, std::uint32_t generation,
                                TimerService& wheel) {
    Entry& entry = entries_[index];
    const std::uint64_t word = entry.word.load(std::memory_order_acquire);
    if (GenerationOf(word) != generation ||
        StateOf(word) != State::kCancelledRegistered) {
      return;  // already resolved by the cancel command or a racing reclaim
    }
    const TimerHandle inner = entry.inner;  // read before reclaim recycles it
    (void)wheel.StopTimer(inner);
    (void)TryReclaim(index, generation, State::kCancelledRegistered);
  }

  // ---- Accounting ----------------------------------------------------------

  std::uint64_t enqueued_starts() const {
    return enqueued_starts_.load(std::memory_order_relaxed);
  }
  std::uint64_t enqueued_restarts() const {
    return enqueued_restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t coalesced_restarts() const {
    return coalesced_restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t drained_commands() const {
    return drained_commands_.load(std::memory_order_relaxed);
  }
  std::uint64_t submit_retries() const {
    return submit_retries_.load(std::memory_order_relaxed);
  }

  std::size_t FixedBytes() const {
    return MpscRing<Command>::BytesFor(ring_.capacity()) +
           capacity_ * (sizeof(Entry) + sizeof(std::atomic<std::uint32_t>));
  }

 private:
  enum class State : std::uint8_t {
    kFree = 0,
    kPending = 1,              // start command enqueued, not yet drained
    kRegistered = 2,           // live in the inner wheel
    kCancelledPending = 3,     // cancelled before the start command drained
    kCancelledRegistered = 4,  // cancelled while live in the inner wheel
  };

  struct Command {
    // kNoop fills a reserved-then-abandoned cell (a restart whose commit CAS
    // lost to a fire/cancel, or hit counter saturation); Apply ignores it.
    enum class Kind : std::uint8_t { kStart, kCancel, kRestart, kNoop };
    Kind kind;
    std::uint32_t index;
    std::uint32_t generation;
    // kRestart only: the new absolute deadline. Carried in the command (not an
    // entry field) so a racing producer can never scribble a stale deadline
    // over a recycled entry — the command's generation check gates its use.
    Tick deadline = 0;
  };

  struct Entry {
    // {epoch:15 | periodic:1 | restarts:8 | state:8 | generation:32} — the
    // linearization point (see file comment).
    std::atomic<std::uint64_t> word{0};
    // Atomic because ClaimFire reads it outside the shard mutex and may race a
    // producer re-initializing a recycled entry; the generation CAS discards
    // any stale read. deadline/inner need no atomicity: deadline is written
    // before the kPending release-publish and read only at drain (under the
    // shard mutex, while kPending pins the entry); inner is driver-only.
    std::atomic<RequestId> client_id{0};
    Tick deadline = 0;
    TimerHandle inner = kInvalidHandle;  // driver-only, valid in *Registered
    // Periodic cadence and remaining-fire mirror. Written by the producer
    // before the kPending publish; thereafter period is read-only and repeats
    // is decremented only by claim passes, in lockstep with the inner record's
    // own budget. Atomic (relaxed) because claim passes run outside the shard
    // mutex while a producer may be re-initializing a recycled entry.
    std::atomic<Duration> period{0};
    std::atomic<std::uint64_t> repeats{0};
  };

  static constexpr std::uint32_t kNilIndex =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr Tick kNoPending = std::numeric_limits<Tick>::max();
  // In-flight (committed, not yet drained) restarts per entry saturate here;
  // 255 undrained restarts of one timer means the drainer has stalled and the
  // producer gets kNoCapacity, same as a full ring.
  static constexpr std::uint64_t kMaxRestarts = 0xff;

  // Word layout: {epoch:15 | periodic:1 | restarts:8 | state:8 | generation:32}.
  // Bits 48..63 are sticky: preserved by every live-state transition (cancel,
  // restart commit, registration, restart-counter decrement), cleared only by
  // reclaim. The periodic bit marks the entry's kind for the claim passes; the
  // epoch is a wrapping counter whose only job is to make a non-final periodic
  // fire's claim a *distinct word value*, so it is a real CAS that cancels and
  // restarts serialize against.
  static constexpr std::uint64_t kPeriodicBit = 1ull << 48;
  static constexpr std::uint64_t kEpochIncrement = 1ull << 49;
  static constexpr std::uint64_t kStickyMask = 0xFFFF000000000000ull;

  static constexpr std::uint64_t Pack(std::uint32_t generation, State state) {
    return (static_cast<std::uint64_t>(state) << 32) | generation;
  }
  static constexpr std::uint64_t PackFull(std::uint32_t generation, State state,
                                          std::uint64_t restarts) {
    return (restarts << 40) | (static_cast<std::uint64_t>(state) << 32) |
           generation;
  }
  static constexpr std::uint32_t GenerationOf(std::uint64_t word) {
    return static_cast<std::uint32_t>(word);
  }
  static constexpr State StateOf(std::uint64_t word) {
    return static_cast<State>((word >> 32) & 0xff);
  }
  static constexpr std::uint64_t RestartsOf(std::uint64_t word) {
    return (word >> 40) & 0xff;
  }
  static constexpr std::uint64_t PackHead(std::uint32_t tag, std::uint32_t index) {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }

  void FlushRetries(std::uint64_t retries) {
    if (retries != 0) {
      submit_retries_.fetch_add(retries, std::memory_order_relaxed);
    }
  }

  // Tagged Treiber free list. The tag bumps on every successful pop so a
  // pop-use-repush cycle by another thread cannot ABA a stale head.
  bool AllocEntry(std::uint32_t* index, std::uint64_t* retries) {
    std::uint64_t head = free_head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = static_cast<std::uint32_t>(head);
      if (idx == kNilIndex) {
        return false;  // table exhausted
      }
      const std::uint32_t next = next_[idx].load(std::memory_order_relaxed);
      const std::uint64_t desired =
          PackHead(static_cast<std::uint32_t>(head >> 32) + 1, next);
      if (free_head_.compare_exchange_weak(head, desired,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        *index = idx;
        return true;
      }
      ++*retries;
    }
  }

  void FreeEntry(std::uint32_t index) {
    std::uint64_t head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[index].store(static_cast<std::uint32_t>(head),
                         std::memory_order_relaxed);
      const std::uint64_t desired =
          PackHead(static_cast<std::uint32_t>(head >> 32) + 1, index);
      if (free_head_.compare_exchange_weak(head, desired,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return;
      }
    }
  }

  // Exclusive reclaim of a cancelled entry: exactly one of the racing driver
  // paths (cancel-command drain vs suppressed-expiry claim) wins the CAS and
  // frees the entry; the loser observes the bumped generation and drops. The
  // expected word cannot be constructed (the sticky bits are arbitrary), so
  // this is a read-check-CAS loop; the reclaim clears the sticky bits.
  bool TryReclaim(std::uint32_t index, std::uint32_t generation, State from) {
    Entry& entry = entries_[index];
    std::uint64_t word = entry.word.load(std::memory_order_acquire);
    for (;;) {
      if (GenerationOf(word) != generation || StateOf(word) != from) {
        return false;  // another reclaimer won
      }
      if (entry.word.compare_exchange_weak(word,
                                           Pack(generation + 1, State::kFree),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        FreeEntry(index);
        return true;
      }
    }
  }

  // Lockstep decrement of the entry's remaining-fire mirror (never below 1 —
  // 1 marks the final fire, and kRepeatForever = 0 never moves). CAS loop
  // because claim passes for distinct fire events may run concurrently.
  static void DecrementRepeats(Entry& entry) {
    std::uint64_t r = entry.repeats.load(std::memory_order_relaxed);
    while (r > 1 && !entry.repeats.compare_exchange_weak(
                        r, r - 1, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
    }
  }

  bool Push(const Command& cmd, std::uint64_t* retries) {
    for (;;) {
      if (ring_.TryPush(cmd, retries)) {
        return true;
      }
      if (policy_ == SubmitPolicy::kReject) {
        return false;
      }
      std::this_thread::yield();  // kSpin: bounded by the drainer's progress
      ++*retries;
    }
  }

  // Policy-aware ticket reservation (first half of a two-phase push — the
  // caller MUST Publish the ticket, a kNoop if the operation is abandoned).
  bool Reserve(std::uint64_t* ticket, std::uint64_t* retries) {
    for (;;) {
      if (ring_.TryReserve(ticket, retries)) {
        return true;
      }
      if (policy_ == SubmitPolicy::kReject) {
        return false;
      }
      std::this_thread::yield();  // kSpin: bounded by the drainer's progress
      ++*retries;
    }
  }

  void UpdateEarliest(Tick deadline) {
    Tick current = earliest_pending_.load(std::memory_order_relaxed);
    while (deadline < current &&
           !earliest_pending_.compare_exchange_weak(
               current, deadline, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
  }

  // Register (or re-register) an entry's inner-wheel record due in `remaining`
  // ticks — as a periodic carrying the entry's cadence and mirrored budget
  // when the entry is periodic. Runs under the shard mutex.
  void RegisterInner(Entry& entry, std::uint32_t index, std::uint32_t generation,
                     Duration remaining, TimerService& wheel) {
    const Duration period = entry.period.load(std::memory_order_relaxed);
    const RequestId inner_id = PackInnerId(index, generation);
    // The inner record carries the true cadence and budget, so the inner
    // wheel's own expiry path re-arms it in place between fires. When the
    // first fire is off-cadence (remaining != period), the in-place relink
    // moves just that first deadline; the record's period is untouched.
    StartResult result =
        period != 0
            ? wheel.StartPeriodic(
                  period, inner_id,
                  entry.repeats.load(std::memory_order_relaxed))
            : wheel.StartTimer(remaining, inner_id);
    TWHEEL_ASSERT_MSG(result.has_value(),
                      "inner wheel rejected a drained registration");
    if (period != 0 && remaining != period) {
      (void)wheel.RestartTimer(result.value(), remaining);
    }
    entry.inner = result.value();
  }

  // Applies one drained command. Runs under the shard mutex.
  void Apply(const Command& cmd, TimerService& wheel) {
    if (cmd.kind == Command::Kind::kNoop) {
      return;  // an abandoned reservation; carries no entry identity
    }
    Entry& entry = entries_[cmd.index];
    std::uint64_t word = entry.word.load(std::memory_order_acquire);
    if (GenerationOf(word) != cmd.generation) {
      return;  // a previous incarnation's command; the entry moved on
    }
    if (cmd.kind == Command::Kind::kStart) {
      while (StateOf(word) == State::kPending) {
        // Preserve the restart counter (and sticky bits): a restart committed
        // against the pending entry (coalesced) carries across the
        // registration, and its relink command drains right behind this one.
        if (entry.word.compare_exchange_weak(
                word,
                (word & kStickyMask) |
                    PackFull(cmd.generation, State::kRegistered,
                             RestartsOf(word)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          const Tick now = wheel.now();
          const Duration remaining =
              entry.deadline > now ? entry.deadline - now : 1;
          RegisterInner(entry, cmd.index, cmd.generation, remaining, wheel);
          return;
        }
        if (GenerationOf(word) != cmd.generation) {
          return;
        }
        // CAS lost to a canceller (terminal) or a coalescing restarter
        // (counter bump — retry the registration with the new counter).
      }
      if (StateOf(word) == State::kCancelledPending) {
        // The pending-cancel reconciliation: cancel committed before this start
        // drained, so the timer is never registered at all.
        (void)TryReclaim(cmd.index, cmd.generation, State::kCancelledPending);
      }
      // kRegistered/kCancelledRegistered with a matching generation would mean
      // a double drain of the same start; the FIFO ring makes that impossible.
    } else if (cmd.kind == Command::Kind::kRestart) {
      // A kRestart command is published only AFTER its commit CAS succeeded
      // (reserve-commit-publish; an uncommitted reservation is published as
      // kNoop), and the publish happens-before this drain observes the cell.
      // So a drained restart command with a matching generation and a live
      // state carries a commit whose counter increment has not yet been
      // consumed — a nonzero counter is guaranteed here, and the relink
      // happens exactly once per commit, in ring FIFO order — the
      // last-drained deadline wins.
      if (StateOf(word) == State::kRegistered && RestartsOf(word) != 0) {
        const Tick now = wheel.now();
        const Duration remaining =
            cmd.deadline > now ? cmd.deadline - now : 1;
        // A non-final periodic's inner record survived its (suppressed or
        // delivered) fires — the relink just moves its next deadline and the
        // cadence rides along untouched.
        if (wheel.RestartTimer(entry.inner, remaining) != TimerError::kOk) {
          // The old inner record was consumed by a suppressed (counter > 0)
          // expiry — a one-shot's only fire or a periodic's final fire;
          // re-register under the same entry identity (periodic entries
          // resume with their mirrored remaining budget).
          RegisterInner(entry, cmd.index, cmd.generation, remaining, wheel);
        }
        entry.deadline = cmd.deadline;
        // Release this commit's suppression ticket. Stop if a cancel slips in
        // concurrently — it zeroes the counter itself.
        while (!entry.word.compare_exchange_weak(
            word,
            (word & kStickyMask) | PackFull(cmd.generation, State::kRegistered,
                                            RestartsOf(word) - 1),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
          if (GenerationOf(word) != cmd.generation ||
              StateOf(word) != State::kRegistered) {
            break;
          }
        }
      } else if (StateOf(word) == State::kCancelledRegistered) {
        // A cancel won after this restart committed; help reclaim (covers a
        // dropped cancel command when the suppressed expiry already passed).
        (void)wheel.StopTimer(entry.inner);
        (void)TryReclaim(cmd.index, cmd.generation, State::kCancelledRegistered);
      }
      // kPending is unreachable (this entry's start precedes every restart in
      // the FIFO ring); kCancelledPending means the start never registered.
    } else {  // kCancel
      if (StateOf(word) == State::kCancelledRegistered) {
        // Prompt removal. May return kNoSuchTimer when the inner record was
        // already collected by a concurrent driver's tick — the suppressed
        // claim pass reclaims in that interleaving.
        (void)wheel.StopTimer(entry.inner);
        (void)TryReclaim(cmd.index, cmd.generation, State::kCancelledRegistered);
      }
      // kCancelledPending: unreachable while the ring is FIFO (the start
      // command precedes its cancel); if it ever surfaces, the start command's
      // drain reclaims. Other states: the entry was already resolved.
    }
  }

 public:
  // The inner wheel's RequestId for a registration carries the entry identity;
  // the wheel's collected expiries come back through ClaimFire with it. The
  // shard index rides in bits the wheel adds (see ShardedWheel).
  static constexpr RequestId PackInnerId(std::uint32_t index,
                                         std::uint32_t generation) {
    return (static_cast<RequestId>(generation) << 32) | index;
  }
  static constexpr std::uint32_t InnerIdIndex(RequestId id) {
    return static_cast<std::uint32_t>(id) & 0x00ffffffu;
  }
  static constexpr std::uint32_t InnerIdGeneration(RequestId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

 private:
  const SubmitPolicy policy_;
  const std::uint32_t capacity_;
  std::unique_ptr<Entry[]> entries_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> next_;
  alignas(64) std::atomic<std::uint64_t> free_head_{0};
  alignas(64) std::atomic<Tick> earliest_pending_{kNoPending};
  MpscRing<Command> ring_;

  std::atomic<std::uint64_t> enqueued_starts_{0};
  std::atomic<std::uint64_t> enqueued_restarts_{0};
  std::atomic<std::uint64_t> coalesced_restarts_{0};
  std::atomic<std::uint64_t> drained_commands_{0};
  std::atomic<std::uint64_t> submit_retries_{0};
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_SUBMISSION_H_
