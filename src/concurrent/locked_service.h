// Global-lock thread-safety wrapper (Appendix A.2's baseline).
//
// "Steve Glaser has pointed out that algorithms that tie up a common data structure
// for a large period of time will reduce efficiency. For instance in Scheme 2, when
// Processor A inserts a timer into the ordered list other processors cannot process
// timer module routines until Processor A finishes and releases its semaphore."
//
// LockedService is that single semaphore: one mutex around any TimerService. Wrapped
// around Scheme 2 it reproduces the serialization the appendix criticizes — the
// lock is held for the full O(n) insertion scan; wrapped around Scheme 6 the
// critical sections are O(1) but still globally serialized. ShardedWheel (sharded
// locks) is the contrast the appendix says Schemes 5-7 are suited for.
//
// Expiry handlers run with the lock held; handlers must not call back into the
// service from another thread's perspective (same-thread reentrancy would deadlock a
// std::mutex, so handlers must not start/stop timers on *this* wrapper — use the
// collect-then-dispatch pattern of ShardedWheel when that is needed).

#ifndef TWHEEL_SRC_CONCURRENT_LOCKED_SERVICE_H_
#define TWHEEL_SRC_CONCURRENT_LOCKED_SERVICE_H_

#include <memory>
#include <mutex>
#include <utility>

#include "src/core/timer_service.h"

namespace twheel::concurrent {

class LockedService final : public TimerService {
 public:
  explicit LockedService(std::unique_ptr<TimerService> inner)
      : inner_(std::move(inner)) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StartTimer(interval, request_id);
  }

  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StartPeriodic(interval, request_id, repeat_for);
  }

  TimerError StopTimer(TimerHandle handle) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StopTimer(handle);
  }

  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->RestartTimer(handle, new_interval);
  }

  std::size_t PerTickBookkeeping() final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->PerTickBookkeeping();
  }

  // One lock acquisition for the whole batch — the batched analogue of the
  // appendix's criticism: a long AdvanceTo on a slow inner scheme holds the
  // global lock for the full span.
  std::size_t AdvanceTo(Tick target) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->AdvanceTo(target);
  }

  std::optional<Tick> NextExpiryHint() const final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->NextExpiryHint();
  }

  bool FastForward(Tick target) final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->FastForward(target);
  }

  Tick now() const final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->now();
  }

  std::size_t outstanding() const final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->outstanding();
  }

  metrics::OpCounts counts() const final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->counts();
  }

  std::string_view name() const final { return "locked-wrapper"; }

  SpaceProfile Space() const final {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Space();
  }

  void set_expiry_handler(ExpiryHandler handler) final {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->set_expiry_handler(std::move(handler));
  }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<TimerService> inner_;
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_LOCKED_SERVICE_H_
