// Sharded-lock hashed wheel for symmetric multiprocessors (Appendix A.2).
//
// "Scheme 5, 6, and 7 seem suited for implementation in symmetric multiprocessors"
// because their critical sections are O(1) and independent: this class runs K
// independent Scheme 6 wheels, each behind its own mutex. START_TIMER picks a shard
// round-robin and locks only it; STOP_TIMER decodes the shard from the handle and
// locks only it. Contention falls by ~K versus a single global lock, which the
// bench_appA2_smp benchmark measures against LockedService around Scheme 2 (the
// appendix's criticized single-semaphore configuration).
//
// PER_TICK_BOOKKEEPING ticks every shard, collecting expiries under each shard's
// lock but dispatching the client's ExpiryHandler after release, so handlers may
// freely start and stop timers.
//
// Deferred-registration (MPSC) mode — the three-argument constructor — removes
// the shard mutex from the producer path entirely: StartTimer/StopTimer become
// lock-free enqueues of start/cancel commands onto a per-shard bounded MPSC ring
// (src/concurrent/submission.h), which the tick driver drains at tick/batch
// boundaries *before* advancing, while it already holds each shard's mutex. A
// timer becomes visible to the wheel at that drain; it still fires at exactly
// `now-at-StartTimer + interval` whenever its command drains before that tick is
// crossed (drain-before-advance guarantees this for any submission that completed
// before the AdvanceTo/PerTickBookkeeping call began), and at the first tick
// after the drain otherwise. Driven single-threaded, the mode is observationally
// equivalent to the locked mode — every differential-oracle test runs both.
//
// Handles encode the shard in the top byte of the slot index; each shard may hold
// up to 2^24 concurrent timers (locked mode: inner arena slot; MPSC mode:
// registration-table index, bounded by SubmitOptions::registration_capacity).

#ifndef TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
#define TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/bits.h"
#include "src/concurrent/submission.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/timer_service.h"

namespace twheel::concurrent {

class ShardedWheel final : public TimerService {
 public:
  // Locked mode: `shards` must be a power of two in [1, 256]; `table_size` is
  // per-shard.
  ShardedWheel(std::size_t shards, std::size_t table_size);
  // Deferred-registration mode: same wheel geometry plus a per-shard submission
  // runtime (ring + registration table) configured by `submit`.
  ShardedWheel(std::size_t shards, std::size_t table_size,
               const SubmitOptions& submit);

  // Locked mode: registers under the shard mutex. MPSC mode: lock-free — mints
  // a generation-checked handle, captures `now() + interval` as the absolute
  // deadline, and enqueues a start command; kNoCapacity under
  // SubmitPolicy::kReject when the shard's ring or table is full.
  StartResult StartTimer(Duration interval, RequestId request_id) override;
  // Periodic registration. Locked mode: forwards to the inner wheel under the
  // shard mutex (the inner record re-arms itself in place on every non-final
  // fire, so the handle survives between fires). MPSC mode: lock-free — the
  // registration entry carries a sticky periodic bit plus the cadence, the
  // inner wheel is registered with the true repeat budget at drain, and each
  // collected fire resolves against the entry word: non-final fires claim by
  // bumping the word's fire-epoch bits (handle and generation preserved),
  // the final fire claims and reclaims like a one-shot expiry.
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) override;
  // Locked mode: removes under the shard mutex. MPSC mode: lock-free — commits
  // the cancel with one CAS (the result is authoritative: kOk means the timer
  // will never fire) and enqueues a best-effort prompt-removal command.
  TimerError StopTimer(TimerHandle handle) override;
  // Locked mode: in-place relink under the shard mutex (the inner Scheme 6
  // wheel's O(1) RestartTimer). MPSC mode: lock-free — reserves a ring cell,
  // commits with one CAS on the entry word, then publishes a kRestart command
  // carrying `now() + new_interval` into the reserved cell (see
  // ShardSubmitQueue::SubmitRestart). kOk is authoritative:
  // the timer cannot fire at its old deadline and the handle stays valid; a
  // restart losing the word to a fire or cancel gets kNoSuchTimer, so
  // restart-vs-fire resolves exactly once. A restart whose start command has
  // not drained yet coalesces onto the same registration entry.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) override;
  std::size_t PerTickBookkeeping() override;
  // Batched tick advancement: one lock acquisition per shard per *batch* instead
  // of per tick, with each shard's inner wheel jumping its dead slots via the
  // occupancy bitmap. In MPSC mode each shard's submission ring is drained
  // under that same lock acquisition, before the shard advances — so no start
  // whose enqueue completed before this call can be skipped past. Expiries from
  // all shards are re-merged into chronological order (FIFO within a tick)
  // before dispatch outside the locks.
  std::size_t AdvanceTo(Tick target) override;
  // Minimum of the shards' hints; in MPSC mode also folds in each shard's
  // pending-submission deadline minimum, so a hint taken after a completed
  // StartTimer is never later than that timer's deadline even though its
  // command has not drained yet. Concurrent starts *during* the scan can still
  // make the hint stale-late; AdvanceTo/FastForward stay correct regardless
  // because they drain before advancing and dispatch (never skip) anything that
  // comes due.
  std::optional<Tick> NextExpiryHint() const override;
  bool FastForward(Tick target) override;
  Tick now() const override { return now_.load(std::memory_order_relaxed); }
  std::size_t outstanding() const override;
  // Snapshot merged across shards; by value so nothing shared escapes the locks.
  // MPSC mode adds the submission counters (enqueued_starts, drained_commands,
  // submit_retries).
  metrics::OpCounts counts() const override;
  std::string_view name() const override {
    return deferred() ? "scheme6-sharded-mpsc" : "scheme6-sharded";
  }
  void set_expiry_handler(ExpiryHandler handler) override;

  std::size_t num_shards() const { return shards_.size(); }
  bool deferred() const { return shards_[0]->submit != nullptr; }

  // MPSC mode: drain every shard's command ring into its wheel without
  // advancing the clock (each shard under its own mutex). Returns commands
  // consumed. Exposed for tests and for drivers that want registration latency
  // tighter than their tick period. No-op in locked mode.
  std::size_t DrainSubmissions();

  // Sum of the shards' structures; per-record needs match Scheme 6's. MPSC
  // mode adds the rings and registration tables to fixed_bytes.
  SpaceProfile Space() const override;

 private:
  static constexpr std::uint32_t kShardShift = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kShardShift) - 1;

  struct Shard {
    std::mutex mutex;
    // Expiries the inner wheel reported, staged under `mutex` until the next
    // PerTickBookkeeping drains them for dispatch outside all locks. Declared
    // before `wheel` so it outlives the wheel (whose permanently installed
    // expiry handler appends here) during shard destruction.
    std::vector<std::pair<RequestId, Tick>> collected;
    std::unique_ptr<HashedWheelUnsorted> wheel;
    // Deferred-registration runtime; nullptr in locked mode.
    std::unique_ptr<ShardSubmitQueue> submit;
  };

  // An expiry collected from a shard but not yet resolved against the shard's
  // registration table (MPSC mode). `id` is the inner packed {generation,
  // entry index}, not the client cookie.
  struct PendingExpiry {
    std::uint32_t shard;
    RequestId id;
    Tick when;
  };

  void Construct(std::size_t shards, std::size_t table_size,
                 const SubmitOptions* submit);
  // MPSC mode: resolve collected expiries against the registration tables —
  // claiming ALL fires before the caller dispatches ANY handler, so a tick's
  // expiry set is committed when the tick begins (a handler stopping a
  // same-tick sibling gets kNoSuchTimer, matching the oracle and the locked
  // mode) — and append the surviving {client cookie, tick} pairs to `fires`.
  void ClaimFires(const std::vector<PendingExpiry>& expired,
                  std::vector<std::pair<RequestId, Tick>>& fires);
  std::size_t Dispatch(const std::vector<std::pair<RequestId, Tick>>& fires);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<Tick> now_{0};
  // MPSC mode: started minus {fired, cancelled}, maintained without locks.
  std::atomic<std::uint64_t> live_{0};
  // MPSC mode: client-level StartTimer invocations (including rejects). The
  // inner wheels count start_calls only at drain, and a cancelled-before-drain
  // start never reaches them, so counts() reports this instead.
  std::atomic<std::uint64_t> client_starts_{0};
  // MPSC mode: committed (kOk) RestartTimer calls; the client-level analogue
  // of restart_calls (inner wheels only see the drained relinks).
  std::atomic<std::uint64_t> client_restarts_{0};
  // MPSC mode: successful client StartPeriodic calls (the inner wheels count
  // periodic_starts only at drain).
  std::atomic<std::uint64_t> client_periodic_starts_{0};

  std::mutex handler_mutex_;
  ExpiryHandler handler_;
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
