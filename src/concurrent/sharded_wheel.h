// Sharded-lock hashed wheel for symmetric multiprocessors (Appendix A.2).
//
// "Scheme 5, 6, and 7 seem suited for implementation in symmetric multiprocessors"
// because their critical sections are O(1) and independent: this class runs K
// independent Scheme 6 wheels, each behind its own mutex. START_TIMER picks a shard
// round-robin and locks only it; STOP_TIMER decodes the shard from the handle and
// locks only it. Contention falls by ~K versus a single global lock, which the
// bench_appA2_smp benchmark measures against LockedService around Scheme 2 (the
// appendix's criticized single-semaphore configuration).
//
// PER_TICK_BOOKKEEPING ticks every shard, collecting expiries under each shard's
// lock but dispatching the client's ExpiryHandler after release, so handlers may
// freely start and stop timers.
//
// Handles encode the shard in the top byte of the slot index; each shard may hold
// up to 2^24 concurrent timers.

#ifndef TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
#define TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/bits.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/timer_service.h"

namespace twheel::concurrent {

class ShardedWheel final : public TimerService {
 public:
  // `shards` must be a power of two in [1, 256]; `table_size` is per-shard.
  ShardedWheel(std::size_t shards, std::size_t table_size);

  StartResult StartTimer(Duration interval, RequestId request_id) override;
  TimerError StopTimer(TimerHandle handle) override;
  std::size_t PerTickBookkeeping() override;
  // Batched tick advancement: one lock acquisition per shard per *batch* instead
  // of per tick, with each shard's inner wheel jumping its dead slots via the
  // occupancy bitmap. Expiries from all shards are re-merged into chronological
  // order (FIFO within a tick) before dispatch outside the locks.
  std::size_t AdvanceTo(Tick target) override;
  // Minimum of the shards' hints. Only meaningful while no concurrent starts are
  // racing (a start may create an earlier expiry between the scan and the use).
  std::optional<Tick> NextExpiryHint() const override;
  bool FastForward(Tick target) override;
  Tick now() const override { return now_.load(std::memory_order_relaxed); }
  std::size_t outstanding() const override;
  // Snapshot merged across shards; by value so nothing shared escapes the locks.
  metrics::OpCounts counts() const override;
  std::string_view name() const override { return "scheme6-sharded"; }
  void set_expiry_handler(ExpiryHandler handler) override;

  std::size_t num_shards() const { return shards_.size(); }

  // Sum of the shards' structures; per-record needs match Scheme 6's.
  SpaceProfile Space() const override;

 private:
  static constexpr std::uint32_t kShardShift = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kShardShift) - 1;

  struct Shard {
    std::mutex mutex;
    // Expiries the inner wheel reported, staged under `mutex` until the next
    // PerTickBookkeeping drains them for dispatch outside all locks. Declared
    // before `wheel` so it outlives the wheel (whose permanently installed
    // expiry handler appends here) during shard destruction.
    std::vector<std::pair<RequestId, Tick>> collected;
    std::unique_ptr<HashedWheelUnsorted> wheel;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<Tick> now_{0};

  std::mutex handler_mutex_;
  ExpiryHandler handler_;
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
