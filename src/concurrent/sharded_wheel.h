// Sharded-lock hashed wheel for symmetric multiprocessors (Appendix A.2).
//
// "Scheme 5, 6, and 7 seem suited for implementation in symmetric multiprocessors"
// because their critical sections are O(1) and independent: this class runs K
// independent Scheme 6 wheels, each behind its own mutex. START_TIMER picks a shard
// round-robin and locks only it; STOP_TIMER decodes the shard from the handle and
// locks only it. Contention falls by ~K versus a single global lock, which the
// bench_appA2_smp benchmark measures against LockedService around Scheme 2 (the
// appendix's criticized single-semaphore configuration).
//
// PER_TICK_BOOKKEEPING ticks every shard, collecting expiries under each shard's
// lock but dispatching the client's ExpiryHandler after release, so handlers may
// freely start and stop timers.
//
// Deferred-registration (MPSC) mode — the three-argument constructor — removes
// the shard mutex from the producer path entirely: StartTimer/StopTimer become
// lock-free enqueues of start/cancel commands onto a per-shard bounded MPSC ring
// (src/concurrent/submission.h), which the tick driver drains at tick/batch
// boundaries *before* advancing, while it already holds each shard's mutex. A
// timer becomes visible to the wheel at that drain; it still fires at exactly
// `now-at-StartTimer + interval` whenever its command drains before that tick is
// crossed (drain-before-advance guarantees this for any submission that completed
// before the AdvanceTo/PerTickBookkeeping call began), and at the first tick
// after the drain otherwise. Driven single-threaded, the mode is observationally
// equivalent to the locked mode — every differential-oracle test runs both.
//
// Handles encode the shard in the top byte of the slot index; each shard may hold
// up to 2^24 concurrent timers (locked mode: inner arena slot; MPSC mode:
// registration-table index, bounded by SubmitOptions::registration_capacity).

#ifndef TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
#define TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/bits.h"
#include "src/concurrent/submission.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/timer_service.h"

namespace twheel::concurrent {

class ShardedWheel final : public TimerService {
 public:
  // Locked mode: `shards` must be a power of two in [1, 256]; `table_size` is
  // per-shard.
  ShardedWheel(std::size_t shards, std::size_t table_size);
  // Deferred-registration mode: same wheel geometry plus a per-shard submission
  // runtime (ring + registration table) configured by `submit`.
  ShardedWheel(std::size_t shards, std::size_t table_size,
               const SubmitOptions& submit);

  // Locked mode: registers under the shard mutex. MPSC mode: lock-free — mints
  // a generation-checked handle, captures `now() + interval` as the absolute
  // deadline, and enqueues a start command; kNoCapacity under
  // SubmitPolicy::kReject when the shard's ring or table is full.
  StartResult StartTimer(Duration interval, RequestId request_id) final;
  // Periodic registration. Locked mode: forwards to the inner wheel under the
  // shard mutex (the inner record re-arms itself in place on every non-final
  // fire, so the handle survives between fires). MPSC mode: lock-free — the
  // registration entry carries a sticky periodic bit plus the cadence, the
  // inner wheel is registered with the true repeat budget at drain, and each
  // collected fire resolves against the entry word: non-final fires claim by
  // bumping the word's fire-epoch bits (handle and generation preserved),
  // the final fire claims and reclaims like a one-shot expiry.
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) final;
  // Locked mode: removes under the shard mutex. MPSC mode: lock-free — commits
  // the cancel with one CAS (the result is authoritative: kOk means the timer
  // will never fire) and enqueues a best-effort prompt-removal command.
  TimerError StopTimer(TimerHandle handle) final;
  // Locked mode: in-place relink under the shard mutex (the inner Scheme 6
  // wheel's O(1) RestartTimer). MPSC mode: lock-free — reserves a ring cell,
  // commits with one CAS on the entry word, then publishes a kRestart command
  // carrying `now() + new_interval` into the reserved cell (see
  // ShardSubmitQueue::SubmitRestart). kOk is authoritative:
  // the timer cannot fire at its old deadline and the handle stays valid; a
  // restart losing the word to a fire or cancel gets kNoSuchTimer, so
  // restart-vs-fire resolves exactly once. A restart whose start command has
  // not drained yet coalesces onto the same registration entry.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  // Batched tick advancement: one lock acquisition per shard per *batch* instead
  // of per tick, with each shard's inner wheel jumping its dead slots via the
  // occupancy bitmap. In MPSC mode each shard's submission ring is drained
  // under that same lock acquisition, before the shard advances — so no start
  // whose enqueue completed before this call can be skipped past. Expiries from
  // all shards are re-merged into chronological order (FIFO within a tick)
  // before dispatch outside the locks.
  std::size_t AdvanceTo(Tick target) final;
  // Minimum of the shards' hints; in MPSC mode also folds in each shard's
  // pending-submission deadline minimum, so a hint taken after a completed
  // StartTimer is never later than that timer's deadline even though its
  // command has not drained yet. Concurrent starts *during* the scan can still
  // make the hint stale-late; AdvanceTo/FastForward stay correct regardless
  // because they drain before advancing and dispatch (never skip) anything that
  // comes due.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  Tick now() const final { return now_.load(std::memory_order_relaxed); }
  std::size_t outstanding() const final;
  // Snapshot merged across shards; by value so nothing shared escapes the locks.
  // MPSC mode adds the submission counters (enqueued_starts, drained_commands,
  // submit_retries).
  metrics::OpCounts counts() const final;
  std::string_view name() const final {
    return deferred() ? "scheme6-sharded-mpsc" : "scheme6-sharded";
  }
  void set_expiry_handler(ExpiryHandler handler) final;

  std::size_t num_shards() const { return shards_.size(); }
  bool deferred() const { return shards_[0]->submit != nullptr; }

  // ---- Concurrent per-shard advancement (the DispatchPool protocol) ----
  //
  // A multi-drainer driver replaces the global AdvanceTo with two per-shard
  // halves that different threads may run for different shards at once:
  //
  //   AdvanceShard(s, target)   advance shard s's clock to the absolute tick
  //                             `target`, claim its expiries, and publish them
  //                             as a FireBatch on the shard's batch stack.
  //                             Serialized per shard by the shard mutex;
  //                             concurrent calls for distinct shards never
  //                             contend. Never dispatches handlers.
  //   DispatchShard(s, owner)   deliver shard s's published batches, oldest
  //                             first, if the shard's dispatch rights are free
  //                             (a single CAS). Any thread may call this — a
  //                             non-owner dispatching is a *steal* — and the
  //                             per-batch claim is all-or-nothing: a batch is
  //                             only ever published after its shard advance
  //                             completed, so a thief can never see a
  //                             half-drained bucket.
  //   CommitNow(target)         publish the global clock after the caller has
  //                             proven every shard's cursor reached `target`
  //                             (monotone max; DispatchPool's barrier).
  //
  // Exactly-once across stealing: expiries are claimed against the
  // registration word inside AdvanceShard (under the shard mutex), before the
  // batch becomes visible; dispatch rights make batch delivery per-shard
  // serial; and the batch pointer itself transfers via an atomic exchange, so
  // each fire is delivered by exactly one drainer no matter who wins.
  std::size_t AdvanceShard(std::uint32_t shard, Tick target);
  std::size_t DispatchShard(std::uint32_t shard, bool owner = true);
  void CommitNow(Tick target);
  // Shard s's completed clock (≥ now() while a pool is mid-epoch).
  Tick ShardCursor(std::uint32_t shard) const;
  // True if shard s has published batches awaiting dispatch, or a dispatch in
  // flight. Reading the stack head (acquire) before the rights flag makes
  // "false" proof that everything published so far was delivered: seeing the
  // head empty synchronizes with the holder's pop, which its rights
  // acquisition precedes, so a stale "rights free" read is impossible.
  bool HasPendingBatches(std::uint32_t shard) const;
  // Batches delivered out of per-shard FIFO order or with non-monotone `when`
  // — 0 by protocol; exposed so torture tests can assert the invariant rather
  // than trust it.
  std::uint64_t dispatch_order_violations() const {
    return dispatch_order_violations_.load(std::memory_order_relaxed);
  }

  // MPSC mode: drain every shard's command ring into its wheel without
  // advancing the clock (each shard under its own mutex). Returns commands
  // consumed. Exposed for tests and for drivers that want registration latency
  // tighter than their tick period. No-op in locked mode.
  std::size_t DrainSubmissions();

  // Sum of the shards' structures; per-record needs match Scheme 6's. MPSC
  // mode adds the rings and registration tables to fixed_bytes.
  SpaceProfile Space() const final;

 private:
  static constexpr std::uint32_t kShardShift = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kShardShift) - 1;

  // One shard advance's worth of claimed, dispatch-ready expiries. Built and
  // sequenced under the shard mutex, then published onto the shard's batch
  // stack with a release CAS; consumed whole (atomic exchange of the stack
  // head) by whichever drainer holds the shard's dispatch rights.
  struct FireBatch {
    std::uint64_t seq;  // per-shard publication order, 1-based
    std::vector<std::pair<RequestId, Tick>> fires;
    FireBatch* next;
  };

  // Cache-line aligned: shards are stored contiguously and ticked/drained by
  // different threads, so without the alignas the tail of one shard's atomics
  // and the head of the next would share a line and ping-pong between cores.
  // Each shard also owns its own inner wheel, whose TimerServiceBase holds a
  // private (cache-line-aligned) record arena — allocations from different
  // shards never interleave within one line.
  struct alignas(kSlabCacheLine) Shard {
    std::mutex mutex;
    // Expiries the inner wheel reported, staged under `mutex` until the next
    // PerTickBookkeeping drains them for dispatch outside all locks. Declared
    // before `wheel` so it outlives the wheel (whose permanently installed
    // expiry handler appends here) during shard destruction.
    std::vector<std::pair<RequestId, Tick>> collected;
    std::unique_ptr<HashedWheelUnsorted> wheel;
    // Deferred-registration runtime; nullptr in locked mode.
    std::unique_ptr<ShardSubmitQueue> submit;

    // ---- DispatchPool state ----
    // The shard's completed clock: released after the inner wheel reaches the
    // advance target, acquired by the pool's completion barrier and by
    // CommitNow's min scan.
    std::atomic<Tick> cursor{0};
    // Treiber stack of published batches (newest first; DispatchShard
    // re-reverses into FIFO by seq).
    std::atomic<FireBatch*> batch_head{nullptr};
    // Dispatch rights: exactly one drainer delivers this shard's batches at a
    // time, so per-shard delivery stays serial and in order even when stolen.
    std::atomic<bool> dispatch_busy{false};
    // Next seq to assign; written under `mutex` only.
    std::uint64_t published_seq = 0;
    // Delivery-order bookkeeping; written under dispatch rights only.
    std::uint64_t dispatched_seq = 0;
    Tick last_dispatched_when = 0;

    ~Shard();  // frees batches left on the stack (defensive; Stop() drains)
  };

  // An expiry collected from a shard but not yet resolved against the shard's
  // registration table (MPSC mode). `id` is the inner packed {generation,
  // entry index}, not the client cookie.
  struct PendingExpiry {
    std::uint32_t shard;
    RequestId id;
    Tick when;
  };

  void Construct(std::size_t shards, std::size_t table_size,
                 const SubmitOptions* submit);
  // MPSC mode: resolve collected expiries against the registration tables —
  // claiming ALL fires before the caller dispatches ANY handler, so a tick's
  // expiry set is committed when the tick begins (a handler stopping a
  // same-tick sibling gets kNoSuchTimer, matching the oracle and the locked
  // mode) — and append the surviving {client cookie, tick} pairs to `fires`.
  void ClaimFires(const std::vector<PendingExpiry>& expired,
                  std::vector<std::pair<RequestId, Tick>>& fires);
  // Resolve one collected expiry against its registration word, appending to
  // `fires` when it survives. Returns true when the inner record needs a
  // mutex-guarded ghost stop (FireResolution::kStopInner); shared by the
  // global ClaimFires pass and the per-shard AdvanceShard claim.
  bool ResolveClaim(std::uint32_t shard_index, const RequestId& inner_id,
                    Tick when, std::vector<std::pair<RequestId, Tick>>& fires);
  std::size_t Dispatch(const std::vector<std::pair<RequestId, Tick>>& fires);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<Tick> now_{0};
  // MPSC mode: started minus {fired, cancelled}, maintained without locks.
  std::atomic<std::uint64_t> live_{0};
  // MPSC mode: client-level StartTimer invocations (including rejects). The
  // inner wheels count start_calls only at drain, and a cancelled-before-drain
  // start never reaches them, so counts() reports this instead.
  std::atomic<std::uint64_t> client_starts_{0};
  // MPSC mode: committed (kOk) RestartTimer calls; the client-level analogue
  // of restart_calls (inner wheels only see the drained relinks).
  std::atomic<std::uint64_t> client_restarts_{0};
  // MPSC mode: successful client StartPeriodic calls (the inner wheels count
  // periodic_starts only at drain).
  std::atomic<std::uint64_t> client_periodic_starts_{0};
  // MPSC mode: client-visible deliveries and stop attempts. The inner wheels'
  // expiries include suppressed ghost fires (a cancelled timer whose prompt
  // removal lost the race to its own expiry), and their stop_calls only count
  // drained removal commands, so a counts() snapshot built from inner totals
  // cannot satisfy the conservation law under concurrent drainers. These count
  // at the claim / submit commit points instead: client_expiries_ on
  // kDeliverFinal (one-shot fires and final periodic laps), client_fired_laps_
  // on kDeliver (non-final laps), client_stops_ on every StopTimer attempt —
  // the same semantics the locked inner wheels give those fields.
  std::atomic<std::uint64_t> client_expiries_{0};
  std::atomic<std::uint64_t> client_fired_laps_{0};
  std::atomic<std::uint64_t> client_stops_{0};
  // DispatchPool accounting (see OpCounts::dispatch_batches/dispatch_steals).
  std::atomic<std::uint64_t> dispatch_batches_{0};
  std::atomic<std::uint64_t> dispatch_steals_{0};
  std::atomic<std::uint64_t> dispatch_order_violations_{0};

  std::mutex handler_mutex_;
  ExpiryHandler handler_;
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_SHARDED_WHEEL_H_
