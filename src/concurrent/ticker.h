// TickerThread — the bridge from simulated ticks to wall-clock time.
//
// Everything in twheel is driven by explicit PerTickBookkeeping() calls (the
// paper's hardware-clock interrupt). Production users need something to *be* that
// clock: TickerThread runs a background thread that calls the service's bookkeeping
// at a fixed wall-clock period, which is the paper's deployment model ("the
// algorithm is implemented by a processor that is interrupted each time a hardware
// clock ticks").
//
// The driven service must be thread-safe (LockedService or ShardedWheel) if any
// other thread starts/stops timers concurrently. Scheduling delays are absorbed by
// catch-up: the ticker fires as many bookkeeping calls as full periods have
// elapsed, so simulated time tracks wall time without drift (ticks are never
// skipped, matching the model where every tick's bookkeeping must run). This is
// the only file in the library that reads a wall clock.

#ifndef TWHEEL_SRC_CONCURRENT_TICKER_H_
#define TWHEEL_SRC_CONCURRENT_TICKER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/core/timer_service.h"

namespace twheel::concurrent {

class TickerThread {
 public:
  // Does not take ownership; `service` must outlive the ticker. The thread starts
  // immediately.
  TickerThread(TimerService& service, std::chrono::microseconds period)
      : service_(service), period_(period), thread_([this] { Loop(); }) {}

  TickerThread(const TickerThread&) = delete;
  TickerThread& operator=(const TickerThread&) = delete;

  ~TickerThread() { Stop(); }

  // Idempotent; blocks until the thread has exited. No bookkeeping call runs after
  // Stop returns. A catch-up burst is abandoned mid-burst: Stop waits for at most
  // the one bookkeeping call in flight, never for the whole backlog.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      stopping_.store(true, std::memory_order_relaxed);
    }
    wakeup_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::uint64_t ticks_delivered() const {
    return ticks_delivered_.load(std::memory_order_relaxed);
  }

 private:
  void Loop() {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point epoch = Clock::now();
    std::uint64_t delivered = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_.load(std::memory_order_relaxed)) {
      const auto due_count = static_cast<std::uint64_t>((Clock::now() - epoch) / period_);
      if (delivered < due_count) {
        // Catch up without holding the lock across client expiry handlers.
        // Re-check stopping_ per delivered tick: a long backlog of slow client
        // handlers must not hold Stop() hostage for the rest of the burst.
        lock.unlock();
        while (delivered < due_count &&
               !stopping_.load(std::memory_order_relaxed)) {
          service_.PerTickBookkeeping();
          ++delivered;
          ticks_delivered_.store(delivered, std::memory_order_relaxed);
        }
        lock.lock();
        continue;
      }
      wakeup_.wait_until(lock, epoch + (delivered + 1) * period_,
                         [this] { return stopping_.load(std::memory_order_relaxed); });
    }
  }

  TimerService& service_;
  const std::chrono::microseconds period_;

  std::mutex mutex_;
  std::condition_variable wakeup_;
  // Atomic so the unlocked catch-up loop may poll it; still only *set* under
  // mutex_ so the condition-variable wait cannot miss the transition.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> ticks_delivered_{0};

  std::thread thread_;  // last member: started after everything else is ready
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_TICKER_H_
