// TickerThread — the bridge from simulated ticks to wall-clock time.
//
// Everything in twheel is driven by explicit PerTickBookkeeping() calls (the
// paper's hardware-clock interrupt). Production users need something to *be* that
// clock: TickerThread runs a background thread that calls the service's bookkeeping
// at a fixed wall-clock period, which is the paper's deployment model ("the
// algorithm is implemented by a processor that is interrupted each time a hardware
// clock ticks").
//
// The driven service must be thread-safe (LockedService or ShardedWheel) if any
// other thread starts/stops timers concurrently. Scheduling delays are absorbed by
// catch-up: the ticker delivers as many simulated ticks as full periods have
// elapsed, so simulated time tracks wall time without drift (ticks are never
// skipped, matching the model where every tick's bookkeeping must run). Backlogs
// are delivered through batched AdvanceTo calls in wall-time-bounded chunks — see
// Loop(). The ticker assumes it is the only clock driver for the service (other
// threads may start/stop timers, but must not advance the clock).
//
// TickerThread is the ONE-core clock: a single thread sweeping every shard.
// When expiry dispatch itself must scale across cores, use DispatchPool
// (dispatch_pool.h) in ticker mode instead — it is N of these loops, one per
// shard group, with work stealing over the published expiry batches. This file
// and dispatch_pool.cc are the only places in the library that read a wall
// clock.

#ifndef TWHEEL_SRC_CONCURRENT_TICKER_H_
#define TWHEEL_SRC_CONCURRENT_TICKER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/core/timer_service.h"

namespace twheel::concurrent {

class TickerThread {
 public:
  // Does not take ownership; `service` must outlive the ticker. The thread starts
  // immediately.
  TickerThread(TimerService& service, std::chrono::microseconds period)
      : service_(service), period_(period), thread_([this] { Loop(); }) {}

  TickerThread(const TickerThread&) = delete;
  TickerThread& operator=(const TickerThread&) = delete;

  ~TickerThread() { Stop(); }

  // Idempotent; blocks until the thread has exited. No bookkeeping call runs after
  // Stop returns. A catch-up burst is abandoned mid-burst: Stop waits for at most
  // the one bookkeeping call in flight, never for the whole backlog.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      stopping_.store(true, std::memory_order_relaxed);
    }
    wakeup_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::uint64_t ticks_delivered() const {
    return ticks_delivered_.load(std::memory_order_relaxed);
  }

 private:
  // Catch-up chunking: a backlog is delivered through batched AdvanceTo calls (so
  // a wheel skips its dead slots via the occupancy bitmap instead of paying one
  // virtual call per tick), in chunks sized so one call's wall time stays near
  // kChunkWallBudget. Stop() can only interrupt *between* calls, so the adaptive
  // chunk — re-measured after every call, starting at 1 tick — preserves the
  // mid-burst abort promptness even when the service's bookkeeping is slow, while
  // a fast service coalesces a 10k-tick backlog into a handful of calls.
  static constexpr std::chrono::milliseconds kChunkWallBudget{10};
  static constexpr std::uint64_t kMaxChunkTicks = 1u << 16;

  void Loop() {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point epoch = Clock::now();
    std::uint64_t delivered = 0;
    std::uint64_t chunk = 1;  // first call measures the service's per-tick cost
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_.load(std::memory_order_relaxed)) {
      const auto due_count = static_cast<std::uint64_t>((Clock::now() - epoch) / period_);
      if (delivered < due_count) {
        // Catch up without holding the lock across client expiry handlers.
        // Re-check stopping_ per chunk: a long backlog of slow client handlers
        // must not hold Stop() hostage for the rest of the burst.
        lock.unlock();
        while (delivered < due_count &&
               !stopping_.load(std::memory_order_relaxed)) {
          const std::uint64_t n = std::min(chunk, due_count - delivered);
          const Clock::time_point begin = Clock::now();
          service_.AdvanceTo(service_.now() + n);
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - begin);
          delivered += n;  // simulated ticks, regardless of chunking
          ticks_delivered_.store(delivered, std::memory_order_relaxed);
          const std::uint64_t per_tick_ns =
              static_cast<std::uint64_t>(elapsed.count()) / n;
          const std::uint64_t budget_ns = static_cast<std::uint64_t>(
              std::chrono::nanoseconds(kChunkWallBudget).count());
          chunk = per_tick_ns == 0
                      ? kMaxChunkTicks
                      : std::min(kMaxChunkTicks, std::max<std::uint64_t>(
                                                     1, budget_ns / per_tick_ns));
        }
        lock.lock();
        continue;
      }
      wakeup_.wait_until(lock, epoch + (delivered + 1) * period_,
                         [this] { return stopping_.load(std::memory_order_relaxed); });
    }
  }

  TimerService& service_;
  const std::chrono::microseconds period_;

  std::mutex mutex_;
  std::condition_variable wakeup_;
  // Atomic so the unlocked catch-up loop may poll it; still only *set* under
  // mutex_ so the condition-variable wait cannot miss the transition.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> ticks_delivered_{0};

  std::thread thread_;  // last member: started after everything else is ready
};

}  // namespace twheel::concurrent

#endif  // TWHEEL_SRC_CONCURRENT_TICKER_H_
