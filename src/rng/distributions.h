// Timer-interval and inter-arrival distributions (Section 3.2).
//
// The paper's Scheme 2 analysis is parameterized by "the distribution of timer
// intervals (from time started to time stopped), and the distribution of the arrival
// process according to which calls to START_TIMER are made", with closed-form
// insertion costs for negative-exponential and uniform intervals under Poisson
// arrivals. These classes supply those distributions (plus constant — the paper's
// "all timer intervals have the same value" degenerate case — geometric, and Pareto
// for a heavy-tailed stressor) as draws of integral tick counts.

#ifndef TWHEEL_SRC_RNG_DISTRIBUTIONS_H_
#define TWHEEL_SRC_RNG_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "src/base/assert.h"
#include "src/base/types.h"
#include "src/rng/rng.h"

namespace twheel::rng {

// A distribution over positive tick durations. Draw() never returns 0: a timer of
// zero ticks is an immediate expiry, which the schemes treat as a policy question,
// not a distribution question.
class IntervalDistribution {
 public:
  virtual ~IntervalDistribution() = default;

  virtual Duration Draw(Xoshiro256& g) = 0;

  // Exact mean of the (pre-rounding) distribution, used by the queueing analytics.
  virtual double Mean() const = 0;

  virtual std::string Name() const = 0;
};

// Every draw is the same value. The paper: "if all timers intervals have the same
// value... this search strategy [rear insertion] yields an O(1) START_TIMER latency"
// — and it is the adversarial input that degenerates an unbalanced BST into a list.
class ConstantInterval final : public IntervalDistribution {
 public:
  explicit ConstantInterval(Duration value) : value_(value) { TWHEEL_ASSERT(value >= 1); }

  Duration Draw(Xoshiro256&) override { return value_; }
  double Mean() const override { return static_cast<double>(value_); }
  std::string Name() const override { return "constant(" + std::to_string(value_) + ")"; }

 private:
  Duration value_;
};

// Uniform over [lo, hi] inclusive.
class UniformInterval final : public IntervalDistribution {
 public:
  UniformInterval(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    TWHEEL_ASSERT(lo >= 1 && hi >= lo);
  }

  Duration Draw(Xoshiro256& g) override { return lo_ + g.NextBounded(hi_ - lo_ + 1); }
  double Mean() const override { return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_)); }
  std::string Name() const override {
    return "uniform[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
  }

 private:
  Duration lo_;
  Duration hi_;
};

// Negative exponential with the given mean, rounded up to at least one tick.
class ExponentialInterval final : public IntervalDistribution {
 public:
  explicit ExponentialInterval(double mean) : mean_(mean) { TWHEEL_ASSERT(mean > 0); }

  Duration Draw(Xoshiro256& g) override {
    double u = g.NextDouble();
    // Guard the log: NextDouble() is in [0,1); 1-u is in (0,1].
    double x = -mean_ * std::log(1.0 - u);
    Duration d = static_cast<Duration>(std::llround(std::ceil(x)));
    return d == 0 ? 1 : d;
  }
  double Mean() const override { return mean_; }
  std::string Name() const override { return "exponential(mean=" + std::to_string(mean_) + ")"; }

 private:
  double mean_;
};

// Pareto (Lomax-shifted) with shape alpha > 1 and minimum x_m >= 1. Heavy-tailed:
// exercises the deep levels of hierarchical wheels and the overflow behaviour of
// bounded ones.
class ParetoInterval final : public IntervalDistribution {
 public:
  ParetoInterval(double alpha, Duration x_m) : alpha_(alpha), x_m_(x_m) {
    TWHEEL_ASSERT(alpha > 1.0 && x_m >= 1);
  }

  Duration Draw(Xoshiro256& g) override {
    double u = g.NextDouble();
    double x = static_cast<double>(x_m_) / std::pow(1.0 - u, 1.0 / alpha_);
    // Cap draws at 2^40 ticks to keep pathological tails finite in benches.
    double capped = std::min(x, 1099511627776.0);
    return static_cast<Duration>(std::llround(std::ceil(capped)));
  }
  double Mean() const override { return alpha_ * static_cast<double>(x_m_) / (alpha_ - 1.0); }
  std::string Name() const override { return "pareto(alpha=" + std::to_string(alpha_) + ")"; }

 private:
  double alpha_;
  Duration x_m_;
};

// Geometric on {1, 2, ...} with success probability p — the discrete analogue of the
// exponential, natural for tick-quantized timers.
class GeometricInterval final : public IntervalDistribution {
 public:
  explicit GeometricInterval(double p) : p_(p) { TWHEEL_ASSERT(p > 0.0 && p < 1.0); }

  Duration Draw(Xoshiro256& g) override {
    double u = g.NextDouble();
    double x = std::floor(std::log(1.0 - u) / std::log(1.0 - p_)) + 1.0;
    return static_cast<Duration>(x);
  }
  double Mean() const override { return 1.0 / p_; }
  std::string Name() const override { return "geometric(p=" + std::to_string(p_) + ")"; }

 private:
  double p_;
};

// Arrival process: gaps between successive START_TIMER calls, in ticks (may be 0:
// several timers can start on the same tick).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual Duration NextGap(Xoshiro256& g) = 0;
  virtual double MeanGap() const = 0;
  virtual std::string Name() const = 0;
};

// Poisson arrivals of rate lambda per tick. Exponential inter-arrival times are
// accumulated in continuous time and quantized to ticks with a fractional carry, so
// the long-run arrival rate is exactly lambda (flooring each gap independently would
// inflate the rate and break the Little's-law validation of Figure 3). Sub-tick gaps
// collapse to 0: several timers start on the same tick, as a real burst would.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double lambda) : lambda_(lambda) { TWHEEL_ASSERT(lambda > 0); }

  Duration NextGap(Xoshiro256& g) override {
    double u = g.NextDouble();
    carry_ += -std::log(1.0 - u) / lambda_;
    Duration gap = static_cast<Duration>(carry_);
    carry_ -= static_cast<double>(gap);
    return gap;
  }
  double MeanGap() const override { return 1.0 / lambda_; }
  std::string Name() const override { return "poisson(lambda=" + std::to_string(lambda_) + ")"; }

 private:
  double lambda_;
  double carry_ = 0.0;
};

// Deterministic arrivals: exactly one start every `gap` ticks.
class PeriodicArrivals final : public ArrivalProcess {
 public:
  explicit PeriodicArrivals(Duration gap) : gap_(gap) {}

  Duration NextGap(Xoshiro256&) override { return gap_; }
  double MeanGap() const override { return static_cast<double>(gap_); }
  std::string Name() const override { return "periodic(" + std::to_string(gap_) + ")"; }

 private:
  Duration gap_;
};

}  // namespace twheel::rng

#endif  // TWHEEL_SRC_RNG_DISTRIBUTIONS_H_
