// Deterministic pseudo-random number generation, built from scratch.
//
// Every stochastic element of the reproduction — Poisson arrival processes,
// exponential/uniform/Pareto timer-interval distributions (Section 3.2), packet loss
// in the network substrate — draws from this generator so that a seed fully
// determines a run. The generator is xoshiro256** (public-domain algorithm by
// Blackman & Vigna), seeded through SplitMix64 as its authors recommend; we implement
// both here rather than depending on <random>'s unspecified-across-platforms engines.

#ifndef TWHEEL_SRC_RNG_RNG_H_
#define TWHEEL_SRC_RNG_RNG_H_

#include <cstdint>

namespace twheel::rng {

// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state, and handy as
// a cheap standalone mixer (e.g. hashing slot indices in tests).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, 2^256-1 period. Not cryptographic; not needed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): 53 random mantissa bits.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Rejection sampling on the high bits of a 128-bit product.
    while (true) {
      std::uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace twheel::rng

#endif  // TWHEEL_SRC_RNG_RNG_H_
