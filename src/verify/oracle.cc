#include "src/verify/oracle.h"

#include <utility>
#include <vector>

#include "src/core/slop.h"

namespace twheel::verify {

StartResult OracleTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  interval = QuantizeIntervalUp(interval, slop_bits_);
  const std::uint32_t slot = next_slot_++;
  auto it = by_expiry_.emplace(now_ + interval, Pending{request_id, slot});
  live_.emplace(slot, it);
  ++counts_.insert_link_ops;
  // Generation 1 everywhere: the oracle never recycles slots, so the generation
  // carries no information — but a handle with any other generation is garbage.
  return TimerHandle{slot, 1};
}

StartResult OracleTimers::StartPeriodic(Duration interval, RequestId request_id,
                                        std::uint64_t repeat_for) {
  StartResult started = StartTimer(interval, request_id);
  if (!started.has_value()) {
    return started;
  }
  auto it = live_.find(started.value().slot);
  it->second->second.period = QuantizeIntervalUp(interval, slop_bits_);
  it->second->second.repeats = repeat_for;
  ++counts_.periodic_starts;
  return started;
}

TimerError OracleTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  if (!handle.valid() || handle.generation != 1) {
    return TimerError::kNoSuchTimer;
  }
  auto it = live_.find(handle.slot);
  if (it == live_.end()) {
    return TimerError::kNoSuchTimer;
  }
  by_expiry_.erase(it->second);
  live_.erase(it);
  ++counts_.delete_unlink_ops;
  return TimerError::kOk;
}

TimerError OracleTimers::RestartTimer(TimerHandle handle,
                                      Duration new_interval) {
  if (new_interval == 0) {
    return TimerError::kZeroInterval;
  }
  if (!handle.valid() || handle.generation != 1) {
    return TimerError::kNoSuchTimer;
  }
  auto it = live_.find(handle.slot);
  if (it == live_.end()) {
    return TimerError::kNoSuchTimer;
  }
  // In-place by construction: the slot number — the handle — survives; only the
  // multimap position moves. Mirrors the schemes' contract exactly: a restart
  // is neither a start nor a stop, and the handle stays usable afterwards. A
  // periodic keeps its cadence and remaining-fire budget — the Pending is
  // copied wholesale, only the key moves.
  const Pending pending = it->second->second;
  by_expiry_.erase(it->second);
  it->second =
      by_expiry_.emplace(now_ + QuantizeIntervalUp(new_interval, slop_bits_), pending);
  ++counts_.restart_calls;
  ++counts_.restart_relink_ops;
  return TimerError::kOk;
}

std::size_t OracleTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  // Commit this tick's expiry set before dispatching anything: handlers may start
  // timers (earliest legal expiry now_ + 1) and stop future-due siblings, and
  // neither may affect what fires *now*.
  std::vector<Pending> due;
  auto range = by_expiry_.equal_range(now_);
  for (auto it = range.first; it != range.second; ++it) {
    due.push_back(it->second);
    live_.erase(it->second.slot);
  }
  by_expiry_.erase(range.first, range.second);

  // Re-arm every non-final periodic in place — same slot, key expiry + period —
  // BEFORE any handler runs, matching the schemes' relink-then-dispatch order:
  // a handler cancelling the just-fired periodic finds it live.
  for (const Pending& p : due) {
    if (p.period != 0 && p.repeats != 1) {
      Pending next = p;
      if (next.repeats > 1) {
        --next.repeats;
      }
      auto it = by_expiry_.emplace(now_ + next.period, next);
      live_.emplace(next.slot, it);
      ++counts_.periodic_fires;
      ++counts_.periodic_rearm_relinks;
      ++counts_.expiry_dispatches;
    } else {
      ++counts_.expiries;
      ++counts_.expiry_dispatches;
    }
  }
  if (handler_) {
    for (const Pending& p : due) {
      handler_(p.request_id, now_);
    }
  }
  return due.size();
}

}  // namespace twheel::verify
