#include "src/verify/differential_driver.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/slop.h"
#include "src/rng/rng.h"
#include "src/verify/oracle.h"

namespace twheel::verify {
namespace {

// One live timer as the driver sees it: the same logical request mirrored by two
// unrelated handles, plus the driver's own expiry prediction (used only to select
// stop-sibling victims that cannot fire on the tick being processed).
struct Entry {
  TimerHandle sut;
  TimerHandle oracle;
  Tick expiry = 0;
  std::size_t index = 0;  // position in the live-id vector (swap-remove)
  // Periodic registrations: the cadence and the REMAINING fire budget (0 =
  // forever — the driver never starts those; 1 = the next fire is final). A
  // non-final fire keeps the entry, advances expiry by period, and decrements
  // repeats, so the same handle pair is re-verified on every lap.
  Duration period = 0;
  std::uint64_t repeats = 0;
};

// Everything a SUT-side handler decided, for oracle-side replay.
struct TickAction {
  bool self_poke = false;
  TimerHandle self_oracle;  // the fired timer's oracle handle, stale by replay time
  RequestId rearm_id = 0;   // 0 = none (driver ids start at 1)
  Duration rearm_interval = 0;
  RequestId next_tick_id = 0;
  RequestId sibling_id = 0;
  TimerHandle sibling_oracle;
  TimerHandle sibling_sut;
  RequestId restart_sibling_id = 0;  // in-handler restart of a later-due sibling
  TimerHandle restart_sibling_oracle;
  Duration restart_sibling_interval = 0;
  // Cancel-from-own-handler on a NON-FINAL periodic fire: the expiry-path
  // re-arm precedes dispatch, so (unlike self_poke on a one-shot) the handle is
  // live and the stop must SUCCEED on both sides, ending the series.
  bool periodic_self_cancel = false;
};

class Episode {
 public:
  Episode(TimerService& sut, const DriverOptions& options)
      : sut_(sut),
        oracle_(options.slop_bits),
        options_(options),
        rng_(options.seed) {}

  DriverReport Run() {
    sut_.set_expiry_handler(
        [this](RequestId id, Tick when) { OnSutFire(id, when); });
    oracle_.set_expiry_handler(
        [this](RequestId id, Tick when) { OnOracleFire(id, when); });

    const Tick start_now = sut_.now();
    if (oracle_.now() != 0 || start_now != 0) {
      // The driver assumes fresh services so its expiry predictions line up.
      Diverge(0, "driver requires fresh services (now() == 0)");
    }

    for (std::size_t t = 0; t < options_.ticks && report_.ok; ++t) {
      MutatePhase();
      if (!report_.ok) {
        break;
      }
      if (options_.jump_probability > 0.0 &&
          rng_.NextBool(options_.jump_probability)) {
        Jump();
      } else {
        Step();
      }
    }
    draining_ = true;
    // A periodic started on the last mutate tick may still owe up to
    // periodic_repeat_max fires, one period apart, before it exhausts.
    // Quantized: with slop, every effective interval rounds up to the grain.
    const Duration period_bound =
        std::max(Q(options_.periodic_interval), Q(options_.max_interval));
    const std::size_t periodic_span =
        options_.periodic_probability > 0.0
            ? static_cast<std::size_t>(period_bound) *
                  static_cast<std::size_t>(options_.periodic_repeat_max)
            : 0;
    const std::size_t drain_bound =
        Q(options_.max_interval) + periodic_span + options_.drain_slack;
    for (std::size_t t = 0; t < drain_bound && !live_.empty() && report_.ok; ++t) {
      Step();
    }
    if (report_.ok && !live_.empty()) {
      Diverge(now_, "timers failed to drain within max_interval + slack");
    }
    if (report_.ok && (sut_.outstanding() != 0 || oracle_.outstanding() != 0)) {
      std::ostringstream os;
      os << "post-drain outstanding: sut=" << sut_.outstanding()
         << " oracle=" << oracle_.outstanding();
      Diverge(now_, os.str());
    }
    if (report_.ok) {
      // The driver made identical routine invocations on both sides, so the
      // paper's routine-level counters must agree. (stop_calls is exempt:
      // wrappers may legitimately refuse garbage handles before the counted
      // layer.) Structural counters — comparisons, migrations — differ by
      // design between algorithms and are not compared.
      const metrics::OpCounts a = sut_.counts();
      const metrics::OpCounts b = oracle_.counts();
      if (a.start_calls != b.start_calls || a.ticks != b.ticks ||
          a.expiries != b.expiries || a.restart_calls != b.restart_calls ||
          a.periodic_starts != b.periodic_starts ||
          a.periodic_fires != b.periodic_fires) {
        std::ostringstream os;
        os << "routine counters diverge: starts " << a.start_calls << "/"
           << b.start_calls << " ticks " << a.ticks << "/" << b.ticks
           << " expiries " << a.expiries << "/" << b.expiries << " restarts "
           << a.restart_calls << "/" << b.restart_calls << " periodic_starts "
           << a.periodic_starts << "/" << b.periodic_starts
           << " periodic_fires " << a.periodic_fires << "/"
           << b.periodic_fires;
        Diverge(now_, os.str());
      }
    }
    return report_;
  }

 private:
  // ---- outside-handler mutations -------------------------------------------

  void MutatePhase() {
    // Starts: fractional rates accumulate via one Bernoulli trial.
    const double rate = options_.starts_per_tick;
    std::size_t n = static_cast<std::size_t>(rate);
    if (rng_.NextBool(rate - static_cast<double>(n))) {
      ++n;
    }
    for (std::size_t i = 0; i < n && report_.ok; ++i) {
      StartFresh();
    }
    if (report_.ok && rng_.NextBool(options_.periodic_probability)) {
      StartPeriodicFresh();
    }
    if (report_.ok && rng_.NextBool(options_.zero_interval_probability)) {
      const RequestId id = next_id_++;
      StartResult rs = sut_.StartTimer(0, id);
      StartResult ro = oracle_.StartTimer(0, id);
      if (rs.has_value() || ro.has_value() ||
          rs.error() != TimerError::kZeroInterval ||
          ro.error() != TimerError::kZeroInterval) {
        Diverge(now_, "zero-interval start was not rejected identically");
      }
    }
    if (report_.ok && rng_.NextBool(options_.stop_probability) && !live_ids_.empty()) {
      const RequestId victim =
          live_ids_[rng_.NextBounded(live_ids_.size())];
      auto it = live_.find(victim);
      const Entry e = it->second;
      const TimerError rs = sut_.StopTimer(e.sut);
      const TimerError ro = oracle_.StopTimer(e.oracle);
      if (rs != TimerError::kOk || ro != TimerError::kOk) {
        std::ostringstream os;
        os << "stop of live id " << victim << ": sut=" << TimerErrorName(rs)
           << " oracle=" << TimerErrorName(ro);
        Diverge(now_, os.str());
        return;
      }
      RemoveLive(it);
      Retire(e.sut, e.oracle);
      ++report_.stops;
    }
    if (report_.ok && rng_.NextBool(options_.restart_probability) &&
        !live_ids_.empty()) {
      RestartLive();
    }
    if (report_.ok && rng_.NextBool(options_.restart_zero_probability) &&
        !live_ids_.empty()) {
      // A zero-interval restart must be refused on both sides and must leave
      // the victim untouched: its Entry keeps the old expiry, so the usual
      // per-tick set comparison verifies it still fires at the old deadline.
      const RequestId victim = live_ids_[rng_.NextBounded(live_ids_.size())];
      const Entry& e = live_.find(victim)->second;
      const TimerError rs = sut_.RestartTimer(e.sut, 0);
      const TimerError ro = oracle_.RestartTimer(e.oracle, 0);
      if (rs != TimerError::kZeroInterval || ro != TimerError::kZeroInterval) {
        std::ostringstream os;
        os << "zero-interval restart of live id " << victim
           << " not rejected identically: sut=" << TimerErrorName(rs)
           << " oracle=" << TimerErrorName(ro);
        Diverge(now_, os.str());
        return;
      }
      ++report_.zero_restarts;
    }
    if (report_.ok && rng_.NextBool(options_.restart_stale_probability)) {
      RestartStale();
    }
    if (report_.ok && rng_.NextBool(options_.stale_poke_probability)) {
      PokeStale();
    }
  }

  // In-place restart of one random live timer: kOk on both sides, the SAME
  // handle pair stays valid afterwards (a later stop or second restart reuses
  // it — the semantic payoff over stop+start), and the driver's expiry
  // prediction moves to now + interval so every subsequent tick's set
  // comparison pins the never-fires-at-the-old-deadline half of the contract.
  void RestartLive() {
    const RequestId victim = live_ids_[rng_.NextBounded(live_ids_.size())];
    auto it = live_.find(victim);
    const Duration interval =
        options_.restart_interval != 0
            ? options_.restart_interval
            : options_.min_interval +
                  rng_.NextBounded(options_.max_interval -
                                   options_.min_interval + 1);
    const TimerError rs = sut_.RestartTimer(it->second.sut, interval);
    const TimerError ro = oracle_.RestartTimer(it->second.oracle, interval);
    if (rs != TimerError::kOk || ro != TimerError::kOk) {
      std::ostringstream os;
      os << "restart(" << interval << ") of live id " << victim
         << ": sut=" << TimerErrorName(rs) << " oracle=" << TimerErrorName(ro);
      Diverge(now_, os.str());
      return;
    }
    it->second.expiry = now_ + Q(interval);
    ++report_.restarts;
  }

  // Restart-of-expired, restart-of-cancelled (retired_ holds both), and
  // fabricated/null handles: kNoSuchTimer on both sides, nothing disturbed.
  void RestartStale() {
    ++report_.stale_restarts;
    TimerHandle sut_h;
    TimerHandle oracle_h;
    switch (rng_.NextBounded(3)) {
      case 0:
        if (retired_.empty()) {
          return;
        }
        std::tie(sut_h, oracle_h) = retired_[rng_.NextBounded(retired_.size())];
        break;
      case 1:
        sut_h = TimerHandle{static_cast<std::uint32_t>(rng_.NextBounded(1u << 20)),
                            0xDEADBEEFu};
        oracle_h = sut_h;
        break;
      default:
        sut_h = kInvalidHandle;
        oracle_h = kInvalidHandle;
        break;
    }
    const Duration interval =
        options_.min_interval +
        rng_.NextBounded(options_.max_interval - options_.min_interval + 1);
    const TimerError rs = sut_.RestartTimer(sut_h, interval);
    const TimerError ro = oracle_.RestartTimer(oracle_h, interval);
    if (rs != TimerError::kNoSuchTimer || ro != TimerError::kNoSuchTimer) {
      std::ostringstream os;
      os << "stale restart (slot " << sut_h.slot << " gen " << sut_h.generation
         << ") not refused: sut=" << TimerErrorName(rs)
         << " oracle=" << TimerErrorName(ro);
      Diverge(now_, os.str());
    }
  }

  void StartFresh() {
    const RequestId id = next_id_++;
    const Duration interval =
        options_.min_interval +
        rng_.NextBounded(options_.max_interval - options_.min_interval + 1);
    StartResult rs = sut_.StartTimer(interval, id);
    StartResult ro = oracle_.StartTimer(interval, id);
    if (rs.has_value() != ro.has_value()) {
      std::ostringstream os;
      os << "start(" << interval << ") id " << id << ": sut "
         << (rs.has_value() ? "accepted" : TimerErrorName(rs.error()))
         << ", oracle "
         << (ro.has_value() ? "accepted" : TimerErrorName(ro.error()));
      Diverge(now_, os.str());
      return;
    }
    if (!rs.has_value()) {
      return;  // both rejected identically — legal (e.g. bounded arena)
    }
    AddLive(id, rs.value(), ro.value(), now_ + Q(interval));
    ++report_.starts;
  }

  // One finite periodic registration. Once live it is fair game for the whole
  // existing alphabet — stop (cancel-between-fires), restart (moves only the
  // NEXT deadline; cadence and budget must survive, which the per-lap expiry
  // predictions verify), zero-restart, and post-exhaustion stale pokes.
  void StartPeriodicFresh() {
    const RequestId id = next_id_++;
    const Duration period =
        options_.periodic_interval != 0
            ? options_.periodic_interval
            : options_.min_interval +
                  rng_.NextBounded(options_.max_interval -
                                   options_.min_interval + 1);
    const std::uint64_t repeats =
        1 + rng_.NextBounded(options_.periodic_repeat_max);
    StartResult rs = sut_.StartPeriodic(period, id, repeats);
    StartResult ro = oracle_.StartPeriodic(period, id, repeats);
    if (rs.has_value() != ro.has_value()) {
      std::ostringstream os;
      os << "start_periodic(" << period << " x" << repeats << ") id " << id
         << ": sut "
         << (rs.has_value() ? "accepted" : TimerErrorName(rs.error()))
         << ", oracle "
         << (ro.has_value() ? "accepted" : TimerErrorName(ro.error()));
      Diverge(now_, os.str());
      return;
    }
    if (!rs.has_value()) {
      return;  // both rejected identically
    }
    // Predictions use the quantized period for both the first deadline and the
    // stored cadence: StartPeriodic's effective interval IS the cadence, and
    // QuantizeIntervalUp is idempotent, so every lap stays grain-aligned.
    AddLive(id, rs.value(), ro.value(), now_ + Q(period), Q(period), repeats);
    ++report_.starts;
    ++report_.periodic_starts;
  }

  void PokeStale() {
    ++report_.stale_pokes;
    TimerHandle sut_h;
    TimerHandle oracle_h;
    switch (rng_.NextBounded(3)) {
      case 0:  // genuinely retired pair, slots likely recycled since
        if (retired_.empty()) {
          return;
        }
        std::tie(sut_h, oracle_h) = retired_[rng_.NextBounded(retired_.size())];
        break;
      case 1:  // fabricated: plausible slot, impossible generation
        sut_h = TimerHandle{static_cast<std::uint32_t>(rng_.NextBounded(1u << 20)),
                            0xDEADBEEFu};
        oracle_h = sut_h;
        break;
      default:  // the null handle
        sut_h = kInvalidHandle;
        oracle_h = kInvalidHandle;
        break;
    }
    const TimerError rs = sut_.StopTimer(sut_h);
    const TimerError ro = oracle_.StopTimer(oracle_h);
    if (rs != TimerError::kNoSuchTimer || ro != TimerError::kNoSuchTimer) {
      std::ostringstream os;
      os << "stale handle (slot " << sut_h.slot << " gen " << sut_h.generation
         << ") not refused: sut=" << TimerErrorName(rs)
         << " oracle=" << TimerErrorName(ro);
      Diverge(now_, os.str());
    }
  }

  // ---- the lockstep tick ----------------------------------------------------

  void Step() {
    current_tick_ = now_ + 1;
    sut_fired_.clear();
    oracle_fired_.clear();
    actions_.clear();
    fired_handles_.clear();
    pending_.clear();
    claimed_siblings_.clear();
    tick_periodic_refires_ = 0;

    const std::size_t ns = sut_.PerTickBookkeeping();
    const std::size_t no = oracle_.PerTickBookkeeping();
    if (!report_.ok) {
      return;
    }

    if (ns != sut_fired_.size() || no != oracle_fired_.size() || ns != no) {
      std::ostringstream os;
      os << "expiry count mismatch: sut returned " << ns << " (dispatched "
         << sut_fired_.size() << "), oracle returned " << no << " (dispatched "
         << oracle_fired_.size() << ")";
      Diverge(current_tick_, os.str());
      return;
    }
    std::sort(sut_fired_.begin(), sut_fired_.end());
    std::sort(oracle_fired_.begin(), oracle_fired_.end());
    if (sut_fired_ != oracle_fired_) {
      std::size_t i = 0;
      while (i < sut_fired_.size() && sut_fired_[i] == oracle_fired_[i]) {
        ++i;
      }
      std::ostringstream os;
      os << "expiry sets differ; first mismatch at position " << i << ": sut id "
         << (i < sut_fired_.size() ? sut_fired_[i] : 0) << " vs oracle id "
         << (i < oracle_fired_.size() ? oracle_fired_[i] : 0);
      Diverge(current_tick_, os.str());
      return;
    }
    // Non-final periodic dispatches are fires, not expiries: the registration
    // is still outstanding, so conservation must not count them as resolved.
    report_.expiries += ns - tick_periodic_refires_;
    report_.periodic_fires += tick_periodic_refires_;

    // Both sides have now invalidated the fired handles; only now are they stale
    // on *both* sides and safe to use as stale-poke ammunition.
    for (const auto& [sut_h, oracle_h] : fired_handles_) {
      Retire(sut_h, oracle_h);
    }
    // Handler-started timers become regular live entries once the oracle replay
    // has produced the second handle of each pair.
    for (const auto& p : pending_) {
      if (!p.oracle_armed) {
        std::ostringstream os;
        os << "oracle never fired the id whose handler started id " << p.id;
        Diverge(current_tick_, os.str());
        return;
      }
      AddLive(p.id, p.sut, p.oracle, p.expiry);
    }

    now_ = current_tick_;
    ++report_.ticks_run;

    if (sut_.now() != now_ || oracle_.now() != now_) {
      std::ostringstream os;
      os << "clock skew: sut now " << sut_.now() << ", oracle now "
         << oracle_.now() << ", driver now " << now_;
      Diverge(now_, os.str());
      return;
    }
    if (sut_.outstanding() != live_.size() ||
        oracle_.outstanding() != live_.size()) {
      std::ostringstream os;
      os << "outstanding mismatch: sut " << sut_.outstanding() << ", oracle "
         << oracle_.outstanding() << ", driver " << live_.size();
      Diverge(now_, os.str());
    }
    if (report_.ok) {
      CheckConservation();
    }
  }

  // Conservation law, checked after every tick and every jump: each accepted
  // start is resolved by exactly one of {expiry, cancel, still outstanding}.
  // Restarts are deliberately absent from both sides of the identity — a
  // restart is neither a start nor a cancel — so any implementation that
  // double-fires, leaks, or mis-reclaims a restarted record breaks the
  // equation within one tick of the defect.
  void CheckConservation() {
    const std::size_t starts = report_.starts + report_.handler_rearms +
                               report_.handler_next_tick_starts;
    const std::size_t cancels = report_.stops + report_.handler_sibling_stops +
                                report_.periodic_self_cancels;
    if (starts != report_.expiries + cancels + live_.size()) {
      std::ostringstream os;
      os << "conservation violated: starts " << starts << " != expiries "
         << report_.expiries << " + cancels " << cancels << " + outstanding "
         << live_.size() << " (restarts so far: "
         << report_.restarts + report_.handler_sibling_restarts << ")";
      Diverge(now_, os.str());
    }
  }

  // ---- the batched jump -----------------------------------------------------

  // Replaces one Step() with a single AdvanceTo(now + delta) call on each side.
  // The SUT's batched override (for the wheels: occupancy-bitmap slot skipping)
  // must dispatch exactly the same (tick, id) pairs as the oracle's loop default,
  // each in nondecreasing tick order, and leave both clocks and populations in
  // lockstep. Handlers stay passive (see OnSutFire/OnOracleFire): the
  // decide-then-replay protocol is tick-grained, so re-entrancy coverage stays
  // with Step().
  void Jump() {
    Duration delta;
    if (!options_.jump_pivots.empty() && rng_.NextBool(0.5)) {
      delta = options_.jump_pivots[rng_.NextBounded(options_.jump_pivots.size())];
    } else {
      delta = 1 + rng_.NextBounded(options_.max_jump);
    }
    jump_target_ = now_ + delta;
    sut_jump_fired_.clear();
    oracle_jump_fired_.clear();
    fired_handles_.clear();
    tick_periodic_refires_ = 0;

    jumping_ = true;
    const std::size_t ns = sut_.AdvanceTo(jump_target_);
    const std::size_t no = oracle_.AdvanceTo(jump_target_);
    jumping_ = false;
    if (!report_.ok) {
      return;
    }

    if (ns != sut_jump_fired_.size() || no != oracle_jump_fired_.size() ||
        ns != no) {
      std::ostringstream os;
      os << "jump(+" << delta << ") expiry count mismatch: sut returned " << ns
         << " (dispatched " << sut_jump_fired_.size() << "), oracle returned "
         << no << " (dispatched " << oracle_jump_fired_.size() << ")";
      Diverge(jump_target_, os.str());
      return;
    }
    const auto by_tick = [](const std::pair<Tick, RequestId>& a,
                            const std::pair<Tick, RequestId>& b) {
      return a.first < b.first;
    };
    if (!std::is_sorted(sut_jump_fired_.begin(), sut_jump_fired_.end(), by_tick)) {
      Diverge(jump_target_, "sut dispatched jump expiries out of tick order");
      return;
    }
    if (!std::is_sorted(oracle_jump_fired_.begin(), oracle_jump_fired_.end(),
                        by_tick)) {
      Diverge(jump_target_, "oracle dispatched jump expiries out of tick order");
      return;
    }
    std::sort(sut_jump_fired_.begin(), sut_jump_fired_.end());
    std::sort(oracle_jump_fired_.begin(), oracle_jump_fired_.end());
    if (sut_jump_fired_ != oracle_jump_fired_) {
      std::size_t i = 0;
      while (i < sut_jump_fired_.size() &&
             sut_jump_fired_[i] == oracle_jump_fired_[i]) {
        ++i;
      }
      std::ostringstream os;
      os << "jump(+" << delta << ") expiry sets differ at position " << i
         << ": sut (tick " << sut_jump_fired_[i].first << ", id "
         << sut_jump_fired_[i].second << ") vs oracle (tick "
         << oracle_jump_fired_[i].first << ", id " << oracle_jump_fired_[i].second
         << ")";
      Diverge(jump_target_, os.str());
      return;
    }
    report_.expiries += ns - tick_periodic_refires_;
    report_.periodic_fires += tick_periodic_refires_;

    for (const auto& [sut_h, oracle_h] : fired_handles_) {
      Retire(sut_h, oracle_h);
    }

    now_ = jump_target_;
    report_.ticks_run += static_cast<std::size_t>(delta);
    ++report_.jumps;
    report_.jump_ticks += static_cast<std::size_t>(delta);

    if (sut_.now() != now_ || oracle_.now() != now_) {
      std::ostringstream os;
      os << "clock skew after jump: sut now " << sut_.now() << ", oracle now "
         << oracle_.now() << ", driver now " << now_;
      Diverge(now_, os.str());
      return;
    }
    if (sut_.outstanding() != live_.size() ||
        oracle_.outstanding() != live_.size()) {
      std::ostringstream os;
      os << "outstanding mismatch after jump: sut " << sut_.outstanding()
         << ", oracle " << oracle_.outstanding() << ", driver " << live_.size();
      Diverge(now_, os.str());
    }
    if (report_.ok) {
      CheckConservation();
    }
  }

  // ---- expiry handlers ------------------------------------------------------

  void OnSutFire(RequestId id, Tick when) {
    if (!report_.ok) {
      return;
    }
    if (jumping_) {
      sut_jump_fired_.emplace_back(when, id);
      auto it = live_.find(id);
      if (it == live_.end()) {
        std::ostringstream os;
        os << "sut fired unknown or doubly-fired id " << id << " during a jump";
        Diverge(when, os.str());
        return;
      }
      const Entry e = it->second;
      if (when != e.expiry || when <= now_ || when > jump_target_) {
        std::ostringstream os;
        os << "sut fired id " << id << " at tick " << when << ", due at "
           << e.expiry << " while jumping (" << now_ << ", " << jump_target_
           << "]";
        Diverge(when, os.str());
        return;
      }
      if (e.period != 0 && e.repeats != 1) {
        // Non-final periodic fire inside the jumped window: the timer stays
        // live and may legally fire again — at when + period — before the
        // window closes. Advancing the prediction in place makes the same
        // when-vs-expiry check above pin each successive lap.
        it->second.expiry = when + e.period;
        if (it->second.repeats > 1) {
          --it->second.repeats;
        }
        ++tick_periodic_refires_;
        return;
      }
      RemoveLive(it);
      fired_handles_.emplace_back(e.sut, e.oracle);
      return;  // handlers are passive across a jump
    }
    sut_fired_.push_back(id);
    auto it = live_.find(id);
    if (it == live_.end()) {
      std::ostringstream os;
      os << "sut fired unknown or doubly-fired id " << id;
      Diverge(current_tick_, os.str());
      return;
    }
    const Entry e = it->second;
    if (when != current_tick_ || e.expiry != current_tick_) {
      std::ostringstream os;
      os << "sut fired id " << id << " at tick " << when << ", due at "
         << e.expiry << " while processing " << current_tick_;
      Diverge(current_tick_, os.str());
      return;
    }
    if (e.period != 0 && e.repeats != 1) {
      // Non-final periodic fire: the registration stays live — re-armed in
      // place by the SUT's expiry path, re-inserted by the oracle — so the
      // entry is kept with its prediction advanced one period (phase-stable:
      // the k-th fire lands at start + k*period regardless of dispatch
      // latency). It is CLAIMED for the rest of the tick: whether the SUT's
      // sweep has re-armed it yet when some other handler runs is
      // order-dependent, so same-tick siblings must not stop/restart it.
      it->second.expiry = when + e.period;
      if (it->second.repeats > 1) {
        --it->second.repeats;
      }
      claimed_siblings_.push_back(id);
      ++tick_periodic_refires_;
      if (draining_) {
        return;
      }
      if (rng_.NextBool(options_.self_poke_probability)) {
        // Cancel-from-own-handler: between fires the handle is live (the
        // re-arm precedes dispatch), so this must SUCCEED and end the series.
        const TimerError r = sut_.StopTimer(e.sut);
        if (r != TimerError::kOk) {
          std::ostringstream os;
          os << "sut refused a fired periodic's own-handler cancel ("
             << TimerErrorName(r) << ")";
          Diverge(current_tick_, os.str());
          return;
        }
        RemoveLive(live_.find(id));
        TickAction action;
        action.periodic_self_cancel = true;
        action.self_oracle = e.oracle;
        actions_.emplace(id, action);
        Retire(e.sut, e.oracle);
        ++report_.periodic_self_cancels;
      }
      return;
    }
    RemoveLive(it);
    fired_handles_.emplace_back(e.sut, e.oracle);
    if (draining_) {
      return;
    }

    TickAction action;
    if (rng_.NextBool(options_.self_poke_probability)) {
      action.self_poke = true;
      action.self_oracle = e.oracle;
      const TimerError r = sut_.StopTimer(e.sut);
      if (r != TimerError::kNoSuchTimer) {
        std::ostringstream os;
        os << "sut accepted the fired timer's own handle inside its handler ("
           << TimerErrorName(r) << ")";
        Diverge(current_tick_, os.str());
        return;
      }
    }
    if (rng_.NextBool(options_.rearm_probability)) {
      const Duration d = options_.rearm_interval != 0
                             ? options_.rearm_interval
                             : options_.min_interval +
                                   rng_.NextBounded(options_.max_interval -
                                                    options_.min_interval + 1);
      action.rearm_id = HandlerStart(d);
      action.rearm_interval = d;
      if (!report_.ok) {
        return;
      }
      ++report_.handler_rearms;
    }
    if (rng_.NextBool(options_.start_next_tick_probability)) {
      action.next_tick_id = HandlerStart(1);
      if (!report_.ok) {
        return;
      }
      ++report_.handler_next_tick_starts;
    }
    if (rng_.NextBool(options_.stop_sibling_probability)) {
      // Only siblings strictly due later are legal victims: a same-tick sibling
      // may or may not have fired yet depending on the scheme's sweep order.
      // Siblings already restarted by ANOTHER handler this tick are off limits
      // too: a restarted sibling stays live, and a stop layered on top would
      // make the call results depend on which handler the oracle replays first.
      for (int probe = 0; probe < 8 && !live_ids_.empty(); ++probe) {
        const RequestId candidate =
            live_ids_[rng_.NextBounded(live_ids_.size())];
        auto sit = live_.find(candidate);
        if (sit->second.expiry <= current_tick_ || SiblingClaimed(candidate)) {
          continue;
        }
        const Entry sibling = sit->second;
        const TimerError r = sut_.StopTimer(sibling.sut);
        if (r != TimerError::kOk) {
          std::ostringstream os;
          os << "sut refused in-handler stop of future sibling " << candidate
             << ": " << TimerErrorName(r);
          Diverge(current_tick_, os.str());
          return;
        }
        RemoveLive(sit);
        action.sibling_id = candidate;
        action.sibling_oracle = sibling.oracle;
        action.sibling_sut = sibling.sut;
        claimed_siblings_.push_back(candidate);
        ++report_.handler_sibling_stops;
        break;
      }
    }
    if (rng_.NextBool(options_.restart_sibling_probability)) {
      // Same later-due victim rule as stop_sibling. The relink happens while
      // the scheme is mid-dispatch: with restart_sibling_interval set to the
      // table size it lands the sibling in the very bucket being swept, where
      // only the rounds/revolution arithmetic keeps it from firing a whole
      // wheel revolution early. The sibling STAYS live (same handles, new
      // expiry prediction) — which is exactly why it must be CLAIMED for the
      // tick: unlike a stopped sibling it remains a temptation for handlers
      // that fire later in the sweep, and a second stop/restart layered on it
      // would replay in a different order on the oracle side (intra-tick
      // dispatch order is unspecified) with visibly different call results.
      for (int probe = 0; probe < 8 && !live_ids_.empty(); ++probe) {
        const RequestId candidate =
            live_ids_[rng_.NextBounded(live_ids_.size())];
        auto sit = live_.find(candidate);
        if (sit->second.expiry <= current_tick_ ||
            candidate == action.sibling_id || SiblingClaimed(candidate)) {
          continue;
        }
        const Duration d =
            options_.restart_sibling_interval != 0
                ? options_.restart_sibling_interval
                : options_.min_interval +
                      rng_.NextBounded(options_.max_interval -
                                       options_.min_interval + 1);
        const TimerError r = sut_.RestartTimer(sit->second.sut, d);
        if (r != TimerError::kOk) {
          std::ostringstream os;
          os << "sut refused in-handler restart of future sibling " << candidate
             << ": " << TimerErrorName(r);
          Diverge(current_tick_, os.str());
          return;
        }
        sit->second.expiry = current_tick_ + Q(d);
        action.restart_sibling_id = candidate;
        action.restart_sibling_oracle = sit->second.oracle;
        action.restart_sibling_interval = d;
        claimed_siblings_.push_back(candidate);
        ++report_.handler_sibling_restarts;
        break;
      }
    }
    actions_.emplace(id, action);
  }

  // Start a timer from inside a SUT handler; returns the fresh id. The SUT handle
  // is parked in pending_ until the oracle replay arms its twin.
  RequestId HandlerStart(Duration interval) {
    const RequestId id = next_id_++;
    StartResult r = sut_.StartTimer(interval, id);
    if (!r.has_value()) {
      std::ostringstream os;
      os << "sut rejected in-handler start(" << interval
         << "): " << TimerErrorName(r.error());
      Diverge(current_tick_, os.str());
      return 0;
    }
    pending_.push_back(
        Pending{id, r.value(), TimerHandle{}, current_tick_ + Q(interval), false});
    return id;
  }

  void OnOracleFire(RequestId id, Tick when) {
    if (!report_.ok) {
      return;
    }
    if (jumping_) {
      // The SUT's pass already removed this id from live_; only the window is
      // checkable here. Set equality is established after both sides return.
      oracle_jump_fired_.emplace_back(when, id);
      if (when <= now_ || when > jump_target_) {
        std::ostringstream os;
        os << "oracle fired id " << id << " at tick " << when
           << " while jumping (" << now_ << ", " << jump_target_ << "]";
        Diverge(when, os.str());
      }
      return;
    }
    oracle_fired_.push_back(id);
    if (when != current_tick_) {
      std::ostringstream os;
      os << "oracle fired id " << id << " at tick " << when
         << " while processing " << current_tick_;
      Diverge(current_tick_, os.str());
      return;
    }
    auto ait = actions_.find(id);
    if (ait == actions_.end()) {
      return;  // either no action was decided, or the sets diverge (caught later)
    }
    const TickAction& a = ait->second;
    if (a.periodic_self_cancel) {
      // Replay: the oracle re-armed this periodic before dispatch too, so its
      // handle must ALSO be live from inside the handler — and stopping it
      // must succeed, ending the series on both sides.
      const TimerError r = oracle_.StopTimer(a.self_oracle);
      if (r != TimerError::kOk) {
        std::ostringstream os;
        os << "oracle refused a fired periodic's own-handler cancel ("
           << TimerErrorName(r) << ")";
        Diverge(current_tick_, os.str());
      }
      return;
    }
    if (a.self_poke) {
      // Replay: the oracle, too, must refuse the fired timer's own handle.
      const TimerError r = oracle_.StopTimer(a.self_oracle);
      if (r != TimerError::kNoSuchTimer) {
        std::ostringstream os;
        os << "oracle accepted the fired timer's own handle inside its handler ("
           << TimerErrorName(r) << ")";
        Diverge(current_tick_, os.str());
        return;
      }
    }
    if (a.rearm_id != 0) {
      ReplayStart(a.rearm_interval, a.rearm_id);
    }
    if (a.next_tick_id != 0) {
      ReplayStart(1, a.next_tick_id);
    }
    if (a.sibling_id != 0) {
      const TimerError r = oracle_.StopTimer(a.sibling_oracle);
      if (r != TimerError::kOk) {
        std::ostringstream os;
        os << "oracle refused replayed sibling stop of id " << a.sibling_id
           << ": " << TimerErrorName(r);
        Diverge(current_tick_, os.str());
        return;
      }
      Retire(a.sibling_sut, a.sibling_oracle);
    }
    if (a.restart_sibling_id != 0) {
      const TimerError r = oracle_.RestartTimer(a.restart_sibling_oracle,
                                                a.restart_sibling_interval);
      if (r != TimerError::kOk) {
        std::ostringstream os;
        os << "oracle refused replayed sibling restart of id "
           << a.restart_sibling_id << ": " << TimerErrorName(r);
        Diverge(current_tick_, os.str());
        return;
      }
    }
  }

  void ReplayStart(Duration interval, RequestId id) {
    StartResult r = oracle_.StartTimer(interval, id);
    if (!r.has_value()) {
      std::ostringstream os;
      os << "oracle rejected replayed start(" << interval << ") id " << id;
      Diverge(current_tick_, os.str());
      return;
    }
    for (auto& p : pending_) {
      if (p.id == id) {
        p.oracle = r.value();
        p.oracle_armed = true;
        return;
      }
    }
    Diverge(current_tick_, "replayed start has no pending SUT twin");
  }

  // ---- bookkeeping helpers --------------------------------------------------

  void AddLive(RequestId id, TimerHandle sut, TimerHandle oracle, Tick expiry,
               Duration period = 0, std::uint64_t repeats = 0) {
    Entry e{sut, oracle, expiry, live_ids_.size(), period, repeats};
    live_ids_.push_back(id);
    live_.emplace(id, e);
  }

  void RemoveLive(std::unordered_map<RequestId, Entry>::iterator it) {
    const std::size_t index = it->second.index;
    const RequestId moved = live_ids_.back();
    live_ids_[index] = moved;
    live_ids_.pop_back();
    if (moved != it->first) {
      live_.find(moved)->second.index = index;
    }
    live_.erase(it);
  }

  void Retire(TimerHandle sut, TimerHandle oracle) {
    if (retired_.size() < kRetiredCap) {
      retired_.emplace_back(sut, oracle);
    } else {
      retired_[rng_.NextBounded(kRetiredCap)] = {sut, oracle};
    }
  }

  // The driver's expiry predictions mirror the schemes' effective intervals.
  Duration Q(Duration interval) const {
    return QuantizeIntervalUp(interval, options_.slop_bits);
  }

  bool SiblingClaimed(RequestId id) const {
    return std::find(claimed_siblings_.begin(), claimed_siblings_.end(), id) !=
           claimed_siblings_.end();
  }

  void Diverge(Tick tick, const std::string& what) {
    if (!report_.ok) {
      return;
    }
    report_.ok = false;
    std::ostringstream os;
    os << "[" << sut_.name() << " @ tick " << tick << "] " << what;
    report_.divergence = os.str();
  }

  static constexpr std::size_t kRetiredCap = 256;

  struct Pending {
    RequestId id;
    TimerHandle sut;
    TimerHandle oracle;
    Tick expiry;
    bool oracle_armed;
  };

  TimerService& sut_;
  OracleTimers oracle_;
  const DriverOptions options_;
  rng::Xoshiro256 rng_;
  DriverReport report_;

  Tick now_ = 0;
  Tick current_tick_ = 0;
  RequestId next_id_ = 1;
  bool draining_ = false;
  bool jumping_ = false;
  Tick jump_target_ = 0;

  std::unordered_map<RequestId, Entry> live_;
  std::vector<RequestId> live_ids_;
  std::vector<std::pair<TimerHandle, TimerHandle>> retired_;

  // Per-tick scratch.
  std::vector<RequestId> sut_fired_;
  std::vector<RequestId> oracle_fired_;
  std::unordered_map<RequestId, TickAction> actions_;
  // Siblings stopped or restarted from inside a handler this tick. Each may be
  // targeted by at most ONE in-handler action: a restarted sibling stays live,
  // so two handlers hitting it in SUT dispatch order could see call results the
  // oracle's replay order cannot reproduce.
  std::vector<RequestId> claimed_siblings_;
  // Non-final periodic dispatches seen in the current Step()/Jump(): subtracted
  // from the tick's dispatch total when crediting report_.expiries.
  std::size_t tick_periodic_refires_ = 0;
  std::vector<std::pair<TimerHandle, TimerHandle>> fired_handles_;
  std::vector<Pending> pending_;
  // Per-jump scratch: (tick, id) so set comparison covers *which tick inside the
  // jumped window* each timer fired at, not merely that it fired.
  std::vector<std::pair<Tick, RequestId>> sut_jump_fired_;
  std::vector<std::pair<Tick, RequestId>> oracle_jump_fired_;
};

}  // namespace

DriverReport RunDifferential(TimerService& sut, const DriverOptions& options) {
  Episode episode(sut, options);
  return episode.Run();
}

}  // namespace twheel::verify
