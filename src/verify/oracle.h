// OracleTimers — the trivially-correct reference model for differential checking.
//
// Every scheme in this repository promises *exact* expiry: a timer started with
// interval k fires on the k-th subsequent PerTickBookkeeping call, unless stopped
// first. The oracle states that contract in the most direct data structure
// available — a sorted multimap from absolute expiry tick to request — with no
// wheels, no hashing, no rounds arithmetic, no arena recycling. It is deliberately
// slow (O(log n) per operation, heap-allocating) and deliberately boring: when the
// differential driver (differential_driver.h) finds a divergence between a scheme
// and this model, the scheme is wrong.
//
// Semantics pinned by the oracle, and relied upon by the driver:
//  * Firing order within a tick is UNSPECIFIED. The oracle fires timers due at
//    tick T in an arbitrary order; drivers must compare expiry *sets* per tick,
//    never sequences (Section 4.2: "Timer modules need not meet this [FIFO]
//    restriction").
//  * Timers due at tick T are committed when T's bookkeeping begins: an expiry
//    handler running inside tick T cannot stop a sibling that is also due at T
//    (both return kNoSuchTimer by then). Handlers may freely stop siblings due at
//    later ticks, re-arm themselves, and start new timers — a re-arm's earliest
//    legal expiry is T+1 since zero intervals are rejected.
//  * Handles are never recycled: each StartTimer burns a fresh slot number, so a
//    stale handle is *always* detected, making the oracle the strictest possible
//    referee for handle-safety checks (schemes detect staleness via generation
//    counters; the oracle detects it by construction).

#ifndef TWHEEL_SRC_VERIFY_ORACLE_H_
#define TWHEEL_SRC_VERIFY_ORACLE_H_

#include <cstddef>
#include <map>
#include <unordered_map>

#include "src/core/timer_service.h"

namespace twheel::verify {

class OracleTimers final : public TimerService {
 public:
  // `slop_bits` mirrors the schemes' reduced-precision knob (src/core/slop.h):
  // the oracle applies the same QuantizeIntervalUp to every accepted interval,
  // so a slop-configured scheme and a slop-configured oracle still agree
  // tick-for-tick and differential checking stays exact-match. Periodic cadence
  // uses the quantized period, matching the schemes' StartPeriodic.
  explicit OracleTimers(std::uint32_t slop_bits = 0) : slop_bits_(slop_bits) {}

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  // Native periodic model: the multimap entry re-inserts itself at expiry +
  // interval on every non-final fire, keeping its slot — so the handle stays
  // valid between fires, exactly the schemes' relink contract. Re-arms happen
  // before any of the tick's handlers run (a handler cancelling the just-fired
  // periodic gets kOk); the final fire of a finite registration retires the
  // slot like a one-shot expiry. Non-final fires count periodic_fires, never
  // expiries, so the conservation law is shared with the schemes.
  StartResult StartPeriodic(Duration interval, RequestId request_id,
                            std::uint64_t repeat_for = kRepeatForever) final;
  TimerError StopTimer(TimerHandle handle) final;
  // In-place restart: the multimap entry moves to now + new_interval but the
  // slot — and therefore the caller's handle — survives, stating the
  // handle-stability half of the RestartTimer contract by construction.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;

  Tick now() const final { return now_; }
  std::size_t outstanding() const final { return live_.size(); }
  metrics::OpCounts counts() const final { return counts_; }
  std::string_view name() const final { return "verify-oracle"; }
  void set_expiry_handler(ExpiryHandler handler) final {
    handler_ = std::move(handler);
  }

  // The oracle's ordered map answers the earliest expiry for free, so the §3.2
  // single-timer drivers can also be cross-checked against it.
  std::optional<Tick> NextExpiryHint() const final {
    if (by_expiry_.empty()) {
      return std::nullopt;
    }
    return by_expiry_.begin()->first;
  }

  // Not a contender in the paper's space comparison; report the honest shape of
  // the model (two node-based maps per outstanding timer).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 0;
    profile.actual_record_bytes = 0;
    profile.auxiliary_bytes =
        live_.size() * (sizeof(std::pair<Tick, RequestId>) * 2 + 8 * sizeof(void*));
    return profile;
  }

 private:
  struct Pending {
    RequestId request_id;
    std::uint32_t slot;
    Duration period = 0;         // 0 = one-shot
    std::uint64_t repeats = 0;   // remaining fires; kRepeatForever = unbounded
  };

  using ExpiryMap = std::multimap<Tick, Pending>;

  Tick now_ = 0;
  std::uint32_t slop_bits_ = 0;
  std::uint32_t next_slot_ = 0;
  ExpiryMap by_expiry_;
  // slot -> position in by_expiry_, so StopTimer erases exactly its own entry
  // (request ids are client cookies and need not be unique).
  std::unordered_map<std::uint32_t, ExpiryMap::iterator> live_;
  ExpiryHandler handler_;
  metrics::OpCounts counts_;
};

}  // namespace twheel::verify

#endif  // TWHEEL_SRC_VERIFY_ORACLE_H_
