// Concurrent torture driver for thread-safe TimerService implementations.
//
// The differential driver (differential_driver.h) checks *semantics* against the
// oracle but is single-threaded by construction: the decide-then-replay protocol
// needs a serial view of every decision. This driver supplies the missing half —
// real producer threads racing StartTimer/StopTimer against a concurrently
// advancing clock — and checks the strongest properties that survive the races,
// under the deferred-visibility contract of the MPSC submission runtime (a timer
// becomes visible at the drain following its enqueue; it fires at
// max(enqueue-now + interval, drain-tick + 1)):
//
//   * exactly-once: every start that returned a handle is observed to fire
//     exactly once, or its StopTimer returned kOk — never both, never neither
//     (checked after a quiescing drain at episode end);
//   * no early fire: a timer never fires before `observed-now-at-start +
//     interval`, where observed-now is read by the producer before its call (a
//     lower bound on the now the service captured);
//   * no fire after cancel: a StopTimer that returned kOk is authoritative even
//     when it raced the expiry — the fire log must not contain that cookie;
//   * monotone dispatch: expiry `when` values are nondecreasing within each
//     driver thread's dispatch stream, and every `when` is <= the service's now
//     at dispatch;
//   * conservation at quiescence: outstanding() == 0 and fires + kOk-cancels ==
//     successful starts.
//
// Five episode modes:
//   * kManualRace — producers race while the driver's own thread advances the
//     clock via interleaved PerTickBookkeeping / AdvanceTo batches (invariant
//     checks above);
//   * kTickerRace — same, with a TickerThread as the clock driver, exercising
//     the chunked catch-up path against live producers;
//   * kLockstepOracle — producers and the clock alternate under a barrier: the
//     clock is frozen while producers race a batch of enqueues (so every
//     deadline is minted at a known now), then the batch is replayed into
//     OracleTimers and both worlds advance in lockstep, comparing per-tick
//     expiry multisets, call results, now(), and outstanding() *exactly* — the
//     full differential guarantee, with genuine MPSC contention inside each
//     enqueue phase;
//   * kMultiTicker — the SUT must be a concurrent::ShardedWheel: a
//     DispatchPool in ticker mode is the clock, i.e. N drainer threads
//     self-pace their own shards against the wall clock and deliver expiries
//     concurrently (with stealing), while producers race the full alphabet;
//   * kStealStorm — same pool, manual mode: the driver thread slams bursty
//     AdvanceTo jumps through the pool so whole slot-ranges of expiries are
//     published at once and idle drainers fight to steal the batches.
//
// In the pool modes (kMultiTicker, kStealStorm) expiry handlers run
// CONCURRENTLY on several drainer threads, so the fire log's global
// monotone-dispatch and when<=now checks are vacuous by design and disabled;
// instead the wheel itself certifies per-shard delivery order
// (ShardedWheel::dispatch_order_violations must stay 0 — monotone-per-shard),
// and the episode additionally checks the counts() conservation law
// start_calls == expiries + kOk-cancels + outstanding at quiesce, which only
// holds if the per-shard OpCounts snapshot is coherent under N drainers. The
// per-cookie invariants (exactly-once, budgets, early-fire bounds, periodic
// spacing) are unchanged: all laps of one cookie belong to one shard, whose
// dispatch stays serial under the batch-rights CAS even when stolen.
//
// The driver is scheme-agnostic (any thread-safe TimerService works; the locked
// ShardedWheel and LockedService satisfy the same invariants with "visible
// immediately" as the degenerate visibility point) but was built to trust the
// deferred-registration runtime of concurrent::ShardedWheel.

#ifndef TWHEEL_SRC_VERIFY_CONCURRENT_DRIVER_H_
#define TWHEEL_SRC_VERIFY_CONCURRENT_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/timer_service.h"

namespace twheel::verify {

enum class TortureMode : std::uint8_t {
  kManualRace,
  kTickerRace,
  kLockstepOracle,
  // Pool modes: require the SUT to be a concurrent::ShardedWheel (the episode
  // fails cleanly otherwise). Clock + dispatch come from a DispatchPool.
  kMultiTicker,
  kStealStorm,
};

struct TortureOptions {
  std::uint64_t seed = 1;
  TortureMode mode = TortureMode::kManualRace;

  // Producer threads racing StartTimer/StopTimer.
  std::size_t producers = 4;
  // Start/stop operations attempted per producer per episode (kManualRace,
  // kTickerRace) or per round (kLockstepOracle).
  std::size_t ops_per_producer = 512;

  Duration min_interval = 1;
  Duration max_interval = 128;
  // Probability that a producer stops one of its own live timers instead of
  // starting a new one.
  double stop_probability = 0.4;
  // Probability that a producer RESTARTS one of its own live timers instead.
  // kOk commits the restart: the handle stays valid (the producer keeps using
  // it), and the checker requires the eventual fire tick to be >= the
  // producer's observed now() at the LAST successful restart + its interval —
  // so a restarted-before-its-old-deadline timer that fires at the old
  // deadline is flagged. kNoSuchTimer means a fire (or claim) won the race:
  // the cookie must then appear in the fire log exactly once — restart-vs-fire
  // resolves exactly once, never both and never neither.
  double restart_probability = 0.0;
  // Probability that a producer's start is a PERIODIC registration
  // (StartPeriodic) with a finite repeat budget uniform in
  // [1, periodic_repeat_max]. Finite budgets keep episodes quiescible. A
  // periodic stays in the producer's live set across its laps, so the
  // stop/restart alphabet races cancel-between-fires and restart-of-periodic
  // against the expiry-path re-arm. The checker then requires: a periodic
  // never cancelled delivers EXACTLY its budget of laps; kOk cancel means the
  // final lap was never delivered (a strict prefix of the budget); laps of a
  // never-restarted periodic are spaced exactly one period apart (the re-arm
  // is phase-stable); and no lap lands before observed-now-at-start + period.
  double periodic_probability = 0.0;
  std::uint64_t periodic_repeat_max = 4;

  // kManualRace: ticks the driver thread delivers while producers run, and the
  // probability a delivery is an AdvanceTo batch (uniform in [1, max_jump])
  // instead of a single PerTickBookkeeping.
  std::size_t race_ticks = 256;
  double jump_probability = 0.25;
  Duration max_jump = 32;

  // kTickerRace: the ticker period. Small enough that a slow CI machine still
  // delivers real start/expiry races within the episode.
  std::uint64_t ticker_period_us = 50;

  // kLockstepOracle: barrier-synchronized {enqueue, replay, advance} rounds.
  std::size_t rounds = 24;

  // kMultiTicker / kStealStorm: DispatchPool shape. `drainers` threads own the
  // SUT's shards round-robin; `steal` lets an idle drainer deliver other
  // shards' published batches. kMultiTicker paces every drainer at
  // `pool_period_us` per tick; kStealStorm ignores the period and instead has
  // the driver thread push bursty AdvanceTo jumps (reusing race_ticks /
  // jump_probability / max_jump) so batch stacks pile up for the thieves.
  // `pool_chunk_ticks` bounds one AdvanceShard catch-up chunk, keeping
  // Stop() prompt even when an episode ends mid-burst.
  std::size_t drainers = 2;
  bool steal = true;
  std::uint64_t pool_period_us = 200;
  std::uint64_t pool_chunk_ticks = 64;
};

struct TortureReport {
  bool ok = true;
  // Human-readable description of the FIRST violation; empty when ok.
  std::string violation;

  std::size_t starts = 0;          // successful StartTimer calls
  std::size_t start_rejects = 0;   // kNoCapacity (counted, not a violation)
  std::size_t cancels = 0;         // StopTimer calls that returned kOk
  std::size_t cancel_misses = 0;   // StopTimer calls that returned kNoSuchTimer
  std::size_t restarts = 0;        // RestartTimer calls that returned kOk
  std::size_t restart_misses = 0;  // kNoSuchTimer: the fire won the race
  std::size_t restart_rejects = 0; // kNoCapacity (counted, not a violation)
  std::size_t fires = 0;           // expiry dispatches observed
  std::size_t periodic_starts = 0; // successful StartPeriodic calls
  std::size_t periodic_fires = 0;  // laps attributed to periodic registrations
  std::size_t ticks_run = 0;       // clock advancement seen by the service
  // Pool modes only: expiry batches published by shard advances, and how many
  // were delivered by a non-owning drainer (a successful steal).
  std::uint64_t dispatch_batches = 0;
  std::uint64_t dispatch_steals = 0;
};

// Runs one episode against `sut`, which must be thread-safe. The driver installs
// its own expiry handler (replacing any existing one) and expects exclusive use
// of the service: the episode starts at the service's current now() and quiesces
// it (drains every outstanding timer) before returning.
TortureReport RunTorture(TimerService& sut, const TortureOptions& options);

}  // namespace twheel::verify

#endif  // TWHEEL_SRC_VERIFY_CONCURRENT_DRIVER_H_
