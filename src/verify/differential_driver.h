// Differential model-checking driver.
//
// Replays one deterministic, seeded stream of timer-facility operations against a
// TimerService under test and against OracleTimers simultaneously, asserting after
// every tick that the two worlds are indistinguishable:
//
//   * the multiset of (request id) expiries delivered this tick is identical —
//     order within a tick is deliberately NOT compared (Section 4.2);
//   * both sides report the same expiry count, the same outstanding() population,
//     and the same now();
//   * StartTimer/StopTimer/RestartTimer return identical results call-for-call,
//     including the rejects (zero interval, stale handle, restart-of-expired,
//     restart-of-cancelled);
//   * a restarted timer fires at exactly now + new_interval — never the old
//     deadline — through the SAME handle pair, and the conservation law
//     starts == expiries + cancels + outstanding holds after every tick
//     (restarts are neither starts nor cancels);
//   * stale handles — from expiry, from cancellation, or fabricated — are always
//     refused with kNoSuchTimer, on both sides, even after the underlying slots
//     have been recycled many times.
//
// The stream covers the paper's full operation alphabet plus the re-entrancy the
// ExpiryHandler contract permits: handlers may re-arm the fired timer (including
// the nasty interval ≡ 0 (mod TableSize) case that lands in the bucket currently
// being swept), stop a not-yet-visited sibling (restricted to siblings due on a
// *later* tick, because intra-tick firing order is unspecified and a same-tick
// sibling may or may not have fired already — see oracle.h), and start a timer due
// on the very next tick.
//
// Determinism across the two sides is achieved by a decide-then-replay protocol:
// the side under test runs its tick first and every in-handler decision (drawn
// from the seeded RNG) is logged; the oracle's handlers then replay the log rather
// than re-rolling dice. Because every logged action targets either the fired timer
// itself or a sibling that cannot fire this tick, the end-of-tick state is
// independent of intra-tick dispatch order, and replay is sound.
//
// CAUTION: LockedService runs expiry handlers while holding its global lock, so
// re-entrant handler operations self-deadlock on it by documented design. Drive it
// with DriverOptions::WithoutReentrancy().

#ifndef TWHEEL_SRC_VERIFY_DIFFERENTIAL_DRIVER_H_
#define TWHEEL_SRC_VERIFY_DIFFERENTIAL_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/timer_service.h"

namespace twheel::verify {

struct DriverOptions {
  std::uint64_t seed = 1;

  // Measured phase: this many ticks of mixed starts/stops/pokes.
  std::size_t ticks = 256;
  double starts_per_tick = 2.0;

  // Intervals are uniform in [min_interval, max_interval]. max_interval must be
  // within the span of every scheme under test (BasicWheel rejects intervals >=
  // its wheel size; a {16,16,16} hierarchy spans 4096 ticks). Drive *unbounded*
  // arena configurations: the oracle models no capacity limit, so a kNoCapacity
  // reject on only one side is (correctly) reported as divergence.
  Duration min_interval = 1;
  Duration max_interval = 300;

  // Per-tick probabilities for the mutation alphabet outside handlers.
  double stop_probability = 0.35;        // cancel one random live timer
  double stale_poke_probability = 0.5;   // StopTimer on a retired/garbage handle
  double zero_interval_probability = 0.1;  // StartTimer(0): both must reject

  // RestartTimer coverage. A restart relinks one random live timer in place:
  // both sides must return kOk, the driver's handle pair stays valid (later
  // stops reuse it — the handle-stability half of the contract), and the timer
  // must fire at exactly now + the new interval, never the old deadline.
  double restart_probability = 0.0;
  // 0 = restart with a random interval in [min_interval, max_interval];
  // nonzero = exactly this interval (tests pass the table size to land the
  // relink in the bucket being swept next, or a span-crossing pivot to force
  // wheel rollover).
  Duration restart_interval = 0;
  // RestartTimer on a retired handle — expired OR cancelled (retired_ holds
  // both) — plus fabricated and null handles: kNoSuchTimer on both sides, and
  // no live timer may be disturbed.
  double restart_stale_probability = 0.0;
  // RestartTimer(live, 0): both sides must reject with kZeroInterval and leave
  // the timer untouched at its old deadline (verified when it later fires).
  double restart_zero_probability = 0.0;

  // Per-expiry probabilities for the in-handler re-entrancy alphabet.
  double rearm_probability = 0.0;
  // 0 = re-arm with a random interval; nonzero = exactly this interval (set it to
  // the wheel's table size to land the re-arm back in the bucket being swept).
  Duration rearm_interval = 0;
  // In-handler restart of a sibling due on a *later* tick (same victim rule as
  // stop_sibling: intra-tick order is unspecified, so same-tick siblings are
  // off limits — and a restart's new expiry is >= current_tick + 1, so the
  // restarted sibling never joins the tick's committed expiry set).
  double restart_sibling_probability = 0.0;
  // 0 = random interval; nonzero = exact (table size lands the relink in the
  // bucket currently being dispatched).
  Duration restart_sibling_interval = 0;

  double stop_sibling_probability = 0.0;
  double start_next_tick_probability = 0.0;
  // StopTimer on the fired timer's own handle, from inside its handler. For a
  // one-shot (and for a finite periodic's final fire) the handle is stale by
  // dispatch time and both sides must refuse with kNoSuchTimer; for a
  // non-final periodic fire the expiry-path re-arm precedes dispatch, so the
  // handle is LIVE and both sides must accept — the poke becomes a
  // cancel-from-own-handler that ends the series.
  double self_poke_probability = 0.0;

  // Periodic-timer alphabet. With this per-tick probability the mutate phase
  // starts one finite periodic registration (StartPeriodic; repeat budget
  // uniform in [1, periodic_repeat_max]). Periodic entries stay in the live
  // set across non-final fires — same handle pair, expiry prediction advanced
  // one period per fire — so the existing stop/restart/stale alphabet
  // naturally covers cancel-between-fires, restart-of-periodic (the cadence
  // must survive, only the next deadline moves), and stale pokes after the
  // final fire. Every non-final fire must be dispatched by both sides without
  // being counted as an expiry (conservation treats only the final fire as the
  // start's resolution).
  double periodic_probability = 0.0;
  // 0 = period uniform in [min_interval, max_interval]; nonzero = exactly this
  // period (tests pass the table size or a span-rollover pivot so every re-arm
  // lands back in the bucket being swept / forces wheel rollover).
  Duration periodic_interval = 0;
  std::uint64_t periodic_repeat_max = 4;

  // Batched-advance jumps: with this probability a tick of the measured phase is
  // replaced by one AdvanceTo(now + delta) call on both sides. The SUT's batched
  // override (occupancy-bitmap jumping for the wheels) is checked against the
  // oracle's loop default: both must dispatch the identical (tick, id) multiset
  // across the jumped window, in nondecreasing tick order, and land on the same
  // clock/outstanding state. Handlers are passive during a jump (the per-tick
  // decide-then-replay protocol is tick-grained).
  double jump_probability = 0.0;
  // Random jump deltas are uniform in [1, max_jump].
  Duration max_jump = 64;
  // When non-empty, half the jumps draw their delta from here instead — the test
  // supplies wheel-size / hierarchy-rollover boundary values (size-1, size,
  // size+1, span, ...).
  std::vector<Duration> jump_pivots;

  // After the measured phase the driver stops mutating and ticks until both sides
  // drain; this bounds how long that may take beyond max_interval.
  std::size_t drain_slack = 8;

  // Slop-bits reduced precision (src/core/slop.h). The SUT must be constructed
  // with the SAME slop_bits; the driver builds its paired oracle with it and
  // rounds every expiry prediction up to the 2^slop_bits grain, so checking
  // stays exact-match — the slop bound is verified, not tolerated: a scheme
  // firing one tick off the quantized deadline still diverges.
  std::uint32_t slop_bits = 0;

  // A copy safe for services that run handlers under their own lock.
  DriverOptions WithoutReentrancy() const {
    DriverOptions o = *this;
    o.rearm_probability = 0.0;
    o.restart_sibling_probability = 0.0;
    o.stop_sibling_probability = 0.0;
    o.start_next_tick_probability = 0.0;
    o.self_poke_probability = 0.0;
    return o;
  }
};

struct DriverReport {
  bool ok = true;
  // Human-readable description of the FIRST divergence; empty when ok.
  std::string divergence;

  std::size_t ticks_run = 0;
  std::size_t starts = 0;
  std::size_t stops = 0;
  std::size_t expiries = 0;
  std::size_t stale_pokes = 0;
  std::size_t restarts = 0;             // successful in-place relinks
  std::size_t stale_restarts = 0;       // refused restart-of-expired/cancelled
  std::size_t zero_restarts = 0;        // refused RestartTimer(live, 0)
  std::size_t handler_rearms = 0;
  std::size_t handler_sibling_stops = 0;
  std::size_t handler_sibling_restarts = 0;
  std::size_t handler_next_tick_starts = 0;
  std::size_t periodic_starts = 0;        // StartPeriodic registrations accepted
  std::size_t periodic_fires = 0;         // non-final periodic dispatches (not expiries)
  std::size_t periodic_self_cancels = 0;  // cancel-from-own-handler on a live periodic
  std::size_t jumps = 0;       // AdvanceTo batches executed
  std::size_t jump_ticks = 0;  // ticks covered by those batches (included in ticks_run)
};

// Runs one episode. The driver installs its own expiry handler on `sut` (replacing
// any existing one) and owns the paired oracle internally. The episode ends early
// at the first divergence.
DriverReport RunDifferential(TimerService& sut, const DriverOptions& options);

}  // namespace twheel::verify

#endif  // TWHEEL_SRC_VERIFY_DIFFERENTIAL_DRIVER_H_
