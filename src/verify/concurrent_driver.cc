#include "src/verify/concurrent_driver.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/assert.h"
#include "src/concurrent/dispatch_pool.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/concurrent/ticker.h"
#include "src/rng/rng.h"
#include "src/verify/oracle.h"

namespace twheel::verify {
namespace {

// Cookies are globally unique per episode: {producer:16 | sequence:48}. The
// checker decodes them back into the owning thread's op log.
constexpr RequestId MakeCookie(std::size_t producer, std::uint64_t seq) {
  return (static_cast<RequestId>(producer) << 48) | seq;
}

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// ---------------------------------------------------------------------------
// Race modes (kManualRace, kTickerRace): free-running producers, invariant
// checks over per-thread op logs and the dispatch stream.
// ---------------------------------------------------------------------------

struct OpRecord {
  Duration interval = 0;
  // The producer's read of now() immediately before StartTimer — a lower bound
  // on the now the service captured, hence on the legal fire tick minus
  // interval.
  Tick observed_now = 0;
  bool started = false;       // StartTimer returned a handle
  bool cancelled_ok = false;  // our StopTimer returned kOk
  bool cancel_missed = false; // our StopTimer returned kNoSuchTimer
  // Last successful in-place restart of this timer: the fire-tick lower bound
  // becomes restart_observed_now + restart_interval. A restart committed
  // before the old deadline therefore makes an old-deadline fire a violation.
  bool restarted = false;
  Tick restart_observed_now = 0;
  Duration restart_interval = 0;
  bool restart_missed = false;  // RestartTimer returned kNoSuchTimer (fire won)
  // Periodic registration: `repeats` is the finite lap budget handed to
  // StartPeriodic. The cookie then legally appears in the fire log up to
  // `repeats` times (exactly `repeats` unless a cancel ended the series).
  bool periodic = false;
  std::uint64_t repeats = 0;
};

struct ProducerLog {
  std::vector<OpRecord> ops;
  std::size_t start_rejects = 0;
  std::size_t restarts = 0;
  std::size_t restart_misses = 0;
  std::size_t restart_rejects = 0;
  std::size_t periodic_starts = 0;
};

// The dispatch stream. In the single-driver modes it is appended by whichever
// one thread is advancing the clock (driver thread or TickerThread — never
// both at once; the phases are sequenced by thread joins) and the global
// monotonicity / when<=now checks apply. In the pool modes several drainers
// append concurrently (the mutex keeps the log itself coherent), interleaving
// independently-ordered per-shard streams — so those two global checks are
// disabled via `concurrent_dispatch` and per-shard order is certified inside
// the wheel instead (dispatch_order_violations, checked at episode end).
struct FireLog {
  std::mutex mutex;
  std::vector<std::pair<RequestId, Tick>> fires;
  bool have_last = false;
  Tick last_when = 0;
  bool concurrent_dispatch = false;
  std::string violation;  // first in-handler violation (monotonicity)

  void Record(RequestId cookie, Tick when, Tick service_now) {
    std::lock_guard<std::mutex> lock(mutex);
    if (violation.empty() && !concurrent_dispatch) {
      if (have_last && when < last_when) {
        violation = Format("dispatch ticks not monotone: %llu after %llu",
                           static_cast<unsigned long long>(when),
                           static_cast<unsigned long long>(last_when));
      } else if (when > service_now) {
        violation = Format("dispatch at tick %llu but service now() is %llu",
                           static_cast<unsigned long long>(when),
                           static_cast<unsigned long long>(service_now));
      }
    }
    have_last = true;
    last_when = when;
    fires.emplace_back(cookie, when);
  }
};

void RaceProducer(TimerService& sut, const TortureOptions& options,
                  std::size_t producer, std::uint64_t seed, ProducerLog& log) {
  rng::Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint64_t, TimerHandle>> live;  // {seq, handle}
  log.ops.reserve(options.ops_per_producer);
  for (std::size_t i = 0; i < options.ops_per_producer; ++i) {
    if ((i & 15) == 0) {
      std::this_thread::yield();  // stretch the episode across more ticks
    }
    if (!live.empty() && rng.NextBool(options.restart_probability)) {
      const std::size_t pick = rng.NextBounded(live.size());
      const auto [seq, handle] = live[pick];
      const Duration new_interval =
          options.min_interval +
          rng.NextBounded(options.max_interval - options.min_interval + 1);
      // Read now() BEFORE the call: a lower bound on the now the service mints
      // the new deadline from, hence on the legal fire tick minus interval.
      const Tick observed = sut.now();
      const TimerError err = sut.RestartTimer(handle, new_interval);
      if (err == TimerError::kOk) {
        // Handle stays valid in place — the timer remains in `live` and later
        // stops/restarts reuse the very same handle.
        log.ops[seq].restarted = true;
        log.ops[seq].restart_observed_now = observed;
        log.ops[seq].restart_interval = new_interval;
        ++log.restarts;
      } else if (err == TimerError::kNoSuchTimer) {
        // The fire won the race; exactly-once demands the cookie shows up in
        // the fire log (checked later) and the handle is dead.
        log.ops[seq].restart_missed = true;
        live[pick] = live.back();
        live.pop_back();
        ++log.restart_misses;
      } else {
        ++log.restart_rejects;  // ring backpressure under kReject; timer unmoved
      }
      continue;
    }
    if (!live.empty() && rng.NextBool(options.stop_probability)) {
      const std::size_t pick = rng.NextBounded(live.size());
      const auto [seq, handle] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      const TimerError err = sut.StopTimer(handle);
      if (err == TimerError::kOk) {
        log.ops[seq].cancelled_ok = true;
      } else {
        // The timer beat us to the fire (or, under MPSC, its fire was already
        // claimed). Legal; the checker requires it to appear in the fire log.
        log.ops[seq].cancel_missed = true;
      }
      continue;
    }
    const Duration interval =
        options.min_interval +
        rng.NextBounded(options.max_interval - options.min_interval + 1);
    OpRecord record;
    record.interval = interval;
    record.observed_now = sut.now();
    const std::uint64_t seq = log.ops.size();
    const bool periodic = rng.NextBool(options.periodic_probability);
    if (periodic) {
      record.periodic = true;
      record.repeats = 1 + rng.NextBounded(options.periodic_repeat_max);
    }
    StartResult result =
        periodic ? sut.StartPeriodic(interval, MakeCookie(producer, seq),
                                     record.repeats)
                 : sut.StartTimer(interval, MakeCookie(producer, seq));
    if (result.has_value()) {
      record.started = true;
      live.emplace_back(seq, result.value());
      if (periodic) {
        ++log.periodic_starts;
      }
    } else {
      ++log.start_rejects;  // backpressure under kReject; not a violation
    }
    log.ops.push_back(record);
  }
}

// Drives the clock until every producer has finished, then quiesces the
// service. `advance` is called by the sole clock-driving thread.
void QuiesceAfterRace(TimerService& sut, const TortureOptions& options,
                      TortureReport& report) {
  // One batch of max_interval + 2 drains every queued command (deferred mode
  // drains before advancing) and fires every one-shot it registers; a periodic
  // started at the very end of the race still owes its whole budget of laps,
  // up to periodic_repeat_max * max_interval further ticks. Loop a few times
  // defensively in case a scheme needs a second pass.
  const Duration periodic_span =
      options.periodic_probability > 0.0
          ? options.max_interval *
                static_cast<Duration>(options.periodic_repeat_max)
          : 0;
  for (int i = 0; i < 4 && sut.outstanding() != 0; ++i) {
    sut.AdvanceTo(sut.now() + options.max_interval + periodic_span + 2);
  }
  if (sut.outstanding() != 0 && report.violation.empty()) {
    report.ok = false;
    report.violation = Format(
        "service did not quiesce: %zu timers outstanding after drain",
        sut.outstanding());
  }
}

void CheckRaceLogs(const std::vector<ProducerLog>& logs, const FireLog& fire_log,
                   TortureReport& report) {
  auto fail = [&report](std::string message) {
    if (report.ok) {
      report.ok = false;
      report.violation = std::move(message);
    }
  };
  if (!fire_log.violation.empty()) {
    fail(fire_log.violation);
  }
  // cookie -> every dispatch tick, in dispatch order (periodics fire once per
  // lap, so a cookie may legally appear several times).
  std::unordered_map<RequestId, std::vector<Tick>> fired;
  fired.reserve(fire_log.fires.size());
  for (const auto& [cookie, when] : fire_log.fires) {
    fired[cookie].push_back(when);
  }
  std::size_t starts = 0;
  std::size_t cancels = 0;
  std::size_t cancel_misses = 0;
  std::size_t attributed = 0;
  for (std::size_t producer = 0; producer < logs.size(); ++producer) {
    const ProducerLog& log = logs[producer];
    report.start_rejects += log.start_rejects;
    report.restarts += log.restarts;
    report.restart_misses += log.restart_misses;
    report.restart_rejects += log.restart_rejects;
    report.periodic_starts += log.periodic_starts;
    for (std::uint64_t seq = 0; seq < log.ops.size(); ++seq) {
      const OpRecord& op = log.ops[seq];
      if (!op.started) {
        continue;
      }
      ++starts;
      const RequestId cookie = MakeCookie(producer, seq);
      const auto it = fired.find(cookie);
      const std::size_t count = it == fired.end() ? 0 : it->second.size();
      const std::size_t budget = op.periodic ? op.repeats : 1;
      attributed += count;
      if (op.periodic) {
        report.periodic_fires += count;
      }
      if (op.cancelled_ok) {
        ++cancels;
        // One-shot: an authoritative kOk cancel means no fire at all. Periodic:
        // laps delivered BEFORE the cancel committed are legal (a cancel racing
        // an already-collected non-final lap may even see that one lap arrive
        // after kOk), but the FINAL lap claims the registration — it can never
        // coexist with a kOk cancel — so the series must be a strict prefix.
        if (count >= budget) {
          fail(Format("timer %zu/%llu fired %zu times (budget %zu) despite "
                      "StopTimer returning kOk",
                      producer, static_cast<unsigned long long>(seq), count,
                      budget));
        }
        continue;
      }
      if (op.cancel_missed) {
        ++cancel_misses;
      }
      if (count != budget) {
        fail(Format("timer %zu/%llu (interval %llu%s) fired %zu times, "
                    "expected %zu",
                    producer, static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(op.interval),
                    op.periodic ? ", periodic" : "", count, budget));
        continue;
      }
      // A committed restart supersedes the original deadline — and, for a
      // periodic, re-phases every later lap — so the deadline arithmetic below
      // only binds never-restarted timers plus the one-shot restart bound.
      const Tick bound = op.restarted
                             ? op.restart_observed_now + op.restart_interval
                             : op.observed_now + op.interval;
      const Tick first = it->second.front();
      if (!op.periodic || !op.restarted) {
        if (first < bound) {
          fail(Format("timer %zu/%llu fired early: at %llu, but observed now "
                      "%llu + interval %llu = %llu%s",
                      producer, static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(first),
                      static_cast<unsigned long long>(
                          op.restarted ? op.restart_observed_now
                                       : op.observed_now),
                      static_cast<unsigned long long>(
                          op.restarted ? op.restart_interval : op.interval),
                      static_cast<unsigned long long>(bound),
                      op.restarted ? " (after in-place restart)" : ""));
        }
      }
      if (op.periodic && !op.restarted) {
        // Phase stability under contention: the expiry-path re-arm targets
        // expiry + period exactly, so consecutive laps of a never-restarted
        // periodic are spaced exactly one period apart — no drift, no
        // compression, regardless of how the clock was advanced.
        for (std::size_t lap = 1; lap < it->second.size(); ++lap) {
          if (it->second[lap] - it->second[lap - 1] != op.interval) {
            fail(Format("periodic %zu/%llu lap %zu fired at %llu, %llu ticks "
                        "after the previous lap instead of its period %llu",
                        producer, static_cast<unsigned long long>(seq), lap,
                        static_cast<unsigned long long>(it->second[lap]),
                        static_cast<unsigned long long>(it->second[lap] -
                                                        it->second[lap - 1]),
                        static_cast<unsigned long long>(op.interval)));
            break;
          }
        }
      }
    }
  }
  report.starts = starts;
  report.cancels = cancels;
  report.cancel_misses = cancel_misses;
  report.fires = fire_log.fires.size();
  // Conservation at quiescence: every dispatch is attributed to exactly one
  // started op (the per-op budget checks above pin the counts; this closes the
  // loop against ghost cookies the logs never started).
  if (report.ok && attributed != fire_log.fires.size()) {
    fail(Format("conservation violated: %zu dispatches attributed to started "
                "ops but %zu dispatches logged",
                attributed, fire_log.fires.size()));
  }
}

TortureReport RunRace(TimerService& sut, const TortureOptions& options) {
  TortureReport report;
  const bool pool_mode = options.mode == TortureMode::kMultiTicker ||
                         options.mode == TortureMode::kStealStorm;
  concurrent::ShardedWheel* sharded = nullptr;
  if (pool_mode) {
    sharded = dynamic_cast<concurrent::ShardedWheel*>(&sut);
    if (sharded == nullptr) {
      report.ok = false;
      report.violation =
          "kMultiTicker/kStealStorm require a concurrent::ShardedWheel SUT";
      return report;
    }
  }
  const metrics::OpCounts base_counts =
      pool_mode ? sut.counts() : metrics::OpCounts{};

  const Tick base = sut.now();
  FireLog fire_log;
  fire_log.concurrent_dispatch = pool_mode;
  sut.set_expiry_handler([&fire_log, &sut](RequestId cookie, Tick when) {
    fire_log.Record(cookie, when, sut.now());
  });

  std::vector<ProducerLog> logs(options.producers);
  std::atomic<std::size_t> running{options.producers};
  std::vector<std::thread> producers;
  producers.reserve(options.producers);
  for (std::size_t p = 0; p < options.producers; ++p) {
    producers.emplace_back([&, p] {
      RaceProducer(sut, options, p, options.seed * 0x9e3779b97f4a7c15ULL + p,
                   logs[p]);
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  if (options.mode == TortureMode::kTickerRace) {
    {
      concurrent::TickerThread ticker(
          sut, std::chrono::microseconds(options.ticker_period_us));
      while (running.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      // Stop() joins the ticker; no bookkeeping call runs after it returns, so
      // the quiesce below is the sole clock driver.
    }
  } else if (options.mode == TortureMode::kMultiTicker) {
    // N per-shard tickers: every drainer self-paces its own shards against the
    // wall clock and delivers (plus steals) concurrently with the producers.
    concurrent::DispatchPool pool(
        *sharded,
        {.drainers = options.drainers,
         .steal = options.steal,
         .tick_period = std::chrono::microseconds(options.pool_period_us),
         .max_chunk_ticks = options.pool_chunk_ticks});
    while (running.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    // Joins every drainer and delivers any batches still published; the
    // quiesce below is then the sole clock driver (its absolute-target
    // AdvanceTo re-converges the shard cursors the ticker left unequal).
    pool.Stop();
  } else if (options.mode == TortureMode::kStealStorm) {
    // Manual-mode pool slammed with bursty jumps: each AdvanceTo publishes
    // whole slot-ranges of expiry batches at once across every shard, so idle
    // drainers race to steal them while the owners are still advancing.
    concurrent::DispatchPool pool(
        *sharded,
        {.drainers = options.drainers,
         .steal = options.steal,
         .tick_period = std::chrono::microseconds(0),
         .max_chunk_ticks = options.pool_chunk_ticks});
    rng::Xoshiro256 rng(options.seed ^ 0xda3e39cb94b95bdbULL);
    std::size_t delivered = 0;
    while (delivered < options.race_ticks ||
           running.load(std::memory_order_acquire) != 0) {
      const Duration jump = 1 + rng.NextBounded(options.max_jump);
      pool.AdvanceTo(sut.now() + jump);
      delivered += jump;
      std::this_thread::yield();
    }
    pool.Stop();
  } else {
    rng::Xoshiro256 rng(options.seed ^ 0xda3e39cb94b95bdbULL);
    std::size_t delivered = 0;
    // Keep the clock moving until producers finish (kSpin producers depend on
    // the drainer), front-loading the configured race_ticks.
    while (delivered < options.race_ticks ||
           running.load(std::memory_order_acquire) != 0) {
      if (rng.NextBool(options.jump_probability)) {
        const Duration jump = 1 + rng.NextBounded(options.max_jump);
        sut.AdvanceTo(sut.now() + jump);
        delivered += jump;
      } else {
        sut.PerTickBookkeeping();
        ++delivered;
      }
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) {
    t.join();
  }

  QuiesceAfterRace(sut, options, report);
  CheckRaceLogs(logs, fire_log, report);
  if (pool_mode) {
    auto fail = [&report](std::string message) {
      if (report.ok) {
        report.ok = false;
        report.violation = std::move(message);
      }
    };
    const metrics::OpCounts end_counts = sut.counts();
    report.dispatch_batches =
        end_counts.dispatch_batches - base_counts.dispatch_batches;
    report.dispatch_steals =
        end_counts.dispatch_steals - base_counts.dispatch_steals;
    // Monotone-per-shard: the wheel certifies, at every dispatch, that batch
    // sequence numbers are dense and expiry ticks nondecreasing within the
    // shard — across owner dispatches AND steals.
    if (sharded->dispatch_order_violations() != 0) {
      fail(Format("per-shard dispatch order violated %llu times (stolen or "
                  "reordered batches)",
                  static_cast<unsigned long long>(
                      sharded->dispatch_order_violations())));
    }
    // Conservation law over the concurrent-coherent counts() snapshot: with
    // no capacity rejects, every successful start resolved exactly once as a
    // delivered final fire or a committed cancel (outstanding() is 0 after a
    // successful quiesce). This is the N-drainer coherence check: it fails if
    // any shard's claim-point counters tore or double-counted under stealing.
    if (report.start_rejects == 0 && report.restart_rejects == 0) {
      const std::uint64_t delta_starts =
          end_counts.start_calls - base_counts.start_calls;
      const std::uint64_t delta_expiries =
          end_counts.expiries - base_counts.expiries;
      const std::uint64_t expected =
          delta_expiries + report.cancels + sut.outstanding();
      if (delta_starts != expected) {
        fail(Format("counts() conservation violated at quiesce: start_calls "
                    "delta %llu != expiries delta %llu + kOk cancels %zu + "
                    "outstanding %zu",
                    static_cast<unsigned long long>(delta_starts),
                    static_cast<unsigned long long>(delta_expiries),
                    report.cancels, sut.outstanding()));
      }
    }
  }
  report.ticks_run = sut.now() - base;
  sut.set_expiry_handler(nullptr);
  return report;
}

// ---------------------------------------------------------------------------
// kLockstepOracle: exact differential comparison with genuine MPSC contention.
// The clock is frozen while producers race their enqueues, so every deadline is
// minted at a known now and the round replays into OracleTimers verbatim.
// ---------------------------------------------------------------------------

struct LockstepOp {
  enum class Kind : std::uint8_t { kStart, kStartPeriodic, kCancel, kRestart };
  Kind kind = Kind::kStart;
  RequestId cookie = 0;       // start: new cookie; cancel/restart: target's
  Duration interval = 0;      // start and restart
  std::uint64_t repeats = 0;  // kStartPeriodic: finite lap budget
  TimerError result = TimerError::kOk;
  bool started = false;       // start only: handle returned
};

struct LockstepThread {
  std::vector<LockstepOp> round_ops;  // cleared by the producer each round
  std::vector<std::pair<RequestId, TimerHandle>> live;
  std::uint64_t next_seq = 0;
};

TortureReport RunLockstep(TimerService& sut, const TortureOptions& options) {
  TortureReport report;
  const Tick base = sut.now();

  std::vector<std::pair<RequestId, Tick>> sut_fires;
  std::vector<std::pair<RequestId, Tick>> oracle_fires;
  sut.set_expiry_handler([&sut_fires](RequestId cookie, Tick when) {
    sut_fires.emplace_back(cookie, when);
  });
  OracleTimers oracle;
  oracle.set_expiry_handler([&oracle_fires](RequestId cookie, Tick when) {
    oracle_fires.emplace_back(cookie, when);
  });
  std::unordered_map<RequestId, TimerHandle> oracle_handles;

  auto fail = [&report](std::string message) {
    if (report.ok) {
      report.ok = false;
      report.violation = std::move(message);
    }
  };

  // Replays one round's producer ops into the oracle (driver thread, after the
  // enqueue barrier) and cross-checks call results. Results are deterministic
  // because the clock is frozen during enqueue phases: no timer can change
  // state between a producer's call and this replay except by *other producer*
  // calls — and producers only ever stop their own timers.
  auto replay_round = [&](std::vector<LockstepThread>& threads) {
    for (std::size_t p = 0; p < threads.size(); ++p) {
      for (const LockstepOp& op : threads[p].round_ops) {
        switch (op.kind) {
          case LockstepOp::Kind::kStart:
          case LockstepOp::Kind::kStartPeriodic: {
            if (!op.started) {
              fail(Format("lockstep: StartTimer rejected with %s (size the "
                          "submission capacities above the episode's live set)",
                          TimerErrorName(op.result)));
              continue;
            }
            StartResult r =
                op.kind == LockstepOp::Kind::kStartPeriodic
                    ? oracle.StartPeriodic(op.interval, op.cookie, op.repeats)
                    : oracle.StartTimer(op.interval, op.cookie);
            TWHEEL_ASSERT_MSG(r.has_value(), "oracle rejected a start");
            oracle_handles.emplace(op.cookie, r.value());
            if (op.kind == LockstepOp::Kind::kStartPeriodic) {
              ++report.periodic_starts;
            }
            break;
          }
          case LockstepOp::Kind::kCancel: {
            const auto it = oracle_handles.find(op.cookie);
            TWHEEL_ASSERT_MSG(it != oracle_handles.end(),
                              "cancel of a cookie the oracle never saw");
            const TimerError oracle_err = oracle.StopTimer(it->second);
            if (oracle_err != op.result) {
              fail(Format("lockstep: StopTimer(%llu) returned %s but oracle "
                          "says %s",
                          static_cast<unsigned long long>(op.cookie),
                          TimerErrorName(op.result),
                          TimerErrorName(oracle_err)));
            }
            break;
          }
          case LockstepOp::Kind::kRestart: {
            // In-place on both sides: the oracle's handle survives a kOk
            // restart exactly as the SUT's does, so no handle rebinding is
            // needed — call-for-call result parity is the whole check.
            const auto it = oracle_handles.find(op.cookie);
            TWHEEL_ASSERT_MSG(it != oracle_handles.end(),
                              "restart of a cookie the oracle never saw");
            const TimerError oracle_err =
                oracle.RestartTimer(it->second, op.interval);
            if (op.result == TimerError::kOk) {
              ++report.restarts;
            } else if (op.result == TimerError::kNoSuchTimer) {
              ++report.restart_misses;
            }
            if (oracle_err != op.result) {
              fail(Format("lockstep: RestartTimer(%llu, %llu) returned %s but "
                          "oracle says %s",
                          static_cast<unsigned long long>(op.cookie),
                          static_cast<unsigned long long>(op.interval),
                          TimerErrorName(op.result),
                          TimerErrorName(oracle_err)));
            }
            break;
          }
        }
      }
    }
  };

  // Advances both worlds by `delta` and compares the dispatch multisets per
  // tick, final clocks, and populations. Fire order within a tick is
  // unspecified on both sides, so compare sorted (when, cookie) sequences.
  auto advance_and_compare = [&](Duration delta) {
    sut_fires.clear();
    oracle_fires.clear();
    sut.AdvanceTo(sut.now() + delta);
    oracle.AdvanceTo(oracle.now() + delta);
    for (auto& [cookie, when] : sut_fires) {
      when -= base;
    }
    std::sort(sut_fires.begin(), sut_fires.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
    std::sort(oracle_fires.begin(), oracle_fires.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
    report.fires += sut_fires.size();
    if (sut_fires != oracle_fires) {
      const std::size_t n = std::min(sut_fires.size(), oracle_fires.size());
      std::size_t i = 0;
      while (i < n && sut_fires[i] == oracle_fires[i]) {
        ++i;
      }
      fail(Format(
          "lockstep: dispatch divergence at index %zu (sut %zu fires, oracle "
          "%zu): sut=(%llu@%llu) oracle=(%llu@%llu)",
          i, sut_fires.size(), oracle_fires.size(),
          i < sut_fires.size()
              ? static_cast<unsigned long long>(sut_fires[i].first)
              : 0ULL,
          i < sut_fires.size()
              ? static_cast<unsigned long long>(sut_fires[i].second)
              : 0ULL,
          i < oracle_fires.size()
              ? static_cast<unsigned long long>(oracle_fires[i].first)
              : 0ULL,
          i < oracle_fires.size()
              ? static_cast<unsigned long long>(oracle_fires[i].second)
              : 0ULL));
    }
    if (sut.now() - base != oracle.now()) {
      fail(Format("lockstep: clock divergence: sut %llu vs oracle %llu",
                  static_cast<unsigned long long>(sut.now() - base),
                  static_cast<unsigned long long>(oracle.now())));
    }
    if (sut.outstanding() != oracle.outstanding()) {
      fail(Format("lockstep: population divergence: sut %zu vs oracle %zu",
                  sut.outstanding(), oracle.outstanding()));
    }
  };

  std::vector<LockstepThread> threads(options.producers);
  // Producers + the driver meet twice per round: after the enqueue phase (the
  // driver then replays and advances alone) and after the advance phase.
  std::barrier sync(static_cast<std::ptrdiff_t>(options.producers) + 1);
  std::atomic<bool> stop_producers{false};

  std::vector<std::thread> producers;
  producers.reserve(options.producers);
  for (std::size_t p = 0; p < options.producers; ++p) {
    producers.emplace_back([&, p] {
      rng::Xoshiro256 rng(options.seed * 0x2545f4914f6cdd1dULL + p);
      LockstepThread& me = threads[p];
      for (;;) {
        me.round_ops.clear();
        for (std::size_t i = 0; i < options.ops_per_producer; ++i) {
          LockstepOp op;
          if (!me.live.empty() && rng.NextBool(options.restart_probability)) {
            const std::size_t pick = rng.NextBounded(me.live.size());
            const auto [cookie, handle] = me.live[pick];
            op.kind = LockstepOp::Kind::kRestart;
            op.cookie = cookie;
            op.interval = options.min_interval +
                          rng.NextBounded(options.max_interval -
                                          options.min_interval + 1);
            op.result = sut.RestartTimer(handle, op.interval);
            if (op.result == TimerError::kNoSuchTimer) {
              // Fired in an earlier round; the handle is dead on both sides.
              me.live[pick] = me.live.back();
              me.live.pop_back();
            }
            // kOk: the handle stays valid in place — keep racing it.
          } else if (!me.live.empty() &&
                     rng.NextBool(options.stop_probability)) {
            const std::size_t pick = rng.NextBounded(me.live.size());
            const auto [cookie, handle] = me.live[pick];
            me.live[pick] = me.live.back();
            me.live.pop_back();
            op.kind = LockstepOp::Kind::kCancel;
            op.cookie = cookie;
            op.result = sut.StopTimer(handle);
          } else {
            const bool periodic = rng.NextBool(options.periodic_probability);
            op.kind = periodic ? LockstepOp::Kind::kStartPeriodic
                               : LockstepOp::Kind::kStart;
            op.interval = options.min_interval +
                          rng.NextBounded(options.max_interval -
                                          options.min_interval + 1);
            op.cookie = MakeCookie(p, me.next_seq++);
            if (periodic) {
              op.repeats = 1 + rng.NextBounded(options.periodic_repeat_max);
            }
            StartResult r =
                periodic
                    ? sut.StartPeriodic(op.interval, op.cookie, op.repeats)
                    : sut.StartTimer(op.interval, op.cookie);
            op.started = r.has_value();
            op.result = op.started ? TimerError::kOk : r.error();
            if (op.started) {
              me.live.emplace_back(op.cookie, r.value());
            }
          }
          me.round_ops.push_back(op);
        }
        sync.arrive_and_wait();  // enqueue phase done; driver replays+advances
        sync.arrive_and_wait();  // advance phase done
        if (stop_producers.load(std::memory_order_acquire)) {
          return;
        }
      }
    });
  }

  rng::Xoshiro256 driver_rng(options.seed ^ 0x6a09e667f3bcc909ULL);
  for (std::size_t round = 0; round < options.rounds; ++round) {
    sync.arrive_and_wait();  // producers finished enqueueing, clock frozen
    replay_round(threads);
    advance_and_compare(1 + driver_rng.NextBounded(options.max_jump));
    if (round + 1 == options.rounds) {
      stop_producers.store(true, std::memory_order_release);
    }
    sync.arrive_and_wait();  // release producers into the next round (or exit)
  }
  for (std::thread& t : producers) {
    t.join();
  }

  // Drain both worlds to empty, still in lockstep.
  while (oracle.outstanding() != 0 || sut.outstanding() != 0) {
    advance_and_compare(options.max_interval + 2);
    if (!report.ok) {
      break;
    }
  }

  report.starts = oracle_handles.size();
  report.ticks_run = sut.now() - base;
  sut.set_expiry_handler(nullptr);
  return report;
}

}  // namespace

TortureReport RunTorture(TimerService& sut, const TortureOptions& options) {
  TWHEEL_ASSERT_MSG(options.producers >= 1, "need at least one producer");
  TWHEEL_ASSERT_MSG(options.min_interval >= 1 &&
                        options.min_interval <= options.max_interval,
                    "invalid interval range");
  if (options.mode == TortureMode::kLockstepOracle) {
    return RunLockstep(sut, options);
  }
  return RunRace(sut, options);
}

}  // namespace twheel::verify
