#include "src/cluster/cluster_oracle.h"

#include <sstream>
#include <unordered_map>
#include <utility>

namespace twheel::cluster {
namespace {

// Replay state for one key: only the CURRENT generation can legally fire, and
// only while it is open (accepted, not cancelled, not yet fired, not replaced).
struct KeyState {
  std::uint32_t gen = 0;
  Tick deadline = 0;
  bool open = false;
  bool cancelled = false;  // current gen ended by an acknowledged cancel
  bool fired = false;      // current gen already delivered once
};

}  // namespace

ClusterOracle::ClusterOracle(const ClusterConfig& config,
                             const FaultSchedule& schedule)
    : config_(config) {
  const Duration failover_ladder =
      static_cast<Duration>(config.replication_factor - 1 +
                            kMaxLeaseExtensions) *
      config.failover_delay;
  const Duration retry_tail =
      kRetryBudget * config.retry_every + 2 * config.link.delay_hi;
  delivery_slack_ = retry_tail + schedule.total_outage + 4;
  slop_ = failover_ladder + schedule.total_outage + retry_tail + 4;
}

OracleReport ClusterOracle::Check(const std::vector<ClientEvent>& events,
                                  const ClusterStats& stats) const {
  OracleReport report;
  auto fail = [&](const std::ostringstream& os) {
    if (report.ok) {
      report.ok = false;
      report.violation = os.str();
    }
  };

  std::unordered_map<std::uint64_t, KeyState> keys;
  std::uint64_t accepted = 0;
  std::uint64_t restarted = 0;
  std::uint64_t fired_events = 0;

  for (const ClientEvent& event : events) {
    KeyState& state = keys[event.key];
    switch (event.kind) {
      case ClientEventKind::kAccepted:
      case ClientEventKind::kRestarted: {
        const bool restart = event.kind == ClientEventKind::kRestarted;
        restart ? ++restarted : ++accepted;
        ++report.generations;
        if (restart && !state.open) {
          std::ostringstream os;
          os << "key " << event.key
             << ": restart acknowledged for a non-live timer (gen "
             << event.gen << ")";
          fail(os);
        }
        if (event.gen <= state.gen) {
          std::ostringstream os;
          os << "key " << event.key << ": generation not monotone ("
             << event.gen << " after " << state.gen << ")";
          fail(os);
        }
        // A new generation closes its predecessor: the replaced/restarted
        // generation must never fire from here on.
        state.gen = event.gen;
        state.deadline = event.deadline;
        state.open = true;
        state.cancelled = false;
        state.fired = false;
        break;
      }
      case ClientEventKind::kCancelAcked:
        ++report.cancels_checked;
        if (!state.open || event.gen != state.gen) {
          std::ostringstream os;
          os << "key " << event.key
             << ": cancel acknowledged for a non-live generation " << event.gen;
          fail(os);
        }
        state.open = false;
        state.cancelled = true;
        break;
      case ClientEventKind::kFired: {
        ++fired_events;
        ++report.fires_checked;
        const Tick pop = event.deadline;  // kFired carries the pop tick here
        if (event.gen != state.gen) {
          std::ostringstream os;
          os << "key " << event.key << ": fire of superseded generation "
             << event.gen << " (current " << state.gen << ")";
          fail(os);
          break;
        }
        if (state.cancelled) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen
             << ": fire after acknowledged cancel";
          fail(os);
          break;
        }
        if (state.fired) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen
             << ": duplicate client fire";
          fail(os);
          break;
        }
        if (!state.open) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen
             << ": fire of a closed generation";
          fail(os);
          break;
        }
        if (pop < state.deadline) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen
             << ": early pop at " << pop << " before deadline "
             << state.deadline;
          fail(os);
        }
        if (pop > state.deadline + slop_) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen << ": late pop at "
             << pop << ", deadline " << state.deadline << " + slop " << slop_;
          fail(os);
        }
        if (event.at < pop || event.at > pop + delivery_slack_) {
          std::ostringstream os;
          os << "key " << event.key << " gen " << event.gen << ": delivery at "
             << event.at << " outside [" << pop << ", "
             << pop + delivery_slack_ << "]";
          fail(os);
        }
        state.open = false;
        state.fired = true;
        break;
      }
    }
  }

  report.keys = keys.size();

  // Completeness: after a full drain, the final generation of every key must
  // have resolved — fired exactly once, or been cancelled. A still-open entry
  // is a LOST fire (the failover ladder failed to produce a survivor pop).
  for (const auto& [key, state] : keys) {
    if (state.open) {
      std::ostringstream os;
      os << "key " << key << " gen " << state.gen
         << ": timer never fired (deadline " << state.deadline << ")";
      fail(os);
    }
  }

  // Duplicate-suppression conservation: every receipt is delivered or
  // classified, nothing invented, nothing dropped on the floor.
  const std::uint64_t classified =
      stats.delivered + stats.duplicate_suppressed +
      stats.stale_gen_suppressed + stats.after_cancel_suppressed;
  if (stats.fire_receipts != classified) {
    std::ostringstream os;
    os << "conservation: fire_receipts " << stats.fire_receipts
       << " != delivered " << stats.delivered << " + dup "
       << stats.duplicate_suppressed << " + stale "
       << stats.stale_gen_suppressed << " + after-cancel "
       << stats.after_cancel_suppressed;
    fail(os);
  }
  if (stats.delivered != fired_events) {
    std::ostringstream os;
    os << "delivered " << stats.delivered << " but " << fired_events
       << " kFired events";
    fail(os);
  }
  if (stats.accepted != accepted || stats.restarts != restarted) {
    std::ostringstream os;
    os << "op counters disagree with trace (" << stats.accepted << "/"
       << stats.restarts << " vs " << accepted << "/" << restarted << ")";
    fail(os);
  }
  if (stats.arm_rejects != 0) {
    std::ostringstream os;
    os << "host rejected " << stats.arm_rejects
       << " arms (scheme misconfigured)";
    fail(os);
  }
  if (stats.orphan_pops != 0) {
    std::ostringstream os;
    os << stats.orphan_pops << " orphan host pops";
    fail(os);
  }
  return report;
}

}  // namespace twheel::cluster
