// Fault schedules: the scripted adversary a TimerCluster episode runs under.
//
// A schedule is a sorted list of fault events on the cluster clock — node
// kills, restarts, symmetric partitions, and sender-side drop windows. The
// generator and the ClusterOracle consume the SAME schedule object: the
// generator promises the liveness precondition (never more than R-1 nodes
// concurrently dead/partitioned/dropping, so every replica set keeps a live
// member), and the oracle derives its slop bound from the schedule's total
// outage time. ValidateSchedule re-checks the precondition so a generator bug
// surfaces as a named validation error, not a flaky exactly-once failure.

#ifndef TWHEEL_SRC_CLUSTER_FAULT_SCHEDULE_H_
#define TWHEEL_SRC_CLUSTER_FAULT_SCHEDULE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace twheel::cluster {

using NodeId = std::uint32_t;

enum class FaultKind : std::uint8_t {
  kKill,            // node loses all state (host service included), stops ticking
  kRestart,         // dead node returns empty with a bumped epoch, announces itself
  kPartitionStart,  // symmetric isolation: nothing in, nothing out
  kPartitionEnd,
  kDropStart,  // asymmetric: every packet the node SENDS is dropped
  kDropEnd,
};

struct FaultEvent {
  Tick at = 0;
  FaultKind kind = FaultKind::kKill;
  NodeId node = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // sorted by `at`, ties in emission order
  // Sum of all bounded outage window lengths (kill->restart gaps, partition
  // windows, drop windows). Kills that never restart contribute nothing: the
  // node simply stops participating and the rank ladder covers it. Feeds the
  // oracle's slop bound.
  Duration total_outage = 0;

  bool empty() const { return events.empty(); }
};

// The four adversary shapes of the acceptance matrix.
enum class ScheduleKind : std::uint8_t {
  kKills,       // up to R-1 permanent kills, no recovery
  kRestarts,    // kill -> restart windows, one outage at a time
  kPartitions,  // partition windows, one at a time
  kDrops,       // sender-side drop windows, one at a time
};

inline constexpr std::array<ScheduleKind, 4> kAllScheduleKinds = {
    ScheduleKind::kKills, ScheduleKind::kRestarts, ScheduleKind::kPartitions,
    ScheduleKind::kDrops};

const char* ScheduleKindName(ScheduleKind kind);

struct ScheduleParams {
  std::size_t nodes = 4;
  std::uint32_t replication_factor = 2;  // outage budget is R-1
  Tick horizon = 250;                    // all faults land in [1, horizon]
  Duration min_outage = 4;               // bounds for one recoverable window
  Duration max_outage = 32;
  std::uint64_t seed = 1;
};

// Deterministically generate a schedule of the given shape. The result always
// satisfies ValidateSchedule for `params.nodes` nodes and a concurrency budget
// of replication_factor - 1 (an R of 1 yields an empty schedule: with no
// redundancy there is no fault the cluster is expected to survive).
FaultSchedule MakeFaultSchedule(ScheduleKind kind, const ScheduleParams& params);

// Check the liveness precondition: events sorted, node ids in range, windows
// well-formed (restart only after kill, ends match starts), and at no instant
// are more than `max_concurrent` nodes dead, partitioned, or dropping at once.
// On failure returns false and, if `why` is non-null, names the violation.
bool ValidateSchedule(const FaultSchedule& schedule, std::size_t nodes,
                      std::uint32_t max_concurrent, std::string* why);

}  // namespace twheel::cluster

#endif  // TWHEEL_SRC_CLUSTER_FAULT_SCHEDULE_H_
