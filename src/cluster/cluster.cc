#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>

#include "src/rng/rng.h"

namespace twheel::cluster {

namespace {

// Pack/unpack helpers for the replication payload words (see net::PacketType).
std::uint64_t ArmPayload(std::uint32_t gen, std::uint32_t rank,
                         std::uint32_t replication) {
  return (static_cast<std::uint64_t>(gen) << 16) |
         (static_cast<std::uint64_t>(rank & 0xFF) << 8) |
         static_cast<std::uint64_t>(replication & 0xFF);
}

}  // namespace

TimerCluster::TimerCluster(const ClusterConfig& config, FaultSchedule schedule)
    : config_(config), schedule_(std::move(schedule)) {
  assert(config_.nodes > 0);
  assert(config_.failover_delay >= 1);
  assert(config_.retry_every >= 1);
  // Simulator::After needs delay >= 1; clamp rather than silently losing
  // deliveries.
  if (config_.link.delay_lo < 1) {
    config_.link.delay_lo = 1;
  }
  if (config_.link.delay_hi < config_.link.delay_lo) {
    config_.link.delay_hi = config_.link.delay_lo;
  }
  // Synchronous transport is the zero-fault torture mode; a schedule would
  // have nothing to act on (and nothing gates direct calls).
  assert(!config_.synchronous_transport || schedule_.empty());

  nodes_.resize(config_.nodes);
  node_epoch_seen_.assign(config_.nodes, 0);
  for (NodeId i = 0; i < config_.nodes; ++i) {
    MakeHost(i);
  }

  if (!config_.synchronous_transport) {
    FacilityConfig net_config;
    net_config.scheme = SchemeId::kScheme3Heap;
    network_ = std::make_unique<sim::Simulator>(MakeTimerService(net_config));
    rng::SplitMix64 seeder(config_.seed ^ 0x5EEDC4A77E1DULL);
    up_.resize(config_.nodes);
    down_.resize(config_.nodes);
    mesh_.resize(config_.nodes * config_.nodes);
    for (NodeId i = 0; i < config_.nodes; ++i) {
      up_[i] = std::make_unique<net::Channel>(*network_, seeder.Next(),
                                              config_.link);
      up_[i]->set_receiver(
          [this](const net::Packet& p) { OnCoordMessage(p); });
      down_[i] = std::make_unique<net::Channel>(*network_, seeder.Next(),
                                                config_.link);
      down_[i]->set_receiver([this, i](const net::Packet& p) {
        Node& n = nodes_[i];
        if (!n.alive) {
          ++stats_.dead_receiver_drops;
          return;
        }
        if (n.partitioned) {
          ++stats_.partition_drops;
          return;
        }
        OnNodeMessage(i, p);
      });
    }
    for (NodeId from = 0; from < config_.nodes; ++from) {
      for (NodeId to = 0; to < config_.nodes; ++to) {
        if (from == to) {
          continue;
        }
        auto& link = mesh_[from * config_.nodes + to];
        link = std::make_unique<net::Channel>(*network_, seeder.Next(),
                                              config_.link);
        link->set_receiver([this, to](const net::Packet& p) {
          Node& n = nodes_[to];
          if (!n.alive) {
            ++stats_.dead_receiver_drops;
            return;
          }
          if (n.partitioned) {
            ++stats_.partition_drops;
            return;
          }
          OnNodeMessage(to, p);
        });
      }
    }
  }
}

TimerCluster::~TimerCluster() = default;

// --- transport ---------------------------------------------------------------

bool TimerCluster::GateSend(std::uint32_t from, NodeId /*to*/) {
  if (from == kCoordinatorId) {
    return true;  // the coordinator is never faulted
  }
  Node& sender = nodes_[from];
  if (!sender.alive) {
    return false;  // a dead node has no state to send from
  }
  if (sender.partitioned) {
    ++stats_.partition_drops;
    return false;
  }
  if (sender.dropping) {
    ++stats_.window_drops;
    return false;
  }
  return true;
}

void TimerCluster::SendToNode(NodeId to, net::Packet packet) {
  if (config_.synchronous_transport) {
    OnNodeMessage(to, packet);
    return;
  }
  down_[to]->Send(packet);
}

void TimerCluster::SendToCoord(NodeId from, net::Packet packet) {
  if (config_.synchronous_transport) {
    OnCoordMessage(packet);
    return;
  }
  if (!GateSend(from, 0)) {
    return;
  }
  up_[from]->Send(packet);
}

void TimerCluster::SendNodeToNode(NodeId from, NodeId to, net::Packet packet) {
  if (config_.synchronous_transport) {
    OnNodeMessage(to, packet);
    return;
  }
  if (!GateSend(from, to)) {
    return;
  }
  mesh_[from * config_.nodes + to]->Send(packet);
}

// --- client ops --------------------------------------------------------------

std::vector<NodeId> TimerCluster::ReplicaSetFor(
    std::uint64_t key, std::uint32_t replication) const {
  const std::size_t n = nodes_.size();
  std::uint32_t r = std::max<std::uint32_t>(1, replication);
  r = std::min<std::uint32_t>(r, kMaxReplication);
  r = std::min<std::uint32_t>(r, static_cast<std::uint32_t>(n));
  rng::SplitMix64 hash(key ^ (config_.seed * 0x9E3779B97F4A7C15ULL));
  const NodeId start = static_cast<NodeId>(hash.Next() % n);
  std::vector<NodeId> set;
  set.reserve(r);
  for (std::uint32_t i = 0; i < r; ++i) {
    set.push_back(static_cast<NodeId>((start + i) % n));
  }
  return set;
}

bool TimerCluster::Set(std::uint64_t key, Duration interval) {
  return Set(key, interval, config_.replication_factor);
}

bool TimerCluster::Set(std::uint64_t key, Duration interval,
                       std::uint32_t replication) {
  if (interval == 0) {
    return false;
  }
  const std::vector<NodeId> set = ReplicaSetFor(key, replication);
  PendingTimer& entry = timers_[key];
  const bool was_live =
      entry.gen != 0 && entry.state == PendingTimer::State::kLive;
  // A Set superseding a resolved generation aborts its disarm fan-out: the
  // fresh arms overwrite the replicas by generation anyway.
  if (!entry.disarm_done) {
    entry.disarm_done = true;
    --pending_disarms_;
  }
  ++entry.gen;
  entry.deadline = now_ + interval;
  entry.replication = static_cast<std::uint32_t>(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    entry.replicas[i] = set[i];
  }
  entry.arm_acked = 0;
  entry.disarm_acked = 0;
  entry.disarm_round = 0;
  entry.state = PendingTimer::State::kLive;
  if (!was_live) {
    ++live_count_;
  }
  ++stats_.accepted;
  events_.push_back({ClientEventKind::kAccepted, key, entry.gen, now_,
                     entry.deadline});
  for (std::uint32_t rank = 0; rank < entry.replication; ++rank) {
    SendArm(key, entry, rank);
  }
  QueueRetry(key, entry);
  return true;
}

bool TimerCluster::Restart(std::uint64_t key, Duration interval) {
  if (interval == 0) {
    return false;
  }
  auto it = timers_.find(key);
  if (it == timers_.end() ||
      it->second.state != PendingTimer::State::kLive) {
    ++stats_.restart_misses;
    return false;
  }
  PendingTimer& entry = it->second;
  ++entry.gen;
  entry.deadline = now_ + interval;
  entry.arm_acked = 0;
  ++stats_.restarts;
  events_.push_back({ClientEventKind::kRestarted, key, entry.gen, now_,
                     entry.deadline});
  for (std::uint32_t rank = 0; rank < entry.replication; ++rank) {
    SendArm(key, entry, rank);
  }
  QueueRetry(key, entry);
  return true;
}

bool TimerCluster::Cancel(std::uint64_t key) {
  auto it = timers_.find(key);
  if (it == timers_.end() ||
      it->second.state != PendingTimer::State::kLive) {
    ++stats_.cancel_misses;
    return false;
  }
  PendingTimer& entry = it->second;
  entry.state = PendingTimer::State::kCancelled;
  --live_count_;
  ++stats_.cancels;
  events_.push_back({ClientEventKind::kCancelAcked, key, entry.gen, now_,
                     entry.deadline});
  BeginDisarm(key, entry, /*fired=*/false);
  return true;
}

// --- coordinator internals ---------------------------------------------------

void TimerCluster::SendArm(const std::uint64_t key, const PendingTimer& entry,
                           std::uint32_t rank) {
  net::Packet packet;
  packet.connection_id = kCoordinatorId;
  packet.seq = key;
  packet.type = net::PacketType::kClusterArm;
  packet.arg0 = entry.deadline;
  packet.arg1 = ArmPayload(entry.gen, rank, entry.replication);
  ++stats_.arm_sends;
  SendToNode(entry.replicas[rank], packet);
}

void TimerCluster::BeginDisarm(std::uint64_t key, PendingTimer& entry,
                               bool fired) {
  // Only reachable from state kLive, where no fan-out is outstanding.
  ++pending_disarms_;
  entry.disarm_done = false;
  entry.disarm_round = 0;
  entry.disarm_fired_flag = fired;
  const std::uint32_t full = (1u << entry.replication) - 1;
  if ((entry.disarm_acked & full) == full) {
    // Single replica that itself fired: nothing left to disarm.
    entry.disarm_done = true;
    --pending_disarms_;
    return;
  }
  SendDisarms(key, entry);
  QueueRetry(key, entry);
}

void TimerCluster::SendDisarms(std::uint64_t key, PendingTimer& entry) {
  for (std::uint32_t rank = 0; rank < entry.replication; ++rank) {
    if ((entry.disarm_acked >> rank) & 1u) {
      continue;
    }
    net::Packet packet;
    packet.connection_id = kCoordinatorId;
    packet.seq = key;
    packet.type = net::PacketType::kClusterDisarm;
    packet.arg0 = entry.gen;
    packet.arg1 = (static_cast<std::uint64_t>(entry.disarm_fired_flag) << 8) |
                  rank;
    ++stats_.disarm_sends;
    SendToNode(entry.replicas[rank], packet);
  }
}

void TimerCluster::QueueRetry(std::uint64_t key, PendingTimer& entry) {
  if (!entry.retry_queued) {
    retry_queue_.emplace(now_ + config_.retry_every, key);
    entry.retry_queued = true;
  }
}

void TimerCluster::CoordRetryScan() {
  while (!retry_queue_.empty() && retry_queue_.begin()->first <= now_) {
    const std::uint64_t key = retry_queue_.begin()->second;
    retry_queue_.erase(retry_queue_.begin());
    auto it = timers_.find(key);
    if (it == timers_.end()) {
      continue;
    }
    PendingTimer& entry = it->second;
    entry.retry_queued = false;
    bool again = false;
    if (entry.state == PendingTimer::State::kLive) {
      const std::uint32_t full = (1u << entry.replication) - 1;
      if ((entry.arm_acked & full) != full) {
        for (std::uint32_t rank = 0; rank < entry.replication; ++rank) {
          if (!((entry.arm_acked >> rank) & 1u)) {
            ++stats_.arm_retries;
            SendArm(key, entry, rank);
          }
        }
        again = true;
      }
    } else if (!entry.disarm_done) {
      if (entry.disarm_round < config_.disarm_retry_cap) {
        ++entry.disarm_round;
        SendDisarms(key, entry);
        again = true;
      } else {
        // Unreachable replicas (dead forever, or long-partitioned — their
        // copy will pop and be suppressed by generation/state instead).
        entry.disarm_done = true;
        --pending_disarms_;
      }
    }
    if (again) {
      QueueRetry(key, entry);
    }
  }
}

void TimerCluster::RearmNodeTimers(NodeId node) {
  for (auto& [key, entry] : timers_) {
    if (entry.state != PendingTimer::State::kLive) {
      continue;
    }
    for (std::uint32_t rank = 0; rank < entry.replication; ++rank) {
      if (entry.replicas[rank] != node) {
        continue;
      }
      entry.arm_acked &= ~(1u << rank);
      ++stats_.rearms_on_node_up;
      SendArm(key, entry, rank);
      QueueRetry(key, entry);
    }
  }
}

void TimerCluster::OnCoordMessage(const net::Packet& packet) {
  const std::uint64_t key = packet.seq;
  const NodeId sender = packet.connection_id;
  switch (packet.type) {
    case net::PacketType::kClusterArmAck: {
      auto it = timers_.find(key);
      if (it == timers_.end()) {
        return;
      }
      PendingTimer& entry = it->second;
      if (entry.state == PendingTimer::State::kLive &&
          entry.gen == static_cast<std::uint32_t>(packet.arg0)) {
        entry.arm_acked |= 1u << (packet.arg1 & 0xFF);
      }
      return;
    }
    case net::PacketType::kClusterDisarmAck: {
      auto it = timers_.find(key);
      if (it == timers_.end()) {
        return;
      }
      PendingTimer& entry = it->second;
      if (entry.state != PendingTimer::State::kLive && !entry.disarm_done &&
          entry.gen == static_cast<std::uint32_t>(packet.arg0)) {
        entry.disarm_acked |= 1u << (packet.arg1 & 0xFF);
        const std::uint32_t full = (1u << entry.replication) - 1;
        if ((entry.disarm_acked & full) == full) {
          entry.disarm_done = true;
          --pending_disarms_;
        }
      }
      return;
    }
    case net::PacketType::kClusterFire: {
      ++stats_.fire_receipts;
      const std::uint32_t gen = static_cast<std::uint32_t>(packet.arg1);
      const std::uint32_t rank =
          static_cast<std::uint32_t>(packet.arg1 >> 32) & 0xFF;
      const Tick pop_tick = packet.arg0;
      bool deliver = false;
      auto it = timers_.find(key);
      if (it == timers_.end() || gen != it->second.gen) {
        ++stats_.stale_gen_suppressed;
      } else if (it->second.state == PendingTimer::State::kCancelled) {
        ++stats_.after_cancel_suppressed;
      } else if (it->second.state == PendingTimer::State::kFired) {
        ++stats_.duplicate_suppressed;
      } else {
        deliver = true;
      }
      if (deliver) {
        PendingTimer& entry = it->second;
        entry.state = PendingTimer::State::kFired;
        --live_count_;
        ++stats_.delivered;
        events_.push_back(
            {ClientEventKind::kFired, key, gen, now_, pop_tick});
        // The popping replica resolves via the fire-ack, not a disarm.
        entry.disarm_acked = 1u << rank;
        BeginDisarm(key, entry, /*fired=*/true);
      }
      // Ack the notify regardless of classification so the sender stops
      // retransmitting; the callback runs last — it may re-enter the cluster.
      net::Packet ack;
      ack.connection_id = kCoordinatorId;
      ack.seq = key;
      ack.type = net::PacketType::kClusterFireAck;
      ack.arg0 = gen;
      SendToNode(sender, ack);
      if (deliver && fire_callback_) {
        fire_callback_(key, gen, pop_tick);
      }
      return;
    }
    case net::PacketType::kClusterNodeUp: {
      net::Packet ack;
      ack.connection_id = kCoordinatorId;
      ack.type = net::PacketType::kClusterNodeUpAck;
      ack.arg0 = packet.arg0;
      SendToNode(sender, ack);
      if (packet.arg0 > node_epoch_seen_[sender]) {
        node_epoch_seen_[sender] = packet.arg0;
        RearmNodeTimers(sender);
      }
      return;
    }
    default:
      return;
  }
}

// --- node internals ----------------------------------------------------------

void TimerCluster::MakeHost(NodeId node) {
  nodes_[node].host = MakeTimerService(config_.node_scheme);
  nodes_[node].host->set_expiry_handler(
      [this, node](RequestId key, Tick /*host_now*/) {
        OnHostPop(node, key);
      });
}

void TimerCluster::OnHostPop(NodeId node, std::uint64_t key) {
  Node& n = nodes_[node];
  auto it = n.local.find(key);
  if (it == n.local.end() || it->second.popped) {
    ++stats_.orphan_pops;
    return;
  }
  ReplicaLocal& replica = it->second;
  replica.popped = true;
  replica.pop_tick = now_;
  ++stats_.pops;
  // Copy everything needed before the first send: with synchronous transport
  // the notify chain (fire -> fire-ack) erases this very entry re-entrantly.
  const std::uint32_t gen = replica.gen;
  const std::uint32_t rank = replica.rank;
  const std::uint32_t replication = replica.replication;
  n.notify_retry.emplace(now_ + config_.retry_every, std::make_pair(key, gen));
  SendFireNotify(node, key, gen, rank, now_);
  // Best-effort lease-extension hints: peers push their takeover lease out
  // rather than cancelling it, so a lost hint can only cost a duplicate pop.
  for (NodeId peer : ReplicaSetFor(key, replication)) {
    if (peer == node) {
      continue;
    }
    net::Packet hint;
    hint.connection_id = node;
    hint.seq = key;
    hint.type = net::PacketType::kClusterSuppress;
    hint.arg0 = gen;
    SendNodeToNode(node, peer, hint);
  }
}

void TimerCluster::SendFireNotify(NodeId node, std::uint64_t key,
                                  std::uint32_t gen, std::uint32_t rank,
                                  Tick pop_tick) {
  net::Packet notify;
  notify.connection_id = node;
  notify.seq = key;
  notify.type = net::PacketType::kClusterFire;
  notify.arg0 = pop_tick;
  notify.arg1 = static_cast<std::uint64_t>(gen) |
                (static_cast<std::uint64_t>(rank) << 32);
  SendToCoord(node, notify);
}

void TimerCluster::OnNodeMessage(NodeId node, const net::Packet& packet) {
  Node& n = nodes_[node];
  const std::uint64_t key = packet.seq;
  switch (packet.type) {
    case net::PacketType::kClusterArm: {
      const std::uint32_t gen = static_cast<std::uint32_t>(packet.arg1 >> 16);
      const std::uint32_t rank =
          static_cast<std::uint32_t>(packet.arg1 >> 8) & 0xFF;
      const std::uint32_t replication =
          static_cast<std::uint32_t>(packet.arg1) & 0xFF;
      const Tick deadline = packet.arg0;
      auto it = n.local.find(key);
      if (it != n.local.end() && it->second.gen >= gen) {
        // Duplicate (retried) or stale arm: idempotent, just re-ack.
      } else {
        if (it != n.local.end()) {
          if (!it->second.popped) {
            n.host->StopTimer(it->second.handle);
          }
          n.local.erase(it);
          --replica_entries_;
        }
        // The rank-k lease: arm the HOST scheme for the deadline plus k
        // failover delays (catching up past-due deadlines to the host's next
        // tick). Both the floor and the interval are computed on the host's
        // own clock position — see Node::host_base.
        const Tick host_now = n.host_base + n.host->now();
        const Tick target = std::max(deadline, host_now + 1) +
                            static_cast<Tick>(rank) * config_.failover_delay;
        StartResult started = n.host->StartTimer(target - host_now, key);
        if (!started.has_value()) {
          ++stats_.arm_rejects;  // config error; no ack, coordinator retries
          return;
        }
        ReplicaLocal replica;
        replica.gen = gen;
        replica.rank = rank;
        replica.replication = replication;
        replica.deadline = deadline;
        replica.handle = started.value();
        n.local.emplace(key, replica);
        ++replica_entries_;
      }
      net::Packet ack;
      ack.connection_id = node;
      ack.seq = key;
      ack.type = net::PacketType::kClusterArmAck;
      ack.arg0 = gen;
      ack.arg1 = rank;
      SendToCoord(node, ack);
      return;
    }
    case net::PacketType::kClusterDisarm: {
      const std::uint32_t gen = static_cast<std::uint32_t>(packet.arg0);
      const bool fired = ((packet.arg1 >> 8) & 1u) != 0;
      auto it = n.local.find(key);
      if (it != n.local.end() && it->second.gen <= gen) {
        if (!it->second.popped) {
          n.host->StopTimer(it->second.handle);
          if (fired) {
            ++stats_.lease_disarms;
          } else {
            ++stats_.cancel_disarms;
          }
        }
        // A popped entry's pending notify dies with it: the coordinator has
        // already resolved this generation.
        n.local.erase(it);
        --replica_entries_;
      }
      net::Packet ack;
      ack.connection_id = node;
      ack.seq = key;
      ack.type = net::PacketType::kClusterDisarmAck;
      ack.arg0 = packet.arg0;
      ack.arg1 = packet.arg1 & 0xFF;  // echo the rank
      SendToCoord(node, ack);
      return;
    }
    case net::PacketType::kClusterSuppress: {
      const std::uint32_t gen = static_cast<std::uint32_t>(packet.arg0);
      auto it = n.local.find(key);
      if (it != n.local.end() && it->second.gen == gen &&
          !it->second.popped &&
          it->second.extensions < kMaxLeaseExtensions) {
        if (n.host->RestartTimer(it->second.handle,
                                 config_.failover_delay) == TimerError::kOk) {
          ++it->second.extensions;
          ++stats_.lease_extensions;
        }
      }
      return;
    }
    case net::PacketType::kClusterFireAck: {
      auto it = n.local.find(key);
      if (it != n.local.end() && it->second.popped &&
          it->second.gen == static_cast<std::uint32_t>(packet.arg0)) {
        n.local.erase(it);
        --replica_entries_;
      }
      return;
    }
    case net::PacketType::kClusterNodeUpAck: {
      if (packet.arg0 == n.epoch) {
        n.up_acked = true;
      }
      return;
    }
    default:
      return;
  }
}

void TimerCluster::NodeRetryScan(NodeId node) {
  Node& n = nodes_[node];
  if (!n.up_acked && now_ >= n.next_up_retry) {
    net::Packet up;
    up.connection_id = node;
    up.type = net::PacketType::kClusterNodeUp;
    up.arg0 = n.epoch;
    SendToCoord(node, up);
    n.next_up_retry = now_ + config_.retry_every;
  }
  while (!n.notify_retry.empty() && n.notify_retry.begin()->first <= now_) {
    const auto [key, gen] = n.notify_retry.begin()->second;
    n.notify_retry.erase(n.notify_retry.begin());
    auto it = n.local.find(key);
    if (it == n.local.end() || !it->second.popped || it->second.gen != gen) {
      continue;  // resolved or superseded since the retry was queued
    }
    ++stats_.notify_retries;
    SendFireNotify(node, key, gen, it->second.rank, it->second.pop_tick);
    n.notify_retry.emplace(now_ + config_.retry_every,
                           std::make_pair(key, gen));
  }
}

// --- clock -------------------------------------------------------------------

void TimerCluster::ApplyFaults() {
  while (schedule_cursor_ < schedule_.events.size() &&
         schedule_.events[schedule_cursor_].at <= now_) {
    const FaultEvent& event = schedule_.events[schedule_cursor_++];
    Node& n = nodes_[event.node];
    switch (event.kind) {
      case FaultKind::kKill:
        if (n.alive) {
          n.alive = false;
          n.host.reset();
          replica_entries_ -= n.local.size();
          n.local.clear();
          n.notify_retry.clear();
          ++stats_.kills;
        }
        break;
      case FaultKind::kRestart:
        if (!n.alive) {
          n.alive = true;
          ++n.epoch;
          // The fresh host ticks to 1 later this very Step (faults apply
          // before hosts tick), anchoring host tick 1 at cluster tick now_.
          n.host_base = now_ - 1;
          MakeHost(event.node);
          n.up_acked = false;
          n.next_up_retry = now_;  // announce this very tick
          ++stats_.node_restarts;
        }
        break;
      case FaultKind::kPartitionStart:
        n.partitioned = true;
        ++stats_.partitions;
        break;
      case FaultKind::kPartitionEnd:
        n.partitioned = false;
        break;
      case FaultKind::kDropStart:
        n.dropping = true;
        ++stats_.drop_windows;
        break;
      case FaultKind::kDropEnd:
        n.dropping = false;
        break;
    }
  }
}

void TimerCluster::Step() {
  ++now_;
  ApplyFaults();
  if (network_ != nullptr) {
    network_->Step();
  }
  for (Node& n : nodes_) {
    if (n.alive) {
      n.host->PerTickBookkeeping();
    }
  }
  CoordRetryScan();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) {
      NodeRetryScan(i);
    }
  }
}

bool TimerCluster::quiesced() const {
  return live_count_ == 0 && replica_entries_ == 0 && pending_disarms_ == 0 &&
         (network_ == nullptr || network_->pending() == 0);
}

Tick TimerCluster::Drain(Tick max_ticks) {
  Tick stepped = 0;
  while (!quiesced() && stepped < max_ticks) {
    Step();
    ++stepped;
  }
  return stepped;
}

std::uint64_t TimerCluster::link_drops() const {
  std::uint64_t total = 0;
  for (const auto& channel : up_) {
    total += channel->dropped();
  }
  for (const auto& channel : down_) {
    total += channel->dropped();
  }
  for (const auto& channel : mesh_) {
    if (channel != nullptr) {
      total += channel->dropped();
    }
  }
  return total;
}

}  // namespace twheel::cluster
