#include "src/cluster/fault_schedule.h"

#include <algorithm>

#include "src/rng/rng.h"

namespace twheel::cluster {

const char* ScheduleKindName(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kKills:
      return "kills";
    case ScheduleKind::kRestarts:
      return "restarts";
    case ScheduleKind::kPartitions:
      return "partitions";
    case ScheduleKind::kDrops:
      return "drops";
  }
  return "?";
}

FaultSchedule MakeFaultSchedule(ScheduleKind kind,
                                const ScheduleParams& params) {
  FaultSchedule schedule;
  if (params.replication_factor <= 1 || params.nodes == 0) {
    return schedule;  // no redundancy, no survivable faults
  }
  rng::Xoshiro256 rng(params.seed ^ 0xC1A57E12DULL);
  const std::uint32_t budget = params.replication_factor - 1;

  if (kind == ScheduleKind::kKills) {
    // Up to R-1 permanent kills at random instants: the strongest adversary
    // the rank ladder must absorb with no recovery at all.
    const std::uint32_t kills = std::min<std::uint32_t>(
        budget, 1 + static_cast<std::uint32_t>(rng.NextBounded(budget)));
    std::vector<NodeId> victims(params.nodes);
    for (NodeId i = 0; i < params.nodes; ++i) {
      victims[i] = i;
    }
    for (std::uint32_t k = 0; k < kills && !victims.empty(); ++k) {
      const std::size_t pick = rng.NextBounded(victims.size());
      const NodeId node = victims[pick];
      victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(pick));
      schedule.events.push_back(
          {1 + rng.NextBounded(params.horizon), FaultKind::kKill, node});
    }
    std::sort(schedule.events.begin(), schedule.events.end(),
              [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return schedule;
  }

  // Recoverable shapes: sequential non-overlapping windows, so the concurrent
  // outage count never exceeds 1 (<= budget by construction).
  FaultKind start_kind = FaultKind::kKill;
  FaultKind end_kind = FaultKind::kRestart;
  if (kind == ScheduleKind::kPartitions) {
    start_kind = FaultKind::kPartitionStart;
    end_kind = FaultKind::kPartitionEnd;
  } else if (kind == ScheduleKind::kDrops) {
    start_kind = FaultKind::kDropStart;
    end_kind = FaultKind::kDropEnd;
  }
  const Duration span = params.max_outage - params.min_outage + 1;
  Tick cursor = 1 + rng.NextBounded(16);
  while (cursor < params.horizon) {
    const NodeId node = static_cast<NodeId>(rng.NextBounded(params.nodes));
    const Duration len = params.min_outage + rng.NextBounded(span);
    schedule.events.push_back({cursor, start_kind, node});
    schedule.events.push_back({cursor + len, end_kind, node});
    schedule.total_outage += len;
    cursor += len + 2 + rng.NextBounded(24);
  }
  return schedule;
}

bool ValidateSchedule(const FaultSchedule& schedule, std::size_t nodes,
                      std::uint32_t max_concurrent, std::string* why) {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) {
      *why = message;
    }
    return false;
  };
  std::vector<std::uint8_t> dead(nodes, 0);
  std::vector<std::uint8_t> partitioned(nodes, 0);
  std::vector<std::uint8_t> dropping(nodes, 0);
  Tick last = 0;
  std::uint32_t concurrent = 0;
  for (const FaultEvent& event : schedule.events) {
    if (event.at < last) {
      return fail("events not sorted by tick");
    }
    last = event.at;
    if (event.node >= nodes) {
      return fail("node id out of range");
    }
    const NodeId n = event.node;
    switch (event.kind) {
      case FaultKind::kKill:
        if (dead[n]) {
          return fail("kill of an already-dead node");
        }
        dead[n] = 1;
        ++concurrent;
        break;
      case FaultKind::kRestart:
        if (!dead[n]) {
          return fail("restart of a live node");
        }
        dead[n] = 0;
        --concurrent;
        break;
      case FaultKind::kPartitionStart:
        if (partitioned[n]) {
          return fail("nested partition window");
        }
        partitioned[n] = 1;
        ++concurrent;
        break;
      case FaultKind::kPartitionEnd:
        if (!partitioned[n]) {
          return fail("partition end without start");
        }
        partitioned[n] = 0;
        --concurrent;
        break;
      case FaultKind::kDropStart:
        if (dropping[n]) {
          return fail("nested drop window");
        }
        dropping[n] = 1;
        ++concurrent;
        break;
      case FaultKind::kDropEnd:
        if (!dropping[n]) {
          return fail("drop end without start");
        }
        dropping[n] = 0;
        --concurrent;
        break;
    }
    if (concurrent > max_concurrent) {
      return fail("more than R-1 nodes concurrently faulted");
    }
  }
  return true;
}

}  // namespace twheel::cluster
