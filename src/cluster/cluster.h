// A replicated timer cluster on the simulated transport (ROADMAP item 3).
//
// N ClusterNodes each run a host TimerService (the scheme under test) and are
// connected to a coordinator and to each other by lossy/delaying net::Channels
// sharing ONE network clock. A client timer with replication factor R is
// fanned out to the R nodes of its replica set; each rank-k replica arms its
// HOST scheme for deadline + k*failover_delay — the failover lease IS a timer
// in the scheme under test, the paper's "timers as the substrate for failure
// recovery" made literal. Rank 0 owns the pop; if the failure injector kills
// or partitions it, the rank-1 lease expires one failover_delay later and the
// survivor pops instead, and so on down the ladder.
//
// Identity and exactly-once: every client op on a key bumps a per-key
// generation, and the coordinator is the authority — the first kClusterFire
// receipt for the current generation of a live timer is delivered to the
// client; every other receipt is classified (duplicate / stale generation /
// after acknowledged cancel) and suppressed. At-least-once comes from
// retransmission (arms retried until acked per rank, fire notifies retried
// until acked, node-up announcements retried) plus the fault schedule's
// liveness precondition that at most R-1 nodes are concurrently faulted.
// Together: exactly once at the client, within a slop bound the ClusterOracle
// computes from the configuration and the schedule (cluster_oracle.h).
//
// Suppression is two-layered: the authoritative layer is a coordinator
// kClusterDisarm fanned to survivors once a fire is delivered (retried, so a
// survivor's lease is almost always cancelled before it expires); on top, the
// popping replica broadcasts a best-effort kClusterSuppress hint that makes
// peers EXTEND their lease (an in-place RestartTimer, bounded by
// kMaxLeaseExtensions) rather than cancel it — a lost hint costs at most a
// duplicate pop, never a lost fire, because only the coordinator's disarm can
// remove a survivor's timer.
//
// Determinism: channel fates are pure functions of packet identity and send
// tick (net::Channel), faults are applied at fixed phase order inside Step(),
// and all receiver logic commutes within a tick — so two runs with the same
// seed and schedule are byte-identical, and runs differing only in the host
// scheme produce the same client-visible trace up to intra-tick order
// (tests/cluster/cluster_determinism_test.cc).

#ifndef TWHEEL_SRC_CLUSTER_CLUSTER_H_
#define TWHEEL_SRC_CLUSTER_CLUSTER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/cluster/fault_schedule.h"
#include "src/core/timer_facility.h"
#include "src/net/channel.h"
#include "src/net/types.h"
#include "src/sim/simulator.h"

namespace twheel::cluster {

inline constexpr std::uint32_t kMaxReplication = 8;
inline constexpr std::uint32_t kMaxLeaseExtensions = 3;
// connection_id of packets the coordinator sends (node ids are dense from 0).
inline constexpr std::uint32_t kCoordinatorId = 0xFFFFFFFFu;

struct ClusterConfig {
  std::size_t nodes = 4;
  std::uint32_t replication_factor = 2;  // default R for Set()
  // Rank-k lease: replica k arms for deadline + k*failover_delay; a suppress
  // hint extends a lease by one failover_delay (at most kMaxLeaseExtensions).
  Duration failover_delay = 12;
  Duration retry_every = 6;  // retransmit cadence (arms, notifies, node-ups)
  std::uint32_t disarm_retry_cap = 4;
  std::uint64_t seed = 1;
  net::ChannelConfig link;     // every coordinator<->node and node<->node link
  FacilityConfig node_scheme;  // host service each node runs
  // Torture/facade mode: messages become direct calls — no loss, no delay, no
  // faults. Used by ClusterFacadeService so the decide-then-replay driver sees
  // the full replication protocol at exact one-tick semantics.
  bool synchronous_transport = false;
};

enum class ClientEventKind : std::uint8_t {
  kAccepted,    // Set registered a (new or replacing) generation
  kRestarted,   // Restart moved a live timer to a new generation/deadline
  kCancelAcked, // Cancel of a live timer acknowledged: this gen must never fire
  kFired,       // the client callback ran
};

struct ClientEvent {
  ClientEventKind kind = ClientEventKind::kAccepted;
  std::uint64_t key = 0;
  std::uint32_t gen = 0;
  Tick at = 0;        // cluster tick the coordinator processed the event
  Tick deadline = 0;  // kAccepted/kRestarted: absolute deadline;
                      // kFired: the replica's pop tick
  friend bool operator==(const ClientEvent&, const ClientEvent&) = default;
};

struct ClusterStats {
  // Coordinator: client ops.
  std::uint64_t accepted = 0;
  std::uint64_t restarts = 0;
  std::uint64_t restart_misses = 0;
  std::uint64_t cancels = 0;
  std::uint64_t cancel_misses = 0;
  // Coordinator: receipt classification. Conservation law (checked by the
  // oracle): fire_receipts == delivered + duplicate_suppressed +
  // stale_gen_suppressed + after_cancel_suppressed.
  std::uint64_t fire_receipts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicate_suppressed = 0;
  std::uint64_t stale_gen_suppressed = 0;
  std::uint64_t after_cancel_suppressed = 0;
  // Coordinator: replication traffic.
  std::uint64_t arm_sends = 0;
  std::uint64_t arm_retries = 0;
  std::uint64_t disarm_sends = 0;
  std::uint64_t rearms_on_node_up = 0;
  // Node side (summed over nodes).
  std::uint64_t pops = 0;              // host expiries that reached a replica
  std::uint64_t notify_retries = 0;
  std::uint64_t lease_disarms = 0;     // survivor lease removed after delivery
  std::uint64_t cancel_disarms = 0;    // replica removed by a client cancel
  std::uint64_t lease_extensions = 0;  // suppress hints applied (RestartTimer)
  std::uint64_t arm_rejects = 0;       // host refused an arm — config error, 0
  std::uint64_t orphan_pops = 0;       // host pop with no replica state — 0
  // Injector and delivery gates.
  std::uint64_t kills = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t drop_windows = 0;
  std::uint64_t partition_drops = 0;    // packets gated by a partition
  std::uint64_t window_drops = 0;       // packets gated by a drop window
  std::uint64_t dead_receiver_drops = 0;

  friend bool operator==(const ClusterStats&, const ClusterStats&) = default;
};

class TimerCluster {
 public:
  // Client-visible fire: `pop_tick` is when the owning replica's host expired
  // the timer; delivery happens at cluster now(). May re-enter the cluster
  // (Set/Restart/Cancel) — the coordinator's state is updated before dispatch.
  using FireCallback = std::function<void(
      std::uint64_t key, std::uint32_t gen, Tick pop_tick)>;

  TimerCluster(const ClusterConfig& config, FaultSchedule schedule = {});
  ~TimerCluster();

  TimerCluster(const TimerCluster&) = delete;
  TimerCluster& operator=(const TimerCluster&) = delete;

  void set_fire_callback(FireCallback callback) {
    fire_callback_ = std::move(callback);
  }

  // Client ops, processed at the coordinator immediately (replication to the
  // nodes is asynchronous over the links). Set registers interval ticks from
  // now with the given replication factor; a Set on a live key replaces it
  // under a fresh generation. Returns false for a zero interval. Restart and
  // Cancel return false (miss) when the key has no live timer.
  bool Set(std::uint64_t key, Duration interval);
  bool Set(std::uint64_t key, Duration interval, std::uint32_t replication);
  bool Restart(std::uint64_t key, Duration interval);
  bool Cancel(std::uint64_t key);

  // One cluster tick, fixed phase order: (1) clock, (2) fault events due now,
  // (3) network deliveries due now, (4) alive nodes tick their hosts (pops
  // dispatch here), (5) retransmission scans. The fixed order is what makes a
  // (seed, schedule) pair fully deterministic.
  void Step();

  Tick now() const { return now_; }

  // Nothing left to resolve: no live timers, no replica-side state, no
  // in-flight packets, no pending disarm fan-outs.
  bool quiesced() const;

  // Step until quiesced or `max_ticks` elapse; returns ticks stepped.
  Tick Drain(Tick max_ticks);

  const std::vector<ClientEvent>& events() const { return events_; }
  const ClusterStats& stats() const { return stats_; }
  std::size_t live_timers() const { return live_count_; }

  // The R distinct nodes holding `key`, rank order. Pure function of
  // (key, replication, nodes, seed) — nodes compute the same set locally.
  std::vector<NodeId> ReplicaSetFor(std::uint64_t key,
                                    std::uint32_t replication) const;

  bool node_alive(NodeId node) const { return nodes_[node].alive; }
  std::size_t node_count() const { return nodes_.size(); }
  // Probabilistic channel-level drops summed over every link.
  std::uint64_t link_drops() const;

 private:
  struct ReplicaLocal {
    std::uint32_t gen = 0;
    std::uint32_t rank = 0;
    std::uint32_t replication = 1;
    Tick deadline = 0;  // the client deadline (rank offset not included)
    TimerHandle handle{};
    bool popped = false;
    Tick pop_tick = 0;
    std::uint32_t extensions = 0;
  };

  struct Node {
    bool alive = true;
    std::uint64_t epoch = 0;
    bool partitioned = false;
    bool dropping = false;
    bool up_acked = true;
    Tick next_up_retry = 0;
    // Cluster tick the host's local clock is anchored at: the host reads
    // host_base + host->now() on the cluster clock. Mid-Step the hosts are
    // momentarily staggered (some ticked, some not), so arm intervals MUST be
    // computed against the target host's own position, not the cluster tick —
    // otherwise an in-handler Set reaching a not-yet-ticked host fires a tick
    // early.
    Tick host_base = 0;
    std::unique_ptr<TimerService> host;
    std::unordered_map<std::uint64_t, ReplicaLocal> local;
    // Popped replicas awaiting kClusterFireAck: (due tick, key, gen).
    std::multimap<Tick, std::pair<std::uint64_t, std::uint32_t>> notify_retry;
  };

  struct PendingTimer {
    std::uint32_t gen = 0;
    Tick deadline = 0;
    std::uint32_t replication = 1;
    std::array<NodeId, kMaxReplication> replicas{};
    std::uint32_t arm_acked = 0;     // bitmask by rank
    std::uint32_t disarm_acked = 0;  // bitmask by rank
    enum class State : std::uint8_t { kLive, kFired, kCancelled };
    State state = State::kLive;
    bool disarm_fired_flag = false;  // disarm reason: delivered fire vs cancel
    std::uint32_t disarm_round = 0;
    bool disarm_done = true;  // no disarm fan-out outstanding
    bool retry_queued = false;
  };

  // --- transport ---
  void SendToNode(NodeId to, net::Packet packet);    // coordinator -> node
  void SendToCoord(NodeId from, net::Packet packet); // node -> coordinator
  void SendNodeToNode(NodeId from, NodeId to, net::Packet packet);
  bool GateSend(std::uint32_t from, NodeId to);  // false = drop at the gate

  // --- coordinator ---
  void OnCoordMessage(const net::Packet& packet);
  void SendArm(const std::uint64_t key, const PendingTimer& entry,
               std::uint32_t rank);
  void BeginDisarm(std::uint64_t key, PendingTimer& entry, bool fired);
  void SendDisarms(std::uint64_t key, PendingTimer& entry);
  void QueueRetry(std::uint64_t key, PendingTimer& entry);
  void CoordRetryScan();
  void RearmNodeTimers(NodeId node);

  // --- node ---
  void MakeHost(NodeId node);
  void OnNodeMessage(NodeId node, const net::Packet& packet);
  void OnHostPop(NodeId node, std::uint64_t key);
  void SendFireNotify(NodeId node, std::uint64_t key, std::uint32_t gen,
                      std::uint32_t rank, Tick pop_tick);
  void NodeRetryScan(NodeId node);

  void ApplyFaults();

  ClusterConfig config_;
  FaultSchedule schedule_;
  std::size_t schedule_cursor_ = 0;

  Tick now_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> node_epoch_seen_;

  // Coordinator state. Entries are never erased: a key's full generation
  // history stays classifiable for the whole episode.
  std::unordered_map<std::uint64_t, PendingTimer> timers_;
  std::multimap<Tick, std::uint64_t> retry_queue_;
  std::size_t live_count_ = 0;
  std::size_t replica_entries_ = 0;  // sum of nodes_[i].local.size()
  std::size_t pending_disarms_ = 0;  // entries with !disarm_done

  // Async transport (null in synchronous mode). One network clock carries
  // every link; per-link seeds derive from the cluster seed so fates are
  // independent across links but reproducible.
  std::unique_ptr<sim::Simulator> network_;
  std::vector<std::unique_ptr<net::Channel>> up_;    // node i -> coordinator
  std::vector<std::unique_ptr<net::Channel>> down_;  // coordinator -> node i
  std::vector<std::unique_ptr<net::Channel>> mesh_;  // node i -> node j (i*N+j)

  std::vector<ClientEvent> events_;
  ClusterStats stats_;
  FireCallback fire_callback_;
};

}  // namespace twheel::cluster

#endif  // TWHEEL_SRC_CLUSTER_CLUSTER_H_
