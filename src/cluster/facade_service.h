// ClusterFacadeService: the whole replicated cluster behind the four-routine
// TimerService interface, so the decide-then-replay differential driver
// (src/verify/) can torture the replication protocol against OracleTimers.
//
// The wrapped TimerCluster runs in synchronous-transport mode — messages are
// direct calls, no loss, no delay, no faults — which makes the protocol's
// client-visible semantics EXACT: a Set with interval k delivers its fire on
// the k-th subsequent PerTickBookkeeping, precisely what the driver's oracle
// demands. Everything else still runs for real: generation bumps, replica-set
// fan-out, rank leases armed in the host schemes, pop/notify/disarm rounds,
// suppress hints. A protocol bug that double-delivers, loses a cancel, or
// skews a deadline shows up as a differential divergence, tick by tick.
//
// Handle discipline mirrors verify::OracleTimers: slots are never recycled
// (slot == cluster key), generation is always 1, and a stale poke gets
// kNoSuchTimer. Periodic registration is kNotSupported (the driver must run
// with periodic_probability = 0).

#ifndef TWHEEL_SRC_CLUSTER_FACADE_SERVICE_H_
#define TWHEEL_SRC_CLUSTER_FACADE_SERVICE_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/base/types.h"
#include "src/cluster/cluster.h"
#include "src/core/timer_service.h"

namespace twheel::cluster {

struct FacadeConfig {
  std::size_t nodes = 3;
  std::uint32_t replication_factor = 2;
  Duration failover_delay = 12;
  std::uint64_t seed = 1;
  FacilityConfig node_scheme;  // host scheme each node runs
};

class ClusterFacadeService final : public TimerService {
 public:
  explicit ClusterFacadeService(const FacadeConfig& config) {
    ClusterConfig cluster_config;
    cluster_config.nodes = config.nodes;
    cluster_config.replication_factor = config.replication_factor;
    cluster_config.failover_delay = config.failover_delay;
    cluster_config.seed = config.seed;
    cluster_config.node_scheme = config.node_scheme;
    cluster_config.synchronous_transport = true;
    cluster_ = std::make_unique<TimerCluster>(cluster_config);
    cluster_->set_fire_callback(
        [this](std::uint64_t key, std::uint32_t /*gen*/, Tick /*pop_tick*/) {
          auto it = live_.find(key);
          if (it == live_.end()) {
            return;  // unreachable: the cluster delivers each gen once
          }
          const RequestId request_id = it->second;
          // Erase BEFORE dispatch: a handler poking its own just-fired handle
          // must see kNoSuchTimer, exactly like the schemes and the oracle.
          live_.erase(it);
          ++counts_.expiries;
          ++counts_.expiry_dispatches;
          ++tick_expiries_;
          if (handler_) {
            handler_(request_id, cluster_->now());
          }
        });
  }

  StartResult StartTimer(Duration interval, RequestId request_id) override {
    ++counts_.start_calls;
    if (interval == 0) {
      return TimerError::kZeroInterval;
    }
    const std::uint64_t key = next_key_++;
    cluster_->Set(key, interval);
    live_.emplace(key, request_id);
    ++counts_.insert_link_ops;
    // Generation 1 everywhere, like verify::OracleTimers: keys are never
    // recycled, so any other generation is garbage by construction.
    return TimerHandle{static_cast<std::uint32_t>(key), 1};
  }

  TimerError StopTimer(TimerHandle handle) override {
    ++counts_.stop_calls;
    if (!handle.valid() || handle.generation != 1) {
      return TimerError::kNoSuchTimer;
    }
    auto it = live_.find(handle.slot);
    if (it == live_.end()) {
      return TimerError::kNoSuchTimer;
    }
    if (!cluster_->Cancel(it->first)) {
      return TimerError::kNoSuchTimer;  // unreachable while live_ is in sync
    }
    live_.erase(it);
    ++counts_.delete_unlink_ops;
    return TimerError::kOk;
  }

  TimerError RestartTimer(TimerHandle handle, Duration new_interval) override {
    if (new_interval == 0) {
      return TimerError::kZeroInterval;
    }
    if (!handle.valid() || handle.generation != 1) {
      return TimerError::kNoSuchTimer;
    }
    auto it = live_.find(handle.slot);
    if (it == live_.end()) {
      return TimerError::kNoSuchTimer;
    }
    if (!cluster_->Restart(it->first, new_interval)) {
      return TimerError::kNoSuchTimer;
    }
    ++counts_.restart_calls;
    ++counts_.restart_relink_ops;
    return TimerError::kOk;
  }

  std::size_t PerTickBookkeeping() override {
    ++counts_.ticks;
    tick_expiries_ = 0;
    cluster_->Step();
    return tick_expiries_;
  }

  Tick now() const override { return cluster_->now(); }
  std::size_t outstanding() const override { return live_.size(); }
  metrics::OpCounts counts() const override { return counts_; }
  std::string_view name() const override { return "cluster-facade"; }

  void set_expiry_handler(ExpiryHandler handler) override {
    handler_ = std::move(handler);
  }

  SpaceProfile Space() const override {
    SpaceProfile profile;
    profile.hot_record_bytes = 0;
    profile.cold_record_bytes = 0;
    profile.actual_record_bytes = 0;
    // The replication cost in space: R replica-side records plus the
    // coordinator entry per timer, across the cluster.
    profile.auxiliary_bytes =
        live_.size() * sizeof(std::pair<std::uint64_t, RequestId>);
    return profile;
  }

  const TimerCluster& cluster() const { return *cluster_; }

 private:
  std::unique_ptr<TimerCluster> cluster_;
  std::unordered_map<std::uint64_t, RequestId> live_;
  std::uint64_t next_key_ = 0;
  std::size_t tick_expiries_ = 0;
  metrics::OpCounts counts_;
  ExpiryHandler handler_;
};

}  // namespace twheel::cluster

#endif  // TWHEEL_SRC_CLUSTER_FACADE_SERVICE_H_
