// The fault-schedule oracle: exactly-once-within-slop, judged from the
// client-visible event trace alone.
//
// The oracle deliberately does NOT trust the coordinator's classification — it
// re-derives per-key legality from the ordered ClientEvent stream (which gen
// was current and live at each instant) and checks the coordinator's counters
// only through the conservation law. Its inputs are the same ClusterConfig and
// FaultSchedule the episode ran under, from which it computes the slop bound a
// delivered fire must land in:
//
//   slop = (R-1 + kMaxLeaseExtensions) * failover_delay   // lease ladder
//        + schedule.total_outage                          // bounded outages
//        + kRetryBudget * retry_every + 2 * delay_hi      // loss retries
//        + small constant
//
// The retry budget covers probabilistic channel loss: with loss p <= 0.05 and
// 12 retransmission rounds inside the budget, a message series outlives the
// bound with probability ~p^12 ≈ 2e-16 — and since channel fates are pure
// functions of the seed, a seeded episode that passes once passes forever.
//
// Checked invariants:
//   1. exactly-once: the final un-cancelled generation of every key fires
//      exactly once; no generation ever fires twice (zero duplicate client
//      callbacks);
//   2. never early: every pop tick >= its generation's deadline;
//   3. within slop: pop <= deadline + slop, delivery <= pop + delivery slack;
//   4. no fire after acknowledged cancel, no fire of a superseded (restarted)
//      generation, no fire of a replaced generation after its replacement;
//   5. duplicate-suppression conservation: fire_receipts == delivered +
//      duplicate_suppressed + stale_gen_suppressed + after_cancel_suppressed,
//      delivered == |kFired events|, and zero arm_rejects / orphan_pops.

#ifndef TWHEEL_SRC_CLUSTER_CLUSTER_ORACLE_H_
#define TWHEEL_SRC_CLUSTER_CLUSTER_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/fault_schedule.h"

namespace twheel::cluster {

struct OracleReport {
  bool ok = true;
  std::string violation;  // first violation, human-readable; empty when ok

  std::size_t keys = 0;
  std::size_t generations = 0;
  std::size_t fires_checked = 0;
  std::size_t cancels_checked = 0;
};

class ClusterOracle {
 public:
  // Retransmission rounds the slop bound budgets for probabilistic loss.
  static constexpr Duration kRetryBudget = 12;

  ClusterOracle(const ClusterConfig& config, const FaultSchedule& schedule);

  // Latest legal pop tick is deadline + slop_bound().
  Duration slop_bound() const { return slop_; }
  // Latest legal delivery is pop + delivery_slack().
  Duration delivery_slack() const { return delivery_slack_; }

  OracleReport Check(const std::vector<ClientEvent>& events,
                     const ClusterStats& stats) const;

 private:
  ClusterConfig config_;
  Duration slop_ = 0;
  Duration delivery_slack_ = 0;
};

}  // namespace twheel::cluster

#endif  // TWHEEL_SRC_CLUSTER_CLUSTER_ORACLE_H_
