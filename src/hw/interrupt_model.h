// Hardware-assist interrupt accounting (Appendix A.1).
//
// The appendix sketches "a chip (actually just a counter) that steps through the
// timer arrays, and interrupts the host only if there is work to be done": the host
// keeps the timer queues in its memory, the chip keeps the arrays of busy bits in
// its own, and the only communication is an interrupt per busy slot encountered.
// The analysis: "In Scheme 6, the host is interrupted an average of T/M times per
// timer interval, where T is the average timer interval and M is the number of array
// elements. In Scheme 7, the host is interrupted at most m times, where m is the
// number of levels in the hierarchy."
//
// InterruptModel simulates that division of labour for any scheme: it drives the
// wrapped service's PER_TICK_BOOKKEEPING (the chip's scan) and counts a host
// interrupt for every tick on which the scan found timer records to touch — i.e. on
// which the host would have been woken to walk a queue. Ticks that only step through
// empty slots are absorbed by the chip for free. The bench_appA_hw_assist benchmark
// reproduces the T/M-vs-m comparison with this model.

#ifndef TWHEEL_SRC_HW_INTERRUPT_MODEL_H_
#define TWHEEL_SRC_HW_INTERRUPT_MODEL_H_

#include <memory>
#include <utility>

#include "src/core/timer_service.h"

namespace twheel::hw {

class InterruptModel {
 public:
  explicit InterruptModel(std::unique_ptr<TimerService> service)
      : service_(std::move(service)) {}

  TimerService& service() { return *service_; }
  const TimerService& service() const { return *service_; }

  // One chip scan step == one tick. Returns expiries dispatched.
  std::size_t Tick() {
    const metrics::OpCounts before = service_->counts();
    std::size_t expired = service_->PerTickBookkeeping();
    const metrics::OpCounts delta = service_->counts() - before;
    ++chip_scans_;
    // Work the host must be woken for: records visited (decremented, migrated, or
    // expired). Empty-slot stepping stays on the chip.
    if (delta.decrement_visits + delta.migrations + delta.expiry_dispatches > 0) {
      ++host_interrupts_;
    }
    return expired;
  }

  void Run(Duration ticks) {
    for (Duration i = 0; i < ticks; ++i) {
      Tick();
    }
  }

  std::uint64_t host_interrupts() const { return host_interrupts_; }
  std::uint64_t chip_scans() const { return chip_scans_; }

  // Interrupts the host absorbed per expired timer so far — the appendix's
  // per-timer-interval interrupt overhead.
  double InterruptsPerExpiry() const {
    const std::uint64_t expiries = service_->counts().expiries;
    return expiries == 0 ? 0.0
                         : static_cast<double>(host_interrupts_) /
                               static_cast<double>(expiries);
  }

 private:
  std::unique_ptr<TimerService> service_;
  std::uint64_t host_interrupts_ = 0;
  std::uint64_t chip_scans_ = 0;
};

}  // namespace twheel::hw

#endif  // TWHEEL_SRC_HW_INTERRUPT_MODEL_H_
