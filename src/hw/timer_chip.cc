#include "src/hw/timer_chip.h"

#include "src/base/assert.h"

namespace twheel::hw {

ChipAssistedWheel::ChipAssistedWheel(std::size_t table_size, std::size_t max_timers)
    : TimerServiceBase(max_timers),
      shift_(Log2Floor(table_size)),
      slots_(table_size),
      busy_(table_size, false) {
  TWHEEL_ASSERT_MSG(IsPowerOfTwo(table_size) && table_size >= 2,
                    "table size must be a power of two >= 2");
}

ChipAssistedWheel::~ChipAssistedWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
}

StartResult ChipAssistedWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  const std::size_t slot_index = rec->expiry_tick & mask();
  rec->rounds = (interval - 1) >> shift_;
  IntrusiveList<TimerRecord>& queue = slots_[slot_index];
  // "When the host inserts a timer into an empty queue pointed to by array element
  // X it tells the chip about this new queue."
  if (queue.empty()) {
    NotifyBusy(slot_index);
  }
  queue.PushBack(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError ChipAssistedWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  const std::size_t slot_index = rec->expiry_tick & mask();
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  // "When the host deletes a timer entry from some queue and leaves behind an empty
  // queue it needs to inform the chip."
  if (slots_[slot_index].empty()) {
    NotifyFree(slot_index);
  }
  return TimerError::kOk;
}

std::size_t ChipAssistedWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  // Chip side: the counter steps; a clear busy bit costs the host nothing — note
  // that unlike the plain Scheme 6 wheel, no host-side empty_slot_check is charged.
  ++chip_scans_;
  const std::size_t slot_index = static_cast<std::size_t>(now_ & mask());
  if (!busy_[slot_index]) {
    return 0;
  }

  // "It interrupts the host and gives the host the address of the queue."
  ++host_interrupts_;
  IntrusiveList<TimerRecord>& queue = slots_[slot_index];
  TWHEEL_ASSERT_MSG(!queue.empty(), "busy bit set on an empty queue");

  std::size_t expired = 0;
  IntrusiveList<TimerRecord> pending;
  pending.SpliceAll(queue);
  while (TimerRecord* rec = pending.front()) {
    rec->Unlink();
    ++counts_.decrement_visits;
    if (rec->rounds == 0) {
      TWHEEL_ASSERT(rec->expiry_tick == now_);
      Expire(rec);
      ++expired;
    } else {
      --rec->rounds;
      queue.PushBack(rec);
    }
  }
  // Reconcile the busy bit with the queue's final state. (Mid-drain, a reentrant
  // StopTimer can observe the spliced-out queue as empty and send an early free
  // notification, and a reentrant StartTimer a busy one; the final state wins.)
  if (queue.empty() && busy_[slot_index]) {
    NotifyFree(slot_index);
  } else if (!queue.empty() && !busy_[slot_index]) {
    NotifyBusy(slot_index);
  }
  return expired;
}

}  // namespace twheel::hw
