// The Appendix A.1 timer chip, structurally: busy bits in chip memory, timer
// queues in host memory, interrupts as the only chip-to-host channel.
//
// "Another possibility is a chip (actually just a counter) that steps through the
// timer arrays, and interrupts the host only if there is work to be done. When the
// host inserts a timer into an empty queue pointed to by array element X it tells
// the chip about this new queue. The chip then marks X as 'busy'. As before, the
// chip scans through the timer arrays every clock tick. During its scan, when the
// chip encounters a 'busy' location, it interrupts the host and gives the host the
// address of the queue that needs to be worked on. Similarly when the host deletes
// a timer entry from some queue and leaves behind an empty queue it needs to inform
// the chip that the corresponding array location is no longer 'busy'. Note that the
// synchronization overhead is minimal because the host can keep the actual timer
// queues in its memory which the chip need not access, and the chip can keep the
// timing arrays in its memory, which the host need not access."
//
// ChipAssistedWheel implements that division of labour over a Scheme 6 hashed wheel
// and exposes the protocol's traffic: chip scans (free), host interrupts (chip ->
// host), and busy/free notifications (host -> chip). It is a full TimerService, so
// the differential suite verifies that adding the chip changes no observable timer
// behaviour — only who pays for empty slots.

#ifndef TWHEEL_SRC_HW_TIMER_CHIP_H_
#define TWHEEL_SRC_HW_TIMER_CHIP_H_

#include <cstddef>
#include <vector>

#include "src/base/bits.h"
#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel::hw {

class ChipAssistedWheel final : public TimerServiceBase {
 public:
  // `table_size` must be a power of two >= 2 (the chip's array dimension; "the
  // array sizes need to be parameters that must be supplied to the chip on
  // initialization").
  explicit ChipAssistedWheel(std::size_t table_size, std::size_t max_timers = 0);

  ~ChipAssistedWheel() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final { return "scheme6-chip-assisted"; }

  std::size_t table_size() const { return busy_.size(); }

  // Protocol traffic counters.
  std::uint64_t chip_scans() const { return chip_scans_; }            // chip-internal
  std::uint64_t host_interrupts() const { return host_interrupts_; }  // chip -> host
  std::uint64_t busy_notifications() const { return busy_notifications_; }  // host -> chip
  std::uint64_t free_notifications() const { return free_notifications_; }  // host -> chip

  // Fixed: the host's queue heads plus the chip's busy bits (one per slot, held in
  // the chip's own memory). Per record: links (16) + rounds (8) + cookie (8) +
  // expiry (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes = slots_.size() * sizeof(IntrusiveList<TimerRecord>) +
                          (busy_.size() + 7) / 8;
    profile.essential_record_bytes = 40;
    return profile;
  }

 private:
  std::uint64_t mask() const { return busy_.size() - 1; }

  // Host side: mark X busy/free in the chip's memory (one message each).
  void NotifyBusy(std::size_t slot_index) {
    ++busy_notifications_;
    busy_[slot_index] = true;
  }
  void NotifyFree(std::size_t slot_index) {
    ++free_notifications_;
    busy_[slot_index] = false;
  }

  // Host memory: the timer queues. A record's wheel slot is recomputable from its
  // absolute expiry (expiry & mask), so stops need no side table.
  std::uint32_t shift_;
  std::vector<IntrusiveList<TimerRecord>> slots_;

  // Chip memory: the busy bits.
  std::vector<bool> busy_;

  std::uint64_t chip_scans_ = 0;
  std::uint64_t host_interrupts_ = 0;
  std::uint64_t busy_notifications_ = 0;
  std::uint64_t free_notifications_ = 0;
};

}  // namespace twheel::hw

#endif  // TWHEEL_SRC_HW_TIMER_CHIP_H_
