#include "src/lawn/lawn_timers.h"

#include "src/base/assert.h"
#include "src/core/slop.h"

namespace twheel::lawn {

LawnTimers::LawnTimers(LawnOptions options)
    : TimerServiceBase(options.max_timers),
      max_distinct_ttls_(options.max_distinct_ttls),
      slop_bits_(options.slop_bits) {}

LawnTimers::~LawnTimers() {
  for (Bucket& bucket : buckets_) {
    while (TimerRecord* rec = bucket.list.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
  while (TimerRecord* rec = overflow_.front()) {
    rec->Unlink();
    ReleaseRecord(rec);
  }
}

StartResult LawnTimers::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  const Duration effective = QuantizeIntervalUp(interval, slop_bits_);
  TimerRecord* rec = AllocateRecord(effective, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  FileRecord(rec);
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError LawnTimers::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

TimerError LawnTimers::RestartTimer(TimerHandle handle, Duration new_interval) {
  TimerError error = TimerError::kOk;
  TimerRecord* rec = ResolveForRestart(handle, new_interval, &error);
  if (rec == nullptr) {
    return error;
  }
  rec->Unlink();
  StampRestart(rec, QuantizeIntervalUp(new_interval, slop_bits_));
  // Re-filing appends at the current clock, which keeps the destination
  // bucket's expiry order non-decreasing: every earlier resident of TTL bucket
  // T was appended at some tick <= now, so its expiry <= now + T.
  FileRecord(rec);
  return TimerError::kOk;
}

void LawnTimers::FileRecord(TimerRecord* rec) {
  const Duration ttl = rec->interval;
  auto it = index_of_ttl_.find(ttl);
  if (it != index_of_ttl_.end()) {
    rec->home_slot = it->second;
    buckets_[it->second].list.PushBack(rec);
    return;
  }
  if (max_distinct_ttls_ == 0 || buckets_.size() < max_distinct_ttls_) {
    const auto index = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
    buckets_.back().ttl = ttl;
    index_of_ttl_.emplace(ttl, index);
    rec->home_slot = index;
    buckets_[index].list.PushBack(rec);
    return;
  }
  // Cap exceeded and this TTL has no bucket: the documented fallback. The
  // record joins the shared expiry-sorted overflow list; expiries stay exact,
  // only the O(1) start guarantee is forfeited for overflow residents.
  InsertOverflow(rec);
}

void LawnTimers::InsertOverflow(TimerRecord* rec) {
  rec->home_slot = kOverflowIndex;
  // Rear search (the Scheme 2 kFromRear idiom): restarts and fresh starts
  // carry the latest clock, so their expiry usually belongs at or near the
  // tail. Insert after any equal expiry so equal deadlines stay FIFO.
  TimerRecord* pos = overflow_.back();
  while (pos != nullptr) {
    ++counts_.comparisons;
    if (pos->expiry_tick <= rec->expiry_tick) {
      break;
    }
    pos = overflow_.Prev(pos);
  }
  if (pos == nullptr) {
    overflow_.PushFront(rec);
  } else if (overflow_.Next(pos) == nullptr) {
    overflow_.PushBack(rec);
  } else {
    overflow_.InsertBefore(rec, overflow_.Next(pos));
  }
}

std::size_t LawnTimers::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  return DrainDueAtNow();
}

std::size_t LawnTimers::DrainDueAtNow() {
  std::size_t expired = 0;
  // Index loop re-reads size(): an expiry handler may start a timer with a
  // fresh TTL, growing the deque mid-drain. The new bucket's head is a timer
  // started this tick (expiry >= now + 1), so visiting it is a no-op probe.
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    expired += DrainListHead(buckets_[i].list);
  }
  expired += DrainListHead(overflow_);
  return expired;
}

std::size_t LawnTimers::DrainListHead(IntrusiveList<TimerRecord>& list) {
  TimerRecord* rec = list.front();
  if (rec == nullptr || rec->expiry_tick > now_) {
    // One head probe found nothing due — the per-tick cost of an idle bucket,
    // the analogue of a wheel's empty-slot check.
    ++counts_.empty_slot_checks;
    return 0;
  }
  std::size_t expired = 0;
  while (rec != nullptr && rec->expiry_tick <= now_) {
    TWHEEL_ASSERT(rec->expiry_tick == now_);
    ++counts_.decrement_visits;
    // Non-final periodic fire: the relink moves the record to its period's
    // bucket TAIL with expiry now + period, so re-reading the head makes
    // progress even when the destination is this same bucket.
    if (TryFirePeriodic(rec)) {
      ++expired;
    } else {
      rec->Unlink();
      Expire(rec);
      ++expired;
    }
    rec = list.front();
  }
  return expired;
}

std::size_t LawnTimers::AdvanceTo(Tick target) {
  TWHEEL_ASSERT_MSG(target >= now_, "AdvanceTo target is in the past");
  ++counts_.batch_advances;
  return BatchAdvance(target, /*count_ticks=*/true);
}

std::size_t LawnTimers::BatchAdvance(Tick target, bool count_ticks) {
  std::size_t expired = 0;
  while (now_ < target) {
    const Duration remaining = target - now_;
    // Hop straight to the earliest bucket-head expiry; every tick in between
    // would only probe heads that are not due. Re-queried each lap so handler
    // starts landing inside the window are never overshot.
    const std::optional<Tick> next = NextExpiryHint();
    if (!next.has_value() || *next > target) {
      if (count_ticks) {
        counts_.ticks += remaining;
      }
      counts_.slots_skipped += remaining;
      now_ = target;
      break;
    }
    const Duration dist = *next - now_;
    if (count_ticks) {
      counts_.ticks += dist;
    }
    counts_.slots_skipped += dist - 1;
    now_ = *next;
    expired += DrainDueAtNow();
  }
  return expired;
}

std::optional<Tick> LawnTimers::NextExpiryHint() const {
  std::optional<Tick> best;
  for (const Bucket& bucket : buckets_) {
    const TimerRecord* head = bucket.list.front();
    if (head != nullptr && (!best.has_value() || head->expiry_tick < *best)) {
      best = head->expiry_tick;
    }
  }
  const TimerRecord* head = overflow_.front();
  if (head != nullptr && (!best.has_value() || head->expiry_tick < *best)) {
    best = head->expiry_tick;
  }
  return best;
}

bool LawnTimers::FastForward(Tick target) {
  TWHEEL_ASSERT(target >= now_);
  const std::optional<Tick> next = NextExpiryHint();
  TWHEEL_ASSERT_MSG(!next.has_value() || target < *next,
                    "FastForward would skip an expiry");
  // Nothing in the store depends on the cursor position — buckets are keyed by
  // TTL, not by time — so crossing dead time is a clock assignment. Skipped
  // ticks are not counted ("the hardware intercepts all clock ticks").
  counts_.slots_skipped += target - now_;
  now_ = target;
  return true;
}

}  // namespace twheel::lawn
