// Scheme 8 — the Lawn store: one FIFO bucket per distinct TTL.
//
// The first post-paper scheme in this repository, after "Lawn: an Unbound Low
// Latency Timer Data Structure" (Bachar & Dolev; see PAPERS.md). The paper's
// Schemes 4-7 all pay for interval generality: a wheel bound (Scheme 4), hash
// chains with revolution counts (5/6), or hierarchical cascades (7). Lawn's
// observation is that protocol timers rarely need that generality — a TCP stack
// uses a handful of timeout *constants* (RTO, keepalive, TIME_WAIT, delayed-ACK)
// across millions of connections. Key the store by TTL instead of by expiry:
//
//   * One FIFO bucket per distinct TTL, created on first use.
//   * START_TIMER appends to its TTL's bucket — O(1), no range bound, no hash.
//   * Bucket-sorted invariant: every resident of bucket T was appended with the
//     same TTL at a non-decreasing clock, so expiry (= append time + T) is
//     non-decreasing front to back. The bucket HEAD is the bucket minimum.
//   * PER_TICK_BOOKKEEPING inspects only bucket heads: O(distinct TTLs) per
//     tick, independent of the number of live timers. With k TTL constants and
//     n connections that is O(k) against the hashed wheels' O(n/TableSize).
//   * STOP_TIMER / RESTART_TIMER unlink in O(1) via the intrusive back-pointer,
//     exactly like the wheels. A restart re-files at the (possibly different)
//     bucket for the new TTL; appending at the current clock preserves the
//     invariant.
//
// NextExpiryHint is the min over bucket heads — exact, O(distinct TTLs) — so
// batched AdvanceTo, sim::Simulator jumping, and TickerThread catch-up work
// unchanged: the clock hops head-to-head and never probes dead ticks.
//
// The unbounded-TTL caveat: the structure is O(1) only while the distinct-TTL
// population stays small. LawnOptions::max_distinct_ttls caps bucket creation;
// once the cap is hit, timers with NEW TTL values fall back to one shared
// rear-search sorted overflow list (the paper's Scheme 2 idiom) whose head
// participates in the tick scan like any bucket head. Correctness is unchanged
// — expiries stay exact — but starts landing in the overflow pay O(overflow
// population) comparisons, which is the documented price of exceeding the cap.
// Reduced precision (slop_bits, src/core/slop.h) quantizes effective intervals
// up to 2^slop_bits grains, collapsing near-miss TTLs into shared buckets: the
// ponyc precision-for-throughput trade, here also a cap-pressure valve.
//
// StartPeriodic re-arms on the expiry path through RestartTimer's in-place
// relink (PR 6 machinery): the record moves to its period's bucket tail without
// touching the arena, so the handle and generation survive every lap.

#ifndef TWHEEL_SRC_LAWN_LAWN_TIMERS_H_
#define TWHEEL_SRC_LAWN_LAWN_TIMERS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel::lawn {

struct LawnOptions {
  // Maximum number of distinct-TTL buckets; 0 = unbounded. Starts whose
  // (quantized) TTL would create a bucket beyond the cap go to the shared
  // sorted overflow list instead — see the class comment.
  std::size_t max_distinct_ttls = 0;
  // Reduced precision: effective interval = QuantizeIntervalUp(interval,
  // slop_bits). 0 = exact.
  std::uint32_t slop_bits = 0;
  // Arena bound; 0 = unbounded.
  std::size_t max_timers = 0;
};

class LawnTimers final : public TimerServiceBase {
 public:
  explicit LawnTimers(LawnOptions options = {});

  ~LawnTimers() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  // O(1) in-place reschedule: unlink from the current bucket, re-stamp, append
  // to the new TTL's bucket tail (rear-search insert if it lands in the
  // overflow list). Handle and generation survive.
  TimerError RestartTimer(TimerHandle handle, Duration new_interval) final;
  std::size_t PerTickBookkeeping() final;
  std::size_t AdvanceTo(Tick target) final;
  // Exact: the minimum over bucket heads (each head is its bucket's earliest
  // expiry by the bucket-sorted invariant) plus the overflow head. O(distinct
  // TTLs), independent of population.
  std::optional<Tick> NextExpiryHint() const final;
  bool FastForward(Tick target) final;
  std::string_view name() const final { return "scheme8-lawn"; }

  std::uint32_t slop_bits() const { return slop_bits_; }
  // Buckets currently allocated (== distinct effective TTLs ever started,
  // bounded by max_distinct_ttls). Buckets are never reclaimed: a TTL seen once
  // is expected again — the protocol-constant assumption the scheme is for.
  std::size_t distinct_ttls() const { return buckets_.size(); }
  // Residents of the shared overflow list (cap exceeded). O(overflow length).
  std::size_t OverflowPopulationSlow() const { return overflow_.CountSlow(); }

  // No fixed arrays: space is one list head per distinct TTL plus the TTL->
  // bucket index. Per record: links (16) + expiry (8) + cookie (8) + bucket
  // index (4, padded to 8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.essential_record_bytes = 40;
    profile.auxiliary_bytes =
        buckets_.size() * sizeof(Bucket) +
        index_of_ttl_.size() *
            (sizeof(std::pair<Duration, std::uint32_t>) + 2 * sizeof(void*));
    return profile;
  }

 private:
  struct Bucket {
    Duration ttl = 0;
    IntrusiveList<TimerRecord> list;
  };

  // home_slot value marking residence in the overflow list.
  static constexpr std::uint32_t kOverflowIndex = TimerRecord::kNoIndex;

  // File `rec` (interval/expiry already stamped) into its TTL's bucket,
  // creating the bucket if the cap allows, else into the sorted overflow list.
  void FileRecord(TimerRecord* rec);
  void InsertOverflow(TimerRecord* rec);
  // Pop every due head at the (already advanced) current tick, in bucket-index
  // order then the overflow list — the dispatch order the batched paths must
  // reproduce exactly.
  std::size_t DrainDueAtNow();
  std::size_t DrainListHead(IntrusiveList<TimerRecord>& list);
  // Shared body of AdvanceTo / FastForward; `count_ticks` is false for
  // FastForward ("the hardware intercepts all clock ticks").
  std::size_t BatchAdvance(Tick target, bool count_ticks);

  std::size_t max_distinct_ttls_;
  std::uint32_t slop_bits_;
  // deque: bucket references stay stable while expiry handlers create new
  // TTLs mid-drain (IntrusiveList is not movable, and a vector regrowth would
  // invalidate the list being walked).
  std::deque<Bucket> buckets_;
  std::unordered_map<Duration, std::uint32_t> index_of_ttl_;
  IntrusiveList<TimerRecord> overflow_;
};

}  // namespace twheel::lawn

#endif  // TWHEEL_SRC_LAWN_LAWN_TIMERS_H_
