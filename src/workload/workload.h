// Deterministic workload driver for timer schemes.
//
// Section 3.2 observes that a timer module's average costs depend on two
// distributions: the timer-interval distribution and the arrival process of
// START_TIMER calls; Section 2 adds that some client populations stop almost every
// timer before expiry (retransmission timers) while others let almost every timer
// expire (periodic checks). A WorkloadSpec captures exactly those three knobs plus a
// seed; Run() drives any TimerService with the fully pre-determined call sequence
// and measures what the paper measures:
//
//   * per-START_TIMER cost in key comparisons (vs the 2 + 2n/3 family of forms),
//   * per-tick bookkeeping work, mean and distribution (vs n/TableSize and the
//     Section 6.1.2 burstiness claim),
//   * the paper-weighted VAX instruction totals,
//   * wall-clock time,
//   * and the exact expiry trace, for differential testing across schemes.
//
// The call sequence (arrival ticks, intervals, which timers are stopped and when)
// depends only on the spec, never on the scheme under test, so two schemes given the
// same spec are fed byte-identical request streams.

#ifndef TWHEEL_SRC_WORKLOAD_WORKLOAD_H_
#define TWHEEL_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/core/timer_service.h"
#include "src/metrics/histogram.h"
#include "src/metrics/running_stats.h"
#include "src/rng/distributions.h"

namespace twheel::workload {

enum class ArrivalKind : std::uint8_t { kPoisson, kPeriodic };
enum class IntervalKind : std::uint8_t {
  kConstant,
  kUniform,
  kExponential,
  kPareto,
  kGeometric,
};

struct WorkloadSpec {
  std::uint64_t seed = 1;

  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double arrival_rate = 1.0;   // Poisson: expected starts per tick
  Duration arrival_gap = 1;    // Periodic: ticks between starts

  IntervalKind intervals = IntervalKind::kExponential;
  double interval_mean = 128.0;  // exponential mean / geometric 1/p
  Duration interval_lo = 1;      // uniform lower bound / constant value / Pareto x_m
  Duration interval_hi = 256;    // uniform upper bound
  double pareto_alpha = 1.5;

  // Clamp every drawn interval to this many ticks (0 = no clamp). Keeps heavy-tailed
  // draws from stretching a replay over 2^40 ticks.
  Duration interval_cap = 0;

  // Fraction of timers cancelled before expiry (stop tick uniform over the timer's
  // life). 0.0 = every timer expires (rate-control style); ~1.0 = almost every timer
  // is stopped (retransmission style, "if failures are infrequent these timers
  // rarely expire").
  double stop_fraction = 0.0;

  // Number of START_TIMER calls to issue after warmup, and to warm up with (warmup
  // lets the outstanding-count reach steady state before measurement starts).
  std::size_t warmup_starts = 0;
  std::size_t measured_starts = 10000;

  // Hard tick ceiling as a runaway guard; 0 derives a generous default.
  Tick max_ticks = 0;
};

// One expiry observation, in dispatch order.
struct ExpiryEvent {
  Tick tick = 0;
  RequestId request_id = 0;
  friend bool operator==(const ExpiryEvent&, const ExpiryEvent&) = default;
  friend auto operator<=>(const ExpiryEvent&, const ExpiryEvent&) = default;
};

struct WorkloadResult {
  std::string scheme_name;

  // Counts.
  std::size_t starts_issued = 0;
  std::size_t starts_rejected = 0;  // out-of-range / capacity errors from the scheme
  std::size_t stops_issued = 0;
  std::size_t expiries = 0;
  Tick ticks_run = 0;

  // Measured-phase statistics. The measurement window opens at the first
  // post-warmup start and closes at the last start issued: the drain tail (after
  // arrivals cease) is excluded so steady-state averages aren't diluted.
  metrics::RunningStats start_comparisons;   // key comparisons per StartTimer call
  metrics::RunningStats start_ops;           // comparisons + link ops per call
  metrics::RunningStats tick_work;           // OpCounts::TickWork delta per tick
  metrics::Histogram tick_work_hist;         // same, full distribution
  metrics::RunningStats outstanding;         // sampled before each tick
  metrics::OpCounts measured_ops;            // aggregate op-count delta over the phase

  double wall_seconds = 0.0;

  // Expiry trace (measured + warmup; dispatch order). For cross-scheme comparison,
  // sort events within each tick (dispatch order within a tick is scheme-specific —
  // the paper: "Timer modules need not meet this [FIFO] restriction").
  std::vector<ExpiryEvent> trace;
};

// Pre-draws the request stream for `spec` and replays it against `service`.
WorkloadResult Run(TimerService& service, const WorkloadSpec& spec);

// Normalizes a trace for cross-scheme equality: sorted by (tick, request_id).
std::vector<ExpiryEvent> NormalizedTrace(const std::vector<ExpiryEvent>& trace);

// The trace the spec *predicts* assuming exact-expiry semantics (Schemes 1-6 and
// Scheme 7 with full migration) and no rejected starts: every unstopped timer fires
// at start + interval. Returned normalized and truncated to the same tick horizon
// Run() uses, so it is directly comparable with NormalizedTrace(result.trace).
std::vector<ExpiryEvent> PredictedTrace(const WorkloadSpec& spec);

}  // namespace twheel::workload

#endif  // TWHEEL_SRC_WORKLOAD_WORKLOAD_H_
