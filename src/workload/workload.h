// Deterministic workload driver for timer schemes.
//
// Section 3.2 observes that a timer module's average costs depend on two
// distributions: the timer-interval distribution and the arrival process of
// START_TIMER calls; Section 2 adds that some client populations stop almost every
// timer before expiry (retransmission timers) while others let almost every timer
// expire (periodic checks). A WorkloadSpec captures exactly those three knobs plus a
// seed; Run() drives any TimerService with the fully pre-determined call sequence
// and measures what the paper measures:
//
//   * per-START_TIMER cost in key comparisons (vs the 2 + 2n/3 family of forms),
//   * per-tick bookkeeping work, mean and distribution (vs n/TableSize and the
//     Section 6.1.2 burstiness claim),
//   * the paper-weighted VAX instruction totals,
//   * wall-clock time,
//   * and the exact expiry trace, for differential testing across schemes.
//
// The call sequence (arrival ticks, intervals, which timers are stopped and when)
// depends only on the spec, never on the scheme under test, so two schemes given the
// same spec are fed byte-identical request streams.

#ifndef TWHEEL_SRC_WORKLOAD_WORKLOAD_H_
#define TWHEEL_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/core/timer_service.h"
#include "src/metrics/histogram.h"
#include "src/metrics/running_stats.h"
#include "src/rng/distributions.h"

namespace twheel::workload {

enum class ArrivalKind : std::uint8_t { kPoisson, kPeriodic };
enum class IntervalKind : std::uint8_t {
  kConstant,
  kUniform,
  kExponential,
  kPareto,
  kGeometric,
};

struct WorkloadSpec {
  std::uint64_t seed = 1;

  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double arrival_rate = 1.0;   // Poisson: expected starts per tick
  Duration arrival_gap = 1;    // Periodic: ticks between starts

  IntervalKind intervals = IntervalKind::kExponential;
  double interval_mean = 128.0;  // exponential mean / geometric 1/p
  Duration interval_lo = 1;      // uniform lower bound / constant value / Pareto x_m
  Duration interval_hi = 256;    // uniform upper bound
  double pareto_alpha = 1.5;

  // Clamp every drawn interval to this many ticks (0 = no clamp). Keeps heavy-tailed
  // draws from stretching a replay over 2^40 ticks.
  Duration interval_cap = 0;

  // Fraction of timers cancelled before expiry (stop tick uniform over the timer's
  // life). 0.0 = every timer expires (rate-control style); ~1.0 = almost every timer
  // is stopped (retransmission style, "if failures are infrequent these timers
  // rarely expire").
  double stop_fraction = 0.0;

  // Number of START_TIMER calls to issue after warmup, and to warm up with (warmup
  // lets the outstanding-count reach steady state before measurement starts).
  std::size_t warmup_starts = 0;
  std::size_t measured_starts = 10000;

  // Hard tick ceiling as a runaway guard; 0 derives a generous default.
  Tick max_ticks = 0;
};

// One expiry observation, in dispatch order.
struct ExpiryEvent {
  Tick tick = 0;
  RequestId request_id = 0;
  friend bool operator==(const ExpiryEvent&, const ExpiryEvent&) = default;
  friend auto operator<=>(const ExpiryEvent&, const ExpiryEvent&) = default;
};

struct WorkloadResult {
  std::string scheme_name;

  // Counts.
  std::size_t starts_issued = 0;
  std::size_t starts_rejected = 0;  // out-of-range / capacity errors from the scheme
  std::size_t stops_issued = 0;
  std::size_t expiries = 0;
  Tick ticks_run = 0;

  // Measured-phase statistics. The measurement window opens at the first
  // post-warmup start and closes at the last start issued: the drain tail (after
  // arrivals cease) is excluded so steady-state averages aren't diluted.
  metrics::RunningStats start_comparisons;   // key comparisons per StartTimer call
  metrics::RunningStats start_ops;           // comparisons + link ops per call
  metrics::RunningStats tick_work;           // OpCounts::TickWork delta per tick
  metrics::Histogram tick_work_hist;         // same, full distribution
  metrics::RunningStats outstanding;         // sampled before each tick
  metrics::OpCounts measured_ops;            // aggregate op-count delta over the phase

  double wall_seconds = 0.0;

  // Expiry trace (measured + warmup; dispatch order). For cross-scheme comparison,
  // sort events within each tick (dispatch order within a tick is scheme-specific —
  // the paper: "Timer modules need not meet this [FIFO] restriction").
  std::vector<ExpiryEvent> trace;
};

// Pre-draws the request stream for `spec` and replays it against `service`.
WorkloadResult Run(TimerService& service, const WorkloadSpec& spec);

// --- Restart-heavy TCP-retransmission workload ------------------------------
//
// Section 2's motivating client: a transport keeps one retransmission timer per
// connection, restarts it on every ACK, and almost never lets it expire ("if
// failures are infrequent these timers rarely expire"). This generator models
// exactly that shape — `connections` live timers, each restarted to a fresh RTO
// whenever a simulated ACK arrives, expiring (a "retransmission") only when the
// ACK stream goes quiet for a full RTO — so the dominant operation is
// RestartTimer, not StartTimer/StopTimer.
//
// Each tick, each connection independently receives an ACK with probability
// `ack_probability`; a connection's loss (= expiry) probability per RTO window
// is therefore (1 - ack_probability)^rto, which makes the ACK/loss ratio
// directly tunable: ack_probability 1/8 with rto 64 loses ~0.02% of windows,
// 1/32 loses ~13%. The ACK draw consumes exactly one RNG bool per
// (tick, connection) pair regardless of timer state, so the request stream
// depends only on the spec and two exact-expiry schemes given the same spec see
// byte-identical call sequences.
struct RetransmitSpec {
  std::uint64_t seed = 1;

  std::size_t connections = 1024;  // one retransmission timer each
  Duration rto = 64;               // retransmission timeout, in ticks
  double ack_probability = 0.125;  // per connection, per tick
  Tick ticks = 4096;               // simulated clock horizon

  // true: ACKs relink in place via RestartTimer (the handle survives).
  // false: ACKs run the pre-RestartTimer fallback, StopTimer + StartTimer
  // (fresh handle every ACK) — the baseline bench_restart compares against.
  bool use_restart = true;
};

struct RetransmitResult {
  std::string scheme_name;

  std::size_t acks = 0;             // ACK events processed (one relink each)
  std::size_t restarts_issued = 0;  // in-place RestartTimer calls (use_restart)
  std::size_t stop_start_pairs = 0; // fallback relinks (use_restart == false)
  std::size_t retransmissions = 0;  // expiries: the ACK stream went quiet
  Tick ticks_run = 0;

  double wall_seconds = 0.0;
  metrics::OpCounts ops;  // op-count delta over the whole run
};

// Replays the retransmission workload against `service`. Every connection's
// timer is live for the entire run (expiry immediately re-arms it after the
// tick), so outstanding() stays pinned at `connections`. Requires a service
// whose span covers `rto`.
RetransmitResult RunRetransmit(TimerService& service, const RetransmitSpec& spec);

// Normalizes a trace for cross-scheme equality: sorted by (tick, request_id).
std::vector<ExpiryEvent> NormalizedTrace(const std::vector<ExpiryEvent>& trace);

// The trace the spec *predicts* assuming exact-expiry semantics (Schemes 1-6 and
// Scheme 7 with full migration) and no rejected starts: every unstopped timer fires
// at start + interval. Returned normalized and truncated to the same tick horizon
// Run() uses, so it is directly comparable with NormalizedTrace(result.trace).
std::vector<ExpiryEvent> PredictedTrace(const WorkloadSpec& spec);

}  // namespace twheel::workload

#endif  // TWHEEL_SRC_WORKLOAD_WORKLOAD_H_
