#include "src/workload/workload.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "src/base/assert.h"

namespace twheel::workload {
namespace {

// One pre-drawn START_TIMER request. request_id == index in the script.
struct StartReq {
  Tick start_tick = 0;
  Duration interval = 0;
  Tick stop_tick = 0;  // meaningful only when `stopped`
  bool stopped = false;
};

struct Script {
  std::vector<StartReq> requests;
  Tick horizon = 0;  // last tick the replay will run through
};

std::unique_ptr<rng::IntervalDistribution> MakeIntervals(const WorkloadSpec& spec) {
  switch (spec.intervals) {
    case IntervalKind::kConstant:
      return std::make_unique<rng::ConstantInterval>(spec.interval_lo);
    case IntervalKind::kUniform:
      return std::make_unique<rng::UniformInterval>(spec.interval_lo, spec.interval_hi);
    case IntervalKind::kExponential:
      return std::make_unique<rng::ExponentialInterval>(spec.interval_mean);
    case IntervalKind::kPareto:
      return std::make_unique<rng::ParetoInterval>(spec.pareto_alpha, spec.interval_lo);
    case IntervalKind::kGeometric:
      return std::make_unique<rng::GeometricInterval>(1.0 / spec.interval_mean);
  }
  TWHEEL_ASSERT_MSG(false, "unknown IntervalKind");
  return nullptr;
}

std::unique_ptr<rng::ArrivalProcess> MakeArrivals(const WorkloadSpec& spec) {
  switch (spec.arrivals) {
    case ArrivalKind::kPoisson:
      return std::make_unique<rng::PoissonArrivals>(spec.arrival_rate);
    case ArrivalKind::kPeriodic:
      return std::make_unique<rng::PeriodicArrivals>(spec.arrival_gap);
  }
  TWHEEL_ASSERT_MSG(false, "unknown ArrivalKind");
  return nullptr;
}

// Draw the full request stream. Depends only on the spec (not on any scheme), so
// every service replaying the script sees identical calls.
Script BuildScript(const WorkloadSpec& spec) {
  rng::Xoshiro256 gen(spec.seed);
  auto intervals = MakeIntervals(spec);
  auto arrivals = MakeArrivals(spec);

  Script script;
  const std::size_t total = spec.warmup_starts + spec.measured_starts;
  script.requests.reserve(total);

  Tick t = 0;
  Tick last_event = 0;
  for (std::size_t i = 0; i < total; ++i) {
    t += arrivals->NextGap(gen);
    StartReq req;
    req.start_tick = t;
    req.interval = intervals->Draw(gen);
    if (spec.interval_cap != 0 && req.interval > spec.interval_cap) {
      req.interval = spec.interval_cap;
    }
    if (spec.stop_fraction > 0.0 && gen.NextBool(spec.stop_fraction)) {
      req.stopped = true;
      // Uniform over the timer's life: a stop at tick s (with now == s) cancels any
      // expiry at s+1 or later, so s in [start, start+interval-1] always precedes
      // the expiry.
      req.stop_tick = req.start_tick + gen.NextBounded(req.interval);
    }
    Tick resolution = req.stopped ? req.stop_tick : req.start_tick + req.interval;
    last_event = std::max(last_event, resolution);
    script.requests.push_back(req);
  }

  script.horizon = last_event;
  if (spec.max_ticks != 0) {
    script.horizon = std::min(script.horizon, spec.max_ticks);
  }
  return script;
}

}  // namespace

WorkloadResult Run(TimerService& service, const WorkloadSpec& spec) {
  const Script script = BuildScript(spec);

  WorkloadResult result;
  result.scheme_name = std::string(service.name());

  std::vector<TimerHandle> handles(script.requests.size(), kInvalidHandle);

  // Group stop actions by tick for O(1) lookup during the replay.
  std::map<Tick, std::vector<std::size_t>> stops_by_tick;
  for (std::size_t i = 0; i < script.requests.size(); ++i) {
    if (script.requests[i].stopped) {
      stops_by_tick[script.requests[i].stop_tick].push_back(i);
    }
  }

  service.set_expiry_handler([&result](RequestId id, Tick when) {
    result.trace.push_back(ExpiryEvent{when, id});
    ++result.expiries;
  });

  bool measuring = spec.warmup_starts == 0;
  bool measurement_closed = false;

  auto wall_start = std::chrono::steady_clock::now();

  std::size_t next_start = 0;
  auto stop_cursor = stops_by_tick.begin();
  metrics::OpCounts phase_baseline = service.counts();

  // Iterate now == t over [0, horizon): the final bookkeeping call advances the
  // clock to exactly `horizon`, so expiries at ticks <= horizon fire and nothing
  // later does — matching PredictedTrace's cutoff.
  for (Tick t = 0; t < script.horizon; ++t) {
    // now == t here. 1) Issue starts scheduled for t.
    while (next_start < script.requests.size() &&
           script.requests[next_start].start_tick == t) {
      const StartReq& req = script.requests[next_start];
      if (!measuring && next_start >= spec.warmup_starts) {
        measuring = true;
        phase_baseline = service.counts();
      }
      const metrics::OpCounts before = service.counts();
      StartResult sr = service.StartTimer(req.interval, next_start);
      if (sr.has_value()) {
        handles[next_start] = sr.value();
      } else {
        ++result.starts_rejected;
      }
      if (measuring) {
        const metrics::OpCounts delta = service.counts() - before;
        result.start_comparisons.Add(static_cast<double>(delta.comparisons));
        result.start_ops.Add(static_cast<double>(delta.comparisons + delta.insert_link_ops));
      }
      ++result.starts_issued;
      ++next_start;
    }

    // Close the measurement window at the last start: the drain tail that follows
    // (arrivals stopped, population decaying to zero) is not steady state and would
    // bias outstanding/tick-work statistics downward.
    if (measuring && next_start == script.requests.size()) {
      result.measured_ops = service.counts() - phase_baseline;
      measuring = false;
      measurement_closed = true;
    }

    // 2) Execute stops scheduled for t (still now == t; cancels expiries > t).
    if (stop_cursor != stops_by_tick.end() && stop_cursor->first == t) {
      for (std::size_t idx : stop_cursor->second) {
        if (handles[idx].valid()) {
          TimerError err = service.StopTimer(handles[idx]);
          TWHEEL_ASSERT_MSG(err == TimerError::kOk, "scripted stop hit a dead timer");
          handles[idx] = kInvalidHandle;
          ++result.stops_issued;
        }
      }
      ++stop_cursor;
    }

    // 3) Advance the clock: expiries due at t+1 fire inside this call.
    if (measuring) {
      result.outstanding.Add(static_cast<double>(service.outstanding()));
    }
    const metrics::OpCounts before_tick = service.counts();
    service.PerTickBookkeeping();
    ++result.ticks_run;
    if (measuring) {
      const std::uint64_t work = (service.counts() - before_tick).TickWork();
      result.tick_work.Add(static_cast<double>(work));
      result.tick_work_hist.Add(work);
    }
  }

  auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  if (!measurement_closed) {  // horizon truncation ended the replay mid-stream
    result.measured_ops = service.counts() - phase_baseline;
  }
  return result;
}

RetransmitResult RunRetransmit(TimerService& service, const RetransmitSpec& spec) {
  TWHEEL_ASSERT_MSG(spec.rto > 0, "RetransmitSpec::rto must be positive");
  rng::Xoshiro256 gen(spec.seed);

  RetransmitResult result;
  result.scheme_name = std::string(service.name());

  // Expiries are only *recorded* inside the handler and re-armed after the
  // bookkeeping call returns: no in-handler mutation, so the workload runs on
  // every scheme including LockedService.
  std::vector<RequestId> expired;
  service.set_expiry_handler([&expired](RequestId id, Tick /*when*/) {
    expired.push_back(id);
  });

  std::vector<TimerHandle> handles(spec.connections, kInvalidHandle);
  for (std::size_t c = 0; c < spec.connections; ++c) {
    StartResult sr = service.StartTimer(spec.rto, c);
    TWHEEL_ASSERT_MSG(sr.has_value(), "retransmit preload rejected");
    handles[c] = sr.value();
  }

  const metrics::OpCounts baseline = service.counts();
  auto wall_start = std::chrono::steady_clock::now();

  for (Tick t = 0; t < spec.ticks; ++t) {
    // ACK arrivals for this tick. The draw is unconditional — one bool per
    // connection — so the RNG stream is identical across schemes even when
    // their expiry timing differs.
    for (std::size_t c = 0; c < spec.connections; ++c) {
      if (!gen.NextBool(spec.ack_probability)) {
        continue;
      }
      ++result.acks;
      if (spec.use_restart) {
        TimerError err = service.RestartTimer(handles[c], spec.rto);
        TWHEEL_ASSERT_MSG(err == TimerError::kOk, "ACK restart hit a dead timer");
        ++result.restarts_issued;
      } else {
        TimerError err = service.StopTimer(handles[c]);
        TWHEEL_ASSERT_MSG(err == TimerError::kOk, "ACK stop hit a dead timer");
        StartResult sr = service.StartTimer(spec.rto, c);
        TWHEEL_ASSERT_MSG(sr.has_value(), "ACK re-start rejected");
        handles[c] = sr.value();
        ++result.stop_start_pairs;
      }
    }

    service.PerTickBookkeeping();
    ++result.ticks_run;

    // Retransmit: a quiet connection's RTO fired; arm the next attempt.
    for (RequestId id : expired) {
      ++result.retransmissions;
      StartResult sr = service.StartTimer(spec.rto, id);
      TWHEEL_ASSERT_MSG(sr.has_value(), "retransmission re-arm rejected");
      handles[static_cast<std::size_t>(id)] = sr.value();
    }
    expired.clear();
  }

  auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.ops = service.counts() - baseline;
  return result;
}

std::vector<ExpiryEvent> NormalizedTrace(const std::vector<ExpiryEvent>& trace) {
  std::vector<ExpiryEvent> sorted = trace;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<ExpiryEvent> PredictedTrace(const WorkloadSpec& spec) {
  const Script script = BuildScript(spec);
  std::vector<ExpiryEvent> events;
  for (std::size_t i = 0; i < script.requests.size(); ++i) {
    const StartReq& req = script.requests[i];
    if (req.stopped) {
      continue;
    }
    Tick expiry = req.start_tick + req.interval;
    if (expiry > script.horizon) {
      continue;  // beyond the replay horizon: Run() never reaches it either
    }
    events.push_back(ExpiryEvent{expiry, i});
  }
  return NormalizedTrace(events);
}

}  // namespace twheel::workload
