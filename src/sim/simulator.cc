#include "src/sim/simulator.h"

#include "src/base/assert.h"

namespace twheel::sim {
namespace {

RequestId PackRef(SlabRef ref) {
  return (static_cast<RequestId>(ref.generation) << 32) | ref.slot;
}

SlabRef UnpackRef(RequestId id) {
  return SlabRef{static_cast<std::uint32_t>(id & 0xffffffffu),
                 static_cast<std::uint32_t>(id >> 32)};
}

}  // namespace

Simulator::Simulator(std::unique_ptr<TimerService> service)
    : service_(std::move(service)) {
  TWHEEL_ASSERT(service_ != nullptr);
  service_->set_expiry_handler([this](RequestId id, Tick) {
    const SlabRef ref = UnpackRef(id);
    Entry* entry = entries_.Get(ref);
    TWHEEL_ASSERT_MSG(entry != nullptr, "expiry for unknown simulator event");
    if (entry->period == 0) {
      // One-shot: move the action out and release the entry *before* running it —
      // the action may itself schedule or cancel events (touching the arena).
      Action action = std::move(entry->action);
      entries_.Free(ref);
      action();
      return;
    }
    // Periodic: the service already re-armed the record in place before
    // dispatching (StartPeriodic's expiry-path relink — the handle and
    // generation survive, so the token still cancels future runs; no arena
    // allocation happens, so a full arena can no longer reject the re-arm
    // mid-dispatch). An earlier version re-armed here with StartTimer and
    // *aborted* when the service rejected it; the rare re-arm a service does
    // drop (OpCounts::periodic_drops) now just ends the series, leaving the
    // token cancellable. Invoke a copy in case the action cancels its own
    // token (freeing the entry, and with it the stored std::function,
    // mid-run).
    Action run = entry->action;
    run();
  });
}

EventToken Simulator::Schedule(Duration delay, Duration period, Action action) {
  auto [entry, ref] = entries_.Allocate();
  if (entry == nullptr) {
    return EventToken{};
  }
  entry->action = std::move(action);
  entry->period = period;
  StartResult result =
      period != 0
          ? service_->StartPeriodic(delay, PackRef(ref),
                                    TimerService::kRepeatForever)
          : service_->StartTimer(delay, PackRef(ref));
  if (!result.has_value()) {
    entries_.Free(ref);
    return EventToken{};
  }
  entry->handle = result.value();
  return EventToken{ref};
}

EventToken Simulator::After(Duration delay, Action action) {
  return Schedule(delay, /*period=*/0, std::move(action));
}

EventToken Simulator::Every(Duration period, Action action) {
  return Schedule(period, period, std::move(action));
}

bool Simulator::Cancel(EventToken token) {
  Entry* entry = entries_.Get(token.ref);
  if (entry == nullptr) {
    return false;  // already ran or already cancelled
  }
  const TimerError err = service_->StopTimer(entry->handle);
  if (entry->period == 0) {
    // One-shots keep the hard invariant: the expiry handler frees the entry
    // before running the action, so a live entry implies a live timer.
    TWHEEL_ASSERT_MSG(err == TimerError::kOk,
                      "simulator entry alive but timer dead");
  }
  // A periodic whose re-arm the service dropped (periodic_drops) has a dead
  // timer behind a live entry; cancelling it just reclaims the entry and
  // reports that nothing was still scheduled.
  entries_.Free(token.ref);
  return err == TimerError::kOk;
}

std::size_t Simulator::Step() { return service_->PerTickBookkeeping(); }

Tick Simulator::RunUntilIdle(Tick max_ticks) {
  Tick advanced = 0;
  while (pending() > 0 && advanced < max_ticks) {
    Step();
    ++advanced;
  }
  return advanced;
}

std::optional<Tick> Simulator::RunUntilIdleJumping(Tick max_ticks) {
  if (!service_->NextExpiryHint().has_value() && pending() > 0) {
    return std::nullopt;  // scheme cannot peek; caller should tick-step instead
  }
  Tick covered = 0;
  while (pending() > 0 && covered < max_ticks) {
    std::optional<Tick> next = service_->NextExpiryHint();
    TWHEEL_ASSERT_MSG(next.has_value(), "pending events but no expiry hint");
    // Jump the dead time, then execute the expiry tick itself.
    Tick gap = *next - service_->now();
    if (gap > 1) {
      Tick jump_to = *next - 1;
      if (covered + (jump_to - service_->now()) > max_ticks) {
        bool ok = service_->FastForward(service_->now() + (max_ticks - covered));
        TWHEEL_ASSERT(ok);
        return max_ticks;
      }
      covered += jump_to - service_->now();
      bool ok = service_->FastForward(jump_to);
      TWHEEL_ASSERT(ok);
    }
    Step();
    ++covered;
  }
  return covered;
}

}  // namespace twheel::sim
