// The conventional logic-simulation timing wheel (Section 4.2, Figure 7) — the
// TEGAS-2 / DECSIM mechanism the paper's Scheme 4 departs from.
//
// "The data structure into which timers are inserted is an array of lists, with a
// single overflow list for timers beyond the range of the array... The current time
// pointer is incremented modulo N. When it wraps to 0, the number of cycles is
// incremented, and the overflow list is checked; any elements due to occur in the
// current cycle are removed from the overflow list and inserted into the array of
// lists."
//
// The defect the paper identifies: "as time increases within a cycle and we travel
// down the array it becomes more likely that event records will be inserted in the
// overflow list" — the overflow list is unsorted and rescanned in full on every
// wheel rotation, so a far-future event is touched once per cycle (compare Scheme
// 6's per-bucket rounds, touched once per cycle but spread over all buckets; and
// Scheme 4, which simply refuses the situation). DECSIM's mitigation — "rotating the
// wheel half-way through the array" — is available as RotatePolicy::kHalfCycle.
//
// Implemented as a TimerService so the differential suite can verify it expires
// exactly, and the fig7-sim-wheel bench can expose the overflow-scan cost against
// Schemes 4 and 6. Overflow membership is observable via OverflowSizeSlow().

#ifndef TWHEEL_SRC_SIM_TEGAS_WHEEL_H_
#define TWHEEL_SRC_SIM_TEGAS_WHEEL_H_

#include <cstddef>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/core/timer_service.h"

namespace twheel::sim {

enum class RotatePolicy : std::uint8_t {
  kFullCycle,  // TEGAS-2: drain overflow only when the cursor wraps to 0
  kHalfCycle,  // DECSIM: drain twice per cycle, halving overflow residency
};

class TegasWheel final : public TimerServiceBase {
 public:
  explicit TegasWheel(std::size_t cycle_length,
                      RotatePolicy policy = RotatePolicy::kFullCycle,
                      std::size_t max_timers = 0);

  ~TegasWheel() override;

  StartResult StartTimer(Duration interval, RequestId request_id) final;
  TimerError StopTimer(TimerHandle handle) final;
  std::size_t PerTickBookkeeping() final;
  std::string_view name() const final {
    return policy_ == RotatePolicy::kFullCycle ? "tegas-wheel-full"
                                               : "tegas-wheel-half";
  }

  std::size_t cycle_length() const { return slots_.size(); }
  std::size_t OverflowSizeSlow() const { return overflow_.CountSlow(); }
  // Cumulative records moved out of the overflow list by rotations.
  std::uint64_t overflow_drains() const { return overflow_drains_; }
  // Cumulative overflow records *examined* by rotations (the rescan cost).
  std::uint64_t overflow_scans() const { return overflow_scans_; }

  // Fixed: the cycle array plus the single overflow list head. Per record: links
  // (16) + expiry (8) + cookie (8).
  SpaceProfile Space() const final {
    SpaceProfile profile;
    profile.fixed_bytes = (slots_.size() + 1) * sizeof(IntrusiveList<TimerRecord>);
    profile.essential_record_bytes = 32;
    return profile;
  }

 private:
  // Move overflow entries due before `horizon` into the array.
  void DrainOverflow(Tick horizon);

  RotatePolicy policy_;
  std::vector<IntrusiveList<TimerRecord>> slots_;
  IntrusiveList<TimerRecord> overflow_;
  Tick covered_until_ = 0;  // expiries at or before this tick live in the array
  std::uint64_t overflow_drains_ = 0;
  std::uint64_t overflow_scans_ = 0;
};

}  // namespace twheel::sim

#endif  // TWHEEL_SRC_SIM_TEGAS_WHEEL_H_
