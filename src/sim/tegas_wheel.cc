#include "src/sim/tegas_wheel.h"

#include "src/base/assert.h"

namespace twheel::sim {

TegasWheel::TegasWheel(std::size_t cycle_length, RotatePolicy policy,
                       std::size_t max_timers)
    : TimerServiceBase(max_timers), policy_(policy), slots_(cycle_length) {
  TWHEEL_ASSERT_MSG(cycle_length >= 2, "wheel needs at least two slots");
  if (policy_ == RotatePolicy::kHalfCycle) {
    TWHEEL_ASSERT_MSG(cycle_length % 2 == 0, "half-cycle rotation needs an even wheel");
  }
  covered_until_ = cycle_length - 1;  // cycle 0 is in the array from the start
}

TegasWheel::~TegasWheel() {
  for (auto& slot : slots_) {
    while (TimerRecord* rec = slot.front()) {
      rec->Unlink();
      ReleaseRecord(rec);
    }
  }
  while (TimerRecord* rec = overflow_.front()) {
    rec->Unlink();
    ReleaseRecord(rec);
  }
}

StartResult TegasWheel::StartTimer(Duration interval, RequestId request_id) {
  ++counts_.start_calls;
  if (interval == 0) {
    return TimerError::kZeroInterval;
  }
  TimerRecord* rec = AllocateRecord(interval, request_id);
  if (rec == nullptr) {
    return TimerError::kNoCapacity;
  }
  if (rec->expiry_tick <= covered_until_) {
    slots_[rec->expiry_tick % slots_.size()].PushBack(rec);
  } else {
    // "Any event occurring beyond the current cycle is inserted into the overflow
    // list" — unsorted, rescanned at every rotation.
    overflow_.PushBack(rec);
  }
  ++counts_.insert_link_ops;
  return rec->self;
}

TimerError TegasWheel::StopTimer(TimerHandle handle) {
  ++counts_.stop_calls;
  TimerRecord* rec = Resolve(handle);
  if (rec == nullptr) {
    return TimerError::kNoSuchTimer;
  }
  rec->Unlink();  // works for slot and overflow membership alike
  ++counts_.delete_unlink_ops;
  ReleaseRecord(rec);
  return TimerError::kOk;
}

std::size_t TegasWheel::PerTickBookkeeping() {
  ++counts_.ticks;
  ++now_;
  const std::size_t n = slots_.size();
  const std::size_t rotation = policy_ == RotatePolicy::kFullCycle ? n : n / 2;
  if (now_ % rotation == 0) {
    covered_until_ = now_ + n - 1;
    DrainOverflow(covered_until_);
  }

  IntrusiveList<TimerRecord>& slot = slots_[now_ % n];
  if (slot.empty()) {
    ++counts_.empty_slot_checks;
    return 0;
  }
  std::size_t expired = 0;
  while (TimerRecord* rec = slot.front()) {
    TWHEEL_ASSERT(rec->expiry_tick == now_);
    rec->Unlink();
    Expire(rec);
    ++expired;
  }
  return expired;
}

void TegasWheel::DrainOverflow(Tick horizon) {
  TimerRecord* rec = overflow_.front();
  while (rec != nullptr) {
    TimerRecord* next = overflow_.Next(rec);
    // Every overflow resident is examined on every rotation — the cost the paper's
    // Scheme 4/6 per-bucket designs avoid.
    ++overflow_scans_;
    ++counts_.decrement_visits;
    if (rec->expiry_tick <= horizon) {
      rec->Unlink();
      slots_[rec->expiry_tick % slots_.size()].PushBack(rec);
      ++overflow_drains_;
      ++counts_.migrations;
    }
    rec = next;
  }
}

}  // namespace twheel::sim
