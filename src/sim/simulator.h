// Discrete-event simulation on top of a timer facility (Section 4).
//
// The paper's Section 4 argues the equivalence both ways: "time flow algorithms used
// for digital simulation can be used to implement timer algorithms; conversely,
// timer algorithms can be used to implement time flow mechanisms in simulations."
// This Simulator is the converse direction: a general event scheduler whose pending-
// event set is any TimerService — hand it a HierarchicalWheel and you have a
// TEGAS-style tick-stepped simulator; hand it a SortedListTimers and you have the
// event list of a GPSS/SIMULA-style simulator.
//
// Scheduled actions are arbitrary callbacks; the Simulator owns the dispatch table
// (slab-allocated, generation-checked tokens mirroring TimerHandle semantics) and
// multiplexes them over the service's single ExpiryHandler via RequestId.

#ifndef TWHEEL_SRC_SIM_SIMULATOR_H_
#define TWHEEL_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "src/base/slab_arena.h"
#include "src/base/types.h"
#include "src/core/timer_service.h"

namespace twheel::sim {

// Opaque token for a scheduled (cancellable) event.
struct EventToken {
  SlabRef ref;
  constexpr bool valid() const { return ref.valid(); }
};

class Simulator {
 public:
  using Action = std::function<void()>;

  // The simulator assumes exclusive ownership of the service (it installs its own
  // expiry handler).
  explicit Simulator(std::unique_ptr<TimerService> service);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Schedule `action` to run `delay` ticks from now (delay >= 1). Actions scheduled
  // for the same tick run in scheme-dependent order, which Section 4.2 notes is
  // acceptable for timer-driven systems. Returns an invalid token if the underlying
  // service rejects the interval (range/capacity).
  EventToken After(Duration delay, Action action);

  // Schedule `action` to run every `period` ticks (first run one period from now),
  // until cancelled. The action may cancel its own token. Built on the service's
  // StartPeriodic: re-arming happens on the service's expiry path as an in-place,
  // allocation-free relink, phase-stable — the k-th run lands exactly at
  // now + k*period — and the token stays valid across runs. Returns an invalid
  // token if the service rejects the interval (range/capacity) or does not
  // support periodic registration (TimerError::kNotSupported).
  EventToken Every(Duration period, Action action);

  // Cancel a pending event. Returns false if it already ran (one-shots) or was
  // cancelled. Cancelling a periodic event stops all future runs.
  bool Cancel(EventToken token);

  // Advance one tick, running due actions. Returns the number of actions run.
  std::size_t Step();

  // Run until no events remain or `max_ticks` more ticks have elapsed. Returns
  // ticks actually advanced. Tick-stepped time flow — Section 4's method 2, the
  // TEGAS/DECSIM style ("the program ... increments the clock variable by c until
  // it finds any outstanding events").
  Tick RunUntilIdle(Tick max_ticks = ~Tick{0});

  // Event-jumping time flow — Section 4's method 1, the GPSS/SIMULA style ("the
  // earliest event is immediately retrieved ... and the clock jumps to the time of
  // this event"). Requires a service with the NextExpiryHint/FastForward capability
  // (sorted list, heap, BST — and, via their occupancy bitmaps, all five wheel
  // schemes); returns the ticks covered (including jumped ones), or nullopt if the
  // service cannot jump (fall back to RunUntilIdle). Conservative hints (e.g. the
  // hierarchical wheel's kSingleStep lower bound) are fine: a step that fires
  // nothing just re-queries the hint.
  std::optional<Tick> RunUntilIdleJumping(Tick max_ticks = ~Tick{0});

  Tick now() const { return service_->now(); }
  std::size_t pending() const { return service_->outstanding(); }
  const TimerService& service() const { return *service_; }

 private:
  struct Entry {
    Action action;
    TimerHandle handle;   // for cancellation
    Duration period = 0;  // 0 = one-shot; otherwise the Every() re-arm interval
  };

  EventToken Schedule(Duration delay, Duration period, Action action);

  std::unique_ptr<TimerService> service_;
  SlabArena<Entry> entries_;
};

}  // namespace twheel::sim

#endif  // TWHEEL_SRC_SIM_SIMULATOR_H_
