// Lightweight always-on assertion macros for the twheel library.
//
// The library is exception-free (Google style); invariant violations are programming
// errors and abort with a diagnostic. TWHEEL_ASSERT stays enabled in release builds
// because the checks guard O(1) pointer surgery where silent corruption would be far
// more expensive to debug than the branch is to execute.

#ifndef TWHEEL_SRC_BASE_ASSERT_H_
#define TWHEEL_SRC_BASE_ASSERT_H_

#include <cstdio>
#include <cstdlib>

#define TWHEEL_ASSERT(cond)                                                              \
  do {                                                                                   \
    if (!(cond)) [[unlikely]] {                                                          \
      std::fprintf(stderr, "twheel assertion failed: %s at %s:%d\n", #cond, __FILE__,    \
                   __LINE__);                                                            \
      std::abort();                                                                      \
    }                                                                                    \
  } while (false)

#define TWHEEL_ASSERT_MSG(cond, msg)                                                     \
  do {                                                                                   \
    if (!(cond)) [[unlikely]] {                                                          \
      std::fprintf(stderr, "twheel assertion failed: %s (%s) at %s:%d\n", #cond, (msg),  \
                   __FILE__, __LINE__);                                                  \
      std::abort();                                                                      \
    }                                                                                    \
  } while (false)

#endif  // TWHEEL_SRC_BASE_ASSERT_H_
