// Power-of-two arithmetic helpers.
//
// The paper recommends power-of-two wheel sizes so the hash "Timer Value mod
// TableSize" is a single AND instruction (Section 6.1.2): "Obtaining the remainder
// after dividing by a power of 2 is cheap (AND instruction), and consequently
// recommended."

#ifndef TWHEEL_SRC_BASE_BITS_H_
#define TWHEEL_SRC_BASE_BITS_H_

#include <bit>
#include <cstdint>

namespace twheel {

constexpr bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Smallest power of two >= v (v must be >= 1 and <= 2^63).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// floor(log2(v)) for v >= 1.
constexpr std::uint32_t Log2Floor(std::uint64_t v) {
  std::uint32_t r = 0;
  while (v >>= 1) {
    ++r;
  }
  return r;
}

// Index of the lowest set bit; v must be non-zero. Single TZCNT/CTZ instruction —
// the engine of the occupancy-bitmap scans in base/bitmap.h.
constexpr std::uint32_t CountTrailingZeros(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::countr_zero(v));
}

// Number of set bits. Single POPCNT instruction.
constexpr std::uint32_t PopCount(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::popcount(v));
}

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_BITS_H_
