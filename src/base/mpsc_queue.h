// Bounded lock-free multi-producer / single-consumer ring.
//
// The submission side of the deferred-registration runtime (Appendix A.2 taken to
// its conclusion): producers publish fixed-size commands with one CAS on a shared
// ticket counter plus one release store, and the single consumer — the tick
// driver, already serialized per shard by the shard mutex — drains in ticket
// order with no atomic RMW at all. This is the classic bounded sequence-number
// ring (Vyukov), restricted to one consumer:
//
//   * every cell carries a sequence number; `sequence == ticket` means the cell
//     is free for the producer holding that ticket, `sequence == ticket + 1`
//     means it holds that ticket's value for the consumer;
//   * a producer claims a ticket by CAS on `enqueue_pos_`. The CAS only fails
//     when another producer claimed the same ticket first, i.e. every retry
//     implies system-wide progress (lock-free; wait-free in the absence of
//     producer contention). Retries are reported to the caller so the service
//     can account them (metrics::OpCounts::submit_retries);
//   * "full" is detected *before* claiming a ticket, so a rejected push
//     perturbs nothing — the reject backpressure policy is free.
//
// FIFO is by ticket order: if push A completes before push B begins (e.g. B
// holds a handle A returned), A drains before B — the property the submission
// layer's start-before-cancel reasoning leans on. The consumer stops at the
// first unpublished cell, so a claimed-but-unwritten ticket simply ends the
// drain early; the gap is consumed on the next drain.

#ifndef TWHEEL_SRC_BASE_MPSC_QUEUE_H_
#define TWHEEL_SRC_BASE_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/base/assert.h"
#include "src/base/bits.h"

namespace twheel {

template <typename T>
class MpscRing {
 public:
  // `capacity` must be a power of two >= 2 (index masking is an AND, matching
  // the paper's table-size recommendation).
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    TWHEEL_ASSERT_MSG(IsPowerOfTwo(capacity) && capacity >= 2,
                      "ring capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Multi-producer push. Returns false when the ring is full (the caller owns
  // the backpressure policy: reject upward or spin for the consumer). When
  // `retries` is non-null it is *incremented* by the number of CAS attempts
  // that lost to another producer.
  bool TryPush(const T& value, std::uint64_t* retries = nullptr) {
    std::uint64_t ticket;
    if (!TryReserve(&ticket, retries)) {
      return false;
    }
    Publish(ticket, value);
    return true;
  }

  // First half of a two-phase push: claim a ticket (and its cell) without
  // publishing a value. The consumer stops at the first unpublished cell, so
  // nothing at or after the reserved ticket can drain until Publish — which
  // lets a producer interpose a commit action between the two halves and be
  // certain the consumer cannot observe the command before the commit's
  // outcome is decided (see ShardSubmitQueue::SubmitRestart). A reserved
  // ticket MUST be published eventually (there is no unreserve); publish a
  // caller-defined no-op value to abandon the slot. Full-detection and retry
  // accounting match TryPush.
  bool TryReserve(std::uint64_t* ticket, std::uint64_t* retries = nullptr) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell* cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *ticket = pos;
          return true;
        }
        if (retries != nullptr) {
          ++*retries;
        }
        // `pos` was reloaded by the failed CAS.
      } else if (dif < 0) {
        // The cell still holds a value the consumer has not drained: full.
        return false;
      } else {
        // Another producer advanced past us; chase the shared counter.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Second half of a two-phase push: store the value into the reserved cell
  // and make it visible to the consumer.
  void Publish(std::uint64_t ticket, const T& value) {
    Cell& cell = cells_[ticket & mask_];
    cell.value = value;
    cell.sequence.store(ticket + 1, std::memory_order_release);
  }

  // Single-consumer drain, in ticket order, of at most `limit` published
  // values. Callers must serialize drains externally (the shard mutex). Stops
  // early at the first unpublished cell. When `emptied` is non-null it is set
  // to true iff the drain ended because nothing further was published (rather
  // than because `limit` was reached) — the submission layer uses this to
  // decide whether its pending-deadline hint may be reset.
  template <typename Fn>
  std::size_t Drain(std::size_t limit, Fn&& fn, bool* emptied = nullptr) {
    std::size_t drained = 0;
    if (emptied != nullptr) {
      *emptied = false;
    }
    while (drained < limit) {
      Cell& cell = cells_[dequeue_pos_ & mask_];
      const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      if (seq != dequeue_pos_ + 1) {
        // Empty, or the ticket holder has not published yet; either way the
        // FIFO cut ends here.
        if (emptied != nullptr) {
          *emptied = true;
        }
        return drained;
      }
      T value = std::move(cell.value);
      // Recycle the cell for the producer one lap ahead.
      cell.sequence.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
      ++dequeue_pos_;
      ++drained;
      fn(std::as_const(value));
    }
    return drained;
  }

  // Consumer-side view (racy if called from a producer): true when the next
  // cell in ticket order holds no published value.
  bool EmptyFromConsumer() const {
    const Cell& cell = cells_[dequeue_pos_ & mask_];
    return cell.sequence.load(std::memory_order_acquire) != dequeue_pos_ + 1;
  }

  static std::size_t BytesFor(std::size_t capacity) {
    return capacity * sizeof(Cell);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> sequence;
    T value;
  };

  const std::uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers share the ticket counter; the consumer's cursor is plain because
  // drains are externally serialized. Separate cache lines keep producer CAS
  // traffic off the consumer's cursor.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::uint64_t dequeue_pos_{0};
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_MPSC_QUEUE_H_
