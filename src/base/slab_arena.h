// Chunked slab arena with generational references.
//
// Timer records are linked into intrusive lists, so their addresses must be stable
// for their whole lifetime: the arena allocates fixed-size chunks and never moves or
// reallocates constructed objects. Freed slots go on a LIFO free list and are reused.
//
// Each slot carries a generation counter, bumped on every Free. A Ref is
// (slot, generation); resolving a Ref whose generation no longer matches yields
// nullptr. This is what makes the public TimerHandle safe: stopping a timer that
// already expired (and whose record was recycled for a new timer) is detected rather
// than corrupting the new timer. The paper notes simulation packages tolerate lazy
// "mark cancelled" semantics but a timer module cannot (Section 4.2) — eager free
// plus generations gives immediate reclamation *and* stale-handle safety.

#ifndef TWHEEL_SRC_BASE_SLAB_ARENA_H_
#define TWHEEL_SRC_BASE_SLAB_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/assert.h"

namespace twheel {

// Reference to an arena slot; see TimerHandle for the public mirror of this type.
struct SlabRef {
  std::uint32_t slot = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t generation = 0;

  constexpr bool valid() const { return slot != std::numeric_limits<std::uint32_t>::max(); }
  friend constexpr bool operator==(const SlabRef&, const SlabRef&) = default;
};

template <typename T>
class SlabArena {
 public:
  // `max_slots` bounds total capacity; 0 means unbounded (grow by chunks on demand).
  explicit SlabArena(std::size_t max_slots = 0) : max_slots_(max_slots) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  ~SlabArena() {
    // Destroy any objects the owner leaked; the arena owns storage unconditionally.
    for (std::uint32_t s = 0; s < meta_.size(); ++s) {
      if (meta_[s].live) {
        SlotPtr(s)->~T();
      }
    }
  }

  // Construct a T in a fresh or recycled slot. Returns {nullptr, invalid} when the
  // arena is at its configured capacity.
  template <typename... Args>
  std::pair<T*, SlabRef> Allocate(Args&&... args) {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = meta_[slot].next_free;
    } else {
      if (max_slots_ != 0 && meta_.size() >= max_slots_) {
        return {nullptr, SlabRef{}};
      }
      slot = static_cast<std::uint32_t>(meta_.size());
      if (slot % kChunkSize == 0) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      meta_.push_back(Meta{});
    }
    Meta& m = meta_[slot];
    m.live = true;
    T* obj = new (SlotPtr(slot)) T(std::forward<Args>(args)...);
    ++live_;
    return {obj, SlabRef{slot, m.generation}};
  }

  // Destroy the object named by `ref` and recycle its slot. The ref must be live.
  void Free(SlabRef ref) {
    TWHEEL_ASSERT(ref.slot < meta_.size());
    Meta& m = meta_[ref.slot];
    TWHEEL_ASSERT_MSG(m.live && m.generation == ref.generation, "freeing a stale SlabRef");
    SlotPtr(ref.slot)->~T();
    m.live = false;
    ++m.generation;  // Invalidate all outstanding refs to this slot.
    m.next_free = free_head_;
    free_head_ = ref.slot;
    --live_;
  }

  // Resolve a ref to its object; nullptr when the ref is stale or never valid.
  T* Get(SlabRef ref) const {
    if (!ref.valid() || ref.slot >= meta_.size()) {
      return nullptr;
    }
    const Meta& m = meta_[ref.slot];
    if (!m.live || m.generation != ref.generation) {
      return nullptr;
    }
    return SlotPtr(ref.slot);
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return max_slots_; }

 private:
  static constexpr std::size_t kChunkSize = 1024;
  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

  struct Meta {
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNone;
    bool live = false;
  };

  struct Chunk {
    alignas(T) unsigned char bytes[kChunkSize * sizeof(T)];
  };

  T* SlotPtr(std::uint32_t slot) const {
    Chunk& c = *chunks_[slot / kChunkSize];
    return reinterpret_cast<T*>(c.bytes + (slot % kChunkSize) * sizeof(T));
  }

  std::size_t max_slots_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = kNone;
  std::size_t live_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_SLAB_ARENA_H_
