// Chunked slab arenas with generational references.
//
// Timer records are linked into intrusive lists, so their addresses must be stable
// for their whole lifetime: the arenas allocate fixed-size chunks and never move or
// reallocate constructed objects. Freed slots go on a LIFO free list and are reused.
//
// Each slot carries a generation counter, bumped on every Free. A Ref is
// (slot, generation); resolving a Ref whose generation no longer matches yields
// nullptr. This is what makes the public TimerHandle safe: stopping a timer that
// already expired (and whose record was recycled for a new timer) is detected rather
// than corrupting the new timer. The paper notes simulation packages tolerate lazy
// "mark cancelled" semantics but a timer module cannot (Section 4.2) — eager free
// plus generations gives immediate reclamation *and* stale-handle safety.
//
// Two arenas share that machinery:
//   SlabArena<T>             one object per slot.
//   PairedSlabArena<H, C>    a hot/cold pair per slot: H and C live in separate,
//                            parallel slabs (same slot index, same generation, one
//                            free list), so a hot-path scan streams densely packed
//                            H records while the rarely-touched C fields stay out
//                            of its cache footprint. See timer_record.h for the
//                            field-placement rule.
//
// Chunk storage is cache-line aligned. Arena instances are independent — a sharded
// owner gives each shard its own arena, so concurrent shards never interleave
// allocations in one cache line (no false sharing) and each grows on its own.

#ifndef TWHEEL_SRC_BASE_SLAB_ARENA_H_
#define TWHEEL_SRC_BASE_SLAB_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/assert.h"

namespace twheel {

// Alignment for arena chunk storage: at least the element's own alignment, and at
// least a cache line so distinct arenas (e.g. per-shard instances) never share one.
inline constexpr std::size_t kSlabCacheLine = 64;

// Reference to an arena slot; see TimerHandle for the public mirror of this type.
struct SlabRef {
  std::uint32_t slot = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t generation = 0;

  constexpr bool valid() const { return slot != std::numeric_limits<std::uint32_t>::max(); }
  friend constexpr bool operator==(const SlabRef&, const SlabRef&) = default;
};

template <typename T>
class SlabArena {
 public:
  // `max_slots` bounds total capacity; 0 means unbounded (grow by chunks on demand).
  explicit SlabArena(std::size_t max_slots = 0) : max_slots_(max_slots) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  ~SlabArena() {
    // Destroy any objects the owner leaked; the arena owns storage unconditionally.
    for (std::uint32_t s = 0; s < meta_.size(); ++s) {
      if (meta_[s].live) {
        SlotPtr(s)->~T();
      }
    }
  }

  // Construct a T in a fresh or recycled slot. Returns {nullptr, invalid} when the
  // arena is at its configured capacity.
  template <typename... Args>
  std::pair<T*, SlabRef> Allocate(Args&&... args) {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = meta_[slot].next_free;
    } else {
      if (max_slots_ != 0 && meta_.size() >= max_slots_) {
        return {nullptr, SlabRef{}};
      }
      slot = static_cast<std::uint32_t>(meta_.size());
      if (slot % kChunkSize == 0) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      meta_.push_back(Meta{});
    }
    Meta& m = meta_[slot];
    m.live = true;
    T* obj = new (SlotPtr(slot)) T(std::forward<Args>(args)...);
    ++live_;
    return {obj, SlabRef{slot, m.generation}};
  }

  // Destroy the object named by `ref` and recycle its slot. The ref must be live.
  void Free(SlabRef ref) {
    TWHEEL_ASSERT(ref.slot < meta_.size());
    Meta& m = meta_[ref.slot];
    TWHEEL_ASSERT_MSG(m.live && m.generation == ref.generation, "freeing a stale SlabRef");
    SlotPtr(ref.slot)->~T();
    m.live = false;
    ++m.generation;  // Invalidate all outstanding refs to this slot.
    m.next_free = free_head_;
    free_head_ = ref.slot;
    --live_;
  }

  // Resolve a ref to its object; nullptr when the ref is stale or never valid.
  T* Get(SlabRef ref) const {
    if (!ref.valid() || ref.slot >= meta_.size()) {
      return nullptr;
    }
    const Meta& m = meta_[ref.slot];
    if (!m.live || m.generation != ref.generation) {
      return nullptr;
    }
    return SlotPtr(ref.slot);
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return max_slots_; }

 private:
  static constexpr std::size_t kChunkSize = 1024;
  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

  struct Meta {
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNone;
    bool live = false;
  };

  struct Chunk {
    alignas(alignof(T) > kSlabCacheLine ? alignof(T) : kSlabCacheLine)
        unsigned char bytes[kChunkSize * sizeof(T)];
  };

  T* SlotPtr(std::uint32_t slot) const {
    Chunk& c = *chunks_[slot / kChunkSize];
    return reinterpret_cast<T*>(c.bytes + (slot % kChunkSize) * sizeof(T));
  }

  std::size_t max_slots_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = kNone;
  std::size_t live_ = 0;
};

// Hot/cold slab pair. One logical slot owns an H in the hot slab and a C in the
// cold slab at the same index, sharing one generation and one free list: Allocate
// constructs both, Free destroys both, and a stale ref misses both. Get resolves
// the hot record (the one structures link); ColdOf is the parallel-array hop for
// the slot's cold twin — valid exactly while the slot is live, no generation
// re-check needed by callers that already hold the live hot record.
template <typename Hot, typename Cold>
class PairedSlabArena {
 public:
  // `max_slots` bounds total capacity; 0 means unbounded (grow by chunks on demand).
  explicit PairedSlabArena(std::size_t max_slots = 0) : max_slots_(max_slots) {}

  PairedSlabArena(const PairedSlabArena&) = delete;
  PairedSlabArena& operator=(const PairedSlabArena&) = delete;

  ~PairedSlabArena() {
    // Destroy any pairs the owner leaked; the arena owns storage unconditionally.
    for (std::uint32_t s = 0; s < meta_.size(); ++s) {
      if (meta_[s].live) {
        HotPtr(s)->~Hot();
        ColdPtr(s)->~Cold();
      }
    }
  }

  // Construct a default H and C in a fresh or recycled slot. Returns
  // {nullptr, invalid} when the arena is at its configured capacity.
  std::pair<Hot*, SlabRef> Allocate() {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = meta_[slot].next_free;
    } else {
      if (max_slots_ != 0 && meta_.size() >= max_slots_) {
        return {nullptr, SlabRef{}};
      }
      slot = static_cast<std::uint32_t>(meta_.size());
      if (slot % kChunkSize == 0) {
        hot_chunks_.push_back(std::make_unique<HotChunk>());
        cold_chunks_.push_back(std::make_unique<ColdChunk>());
      }
      meta_.push_back(Meta{});
    }
    Meta& m = meta_[slot];
    m.live = true;
    Hot* hot = new (HotPtr(slot)) Hot();
    new (ColdPtr(slot)) Cold();
    ++live_;
    return {hot, SlabRef{slot, m.generation}};
  }

  // Destroy the pair named by `ref` and recycle its slot. The ref must be live.
  void Free(SlabRef ref) {
    TWHEEL_ASSERT(ref.slot < meta_.size());
    Meta& m = meta_[ref.slot];
    TWHEEL_ASSERT_MSG(m.live && m.generation == ref.generation, "freeing a stale SlabRef");
    HotPtr(ref.slot)->~Hot();
    ColdPtr(ref.slot)->~Cold();
    m.live = false;
    ++m.generation;  // Invalidate all outstanding refs to this slot.
    m.next_free = free_head_;
    free_head_ = ref.slot;
    --live_;
  }

  // Resolve a ref to its hot record; nullptr when the ref is stale or never valid.
  Hot* Get(SlabRef ref) const {
    if (!ref.valid() || ref.slot >= meta_.size()) {
      return nullptr;
    }
    const Meta& m = meta_[ref.slot];
    if (!m.live || m.generation != ref.generation) {
      return nullptr;
    }
    return HotPtr(ref.slot);
  }

  // The cold twin of a live slot. The caller vouches for liveness (it holds the
  // slot's hot record); asserts catch a stale index in debug builds.
  Cold* ColdOf(std::uint32_t slot) const {
    TWHEEL_ASSERT(slot < meta_.size());
    TWHEEL_ASSERT_MSG(meta_[slot].live, "ColdOf on a dead slot");
    return ColdPtr(slot);
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return max_slots_; }
  // Allocated slab bytes (both slabs, all chunks), for space accounting. Chunks
  // are never returned, so this is the high-water footprint of the record store.
  std::size_t slab_bytes() const {
    return hot_chunks_.size() * sizeof(HotChunk) +
           cold_chunks_.size() * sizeof(ColdChunk);
  }
  std::size_t hot_slab_bytes() const { return hot_chunks_.size() * sizeof(HotChunk); }
  std::size_t cold_slab_bytes() const { return cold_chunks_.size() * sizeof(ColdChunk); }

 private:
  static constexpr std::size_t kChunkSize = 1024;
  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

  struct Meta {
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNone;
    bool live = false;
  };

  struct HotChunk {
    alignas(alignof(Hot) > kSlabCacheLine ? alignof(Hot) : kSlabCacheLine)
        unsigned char bytes[kChunkSize * sizeof(Hot)];
  };
  struct ColdChunk {
    alignas(alignof(Cold) > kSlabCacheLine ? alignof(Cold) : kSlabCacheLine)
        unsigned char bytes[kChunkSize * sizeof(Cold)];
  };

  Hot* HotPtr(std::uint32_t slot) const {
    HotChunk& c = *hot_chunks_[slot / kChunkSize];
    return reinterpret_cast<Hot*>(c.bytes + (slot % kChunkSize) * sizeof(Hot));
  }
  Cold* ColdPtr(std::uint32_t slot) const {
    ColdChunk& c = *cold_chunks_[slot / kChunkSize];
    return reinterpret_cast<Cold*>(c.bytes + (slot % kChunkSize) * sizeof(Cold));
  }

  std::size_t max_slots_;
  std::vector<std::unique_ptr<HotChunk>> hot_chunks_;
  std::vector<std::unique_ptr<ColdChunk>> cold_chunks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = kNone;
  std::size_t live_ = 0;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_SLAB_ARENA_H_
