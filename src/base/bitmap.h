// Two-level occupancy bitmap over a fixed ring of slots.
//
// The paper's wheels are O(1) per tick, but a per-tick loop still probes every
// slot it crosses — empty or not. This bitmap lets a wheel *sleep through dead
// time*: one bit per slot records "this bucket is non-empty", a 64-ary summary
// word over the slot words records "this word has a set bit", and the circular
// next-set-bit query is a handful of CTZ instructions instead of a slot-by-slot
// walk. It is a deliberate post-paper optimization (see DESIGN.md): Section 3.2's
// hardware variant skips dead time with a single oscillator; we do it in software
// with O(popcount) scanning.
//
// Maintenance contract (kept eagerly by the wheel schemes): Set on first insert
// into a slot, Clear when the slot's last record leaves (stop, drain, or
// migration). Both are idempotent O(1).

#ifndef TWHEEL_SRC_BASE_BITMAP_H_
#define TWHEEL_SRC_BASE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/assert.h"
#include "src/base/bits.h"

namespace twheel {

class OccupancyBitmap {
 public:
  explicit OccupancyBitmap(std::size_t size)
      : size_(size),
        words_((size + 63) / 64, 0),
        summary_((words_.size() + 63) / 64, 0) {
    TWHEEL_ASSERT_MSG(size >= 1, "bitmap needs at least one slot");
  }

  std::size_t size() const { return size_; }
  // Number of set slots.
  std::size_t count() const { return count_; }
  bool any() const { return count_ != 0; }

  bool Test(std::size_t index) const {
    TWHEEL_ASSERT(index < size_);
    return (words_[index >> 6] >> (index & 63)) & 1u;
  }

  // Idempotent. O(1).
  void Set(std::size_t index) {
    TWHEEL_ASSERT(index < size_);
    const std::size_t w = index >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (index & 63);
    if ((words_[w] & bit) == 0) {
      words_[w] |= bit;
      summary_[w >> 6] |= std::uint64_t{1} << (w & 63);
      ++count_;
    }
  }

  // Idempotent. O(1).
  void Clear(std::size_t index) {
    TWHEEL_ASSERT(index < size_);
    const std::size_t w = index >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (index & 63);
    if ((words_[w] & bit) != 0) {
      words_[w] &= ~bit;
      if (words_[w] == 0) {
        summary_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
      }
      --count_;
    }
  }

  // Distance in [1, size()] from `from` to the next set slot, walking the ring
  // forward: from+1, from+2, ... wrapping around, with `from` itself examined
  // last (at distance size()). nullopt when no slot is set. This is exactly the
  // "how many ticks until the cursor hits a non-empty bucket" query, so a wheel
  // can jump its cursor over every empty slot in between.
  std::optional<std::size_t> NextSetDistance(std::size_t from) const {
    TWHEEL_ASSERT(from < size_);
    if (count_ == 0) {
      return std::nullopt;
    }
    const std::size_t start = from + 1 == size_ ? 0 : from + 1;
    const std::size_t found = FindFrom(start);
    return found > from ? found - from : size_ - (from - found);
  }

  // Invokes fn(index) for every set slot in ascending index order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        fn((w << 6) + CountTrailingZeros(word));
        word &= word - 1;
      }
    }
  }

  // Heap bytes a bitmap over `slots` slots owns (slot words + summary words).
  // Shared with SpaceProfile accounting and the space tests.
  static constexpr std::size_t BytesFor(std::size_t slots) {
    const std::size_t words = (slots + 63) / 64;
    const std::size_t summary_words = (words + 63) / 64;
    return (words + summary_words) * sizeof(std::uint64_t);
  }

 private:
  // First set slot at index >= start, wrapping circularly. count_ must be > 0.
  std::size_t FindFrom(std::size_t start) const {
    const std::size_t w = start >> 6;
    const std::uint64_t masked = words_[w] & (~std::uint64_t{0} << (start & 63));
    if (masked != 0) {
      return (w << 6) + CountTrailingZeros(masked);
    }
    const std::size_t next = NextNonEmptyWordAfter(w);
    return (next << 6) + CountTrailingZeros(words_[next]);
  }

  // First word index after `w` (circularly; `w` itself may be re-found on a full
  // wrap) whose slot word is non-zero, located through the summary level.
  std::size_t NextNonEmptyWordAfter(std::size_t w) const {
    const std::size_t probe = w + 1 == words_.size() ? 0 : w + 1;
    std::size_t s = probe >> 6;
    std::uint64_t sw = summary_[s] & (~std::uint64_t{0} << (probe & 63));
    while (sw == 0) {
      s = s + 1 == summary_.size() ? 0 : s + 1;
      sw = summary_[s];
    }
    return (s << 6) + CountTrailingZeros(sw);
  }

  std::size_t size_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> summary_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_BITMAP_H_
