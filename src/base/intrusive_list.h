// Intrusive circular doubly-linked list.
//
// Every timer scheme in the paper relies on one property (Section 3.2): "STOP_TIMER
// need not search the list if the list is doubly linked... STOP_TIMER can then use
// this pointer to delete the element in O(1) time." Records embed their links, so a
// record can unlink itself from whichever bucket it currently sits in without knowing
// the list head — that is exactly the O(1) STOP_TIMER of Schemes 2 and 4-7.
//
// The list is circular with a sentinel: no null checks on the hot paths, and an empty
// list is a sentinel pointing at itself. Nodes must outlive their membership; the
// list never owns elements (records are owned by TimerArena).

#ifndef TWHEEL_SRC_BASE_INTRUSIVE_LIST_H_
#define TWHEEL_SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>
#include <type_traits>

#include "src/base/assert.h"

namespace twheel {

// Embed (derive from) ListNode to make a type linkable. A node is in at most one list
// at a time; linked() distinguishes membership.
class ListNode {
 public:
  ListNode() = default;

  // Nodes are address-identified; copying a linked node would corrupt both lists.
  ListNode(const ListNode&) = delete;
  ListNode& operator=(const ListNode&) = delete;

  ~ListNode() { TWHEEL_ASSERT_MSG(!linked(), "node destroyed while still in a list"); }

  bool linked() const { return next_ != nullptr; }

  // Unlink this node from whichever list contains it. O(1). No-op prerequisite:
  // the node must currently be linked.
  void Unlink() {
    TWHEEL_ASSERT(linked());
    prev_->next_ = next_;
    next_->prev_ = prev_;
    next_ = nullptr;
    prev_ = nullptr;
  }

 private:
  template <typename T>
  friend class IntrusiveList;

  ListNode* next_ = nullptr;
  ListNode* prev_ = nullptr;
};

// Doubly-linked list of T, where T publicly derives from ListNode.
template <typename T>
class IntrusiveList {
  static_assert(std::is_base_of_v<ListNode, T>, "T must derive from ListNode");

 public:
  IntrusiveList() { Reset(); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() {
    TWHEEL_ASSERT_MSG(empty(), "list destroyed while non-empty");
    // Detach the sentinel so ~ListNode's membership check passes.
    sentinel_.next_ = nullptr;
    sentinel_.prev_ = nullptr;
  }

  bool empty() const { return sentinel_.next_ == &sentinel_; }

  // Insert at the front. O(1). Scheme 4 "put[s] the timer at the head of a list of
  // timers that will expire at a time = CurrentTime + j".
  void PushFront(T* node) { InsertBetween(node, &sentinel_, sentinel_.next_); }

  // Insert at the back. O(1). Used for FIFO expiry order and rear-search insertion.
  void PushBack(T* node) { InsertBetween(node, sentinel_.prev_, &sentinel_); }

  // Insert `node` immediately before `pos` (which must be in this list, or be a
  // sentinel-derived end()). O(1). Used by Scheme 2/5 sorted insertion.
  void InsertBefore(T* node, ListNode* pos) { InsertBetween(node, pos->prev_, pos); }

  // First element, or nullptr when empty.
  T* front() const {
    return empty() ? nullptr : static_cast<T*>(sentinel_.next_);
  }
  // Last element, or nullptr when empty.
  T* back() const {
    return empty() ? nullptr : static_cast<T*>(sentinel_.prev_);
  }

  // Remove and return the first element; list must be non-empty.
  T* PopFront() {
    TWHEEL_ASSERT(!empty());
    T* node = static_cast<T*>(sentinel_.next_);
    node->Unlink();
    return node;
  }

  // Forward/backward traversal helpers. `Next(back()) == nullptr`,
  // `Prev(front()) == nullptr`. Callers doing remove-while-iterating must fetch the
  // successor before unlinking.
  T* Next(const T* node) const {
    ListNode* n = node->next_;
    return n == &sentinel_ ? nullptr : static_cast<T*>(n);
  }
  T* Prev(const T* node) const {
    ListNode* p = node->prev_;
    return p == &sentinel_ ? nullptr : static_cast<T*>(p);
  }

  // Splice the entire contents of `other` onto the back of this list, preserving
  // order and leaving `other` empty. O(1) regardless of length — this is how slot
  // drains move a whole due bucket into a local expiry batch in one pointer swap,
  // so expiry handlers that re-arm timers never race the bucket walk.
  void SpliceAll(IntrusiveList& other) {
    if (other.empty()) {
      return;
    }
    ListNode* first = other.sentinel_.next_;
    ListNode* last = other.sentinel_.prev_;
    ListNode* tail = sentinel_.prev_;
    tail->next_ = first;
    first->prev_ = tail;
    last->next_ = &sentinel_;
    sentinel_.prev_ = last;
    other.Reset();
  }

  // O(n) count, for tests and diagnostics only; schemes track their own counters.
  std::size_t CountSlow() const {
    std::size_t n = 0;
    for (const ListNode* p = sentinel_.next_; p != &sentinel_; p = p->next_) {
      ++n;
    }
    return n;
  }

 private:
  void Reset() {
    sentinel_.next_ = &sentinel_;
    sentinel_.prev_ = &sentinel_;
  }

  void InsertBetween(T* node, ListNode* before, ListNode* after) {
    TWHEEL_ASSERT_MSG(!node->linked(), "node already in a list");
    node->prev_ = before;
    node->next_ = after;
    before->next_ = node;
    after->prev_ = node;
  }

  ListNode sentinel_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_INTRUSIVE_LIST_H_
