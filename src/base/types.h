// Fundamental types shared by every timer scheme.
//
// The paper's model (Section 2) is tick-driven: a hardware clock of granularity T
// drives PER_TICK_BOOKKEEPING. We represent time as an unsigned 64-bit tick count and
// never consult a wall clock, so every test, bench, and simulation is deterministic.

#ifndef TWHEEL_SRC_BASE_TYPES_H_
#define TWHEEL_SRC_BASE_TYPES_H_

#include <cstdint>
#include <limits>

namespace twheel {

// Discrete time. One Tick is one invocation of PER_TICK_BOOKKEEPING.
using Tick = std::uint64_t;

// Duration in ticks. Kept distinct from Tick in signatures for readability; both are
// raw 64-bit counters.
using Duration = std::uint64_t;

// Client-supplied cookie identifying a timer request; delivered back to the client's
// ExpiryHandler (the paper's Request_ID parameter to START_TIMER).
using RequestId = std::uint64_t;

// Opaque handle to an outstanding timer, returned by StartTimer and consumed by
// StopTimer. A handle is an (arena slot, generation) pair: the generation is bumped
// every time a slot is recycled, so a stale handle (timer already expired or stopped)
// is detected instead of cancelling an unrelated timer.
struct TimerHandle {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  static constexpr std::uint32_t kInvalidSlot = std::numeric_limits<std::uint32_t>::max();

  constexpr bool valid() const { return slot != kInvalidSlot; }
  friend constexpr bool operator==(const TimerHandle&, const TimerHandle&) = default;
};

constexpr TimerHandle kInvalidHandle{};

// Error codes for StartTimer / StopTimer. Exception-free error handling per the
// Google/Fuchsia style the library follows.
enum class TimerError : std::uint8_t {
  kOk = 0,
  // The requested interval exceeds the range of the scheme (Scheme 4 rejects
  // intervals >= MaxInterval unless configured otherwise).
  kIntervalOutOfRange,
  // Interval of zero requested but the scheme's policy forbids immediate expiry.
  kZeroInterval,
  // The timer arena is exhausted (fixed-capacity configurations).
  kNoCapacity,
  // StopTimer: the handle does not name a live timer (already expired, already
  // stopped, or never valid).
  kNoSuchTimer,
  // The service does not implement the requested optional operation (periodic
  // registration or in-place restart on a facade that derives directly from
  // TimerService without arena support).
  kNotSupported,
};

// Human-readable name for a TimerError, for logs and test failure messages.
constexpr const char* TimerErrorName(TimerError e) {
  switch (e) {
    case TimerError::kOk:
      return "kOk";
    case TimerError::kIntervalOutOfRange:
      return "kIntervalOutOfRange";
    case TimerError::kZeroInterval:
      return "kZeroInterval";
    case TimerError::kNoCapacity:
      return "kNoCapacity";
    case TimerError::kNoSuchTimer:
      return "kNoSuchTimer";
    case TimerError::kNotSupported:
      return "kNotSupported";
  }
  return "unknown";
}

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_TYPES_H_
