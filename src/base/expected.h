// Minimal Expected<T, E>: a value or an error, exception-free.
//
// C++20 has no std::expected (that arrives in C++23), and the library avoids
// exceptions per the Google/Fuchsia style, so this small utility carries fallible
// results. It is intentionally tiny: trivially-copyable payloads only, no monadic
// combinators — timer start results are a handle or an error code.

#ifndef TWHEEL_SRC_BASE_EXPECTED_H_
#define TWHEEL_SRC_BASE_EXPECTED_H_

#include <type_traits>
#include <utility>

#include "src/base/assert.h"

namespace twheel {

template <typename T, typename E>
class Expected {
  static_assert(!std::is_same_v<T, E>, "value and error types must differ");

 public:
  // Implicit construction from either alternative keeps call sites terse:
  //   return handle;        // success
  //   return TimerError::kNoCapacity;  // failure
  constexpr Expected(T value) : has_value_(true) { new (&storage_.value) T(std::move(value)); }
  constexpr Expected(E error) : has_value_(false) { new (&storage_.error) E(std::move(error)); }

  constexpr Expected(const Expected& other) : has_value_(other.has_value_) {
    if (has_value_) {
      new (&storage_.value) T(other.storage_.value);
    } else {
      new (&storage_.error) E(other.storage_.error);
    }
  }

  constexpr Expected& operator=(const Expected& other) {
    if (this != &other) {
      destroy();
      has_value_ = other.has_value_;
      if (has_value_) {
        new (&storage_.value) T(other.storage_.value);
      } else {
        new (&storage_.error) E(other.storage_.error);
      }
    }
    return *this;
  }

  ~Expected() { destroy(); }

  constexpr bool has_value() const { return has_value_; }
  constexpr explicit operator bool() const { return has_value_; }

  // Precondition-checked accessors. Calling value() on an error (or error() on a
  // value) is a programming bug and aborts.
  constexpr const T& value() const {
    TWHEEL_ASSERT(has_value_);
    return storage_.value;
  }
  constexpr T& value() {
    TWHEEL_ASSERT(has_value_);
    return storage_.value;
  }
  constexpr const E& error() const {
    TWHEEL_ASSERT(!has_value_);
    return storage_.error;
  }

  constexpr T value_or(T fallback) const { return has_value_ ? storage_.value : fallback; }

 private:
  void destroy() {
    if (has_value_) {
      storage_.value.~T();
    } else {
      storage_.error.~E();
    }
  }

  union Storage {
    Storage() {}
    ~Storage() {}
    T value;
    E error;
  } storage_;
  bool has_value_;
};

}  // namespace twheel

#endif  // TWHEEL_SRC_BASE_EXPECTED_H_
