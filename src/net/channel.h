// A lossy, delaying, unidirectional channel.
//
// Deliveries are discrete events on a *network* simulator that ticks in lockstep
// with the host's timer module but keeps its own event set, so channel bookkeeping
// never contaminates the op counts of the timer scheme under test (see net::Server).
//
// Loss and latency are drawn by hashing the packet's identity (connection, sequence
// number, type, send tick) with the channel seed rather than from a shared stream:
// the fate of a packet is a pure function of what was sent and when. This makes runs
// order-insensitive — two timer schemes that dispatch the same tick's expiries in
// different orders still produce byte-identical network behaviour, which the
// cross-scheme protocol tests rely on.

#ifndef TWHEEL_SRC_NET_CHANNEL_H_
#define TWHEEL_SRC_NET_CHANNEL_H_

#include <atomic>
#include <functional>
#include <utility>

#include "src/net/types.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace twheel::net {

class Channel {
 public:
  using Receiver = std::function<void(const Packet&)>;

  Channel(sim::Simulator& network, std::uint64_t seed, ChannelConfig config)
      : network_(network), seed_(seed), config_(config) {}

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Transmit: either silently dropped or delivered to the receiver after a
  // packet-identity-determined delay in [delay_lo, delay_hi].
  void Send(const Packet& packet) {
    sent_.fetch_add(1, std::memory_order_relaxed);
    rng::SplitMix64 hash(seed_ ^ PacketFingerprint(packet, network_.now()));
    const double loss_draw = static_cast<double>(hash.Next() >> 11) * 0x1.0p-53;
    if (loss_draw < config_.loss_probability) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Duration spread = config_.delay_hi - config_.delay_lo + 1;
    const Duration delay = config_.delay_lo + hash.Next() % spread;
    network_.After(delay, [this, packet] {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      receiver_(packet);
    });
  }

  // Counter snapshots. Send()/delivery themselves stay single-threaded by
  // contract (the network Simulator is not thread-safe), but a TimerServer
  // dispatch-pool drainer transmits under the server's send mutex while
  // harness/monitor threads snapshot these counters without it — so the
  // counters are relaxed atomics, not plain words. A snapshot taken
  // mid-transmission may lag by the in-flight packet; it is never torn.
  std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  // splitmix64-style finalizer: full-width multiply + xor-shift avalanche, so
  // every input bit affects every output bit.
  static std::uint64_t Mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  static std::uint64_t PacketFingerprint(const Packet& packet, Tick now) {
    // Distinct retransmissions of the same segment differ by send tick, so each
    // attempt gets an independent fate. Each field is avalanche-mixed before
    // combining: an earlier shift-and-xor packing put `seq << 16` underneath
    // `connection_id << 48`, so once seq reached 2^32 its high bits aliased the
    // connection bits and long-lived flows on different connections shared
    // fates. Mixing spreads every field across all 64 bits first, so no
    // shifted-out or overlapping-field collisions exist by construction.
    std::uint64_t fp = Mix(static_cast<std::uint64_t>(packet.connection_id) +
                           0x9e3779b97f4a7c15ULL);
    fp = Mix(fp ^ packet.seq);
    fp = Mix(fp ^ static_cast<std::uint64_t>(packet.type));
    fp = Mix(fp ^ now);
    return fp;
  }

  sim::Simulator& network_;
  std::uint64_t seed_;
  ChannelConfig config_;
  Receiver receiver_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_CHANNEL_H_
