#include "src/net/timer_workload.h"

#include <memory>
#include <utility>

namespace twheel::net {
namespace {

std::unique_ptr<TimerService> MakeNetworkService() {
  // Packet propagation uses a fixed, range-unbounded scheme so the host
  // scheme's op counts stay pure (same choice as net::Server).
  FacilityConfig config;
  config.scheme = SchemeId::kScheme3Heap;
  return MakeTimerService(config);
}

}  // namespace

TimerWorkload::TimerWorkload(const TimerWorkloadConfig& config,
                             Channel& to_server)
    : config_(config), to_server_(to_server), rng_(config.seed) {
  sessions_.resize(config_.num_sessions);
}

void TimerWorkload::SendSet(std::uint32_t session, std::uint32_t name) {
  const Duration span = config_.max_interval - config_.min_interval + 1;
  const Duration interval =
      config_.min_interval + static_cast<Duration>(rng_.NextBounded(span));
  const bool periodic = rng_.NextBool(config_.periodic_probability);
  const std::uint64_t budget =
      periodic ? 1 + rng_.NextBounded(config_.periodic_repeat_max) : 1;

  Session& s = sessions_[session];
  if (s.remaining[name] == 0) {
    ++believed_live_;
  }
  s.remaining[name] = static_cast<std::uint8_t>(budget);
  ++(periodic ? stats_.periodic_sets : stats_.sets);

  Packet request;
  request.connection_id = session;
  request.seq = name;
  request.type =
      periodic ? PacketType::kTimerSetPeriodic : PacketType::kTimerSet;
  request.arg0 = interval;
  request.arg1 = periodic ? budget : 0;
  to_server_.Send(request);
}

void TimerWorkload::Tick() {
  if (sessions_.empty()) {
    return;
  }
  for (std::size_t i = 0; i < config_.requests_per_tick; ++i) {
    const auto session = static_cast<std::uint32_t>(cursor_);
    cursor_ = (cursor_ + 1) % sessions_.size();
    Session& s = sessions_[session];
    const auto name =
        static_cast<std::uint32_t>(rng_.NextBounded(config_.timers_per_session));
    if (s.remaining[name] == 0) {
      SendSet(session, name);
      continue;
    }
    const double draw = rng_.NextDouble();
    Packet request;
    request.connection_id = session;
    request.seq = name;
    if (draw < config_.restart_probability) {
      const Duration span = config_.max_interval - config_.min_interval + 1;
      request.type = PacketType::kTimerRestart;
      request.arg0 =
          config_.min_interval + static_cast<Duration>(rng_.NextBounded(span));
      ++stats_.restarts;
      to_server_.Send(request);
    } else if (draw < config_.restart_probability + config_.cancel_probability) {
      request.type = PacketType::kTimerCancel;
      s.remaining[name] = 0;
      --believed_live_;
      ++stats_.cancels;
      to_server_.Send(request);
    } else {
      SendSet(session, name);  // replace with a fresh registration
    }
  }
}

void TimerWorkload::OnCallback(const Packet& fire) {
  ++stats_.callbacks;
  if (fire.connection_id >= sessions_.size()) {
    return;
  }
  Session& s = sessions_[fire.connection_id];
  const auto name = static_cast<std::uint32_t>(fire.seq);
  if (name >= config_.timers_per_session || s.remaining[name] == 0) {
    return;  // belief already cleared (cancel-vs-fire crossed on the wire)
  }
  if (s.remaining[name] > 1) {
    --s.remaining[name];
  } else {
    s.remaining[name] = 0;
    --believed_live_;
  }
}

void TimerWorkload::Prime(const std::function<void(const Packet&)>& deliver) {
  for (std::uint32_t session = 0; session < sessions_.size(); ++session) {
    const Duration span = config_.max_interval - config_.min_interval + 1;
    const Duration interval =
        config_.min_interval + static_cast<Duration>(rng_.NextBounded(span));
    const bool periodic = rng_.NextBool(config_.periodic_probability);
    const std::uint64_t budget =
        periodic ? 1 + rng_.NextBounded(config_.periodic_repeat_max) : 1;
    Session& s = sessions_[session];
    if (s.remaining[0] == 0) {
      ++believed_live_;
    }
    s.remaining[0] = static_cast<std::uint8_t>(budget);
    ++(periodic ? stats_.periodic_sets : stats_.sets);
    Packet request;
    request.connection_id = session;
    request.seq = 0;
    request.type =
        periodic ? PacketType::kTimerSetPeriodic : PacketType::kTimerSet;
    request.arg0 = interval;
    request.arg1 = periodic ? budget : 0;
    deliver(request);
  }
}

TimerServerHarness::TimerServerHarness(const TimerServerHarnessConfig& config)
    : network_(MakeNetworkService()),
      uplink_(network_, config.seed * 2654435761u + 1, config.channel),
      downlink_(network_, config.seed * 2654435761u + 2, config.channel),
      server_(MakeTimerService(config.host_scheme), downlink_),
      workload_(config.workload, uplink_) {
  uplink_.set_receiver([this](const Packet& p) { server_.OnRequest(p); });
  downlink_.set_receiver([this](const Packet& p) { workload_.OnCallback(p); });
}

void TimerServerHarness::Step() {
  workload_.Tick();
  server_.Tick();
  network_.Step();
  ++now_;
}

void TimerServerHarness::Run(Tick ticks) {
  for (Tick t = 0; t < ticks; ++t) {
    Step();
  }
}

void TimerServerHarness::Prime() {
  workload_.Prime([this](const Packet& p) { server_.OnRequest(p); });
}

Tick TimerServerHarness::Drain(Tick max_ticks) {
  Tick ran = 0;
  while (ran < max_ticks &&
         (server_.registrations() != 0 || network_.pending() != 0)) {
    server_.Tick();
    network_.Step();
    ++now_;
    ++ran;
  }
  return ran;
}

}  // namespace twheel::net
