#include "src/net/timer_server.h"

#include <utility>

#include "src/concurrent/sharded_wheel.h"
#include "src/net/wire.h"

namespace twheel::net {

TimerServer::TimerServer(std::unique_ptr<TimerService> host, Channel& to_client)
    : host_(std::move(host)), to_client_(to_client) {
  host_->set_expiry_handler(
      [this](RequestId cookie, twheel::Tick now) { OnExpiry(cookie, now); });
}

TimerServer::~TimerServer() { StopDispatchPool(); }

void TimerServer::Register(RequestId cookie, const Packet& request) {
  Stripe& stripe = StripeFor(cookie);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  // Cancel-and-replace: a duplicate set (client retry, or reuse of a timer
  // name whose fire callback was lost) supersedes the live registration.
  if (auto it = stripe.timers.find(cookie); it != stripe.timers.end()) {
    if (host_->StopTimer(it->second.handle) == TimerError::kOk) {
      stats_.replaced.fetch_add(1, std::memory_order_relaxed);
    }
    stripe.timers.erase(it);
  }
  const bool periodic = request.type == PacketType::kTimerSetPeriodic;
  const Duration interval = static_cast<Duration>(request.arg0);
  StartResult started =
      periodic ? host_->StartPeriodic(interval, cookie, request.arg1)
               : host_->StartTimer(interval, cookie);
  if (!started.has_value()) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Registration reg;
  reg.handle = started.value();
  reg.periodic = periodic;
  reg.remaining = periodic ? request.arg1 : 1;
  stripe.timers.emplace(cookie, reg);
  (periodic ? stats_.periodic_sets : stats_.sets)
      .fetch_add(1, std::memory_order_relaxed);
}

void TimerServer::OnRequest(const Packet& request) {
  const RequestId cookie = PackTimerCookie(request.connection_id, request.seq);
  switch (request.type) {
    case PacketType::kTimerSet:
    case PacketType::kTimerSetPeriodic:
      Register(cookie, request);
      return;
    case PacketType::kTimerRestart: {
      Stripe& stripe = StripeFor(cookie);
      std::lock_guard<std::mutex> lock(stripe.mutex);
      auto it = stripe.timers.find(cookie);
      if (it == stripe.timers.end()) {
        stats_.restart_misses.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // The relink contract keeps the handle valid, so the table entry is
      // untouched; the periodic's cadence and budget continue from the moved
      // deadline (TimerService::RestartTimer doc).
      if (host_->RestartTimer(it->second.handle, static_cast<Duration>(
                                                     request.arg0)) ==
          TimerError::kOk) {
        stats_.restarts.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.restart_misses.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    case PacketType::kTimerCancel: {
      Stripe& stripe = StripeFor(cookie);
      std::lock_guard<std::mutex> lock(stripe.mutex);
      auto it = stripe.timers.find(cookie);
      if (it == stripe.timers.end() ||
          host_->StopTimer(it->second.handle) != TimerError::kOk) {
        stats_.cancel_misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.cancels.fetch_add(1, std::memory_order_relaxed);
      }
      if (it != stripe.timers.end()) {
        stripe.timers.erase(it);
      }
      return;
    }
    default:
      return;  // transport packets are not ours
  }
}

bool TimerServer::OnWire(const std::uint8_t* data, std::size_t size) {
  std::optional<Packet> decoded = DecodePacket(data, size);
  if (!decoded.has_value()) {
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  OnRequest(*decoded);
  return true;
}

void TimerServer::OnExpiry(RequestId cookie, twheel::Tick now) {
  Packet fire;
  {
    Stripe& stripe = StripeFor(cookie);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.timers.find(cookie);
    if (it == stripe.timers.end()) {
      return;  // raced with a cancel the host resolved differently; drop
    }
    Registration& reg = it->second;
    const bool armed =
        reg.periodic &&
        (reg.remaining == TimerService::kRepeatForever || reg.remaining > 1);
    if (armed) {
      if (reg.remaining > 1) {
        --reg.remaining;
      }
      stats_.periodic_laps.fetch_add(1, std::memory_order_relaxed);
    } else {
      stripe.timers.erase(it);
    }
  }
  // Build and send outside the stripe lock: the send mutex alone serializes
  // concurrent drainers into the single-threaded Channel.
  fire.connection_id = CookieSession(cookie);
  fire.seq = CookieTimer(cookie);
  fire.type = PacketType::kTimerFire;
  fire.arg0 = now;
  stats_.fires_sent.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(send_mutex_);
  to_client_.Send(fire);
}

void TimerServer::Tick() {
  if (pool_ != nullptr) {
    if (!pool_is_ticker_) {
      pool_->AdvanceTo(host_->now() + 1);
    }
    // Ticker-mode pool: it is the clock; an external Tick() has nothing to do.
    return;
  }
  host_->PerTickBookkeeping();
}

bool TimerServer::StartDispatchPool(const concurrent::DispatchOptions& options) {
  if (pool_ != nullptr) {
    return false;
  }
  auto* sharded = dynamic_cast<concurrent::ShardedWheel*>(host_.get());
  if (sharded == nullptr) {
    return false;
  }
  pool_is_ticker_ = options.tick_period.count() > 0;
  pool_ = std::make_unique<concurrent::DispatchPool>(*sharded, options);
  return true;
}

void TimerServer::StopDispatchPool() {
  if (pool_ != nullptr) {
    pool_->Stop();
    pool_.reset();
    pool_is_ticker_ = false;
  }
}

TimerServerStats TimerServer::stats() const {
  TimerServerStats snapshot;
  snapshot.sets = stats_.sets.load(std::memory_order_relaxed);
  snapshot.periodic_sets = stats_.periodic_sets.load(std::memory_order_relaxed);
  snapshot.replaced = stats_.replaced.load(std::memory_order_relaxed);
  snapshot.rejected = stats_.rejected.load(std::memory_order_relaxed);
  snapshot.restarts = stats_.restarts.load(std::memory_order_relaxed);
  snapshot.restart_misses =
      stats_.restart_misses.load(std::memory_order_relaxed);
  snapshot.cancels = stats_.cancels.load(std::memory_order_relaxed);
  snapshot.cancel_misses = stats_.cancel_misses.load(std::memory_order_relaxed);
  snapshot.fires_sent = stats_.fires_sent.load(std::memory_order_relaxed);
  snapshot.periodic_laps = stats_.periodic_laps.load(std::memory_order_relaxed);
  snapshot.decode_rejects =
      stats_.decode_rejects.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t TimerServer::registrations() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.timers.size();
  }
  return total;
}

}  // namespace twheel::net
