#include "src/net/timer_server.h"

#include <utility>

namespace twheel::net {

TimerServer::TimerServer(std::unique_ptr<TimerService> host, Channel& to_client)
    : host_(std::move(host)), to_client_(to_client) {
  host_->set_expiry_handler(
      [this](RequestId cookie, twheel::Tick now) { OnExpiry(cookie, now); });
}

void TimerServer::Register(RequestId cookie, const Packet& request) {
  // Cancel-and-replace: a duplicate set (client retry, or reuse of a timer
  // name whose fire callback was lost) supersedes the live registration.
  if (auto it = timers_.find(cookie); it != timers_.end()) {
    if (host_->StopTimer(it->second.handle) == TimerError::kOk) {
      ++stats_.replaced;
    }
    timers_.erase(it);
  }
  const bool periodic = request.type == PacketType::kTimerSetPeriodic;
  const Duration interval = static_cast<Duration>(request.arg0);
  StartResult started =
      periodic ? host_->StartPeriodic(interval, cookie, request.arg1)
               : host_->StartTimer(interval, cookie);
  if (!started.has_value()) {
    ++stats_.rejected;
    return;
  }
  Registration reg;
  reg.handle = started.value();
  reg.periodic = periodic;
  reg.remaining = periodic ? request.arg1 : 1;
  timers_.emplace(cookie, reg);
  ++(periodic ? stats_.periodic_sets : stats_.sets);
}

void TimerServer::OnRequest(const Packet& request) {
  const RequestId cookie = PackTimerCookie(request.connection_id, request.seq);
  switch (request.type) {
    case PacketType::kTimerSet:
    case PacketType::kTimerSetPeriodic:
      Register(cookie, request);
      return;
    case PacketType::kTimerRestart: {
      auto it = timers_.find(cookie);
      if (it == timers_.end()) {
        ++stats_.restart_misses;
        return;
      }
      // The relink contract keeps the handle valid, so the table entry is
      // untouched; the periodic's cadence and budget continue from the moved
      // deadline (TimerService::RestartTimer doc).
      if (host_->RestartTimer(it->second.handle, static_cast<Duration>(
                                                     request.arg0)) ==
          TimerError::kOk) {
        ++stats_.restarts;
      } else {
        ++stats_.restart_misses;
      }
      return;
    }
    case PacketType::kTimerCancel: {
      auto it = timers_.find(cookie);
      if (it == timers_.end() ||
          host_->StopTimer(it->second.handle) != TimerError::kOk) {
        ++stats_.cancel_misses;
      } else {
        ++stats_.cancels;
      }
      if (it != timers_.end()) {
        timers_.erase(it);
      }
      return;
    }
    default:
      return;  // transport packets are not ours
  }
}

void TimerServer::OnExpiry(RequestId cookie, twheel::Tick now) {
  auto it = timers_.find(cookie);
  if (it == timers_.end()) {
    return;  // raced with a cancel the host resolved differently; drop
  }
  Registration& reg = it->second;
  const bool armed =
      reg.periodic &&
      (reg.remaining == TimerService::kRepeatForever || reg.remaining > 1);
  if (armed) {
    if (reg.remaining > 1) {
      --reg.remaining;
    }
    ++stats_.periodic_laps;
  } else {
    timers_.erase(it);
  }
  Packet fire;
  fire.connection_id = CookieSession(cookie);
  fire.seq = CookieTimer(cookie);
  fire.type = PacketType::kTimerFire;
  fire.arg0 = now;
  ++stats_.fires_sent;
  to_client_.Send(fire);
}

void TimerServer::Tick() { host_->PerTickBookkeeping(); }

}  // namespace twheel::net
