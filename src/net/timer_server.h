// A networked timer facility: the paper's timer module behind a protocol.
//
// Client sessions manage timers on a remote timer module — set one-shots, set
// periodics, restart ("update"), cancel — by sending request packets over a
// lossy Channel, and receive kTimerFire callback packets when their timers
// expire. This is ROADMAP item 1's product surface: the host scheme under test
// serves the whole population's timers, so its op-count profile under a
// realistic set/update/cancel/fire mix is directly observable.
//
// Addressing: a session is a connection_id; a timer is the session-local
// `seq` the client chose. The pair packs into the 64-bit RequestId cookie the
// timer module already carries, so an expiry dispatch routes back to its
// session without any per-timer allocation on the server.
//
// Loss tolerance: requests are idempotent where the protocol allows it — a
// duplicate kTimerSet for a live timer replaces the old registration
// (cancel-and-replace), and kTimerRestart/kTimerCancel for a timer the server
// no longer has (expired, cancelled, or the set was lost) are counted as
// stale misses, not errors. The server never retransmits callbacks: a lost
// kTimerFire is simply lost, exactly like a lost ack in Section 1's model.
//
// Concurrent dispatch: when the host is a concurrent::ShardedWheel, the server
// can hand the clock to a DispatchPool (StartDispatchPool), after which expiry
// callbacks arrive on N drainer threads at once. The server is built for that:
// the session table is striped (per-stripe mutexes, stripe chosen by session
// hash, so drainers touching different sessions never contend), the stats are
// lock-free atomics, and callback sends are serialized behind a send mutex —
// the Channel itself is single-threaded by contract. Requests still arrive on
// one thread (the harness's uplink), racing only the drainers.

#ifndef TWHEEL_SRC_NET_TIMER_SERVER_H_
#define TWHEEL_SRC_NET_TIMER_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/concurrent/dispatch_pool.h"
#include "src/core/timer_service.h"
#include "src/net/channel.h"
#include "src/net/types.h"

namespace twheel::net {

// (session, timer) <-> RequestId cookie. Sessions are 32-bit, timer names are
// truncated to 32 bits — sessions use small per-session timer numbers.
constexpr RequestId PackTimerCookie(std::uint32_t session, std::uint64_t timer) {
  return (static_cast<RequestId>(session) << 32) |
         static_cast<std::uint32_t>(timer);
}
constexpr std::uint32_t CookieSession(RequestId cookie) {
  return static_cast<std::uint32_t>(cookie >> 32);
}
constexpr std::uint32_t CookieTimer(RequestId cookie) {
  return static_cast<std::uint32_t>(cookie);
}

struct TimerServerStats {
  std::uint64_t sets = 0;            // one-shot registrations accepted
  std::uint64_t periodic_sets = 0;   // periodic registrations accepted
  std::uint64_t replaced = 0;        // duplicate set replaced a live timer
  std::uint64_t rejected = 0;        // host refused (capacity/range)
  std::uint64_t restarts = 0;        // kTimerRestart applied
  std::uint64_t restart_misses = 0;  // kTimerRestart for an unknown timer
  std::uint64_t cancels = 0;         // kTimerCancel applied
  std::uint64_t cancel_misses = 0;   // kTimerCancel for an unknown timer
  std::uint64_t fires_sent = 0;      // kTimerFire callbacks handed to the channel
  std::uint64_t periodic_laps = 0;   // fires that left the registration armed
  std::uint64_t decode_rejects = 0;  // OnWire buffers that failed DecodePacket
};

class TimerServer {
 public:
  // `host` is the timer scheme under test; `to_client` carries callbacks.
  TimerServer(std::unique_ptr<TimerService> host, Channel& to_client);
  ~TimerServer();

  // A request packet arrived (the harness wires this as the uplink receiver).
  void OnRequest(const Packet& request);

  // A raw request buffer arrived (the byte-transport uplink). Decodes via
  // net::DecodePacket and dispatches to OnRequest; malformed buffers —
  // truncated, oversized, or with an out-of-range type byte — are counted in
  // stats().decode_rejects and otherwise ignored. Returns whether the buffer
  // decoded.
  bool OnWire(const std::uint8_t* data, std::size_t size);

  // Advance the host timer module one tick, dispatching expiry callbacks.
  // With a manual-mode dispatch pool attached, the tick is delivered through
  // the pool (all drainers participate); with a ticker-mode pool the pool IS
  // the clock and Tick() is a no-op.
  void Tick();

  // Hand the host's clock to a DispatchPool: expiry callbacks then arrive on
  // `options.drainers` threads concurrently. Returns false (and attaches
  // nothing) if the host is not a concurrent::ShardedWheel or a pool is
  // already attached. The pool assumes it is the sole clock driver: don't mix
  // with direct host advancement while attached.
  bool StartDispatchPool(const concurrent::DispatchOptions& options);
  // Stops and detaches the pool (idempotent). After return the server is
  // single-threaded again and Tick() drives the host directly.
  void StopDispatchPool();
  bool pool_attached() const { return pool_ != nullptr; }

  // Coherent snapshot at quiesce; transiently lagging fields mid-dispatch.
  TimerServerStats stats() const;
  const TimerService& host() const { return *host_; }
  // Timers currently registered (the server-side session table's view).
  std::size_t registrations() const;

 private:
  struct Registration {
    TimerHandle handle;
    // Laps still owed, mirroring the host's repeat budget: 0 = forever,
    // 1 = next fire is final, 0 remaining after it. One-shots store 1.
    std::uint64_t remaining = 1;
    bool periodic = false;
  };

  // The striped session table. A cookie's stripe is a function of its session
  // id, so one session's set/cancel/fire traffic serializes on one stripe
  // while different sessions proceed in parallel on different drainers.
  static constexpr std::size_t kStripes = 16;  // power of two
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<RequestId, Registration> timers;
  };
  Stripe& StripeFor(RequestId cookie) {
    // Fibonacci hash of the session id; sessions are typically small dense
    // integers, so multiply-shift spreads them across stripes.
    const std::uint32_t h = CookieSession(cookie) * 0x9E3779B9u;
    return stripes_[(h >> 27) & (kStripes - 1)];
  }

  void OnExpiry(RequestId cookie, twheel::Tick now);
  void Register(RequestId cookie, const Packet& request);

  std::unique_ptr<TimerService> host_;
  Channel& to_client_;
  // Serializes kTimerFire sends from concurrent drainers: Channel counts and
  // schedules its deliveries without internal locking.
  std::mutex send_mutex_;
  Stripe stripes_[kStripes];

  struct AtomicStats {
    std::atomic<std::uint64_t> sets{0};
    std::atomic<std::uint64_t> periodic_sets{0};
    std::atomic<std::uint64_t> replaced{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<std::uint64_t> restart_misses{0};
    std::atomic<std::uint64_t> cancels{0};
    std::atomic<std::uint64_t> cancel_misses{0};
    std::atomic<std::uint64_t> fires_sent{0};
    std::atomic<std::uint64_t> periodic_laps{0};
    std::atomic<std::uint64_t> decode_rejects{0};
  };
  AtomicStats stats_;

  std::unique_ptr<concurrent::DispatchPool> pool_;
  bool pool_is_ticker_ = false;
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_TIMER_SERVER_H_
