// A networked timer facility: the paper's timer module behind a protocol.
//
// Client sessions manage timers on a remote timer module — set one-shots, set
// periodics, restart ("update"), cancel — by sending request packets over a
// lossy Channel, and receive kTimerFire callback packets when their timers
// expire. This is ROADMAP item 1's product surface: the host scheme under test
// serves the whole population's timers, so its op-count profile under a
// realistic set/update/cancel/fire mix is directly observable.
//
// Addressing: a session is a connection_id; a timer is the session-local
// `seq` the client chose. The pair packs into the 64-bit RequestId cookie the
// timer module already carries, so an expiry dispatch routes back to its
// session without any per-timer allocation on the server.
//
// Loss tolerance: requests are idempotent where the protocol allows it — a
// duplicate kTimerSet for a live timer replaces the old registration
// (cancel-and-replace), and kTimerRestart/kTimerCancel for a timer the server
// no longer has (expired, cancelled, or the set was lost) are counted as
// stale misses, not errors. The server never retransmits callbacks: a lost
// kTimerFire is simply lost, exactly like a lost ack in Section 1's model.

#ifndef TWHEEL_SRC_NET_TIMER_SERVER_H_
#define TWHEEL_SRC_NET_TIMER_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/core/timer_service.h"
#include "src/net/channel.h"
#include "src/net/types.h"

namespace twheel::net {

// (session, timer) <-> RequestId cookie. Sessions are 32-bit, timer names are
// truncated to 32 bits — sessions use small per-session timer numbers.
constexpr RequestId PackTimerCookie(std::uint32_t session, std::uint64_t timer) {
  return (static_cast<RequestId>(session) << 32) |
         static_cast<std::uint32_t>(timer);
}
constexpr std::uint32_t CookieSession(RequestId cookie) {
  return static_cast<std::uint32_t>(cookie >> 32);
}
constexpr std::uint32_t CookieTimer(RequestId cookie) {
  return static_cast<std::uint32_t>(cookie);
}

struct TimerServerStats {
  std::uint64_t sets = 0;            // one-shot registrations accepted
  std::uint64_t periodic_sets = 0;   // periodic registrations accepted
  std::uint64_t replaced = 0;        // duplicate set replaced a live timer
  std::uint64_t rejected = 0;        // host refused (capacity/range)
  std::uint64_t restarts = 0;        // kTimerRestart applied
  std::uint64_t restart_misses = 0;  // kTimerRestart for an unknown timer
  std::uint64_t cancels = 0;         // kTimerCancel applied
  std::uint64_t cancel_misses = 0;   // kTimerCancel for an unknown timer
  std::uint64_t fires_sent = 0;      // kTimerFire callbacks handed to the channel
  std::uint64_t periodic_laps = 0;   // fires that left the registration armed
};

class TimerServer {
 public:
  // `host` is the timer scheme under test; `to_client` carries callbacks.
  TimerServer(std::unique_ptr<TimerService> host, Channel& to_client);

  // A request packet arrived (the harness wires this as the uplink receiver).
  void OnRequest(const Packet& request);

  // Advance the host timer module one tick, dispatching expiry callbacks.
  void Tick();

  const TimerServerStats& stats() const { return stats_; }
  const TimerService& host() const { return *host_; }
  // Timers currently registered (the server-side session table's view).
  std::size_t registrations() const { return timers_.size(); }

 private:
  struct Registration {
    TimerHandle handle;
    // Laps still owed, mirroring the host's repeat budget: 0 = forever,
    // 1 = next fire is final, 0 remaining after it. One-shots store 1.
    std::uint64_t remaining = 1;
    bool periodic = false;
  };

  void OnExpiry(RequestId cookie, twheel::Tick now);
  void Register(RequestId cookie, const Packet& request);

  std::unique_ptr<TimerService> host_;
  Channel& to_client_;
  std::unordered_map<RequestId, Registration> timers_;
  TimerServerStats stats_;
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_TIMER_SERVER_H_
