// One stop-and-wait transport connection with the paper's three timers.
//
// The client sends a data segment, arms the retransmission timer, and waits. Acks
// cancel the timer (the overwhelmingly common case — "if failures are infrequent
// these timers rarely expire"); timeouts retransmit with exponential backoff. A
// keepalive timer, re-armed by any send or receive, probes idle peers; a
// death-detection timer, re-armed by acks, declares the peer failed after prolonged
// silence and resets the session ("other failures can only be inferred by the lack
// of some positive action within a specified period").
//
// Protocol timers run on the *host* simulator (the timer scheme under evaluation);
// packet propagation runs on the network simulator via Channel. The remote peer is
// modeled in-line: a delivered data or keepalive packet is acknowledged through the
// reverse channel.

#ifndef TWHEEL_SRC_NET_CONNECTION_H_
#define TWHEEL_SRC_NET_CONNECTION_H_

#include <cstdint>

#include "src/net/channel.h"
#include "src/net/types.h"
#include "src/sim/simulator.h"

namespace twheel::net {

class Connection {
 public:
  Connection(std::uint32_t id, sim::Simulator& host, Channel& to_peer,
             Channel& from_peer, ConnectionConfig config);

  // Begin the send loop and arm the long-lived timers.
  void Start();

  // Packet arrived at the client from the peer (Server routes these).
  void OnClientReceive(const Packet& packet);
  // Packet arrived at the modeled peer from the client.
  void OnPeerReceive(const Packet& packet);

  const ConnectionStats& stats() const { return stats_; }
  std::uint32_t id() const { return id_; }
  std::uint64_t next_seq() const { return seq_; }

 private:
  void SendData(bool is_retransmission);
  void OnRtoExpired();
  void OnKeepaliveExpired();
  void OnDeathExpired();
  void RearmKeepalive();
  void RearmDeath();

  std::uint32_t id_;
  sim::Simulator& host_;
  Channel& to_peer_;
  Channel& from_peer_;
  ConnectionConfig config_;

  std::uint64_t seq_ = 0;
  bool awaiting_ack_ = false;
  Duration rto_current_;
  sim::EventToken rto_timer_;
  sim::EventToken keepalive_timer_;
  sim::EventToken death_timer_;
  sim::EventToken think_timer_;

  ConnectionStats stats_;
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_CONNECTION_H_
