#include "src/net/server.h"

namespace twheel::net {
namespace {

std::unique_ptr<TimerService> MakeNetworkService() {
  // Packet propagation events use a fixed, range-unbounded scheme so the host
  // scheme's op counts stay pure.
  FacilityConfig config;
  config.scheme = SchemeId::kScheme3Heap;
  return MakeTimerService(config);
}

}  // namespace

Server::Server(const ServerConfig& config)
    : host_(MakeTimerService(config.host_scheme)),
      network_(MakeNetworkService()),
      to_peer_(network_, config.seed * 2654435761u + 1, config.channel),
      from_peer_(network_, config.seed * 2654435761u + 2, config.channel) {
  connections_.reserve(config.num_connections);
  for (std::uint32_t id = 0; id < config.num_connections; ++id) {
    connections_.push_back(std::make_unique<Connection>(id, host_, to_peer_, from_peer_,
                                                        config.connection));
  }
  to_peer_.set_receiver(
      [this](const Packet& packet) { connections_[packet.connection_id]->OnPeerReceive(packet); });
  from_peer_.set_receiver([this](const Packet& packet) {
    connections_[packet.connection_id]->OnClientReceive(packet);
  });
  for (auto& connection : connections_) {
    connection->Start();
  }
}

void Server::Step() {
  host_.Step();
  network_.Step();
}

void Server::Run(Tick ticks) {
  for (Tick t = 0; t < ticks; ++t) {
    Step();
  }
}

ConnectionStats Server::TotalStats() const {
  ConnectionStats total;
  for (const auto& connection : connections_) {
    total += connection->stats();
  }
  return total;
}

}  // namespace twheel::net
