// Shared types for the simulated transport substrate.
//
// Section 1 motivates the paper with exactly this workload: "consider a server with
// 200 connections and 3 timers per connection" where "since messages can be lost in
// the underlying network, timers are needed at some level to trigger
// retransmissions." The net:: library is that server: per connection a
// retransmission timer (stopped by acks — the "rarely expire" kind), a keepalive
// timer (restarted by activity), and a death-detection timer (the
// failure-inferred-by-absence kind), all running against a configurable scheme.

#ifndef TWHEEL_SRC_NET_TYPES_H_
#define TWHEEL_SRC_NET_TYPES_H_

#include <cstdint>

#include "src/base/types.h"

namespace twheel::net {

enum class PacketType : std::uint8_t {
  kData,
  kAck,
  kKeepalive,
  kKeepaliveAck,
  // Timer-server protocol (src/net/timer_server.h): client sessions manage
  // timers on a remote timer module and receive expiry callbacks. The session
  // is addressed by connection_id; seq names the session-local timer.
  kTimerSet,          // arg0 = interval
  kTimerSetPeriodic,  // arg0 = interval, arg1 = repeat_for (0 = forever)
  kTimerRestart,      // arg0 = new interval
  kTimerCancel,
  kTimerFire,  // server -> client callback; arg0 = server tick at dispatch
};

struct Packet {
  std::uint32_t connection_id = 0;
  std::uint64_t seq = 0;
  PacketType type = PacketType::kData;
  // Timer-protocol payload words (see PacketType); zero for transport packets.
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

struct ChannelConfig {
  double loss_probability = 0.05;
  Duration delay_lo = 2;   // one-way latency, uniform in [lo, hi] ticks
  Duration delay_hi = 10;
};

struct ConnectionConfig {
  Duration rto_initial = 40;      // retransmission timeout
  Duration rto_max = 640;         // exponential backoff cap
  Duration think_time = 20;       // gap between an ack and the next data send
  Duration keepalive_interval = 500;
  Duration death_interval = 4000;  // no acks for this long => declare peer dead
};

struct ConnectionStats {
  std::uint64_t data_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t deaths = 0;

  ConnectionStats& operator+=(const ConnectionStats& o) {
    data_sent += o.data_sent;
    retransmissions += o.retransmissions;
    acks_received += o.acks_received;
    keepalives_sent += o.keepalives_sent;
    deaths += o.deaths;
    return *this;
  }
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_TYPES_H_
