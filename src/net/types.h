// Shared types for the simulated transport substrate.
//
// Section 1 motivates the paper with exactly this workload: "consider a server with
// 200 connections and 3 timers per connection" where "since messages can be lost in
// the underlying network, timers are needed at some level to trigger
// retransmissions." The net:: library is that server: per connection a
// retransmission timer (stopped by acks — the "rarely expire" kind), a keepalive
// timer (restarted by activity), and a death-detection timer (the
// failure-inferred-by-absence kind), all running against a configurable scheme.

#ifndef TWHEEL_SRC_NET_TYPES_H_
#define TWHEEL_SRC_NET_TYPES_H_

#include <cstdint>

#include "src/base/types.h"

namespace twheel::net {

enum class PacketType : std::uint8_t {
  kData,
  kAck,
  kKeepalive,
  kKeepaliveAck,
  // Timer-server protocol (src/net/timer_server.h): client sessions manage
  // timers on a remote timer module and receive expiry callbacks. The session
  // is addressed by connection_id; seq names the session-local timer.
  kTimerSet,          // arg0 = interval
  kTimerSetPeriodic,  // arg0 = interval, arg1 = repeat_for (0 = forever)
  kTimerRestart,      // arg0 = new interval
  kTimerCancel,
  kTimerFire,  // server -> client callback; arg0 = server tick at dispatch
  // Replication protocol (src/cluster/): the coordinator fans a client timer
  // out to R replicas; the rank-0 replica owns the pop and survivors take the
  // lease over rank by rank after `failover_delay` (DESIGN.md "Replication
  // protocol"). seq carries the client timer key; connection_id carries the
  // sending node id (or the coordinator sentinel).
  kClusterArm,        // arg0 = absolute deadline; arg1 = gen<<16 | rank<<8 | R
  kClusterArmAck,     // arg0 = gen; arg1 = rank
  kClusterDisarm,     // arg0 = gen; arg1 = 1 if suppressing after a delivered
                      //   fire, 0 for a client cancel
  kClusterDisarmAck,  // arg0 = gen
  kClusterFire,       // replica -> coordinator; arg0 = pop tick; arg1 = gen
  kClusterFireAck,    // coordinator -> replica; arg0 = gen
  kClusterSuppress,   // popping replica -> peer replicas, best-effort lease
                      //   hint; arg0 = gen
  kClusterNodeUp,     // restarted node -> coordinator; arg0 = node epoch
  kClusterNodeUpAck,  // coordinator -> node; arg0 = node epoch
};

// One past the last valid PacketType, for wire-decode range checks
// (src/net/wire.h). Keep in sync when extending the enum.
inline constexpr std::uint8_t kPacketTypeCount =
    static_cast<std::uint8_t>(PacketType::kClusterNodeUpAck) + 1;

struct Packet {
  std::uint32_t connection_id = 0;
  std::uint64_t seq = 0;
  PacketType type = PacketType::kData;
  // Timer-protocol payload words (see PacketType); zero for transport packets.
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

struct ChannelConfig {
  double loss_probability = 0.05;
  Duration delay_lo = 2;   // one-way latency, uniform in [lo, hi] ticks
  Duration delay_hi = 10;
};

struct ConnectionConfig {
  Duration rto_initial = 40;      // retransmission timeout
  Duration rto_max = 640;         // exponential backoff cap
  Duration think_time = 20;       // gap between an ack and the next data send
  Duration keepalive_interval = 500;
  Duration death_interval = 4000;  // no acks for this long => declare peer dead
};

struct ConnectionStats {
  std::uint64_t data_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t deaths = 0;

  ConnectionStats& operator+=(const ConnectionStats& o) {
    data_sent += o.data_sent;
    retransmissions += o.retransmissions;
    acks_received += o.acks_received;
    keepalives_sent += o.keepalives_sent;
    deaths += o.deaths;
    return *this;
  }
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_TYPES_H_
