// Workload generator + harness for the networked timer server.
//
// TimerWorkload models a population of client sessions, each owning a few
// session-local timer names. Per tick a bounded batch of sessions act (a
// round-robin cursor, so population size scales independently of per-tick
// cost): a session with a free timer name sets it (periodic with finite
// budget, or one-shot), a session with a live timer restarts it, cancels it,
// or replaces it. Per-session state is a handful of bytes — the generator
// holds millions of concurrent sessions without the bookkeeping dwarfing the
// timer module under test.
//
// Beliefs, not ground truth: the client marks a timer live when it SENDS the
// set and clears it when the final callback ARRIVES. Lost requests and lost
// callbacks make beliefs drift, which is the point — the drift is exactly the
// stale-miss traffic (restart/cancel for a dead timer) a real lossy deployment
// generates, and the server counts it without failing.
//
// TimerServerHarness wires the full loop in lockstep simulated time:
// workload -> uplink Channel -> TimerServer -> host timer scheme ->
// downlink Channel -> workload callbacks.

#ifndef TWHEEL_SRC_NET_TIMER_WORKLOAD_H_
#define TWHEEL_SRC_NET_TIMER_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/net/channel.h"
#include "src/net/timer_server.h"
#include "src/net/types.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace twheel::net {

struct TimerWorkloadConfig {
  std::size_t num_sessions = 1000;
  // Sessions acting per tick; the cursor wraps, so every session eventually
  // acts regardless of population size.
  std::size_t requests_per_tick = 64;
  // Timer names per session, <= 8 (a bit of belief state per name).
  std::uint32_t timers_per_session = 2;

  Duration min_interval = 4;
  Duration max_interval = 96;
  double periodic_probability = 0.4;
  // Periodic budgets are uniform in [1, periodic_repeat_max]: finite, so a
  // drained run quiesces. Must be <= 255 (belief state is a byte).
  std::uint64_t periodic_repeat_max = 8;
  // For a session whose chosen timer is live: restart it / cancel it /
  // otherwise replace it with a fresh set.
  double restart_probability = 0.3;
  double cancel_probability = 0.3;

  std::uint64_t seed = 1;
};

struct TimerWorkloadStats {
  std::uint64_t sets = 0;
  std::uint64_t periodic_sets = 0;
  std::uint64_t restarts = 0;
  std::uint64_t cancels = 0;
  std::uint64_t callbacks = 0;  // kTimerFire packets delivered to the client
};

class TimerWorkload {
 public:
  TimerWorkload(const TimerWorkloadConfig& config, Channel& to_server);

  // Send this tick's batch of requests.
  void Tick();
  // A kTimerFire callback arrived (the harness wires this as the downlink
  // receiver).
  void OnCallback(const Packet& fire);

  // Every session sets one timer, delivered through `deliver` instead of the
  // channel — used to pre-establish millions of sessions before a measurement
  // window without millions of in-flight packets.
  void Prime(const std::function<void(const Packet&)>& deliver);

  const TimerWorkloadStats& stats() const { return stats_; }
  // Timers the client currently believes are live (drifts under loss).
  std::uint64_t believed_live() const { return believed_live_; }

 private:
  // remaining[name]: laps the client still expects; 0 = name is free.
  struct Session {
    std::uint8_t remaining[8] = {};
  };

  void SendSet(std::uint32_t session, std::uint32_t name);

  TimerWorkloadConfig config_;
  Channel& to_server_;
  rng::Xoshiro256 rng_;
  std::vector<Session> sessions_;
  std::size_t cursor_ = 0;
  std::uint64_t believed_live_ = 0;
  TimerWorkloadStats stats_;
};

struct TimerServerHarnessConfig {
  TimerWorkloadConfig workload;
  ChannelConfig channel;
  FacilityConfig host_scheme;  // the timer scheme serving the population
  std::uint64_t seed = 1;
};

class TimerServerHarness {
 public:
  explicit TimerServerHarness(const TimerServerHarnessConfig& config);

  // One tick of simulated time: client requests, host timer tick (expiry
  // callbacks), packet propagation.
  void Step();
  void Run(Tick ticks);

  // Pre-establish the whole population: every session performs one action,
  // delivered to the server synchronously (no channel hop), as if the sessions
  // were set up before the observation window. Millions of sessions prime in
  // one pass without millions of in-flight packets.
  void Prime();

  // Stop generating requests and run until the server's registration table is
  // empty or `max_ticks` elapse. Returns ticks run. Only meaningful for
  // workloads with finite periodic budgets.
  Tick Drain(Tick max_ticks);

  Tick now() const { return now_; }
  const TimerServer& server() const { return server_; }
  const TimerWorkload& workload() const { return workload_; }
  const Channel& uplink() const { return uplink_; }
  const Channel& downlink() const { return downlink_; }

 private:
  sim::Simulator network_;
  Channel uplink_;
  Channel downlink_;
  TimerServer server_;
  TimerWorkload workload_;
  Tick now_ = 0;
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_TIMER_WORKLOAD_H_
