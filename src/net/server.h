// The Section 1 server: N connections x 3 timers over lossy channels.
//
// Owns two lockstep simulators — the host's timer module (the scheme under test)
// and a network event set (fixed heap scheme) — plus the two channels and all
// connections. Step() advances one tick of simulated time everywhere. After a run,
// host_counts() exposes exactly the op-count profile the paper's timer module would
// have accumulated serving this workload.

#ifndef TWHEEL_SRC_NET_SERVER_H_
#define TWHEEL_SRC_NET_SERVER_H_

#include <memory>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/net/channel.h"
#include "src/net/connection.h"
#include "src/sim/simulator.h"

namespace twheel::net {

struct ServerConfig {
  std::size_t num_connections = 200;  // the paper's example population
  std::uint64_t seed = 1;
  ChannelConfig channel;
  ConnectionConfig connection;
  FacilityConfig host_scheme;  // the timer scheme serving the protocol timers
};

class Server {
 public:
  explicit Server(const ServerConfig& config);

  // Advance one tick of simulated time (host timers + network).
  void Step();
  void Run(Tick ticks);

  Tick now() const { return host_.now(); }
  ConnectionStats TotalStats() const;
  const Connection& connection(std::size_t i) const { return *connections_[i]; }
  std::size_t num_connections() const { return connections_.size(); }

  // Op counts of the timer scheme under test (protocol timers only).
  metrics::OpCounts host_counts() const { return host_.service().counts(); }
  std::size_t host_outstanding() const { return host_.pending(); }

  const Channel& uplink() const { return to_peer_; }
  const Channel& downlink() const { return from_peer_; }

 private:
  sim::Simulator host_;     // scheme under test
  sim::Simulator network_;  // packet propagation (fixed scheme)
  Channel to_peer_;
  Channel from_peer_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_SERVER_H_
