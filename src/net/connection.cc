#include "src/net/connection.h"

#include "src/base/assert.h"

namespace twheel::net {

Connection::Connection(std::uint32_t id, sim::Simulator& host, Channel& to_peer,
                       Channel& from_peer, ConnectionConfig config)
    : id_(id),
      host_(host),
      to_peer_(to_peer),
      from_peer_(from_peer),
      config_(config),
      rto_current_(config.rto_initial) {}

void Connection::Start() {
  RearmKeepalive();
  RearmDeath();
  SendData(/*is_retransmission=*/false);
}

void Connection::SendData(bool is_retransmission) {
  awaiting_ack_ = true;
  if (is_retransmission) {
    ++stats_.retransmissions;
  } else {
    ++stats_.data_sent;
  }
  to_peer_.Send(Packet{id_, seq_, PacketType::kData});
  RearmKeepalive();  // sending is activity
  rto_timer_ = host_.After(rto_current_, [this] { OnRtoExpired(); });
  TWHEEL_ASSERT_MSG(rto_timer_.valid(), "host scheme rejected RTO interval; size its range");
}

void Connection::OnRtoExpired() {
  rto_timer_ = sim::EventToken{};
  // Exponential backoff, capped — then try the same segment again.
  rto_current_ = rto_current_ * 2 > config_.rto_max ? config_.rto_max : rto_current_ * 2;
  SendData(/*is_retransmission=*/true);
}

void Connection::OnClientReceive(const Packet& packet) {
  switch (packet.type) {
    case PacketType::kAck:
      if (awaiting_ack_ && packet.seq == seq_) {
        ++stats_.acks_received;
        awaiting_ack_ = false;
        host_.Cancel(rto_timer_);  // the common case: STOP_TIMER before expiry
        rto_timer_ = sim::EventToken{};
        rto_current_ = config_.rto_initial;
        RearmDeath();
        RearmKeepalive();
        ++seq_;
        think_timer_ = host_.After(config_.think_time, [this] {
          think_timer_ = sim::EventToken{};
          SendData(/*is_retransmission=*/false);
        });
      }
      break;
    case PacketType::kKeepaliveAck:
      RearmDeath();
      RearmKeepalive();
      break;
    default:
      break;  // data/keepalive/timer-protocol packets: not for the client
  }
}

void Connection::OnPeerReceive(const Packet& packet) {
  // The modeled peer: acknowledge everything relevant through the reverse channel.
  switch (packet.type) {
    case PacketType::kData:
      from_peer_.Send(Packet{id_, packet.seq, PacketType::kAck});
      break;
    case PacketType::kKeepalive:
      from_peer_.Send(Packet{id_, packet.seq, PacketType::kKeepaliveAck});
      break;
    default:
      break;  // acks and timer-protocol packets need no peer response
  }
}

void Connection::OnKeepaliveExpired() {
  keepalive_timer_ = sim::EventToken{};
  ++stats_.keepalives_sent;
  to_peer_.Send(Packet{id_, seq_, PacketType::kKeepalive});
  RearmKeepalive();
}

void Connection::OnDeathExpired() {
  death_timer_ = sim::EventToken{};
  // Prolonged silence: declare the peer dead and start a fresh session — the
  // "failure inferred by lack of positive action" timer actually expiring.
  ++stats_.deaths;
  host_.Cancel(rto_timer_);
  rto_timer_ = sim::EventToken{};
  host_.Cancel(think_timer_);
  think_timer_ = sim::EventToken{};
  awaiting_ack_ = false;
  rto_current_ = config_.rto_initial;
  ++seq_;
  RearmDeath();
  SendData(/*is_retransmission=*/false);
}

void Connection::RearmKeepalive() {
  host_.Cancel(keepalive_timer_);
  keepalive_timer_ = host_.After(config_.keepalive_interval, [this] { OnKeepaliveExpired(); });
  TWHEEL_ASSERT_MSG(keepalive_timer_.valid(), "host scheme rejected keepalive interval");
}

void Connection::RearmDeath() {
  host_.Cancel(death_timer_);
  death_timer_ = host_.After(config_.death_interval, [this] { OnDeathExpired(); });
  TWHEEL_ASSERT_MSG(death_timer_.valid(), "host scheme rejected death interval");
}

}  // namespace twheel::net
