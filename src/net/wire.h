// Wire encoding for net::Packet: the byte layout a real transport would carry.
//
// The simulated channels pass Packet structs by value, so nothing in-tree
// needs serialization for correctness — this header exists so the decode path
// can be hardened and fuzzed like a real server's would be. The layout is
// fixed-width little-endian, 29 bytes:
//
//   offset 0  : connection_id  (4 bytes)
//   offset 4  : seq            (8 bytes)
//   offset 12 : type           (1 byte; must be < kPacketTypeCount)
//   offset 13 : arg0           (8 bytes)
//   offset 21 : arg1           (8 bytes)
//
// DecodePacket rejects anything that is not exactly one well-formed packet:
// short buffers, trailing garbage, and out-of-range type bytes all return
// nullopt without reading past `size`. tests/net/wire_test.cc feeds it
// truncations and random garbage under ASan/UBSan.

#ifndef TWHEEL_SRC_NET_WIRE_H_
#define TWHEEL_SRC_NET_WIRE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "src/net/types.h"

namespace twheel::net {

inline constexpr std::size_t kWirePacketSize = 29;

namespace wire_internal {

inline void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

inline void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

inline std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

inline std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace wire_internal

inline std::array<std::uint8_t, kWirePacketSize> EncodePacket(
    const Packet& packet) {
  std::array<std::uint8_t, kWirePacketSize> out{};
  wire_internal::PutU32(out.data(), packet.connection_id);
  wire_internal::PutU64(out.data() + 4, packet.seq);
  out[12] = static_cast<std::uint8_t>(packet.type);
  wire_internal::PutU64(out.data() + 13, packet.arg0);
  wire_internal::PutU64(out.data() + 21, packet.arg1);
  return out;
}

// Strict decode: exactly kWirePacketSize bytes with an in-range type byte, or
// nullopt. Never reads beyond `size`; a null `data` is rejected (size must be
// wrong too, but don't rely on it).
inline std::optional<Packet> DecodePacket(const std::uint8_t* data,
                                          std::size_t size) {
  if (data == nullptr || size != kWirePacketSize) {
    return std::nullopt;
  }
  if (data[12] >= kPacketTypeCount) {
    return std::nullopt;
  }
  Packet packet;
  packet.connection_id = wire_internal::GetU32(data);
  packet.seq = wire_internal::GetU64(data + 4);
  packet.type = static_cast<PacketType>(data[12]);
  packet.arg0 = wire_internal::GetU64(data + 13);
  packet.arg1 = wire_internal::GetU64(data + 21);
  return packet;
}

}  // namespace twheel::net

#endif  // TWHEEL_SRC_NET_WIRE_H_
