// Log-linear histogram over non-negative integer values.
//
// HDR-style bucketing: values below 2^kLinearBits are recorded exactly; above that,
// each power-of-two range is split into 2^kSubBuckets sub-buckets, giving a bounded
// relative error (~1.5%) at any magnitude with a few KB of memory. Used to record
// per-tick bookkeeping work (worst case and tail matter for the Section 6.1.2
// burstiness claim) and start/stop latencies in op counts.

#ifndef TWHEEL_SRC_METRICS_HISTOGRAM_H_
#define TWHEEL_SRC_METRICS_HISTOGRAM_H_

#include <array>
#include <cstdint>

#include "src/base/assert.h"
#include "src/base/bits.h"

namespace twheel::metrics {

class Histogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;           // 32 sub-buckets per octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint32_t kOctaves = 64 - kSubBucketBits;
  static constexpr std::uint32_t kBucketCount = kSubBuckets * (kOctaves + 1);

  void Add(std::uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++total_;
    if (value > max_) {
      max_ = value;
    }
    sum_ += value;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }
  double mean() const { return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0; }

  // Value at quantile q in [0, 1]: the smallest bucket upper bound covering q of the
  // recorded samples. Percentile error is bounded by the bucket width (~3%).
  std::uint64_t Quantile(double q) const {
    TWHEEL_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0) {
      return 0;
    }
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (target >= total_) {
      target = total_ - 1;
    }
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i];
      if (seen > target) {
        return BucketUpperBound(i);
      }
    }
    return max_;
  }

  void Reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
    max_ = 0;
  }

 private:
  // Values < kSubBuckets map to exact buckets [0, kSubBuckets). A value in octave
  // o = floor(log2(v)) >= kSubBucketBits falls into one of kSubBuckets sub-buckets of
  // width 2^(o - kSubBucketBits), at index kSubBuckets * (o - kSubBucketBits + 1) + sub.
  static std::uint32_t BucketIndex(std::uint64_t v) {
    if (v < kSubBuckets) {
      return static_cast<std::uint32_t>(v);
    }
    std::uint32_t octave = Log2Floor(v);
    std::uint32_t shift = octave - kSubBucketBits;
    std::uint32_t sub = static_cast<std::uint32_t>((v >> shift) & (kSubBuckets - 1));
    return kSubBuckets * (octave - kSubBucketBits + 1) + sub;
  }

  static std::uint64_t BucketUpperBound(std::uint32_t index) {
    if (index < kSubBuckets) {
      return index;
    }
    std::uint32_t shift = index / kSubBuckets - 1;
    std::uint32_t sub = index % kSubBuckets;
    std::uint64_t base = (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
    std::uint64_t width = 1ULL << shift;
    return base + width - 1;
  }

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace twheel::metrics

#endif  // TWHEEL_SRC_METRICS_HISTOGRAM_H_
