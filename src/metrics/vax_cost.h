// The Section 7 VAX cost model.
//
// The authors implemented Scheme 6 on a VAX in MACRO-11 and report, in units of a
// "cheap" VAX instruction (a CLRL): 13 instructions to insert a timer, 7 to delete
// one, 4 per tick to skip an empty array location, 6 to decrement a timer and move to
// the next queue element, and 9 more to delete an expired timer and call
// EXPIRY_PROCESSING. From these they derive: "even if we assume that every
// outstanding timer expires during one scan of the table, the average cost per tick
// is 4 + 15 * n/TableSize instructions."
//
// This model maps our machine-independent OpCounts onto those constants so that the
// bench for experiment `sec7-vax` regenerates the same formula from measurement.

#ifndef TWHEEL_SRC_METRICS_VAX_COST_H_
#define TWHEEL_SRC_METRICS_VAX_COST_H_

#include <cstdint>

#include "src/metrics/op_counts.h"

namespace twheel::metrics {

struct VaxCostModel {
  // Costs in cheap VAX instructions (Section 7).
  double insert = 13.0;         // START_TIMER link-in
  double unlink = 7.0;          // STOP_TIMER unlink
  double skip_empty = 4.0;      // per-tick skip of an empty array location
  double decrement = 6.0;       // decrement one timer, advance to next queue element
  double expire = 9.0;          // remove expired timer and dispatch EXPIRY_PROCESSING
  double compare = 1.0;         // one comparison during an insertion search

  // Total instruction estimate for a batch of operations.
  double Total(const OpCounts& c) const {
    return insert * static_cast<double>(c.insert_link_ops) +
           unlink * static_cast<double>(c.delete_unlink_ops) +
           skip_empty * static_cast<double>(c.empty_slot_checks) +
           decrement * static_cast<double>(c.decrement_visits) +
           expire * static_cast<double>(c.expiry_dispatches) +
           compare * static_cast<double>(c.comparisons);
  }

  // Instruction estimate for the bookkeeping performed inside PER_TICK_BOOKKEEPING
  // only (excludes start/stop costs), divided by the number of ticks. This is the
  // quantity Section 7 predicts to be 4 + 15 * n/TableSize for Scheme 6.
  double PerTick(const OpCounts& c) const {
    if (c.ticks == 0) {
      return 0.0;
    }
    double book = skip_empty * static_cast<double>(c.empty_slot_checks) +
                  decrement * static_cast<double>(c.decrement_visits) +
                  expire * static_cast<double>(c.expiry_dispatches);
    return book / static_cast<double>(c.ticks);
  }

  // The paper's closed-form prediction for Scheme 6 (Section 7).
  static double PredictedPerTickScheme6(double n, double table_size) {
    return 4.0 + 15.0 * n / table_size;
  }
};

}  // namespace twheel::metrics

#endif  // TWHEEL_SRC_METRICS_VAX_COST_H_
