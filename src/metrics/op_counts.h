// Elementary-operation accounting, the paper's currency of evaluation.
//
// The 1987 evaluation (Section 7) reports costs in "cheap VAX instructions": 13 to
// insert a timer, 7 to delete, 4 to skip an empty array location per tick, 6 to
// decrement a timer and move on, 9 to expire one. Wall-clock nanoseconds on a 2020s
// machine cannot be compared with that, but operation counts can: every scheme in
// this library bumps the same OpCounts fields at the same algorithmic events, and
// metrics::VaxCostModel weights them with the paper's constants to regenerate its
// numbers (e.g. "average cost per tick is 4 + 15 * n/TableSize").

#ifndef TWHEEL_SRC_METRICS_OP_COUNTS_H_
#define TWHEEL_SRC_METRICS_OP_COUNTS_H_

#include <cstdint>

namespace twheel::metrics {

struct OpCounts {
  // Routine invocations (the paper's four-routine model, Section 2).
  std::uint64_t start_calls = 0;
  std::uint64_t stop_calls = 0;
  std::uint64_t ticks = 0;
  std::uint64_t expiries = 0;

  // Elementary operations.
  // A per-tick inspection of a wheel slot / list head that found nothing to do
  // ("4 instructions to skip an empty array location").
  std::uint64_t empty_slot_checks = 0;
  // One record visited and decremented (or its round count examined) during
  // PER_TICK_BOOKKEEPING ("6 instructions to decrement a timer and move on").
  std::uint64_t decrement_visits = 0;
  // One record linked into a list / heap / tree ("13 cheap VAX instructions to
  // insert a timer").
  std::uint64_t insert_link_ops = 0;
  // One record unlinked ("7 to delete a timer").
  std::uint64_t delete_unlink_ops = 0;
  // One expired record removed and its EXPIRY_PROCESSING dispatched ("a further 9
  // instructions").
  std::uint64_t expiry_dispatches = 0;
  // Key comparisons made while searching for an insertion point (sorted lists,
  // trees, heaps). This is the quantity Section 3.2's 2 + 2n/3 formulas predict.
  std::uint64_t comparisons = 0;
  // Scheme 7 only: one timer moved from a coarser wheel to a finer one.
  std::uint64_t migrations = 0;
  // Batched advancement (AdvanceTo): empty slot probes the occupancy bitmap let a
  // wheel skip outright. Each skipped slot would have cost an empty_slot_check ("4
  // instructions to skip an empty array location") under the per-tick loop, so
  // slots_skipped * 4 is the VAX-instruction saving in the paper's currency.
  std::uint64_t slots_skipped = 0;
  // Number of batched AdvanceTo invocations that took a bitmap fast path (the
  // default loop implementation does not count here).
  std::uint64_t batch_advances = 0;
  // Deferred-registration submission runtime (concurrent::ShardedWheel in MPSC
  // mode). Start commands accepted into a per-shard submission ring; the client
  // saw kOk but the wheel sees the timer only at the next drain.
  std::uint64_t enqueued_starts = 0;
  // Commands (starts and cancels) the tick driver has consumed from the rings.
  std::uint64_t drained_commands = 0;
  // CAS attempts lost to a concurrent producer while enqueueing a command or
  // allocating a registration entry — the price of lock-freedom, in the same
  // spirit as the paper's elementary-operation accounting. Zero under no
  // contention (the enqueue is then wait-free: one CAS, one store).
  std::uint64_t submit_retries = 0;
  // RestartTimer invocations that found a live timer and rescheduled it. A
  // restart is neither a start nor a stop: the conservation law is
  // start_calls == expiries + cancels + outstanding regardless of restarts.
  std::uint64_t restart_calls = 0;
  // Elementary relink work done by in-place restarts: one unlink from the old
  // position plus one link at the new one counts 1 here (the wheels' O(1)
  // move); sift/rebalance steps in the comparison-based schemes add their
  // comparisons to `comparisons` as usual.
  std::uint64_t restart_relink_ops = 0;
  // Deferred-mode restarts that never became a command because the timer's
  // start was still pending in the submission ring: the new deadline was
  // coalesced into the registration entry in place.
  std::uint64_t restart_coalesced = 0;
  // StartPeriodic invocations accepted (also counted in start_calls: a periodic
  // registration is one client START_TIMER that re-arms itself).
  std::uint64_t periodic_starts = 0;
  // Non-final periodic expiries: the handler ran and the record re-armed in
  // place. Final fires of a finite periodic count in `expiries` instead, so the
  // conservation law start_calls == expiries + cancels + outstanding holds.
  std::uint64_t periodic_fires = 0;
  // Expiry-path re-arms performed as O(1) relinks of the live record (no arena
  // release, handle and generation preserved).
  std::uint64_t periodic_rearm_relinks = 0;
  // Periodic re-arms the service had to abandon (stop+start fallback rejected by
  // range/capacity): the timer degrades to a final expiry instead of aborting.
  std::uint64_t periodic_drops = 0;
  // Multi-drainer dispatch (concurrent::DispatchPool over ShardedWheel):
  // per-shard expiry batches published for dispatch after a shard advance.
  std::uint64_t dispatch_batches = 0;
  // Batches dispatched by a drainer that does not own the batch's shard — the
  // work-stealing path (an idle core borrowing a burst-hit shard's delivery).
  std::uint64_t dispatch_steals = 0;

  OpCounts& operator+=(const OpCounts& o) {
    start_calls += o.start_calls;
    stop_calls += o.stop_calls;
    ticks += o.ticks;
    expiries += o.expiries;
    empty_slot_checks += o.empty_slot_checks;
    decrement_visits += o.decrement_visits;
    insert_link_ops += o.insert_link_ops;
    delete_unlink_ops += o.delete_unlink_ops;
    expiry_dispatches += o.expiry_dispatches;
    comparisons += o.comparisons;
    migrations += o.migrations;
    slots_skipped += o.slots_skipped;
    batch_advances += o.batch_advances;
    enqueued_starts += o.enqueued_starts;
    drained_commands += o.drained_commands;
    submit_retries += o.submit_retries;
    restart_calls += o.restart_calls;
    restart_relink_ops += o.restart_relink_ops;
    restart_coalesced += o.restart_coalesced;
    periodic_starts += o.periodic_starts;
    periodic_fires += o.periodic_fires;
    periodic_rearm_relinks += o.periodic_rearm_relinks;
    periodic_drops += o.periodic_drops;
    dispatch_batches += o.dispatch_batches;
    dispatch_steals += o.dispatch_steals;
    return *this;
  }

  friend OpCounts operator-(OpCounts a, const OpCounts& b) {
    a.start_calls -= b.start_calls;
    a.stop_calls -= b.stop_calls;
    a.ticks -= b.ticks;
    a.expiries -= b.expiries;
    a.empty_slot_checks -= b.empty_slot_checks;
    a.decrement_visits -= b.decrement_visits;
    a.insert_link_ops -= b.insert_link_ops;
    a.delete_unlink_ops -= b.delete_unlink_ops;
    a.expiry_dispatches -= b.expiry_dispatches;
    a.comparisons -= b.comparisons;
    a.migrations -= b.migrations;
    a.slots_skipped -= b.slots_skipped;
    a.batch_advances -= b.batch_advances;
    a.enqueued_starts -= b.enqueued_starts;
    a.drained_commands -= b.drained_commands;
    a.submit_retries -= b.submit_retries;
    a.restart_calls -= b.restart_calls;
    a.restart_relink_ops -= b.restart_relink_ops;
    a.restart_coalesced -= b.restart_coalesced;
    a.periodic_starts -= b.periodic_starts;
    a.periodic_fires -= b.periodic_fires;
    a.periodic_rearm_relinks -= b.periodic_rearm_relinks;
    a.periodic_drops -= b.periodic_drops;
    a.dispatch_batches -= b.dispatch_batches;
    a.dispatch_steals -= b.dispatch_steals;
    return a;
  }

  // Total bookkeeping work done inside PER_TICK_BOOKKEEPING calls, in elementary ops
  // (slot checks + record visits + expiry removals). Used for burstiness studies.
  std::uint64_t TickWork() const {
    return empty_slot_checks + decrement_visits + expiry_dispatches + migrations;
  }
};

}  // namespace twheel::metrics

#endif  // TWHEEL_SRC_METRICS_OP_COUNTS_H_
