// Streaming mean / variance / extrema (Welford's algorithm).
//
// Used wherever the reproduction compares a measured average against one of the
// paper's closed forms (insertion comparisons vs 2 + 2n/3, per-tick work vs
// n/TableSize, ...), and for the Section 6.1.2 burstiness claim, which is about the
// *variance* of per-tick work under different hash distributions.

#ifndef TWHEEL_SRC_METRICS_RUNNING_STATS_H_
#define TWHEEL_SRC_METRICS_RUNNING_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace twheel::metrics {

class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Population variance; sample variance differs negligibly at our sample sizes.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void Reset() { *this = RunningStats(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace twheel::metrics

#endif  // TWHEEL_SRC_METRICS_RUNNING_STATS_H_
