// M/G/infinity analytics for the Figure 3 model of a timer module.
//
// "Interestingly, this can be modeled as a single queue with infinite servers; this
// is valid because every timer in the queue is essentially decremented (or served)
// every timer tick. It is shown in [4] that we can use Little's result to obtain the
// average number in the queue; also the distribution of the remaining time of
// elements in the timer queue seen by a new request is the residual life density of
// the timer interval distribution."
//
// This module provides the closed forms that the fig3-mginf and sec32-insertion-cost
// benches compare against measurement:
//
//   * Little's law: E[outstanding] = lambda * E[interval].
//   * Residual-life mean: E[T^2] / (2 E[T]) (renewal theory).
//   * Expected sorted-list insertion scan lengths. A front search examines the
//     elements whose residual life is below the new draw, plus the terminating one;
//     under Poisson arrivals (PASTA) each of the n outstanding timers independently
//     has the residual-life law, so the scan averages n * p + O(1) with
//     p = P(residual < fresh draw):
//         exponential:  p = 1/2 front (memoryless: residual ~ same exponential)
//         uniform[0,a]: p = 2/3 front, 1/3 rear
//         constant:     p = 1   front, 0   rear   (rear insertion is O(1) —
//                        the paper's "all timer intervals have the same value" case)
//
// Section 3.2 quotes 2 + (2/3)n for negative-exponential and 2 + n/2 for uniform
// (front search) and 2 + n/3 for exponential rear search, citing Reeves [4]. Under
// the renewal-theoretic model above, the 2/3 and 1/3 constants belong to the
// *uniform* distribution and the exponential gives 1/2 either way; our benches
// measure the actual scan lengths so EXPERIMENTS.md can report which attribution the
// data supports. All three constants — n/3, n/2, 2n/3 — and the linear-in-n shape
// are reproduced either way.

#ifndef TWHEEL_SRC_QUEUEING_MGINF_H_
#define TWHEEL_SRC_QUEUEING_MGINF_H_

#include <cstdint>

namespace twheel::queueing {

// Little's law for the timer module viewed as G/G/inf: average outstanding timers.
inline double ExpectedOutstanding(double arrival_rate, double mean_interval) {
  return arrival_rate * mean_interval;
}

// Mean residual life of a renewal process with the given first two moments.
inline double ResidualLifeMean(double mean, double second_moment) {
  return second_moment / (2.0 * mean);
}

// First two moments of the library's interval distributions (continuous idealiza-
// tions; tick rounding perturbs them by O(1)).
struct Moments {
  double mean = 0.0;
  double second = 0.0;
};

inline Moments ExponentialMoments(double mean) { return {mean, 2.0 * mean * mean}; }

inline Moments UniformMoments(double lo, double hi) {
  double mean = 0.5 * (lo + hi);
  double second = (lo * lo + lo * hi + hi * hi) / 3.0;
  return {mean, second};
}

inline Moments ConstantMoments(double value) { return {value, value * value}; }

// P(residual life of an in-service interval < a fresh interval draw): the expected
// fraction of the sorted list a front-search insertion scans past.
double ScanFractionFrontExponential();
double ScanFractionFrontUniform(double lo, double hi);
double ScanFractionFrontConstant();

// Rear-search complements (fraction of list scanned from the tail).
inline double ScanFractionRear(double front_fraction) { return 1.0 - front_fraction; }

// The paper's quoted Section 3.2 closed forms, kept verbatim for comparison.
inline double PaperInsertCostExponentialFront(double n) { return 2.0 + 2.0 * n / 3.0; }
inline double PaperInsertCostUniformFront(double n) { return 2.0 + n / 2.0; }
inline double PaperInsertCostExponentialRear(double n) { return 2.0 + n / 3.0; }

// Renewal-model scan-length prediction: comparisons ~= n * fraction + 1.
inline double ModelScanLength(double n, double fraction) { return n * fraction + 1.0; }

}  // namespace twheel::queueing

#endif  // TWHEEL_SRC_QUEUEING_MGINF_H_
