#include "src/queueing/mginf.h"

namespace twheel::queueing {

double ScanFractionFrontExponential() {
  // Memorylessness: the residual of an exponential is the same exponential, so a
  // fresh draw exceeds a residual with probability exactly 1/2.
  return 0.5;
}

double ScanFractionFrontUniform(double lo, double hi) {
  // p = P(R < X) = (1/mu) * Int (1 - F(t))^2 dt over t >= 0, with F the uniform cdf:
  // the integrand is 1 on [0, lo) and ((hi - t)/(hi - lo))^2 on [lo, hi].
  double mu = 0.5 * (lo + hi);
  return (lo + (hi - lo) / 3.0) / mu;
}

double ScanFractionFrontConstant() {
  // Every residual lies strictly below the (constant) fresh draw: the front search
  // scans the entire list, and the rear search terminates immediately — the paper's
  // O(1) rear-insertion special case.
  return 1.0;
}

}  // namespace twheel::queueing
