// Experiment sparse-tick: batched AdvanceTo vs the per-tick loop over mostly
// dead time, for every wheel scheme.
//
// The workload is the paper's own motivating regime pushed to the sparse
// extreme: a handful of outstanding timers (16) spread across a 65536-tick
// span, so >= 99.9% of the ticks crossed have nothing due. The *_loop variants
// pay one PerTickBookkeeping call per tick (the paper's "per-tick cost is
// absorbed by the clock interrupt" caveat, in software); the *_batched variants
// cross the same span with one AdvanceTo call, letting the occupancy bitmap
// jump the cursor over every empty slot. scripts/bench_record.sh records both
// sides into BENCH_sparse_tick.json; the batched side must be >= 10x faster.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <array>
#include <cstddef>
#include <memory>

#include "src/core/basic_wheel.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/hybrid_wheel.h"
#include "src/core/timer_service.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

// One iteration = arm 16 timers across the span, then cross the whole span.
constexpr Duration kSpan = 65536;
constexpr std::size_t kTimers = 16;

template <typename MakeFn>
void RunSparseSpan(benchmark::State& state, MakeFn make, bool batched) {
  auto service = make();
  rng::Xoshiro256 gen(123);
  std::uint64_t fired = 0;
  service->set_expiry_handler([&fired](RequestId, Tick) { ++fired; });
  RequestId id = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      benchmark::DoNotOptimize(
          service->StartTimer(1 + gen.NextBounded(kSpan - 1), id++));
    }
    if (batched) {
      benchmark::DoNotOptimize(service->AdvanceTo(service->now() + kSpan));
    } else {
      benchmark::DoNotOptimize(service->AdvanceBy(kSpan));
    }
  }
  state.counters["ticks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSpan),
      benchmark::Counter::kIsRate);
  state.counters["fired/iter"] = benchmark::Counter(
      static_cast<double>(fired) / static_cast<double>(state.iterations()));
  const metrics::OpCounts counts = service->counts();
  state.counters["skip%"] = benchmark::Counter(
      counts.ticks == 0 ? 0.0
                        : 100.0 * static_cast<double>(counts.slots_skipped) /
                              static_cast<double>(counts.ticks));
}

std::unique_ptr<TimerService> MakeBasic() {
  return std::make_unique<BasicWheel>(kSpan);
}
std::unique_ptr<TimerService> MakeSorted() {
  return std::make_unique<HashedWheelSorted>(4096);
}
std::unique_ptr<TimerService> MakeUnsorted() {
  return std::make_unique<HashedWheelUnsorted>(4096);
}
std::unique_ptr<TimerService> MakeHybrid() {
  return std::make_unique<HybridWheel>(4096);
}
std::unique_ptr<TimerService> MakeHierarchical() {
  static constexpr std::array<std::size_t, 4> kLevels = {16, 16, 16, 16};
  return std::make_unique<HierarchicalWheel>(kLevels);
}

void BM_Scheme4Basic_Loop(benchmark::State& state) {
  RunSparseSpan(state, MakeBasic, /*batched=*/false);
}
void BM_Scheme4Basic_Batched(benchmark::State& state) {
  RunSparseSpan(state, MakeBasic, /*batched=*/true);
}
void BM_Scheme5Sorted_Loop(benchmark::State& state) {
  RunSparseSpan(state, MakeSorted, /*batched=*/false);
}
void BM_Scheme5Sorted_Batched(benchmark::State& state) {
  RunSparseSpan(state, MakeSorted, /*batched=*/true);
}
void BM_Scheme6Unsorted_Loop(benchmark::State& state) {
  RunSparseSpan(state, MakeUnsorted, /*batched=*/false);
}
void BM_Scheme6Unsorted_Batched(benchmark::State& state) {
  RunSparseSpan(state, MakeUnsorted, /*batched=*/true);
}
void BM_Hybrid_Loop(benchmark::State& state) {
  RunSparseSpan(state, MakeHybrid, /*batched=*/false);
}
void BM_Hybrid_Batched(benchmark::State& state) {
  RunSparseSpan(state, MakeHybrid, /*batched=*/true);
}
void BM_Scheme7Hierarchical_Loop(benchmark::State& state) {
  RunSparseSpan(state, MakeHierarchical, /*batched=*/false);
}
void BM_Scheme7Hierarchical_Batched(benchmark::State& state) {
  RunSparseSpan(state, MakeHierarchical, /*batched=*/true);
}

BENCHMARK(BM_Scheme4Basic_Loop);
BENCHMARK(BM_Scheme4Basic_Batched);
BENCHMARK(BM_Scheme5Sorted_Loop);
BENCHMARK(BM_Scheme5Sorted_Batched);
BENCHMARK(BM_Scheme6Unsorted_Loop);
BENCHMARK(BM_Scheme6Unsorted_Batched);
BENCHMARK(BM_Hybrid_Loop);
BENCHMARK(BM_Hybrid_Batched);
BENCHMARK(BM_Scheme7Hierarchical_Loop);
BENCHMARK(BM_Scheme7Hierarchical_Batched);

}  // namespace

TWHEEL_BENCHMARK_MAIN();
