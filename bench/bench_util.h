// Shared helpers for the per-experiment benchmark binaries.
//
// Two bench styles coexist in bench/:
//  * google-benchmark binaries for wall-clock latencies (Figures 4, 6, 8 and the
//    SMP study), where modern-hardware nanoseconds are the point, and
//  * self-printing table binaries for the paper's analytic results (Sections 3.2,
//    6.1.2, 6.2, 7, Appendix A), where operation counts are the point and each
//    binary regenerates the corresponding rows of EXPERIMENTS.md.
//
// Helpers here cover the second style: aligned table output.

#ifndef TWHEEL_BENCH_BENCH_UTIL_H_
#define TWHEEL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace twheel::bench {

// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void Row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-') + (c + 1 < widths.size() ? "  " : "");
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(widths[c], ' ');
      line += cell + (c + 1 < widths.size() ? "  " : "");
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

inline std::string FmtU(std::uint64_t v) { return std::to_string(v); }

}  // namespace twheel::bench

#endif  // TWHEEL_BENCH_BENCH_UTIL_H_
