// Experiment periodic: the expiry-path re-arm versus free-then-realloc.
//
// Section 2's dominant clients re-arm rather than expire; a periodic timer is
// the distilled version — every fire is immediately followed by a re-arm at
// expiry + period. StartPeriodic's expiry path relinks the live record in
// place (no arena free, no allocation, no fresh handle); the pre-StartPeriodic
// shape (sim::Simulator::Every before this facility existed) released the
// record on every fire and re-armed by calling StartTimer from the expiry
// handler. Three benchmark families:
//
//   periodic_rearm_micro/<scheme>/{relink,stopstart}
//       The re-arm primitive in isolation on a preloaded periodic population:
//       relink = the in-place RestartTimer machinery the expiry path uses;
//       stopstart = the cookie- and cadence-preserving StopTimer +
//       StartPeriodic round trip a facility without relink must pay. The
//       acceptance bar (relink >= 1.5x on every wheel scheme) reads off these
//       rows.
//   periodic_lap/<scheme>/{relink,stopstart}
//       Whole laps end to end: the clock advances, timers fire, and each fire
//       re-arms — natively (StartPeriodic population) versus handler re-arm
//       (one-shot population whose expiry handler restarts it, the old Every
//       shape). items_per_second counts dispatched laps, so the row pair
//       shows what the relink buys inside real tick processing.
//   periodic_server/<scheme>/sessions:N
//       End-to-end networked timer server throughput (src/net/timer_server.h):
//       N concurrent client sessions — up to the millions — primed with
//       periodic heartbeats plus live set/restart/cancel request churn over
//       lossy channels. items_per_second counts expiry callbacks pushed to
//       the downlink.
//
// scripts/bench_record.sh records this binary into BENCH_periodic.json and
// prints the relink-vs-stopstart speedup per scheme.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/net/timer_workload.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

// All five wheel schemes (the acceptance set) plus list/heap baselines.
constexpr SchemeId kBenchSchemes[] = {
    SchemeId::kScheme1Unordered,    SchemeId::kScheme3Heap,
    SchemeId::kScheme4BasicWheel,   SchemeId::kScheme4HybridList,
    SchemeId::kScheme5HashedSorted, SchemeId::kScheme6HashedUnsorted,
    SchemeId::kScheme7Hierarchical,
};

FacilityConfig BenchConfig(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = 512;  // basic wheel span covers kMaxPeriod
  config.level_sizes = {256, 64, 64, 64};
  return config;
}

constexpr std::size_t kPopulation = 4096;
constexpr Duration kMaxPeriod = 500;  // periods uniform in [1, 500]

// ---------------------------------------------------------------------------
// periodic_rearm_micro: the re-arm primitive, no clock movement.

struct PeriodicPopulation {
  std::unique_ptr<TimerService> service;
  std::vector<TimerHandle> handles;
};

PeriodicPopulation PreloadPeriodic(SchemeId id) {
  PeriodicPopulation p;
  p.service = MakeTimerService(BenchConfig(id));
  p.service->set_expiry_handler([](RequestId, Tick) {});
  rng::Xoshiro256 gen(7);
  p.handles.reserve(kPopulation);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    p.handles.push_back(p.service
                            ->StartPeriodic(1 + gen.NextBounded(kMaxPeriod), i,
                                            TimerService::kRepeatForever)
                            .value());
  }
  return p;
}

void BM_RearmMicroRelink(benchmark::State& state) {
  PeriodicPopulation p = PreloadPeriodic(static_cast<SchemeId>(state.range(0)));
  rng::Xoshiro256 gen(11);
  std::size_t i = 0;
  for (auto _ : state) {
    TimerError err =
        p.service->RestartTimer(p.handles[i], 1 + gen.NextBounded(kMaxPeriod));
    benchmark::DoNotOptimize(err);
    i = (i + 1) & (kPopulation - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RearmMicroStopStart(benchmark::State& state) {
  PeriodicPopulation p = PreloadPeriodic(static_cast<SchemeId>(state.range(0)));
  rng::Xoshiro256 gen(11);
  std::size_t i = 0;
  for (auto _ : state) {
    (void)p.service->StopTimer(p.handles[i]);
    p.handles[i] = p.service
                       ->StartPeriodic(1 + gen.NextBounded(kMaxPeriod), i,
                                       TimerService::kRepeatForever)
                       .value();
    i = (i + 1) & (kPopulation - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

// ---------------------------------------------------------------------------
// periodic_lap: laps dispatched per second inside real tick processing.

constexpr Duration kLapMin = 32;  // keep a healthy fire rate per batch
constexpr Duration kLapMax = 256;
constexpr Duration kBatch = 64;  // AdvanceTo stride per iteration

void BM_LapRelink(benchmark::State& state) {
  auto service = MakeTimerService(BenchConfig(static_cast<SchemeId>(state.range(0))));
  service->set_expiry_handler([](RequestId, Tick) {});
  rng::Xoshiro256 gen(7);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    (void)service
        ->StartPeriodic(kLapMin + gen.NextBounded(kLapMax - kLapMin + 1), i,
                        TimerService::kRepeatForever)
        .value();
  }
  std::size_t laps = 0;
  for (auto _ : state) {
    laps += service->AdvanceTo(service->now() + kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(laps));
}

void BM_LapStopStart(benchmark::State& state) {
  // The old Simulator::Every shape: a one-shot population whose expiry handler
  // re-arms by a fresh StartTimer — release, allocate, new handle, every lap.
  auto service = MakeTimerService(BenchConfig(static_cast<SchemeId>(state.range(0))));
  TimerService* raw = service.get();
  std::vector<Duration> periods(kPopulation);
  std::vector<TimerHandle> handles(kPopulation);
  service->set_expiry_handler([raw, &periods, &handles](RequestId id, Tick) {
    handles[id] = raw->StartTimer(periods[id], id).value();
  });
  rng::Xoshiro256 gen(7);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    periods[i] = kLapMin + gen.NextBounded(kLapMax - kLapMin + 1);
    handles[i] = service->StartTimer(periods[i], i).value();
  }
  std::size_t laps = 0;
  for (auto _ : state) {
    laps += service->AdvanceTo(service->now() + kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(laps));
}

// ---------------------------------------------------------------------------
// periodic_server: the networked timer server end to end.

void BM_Server(benchmark::State& state) {
  net::TimerServerHarnessConfig config;
  config.seed = 42;
  config.host_scheme = BenchConfig(static_cast<SchemeId>(state.range(0)));
  config.channel.loss_probability = 0.05;
  config.channel.delay_lo = 2;
  config.channel.delay_hi = 8;
  config.workload.num_sessions = static_cast<std::size_t>(state.range(1));
  config.workload.requests_per_tick = 4096;  // live churn during the run
  config.workload.timers_per_session = 1;
  config.workload.min_interval = 16;
  config.workload.max_interval = 128;
  config.workload.periodic_probability = 0.9;  // heartbeat-dominated sessions
  config.workload.periodic_repeat_max = 200;
  config.workload.seed = 99;
  net::TimerServerHarness harness(config);
  harness.Prime();  // the whole population concurrently registered
  std::uint64_t fires_before = harness.server().stats().fires_sent;
  for (auto _ : state) {
    harness.Step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      harness.server().stats().fires_sent - fires_before));
  state.counters["sessions"] =
      static_cast<double>(config.workload.num_sessions);
}

void RegisterAll() {
  for (SchemeId id : kBenchSchemes) {
    const std::string scheme = SchemeName(id);
    const auto arg = static_cast<std::int64_t>(id);
    benchmark::RegisterBenchmark(
        ("periodic_rearm_micro/" + scheme + "/relink").c_str(),
        BM_RearmMicroRelink)
        ->Arg(arg);
    benchmark::RegisterBenchmark(
        ("periodic_rearm_micro/" + scheme + "/stopstart").c_str(),
        BM_RearmMicroStopStart)
        ->Arg(arg);
    benchmark::RegisterBenchmark(("periodic_lap/" + scheme + "/relink").c_str(),
                                 BM_LapRelink)
        ->Arg(arg);
    benchmark::RegisterBenchmark(
        ("periodic_lap/" + scheme + "/stopstart").c_str(), BM_LapStopStart)
        ->Arg(arg);
  }
  // End-to-end server rows on the deployment-shaped schemes, up to millions of
  // concurrent sessions.
  for (SchemeId id : {SchemeId::kScheme6HashedUnsorted,
                      SchemeId::kScheme7Hierarchical, SchemeId::kScheme3Heap}) {
    const std::string scheme = SchemeName(id);
    auto* bench = benchmark::RegisterBenchmark(
        ("periodic_server/" + scheme).c_str(), BM_Server);
    bench->Args({static_cast<std::int64_t>(id), 1 << 17});
    bench->Args({static_cast<std::int64_t>(id), 1 << 21});
    bench->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return twheel::bench::BenchmarkMain(argc, argv);
}
