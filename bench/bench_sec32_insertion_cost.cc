// Experiment sec32-insertion-cost: Section 3.2's closed-form insertion costs for
// the ordered list (Scheme 2) under Poisson arrivals.
//
// The paper quotes (from Reeves [4]): "the average cost of insertion for negative
// exponential and uniform timer interval distributions is 2 + 2/3 n (exponential)
// and 2 + 1/2 n (uniform)... For a negative exponential distribution we can reduce
// the average cost to 2 + n/3 by searching the list from the rear."
//
// This bench measures elements examined per START_TIMER at steady state for each
// (distribution, direction) pair across a sweep of n, and prints the measurement
// next to BOTH the paper's attribution and the renewal-theory model (scan fraction
// p = P(residual < fresh draw): exponential 1/2 front and rear; uniform 2/3 front,
// 1/3 rear; constant 1 front, 0 rear). The linear shape and the constants {1/3,
// 1/2, 2/3} reproduce; which distribution owns which constant is decided by the
// data — see EXPERIMENTS.md for the discussion.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/sorted_list_timers.h"
#include "src/queueing/mginf.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;
  using workload::IntervalKind;

  std::printf("== sec32-insertion-cost: Scheme 2 comparisons per START_TIMER ==\n\n");
  bench::Table table({"distribution", "dir", "n", "measured", "model n*p+1",
                      "paper 2+2n/3", "paper 2+n/2", "paper 2+n/3"});

  const double kMeanInterval = 128.0;
  struct Case {
    const char* label;
    IntervalKind kind;
    SearchDirection direction;
    double fraction;
  };
  const Case cases[] = {
      {"exponential", IntervalKind::kExponential, SearchDirection::kFromFront,
       queueing::ScanFractionFrontExponential()},
      {"exponential", IntervalKind::kExponential, SearchDirection::kFromRear,
       queueing::ScanFractionRear(queueing::ScanFractionFrontExponential())},
      {"uniform", IntervalKind::kUniform, SearchDirection::kFromFront,
       queueing::ScanFractionFrontUniform(1, 255)},
      {"uniform", IntervalKind::kUniform, SearchDirection::kFromRear,
       queueing::ScanFractionRear(queueing::ScanFractionFrontUniform(1, 255))},
      {"constant", IntervalKind::kConstant, SearchDirection::kFromFront, 1.0},
      {"constant", IntervalKind::kConstant, SearchDirection::kFromRear, 0.0},
  };

  for (const Case& c : cases) {
    for (double n : {25.0, 50.0, 100.0, 200.0, 400.0}) {
      workload::WorkloadSpec spec;
      spec.seed = 320 + static_cast<std::uint64_t>(n);
      spec.intervals = c.kind;
      spec.interval_mean = kMeanInterval;
      spec.interval_lo = c.kind == IntervalKind::kConstant ? 128 : 1;
      spec.interval_hi = 255;
      spec.arrival_rate = n / kMeanInterval;  // Little's law: target n outstanding
      spec.warmup_starts = 4000;
      spec.measured_starts = 30000;

      SortedListTimers service(c.direction);
      auto result = workload::Run(service, spec);
      double n_measured = result.outstanding.mean();

      table.Row({c.label,
                 c.direction == SearchDirection::kFromFront ? "front" : "rear",
                 bench::Fmt(n_measured, 0), bench::Fmt(result.start_comparisons.mean(), 1),
                 bench::Fmt(queueing::ModelScanLength(n_measured, c.fraction), 1),
                 bench::Fmt(queueing::PaperInsertCostExponentialFront(n_measured), 1),
                 bench::Fmt(queueing::PaperInsertCostUniformFront(n_measured), 1),
                 bench::Fmt(queueing::PaperInsertCostExponentialRear(n_measured), 1)});
    }
  }
  table.Print();
  std::printf(
      "\nShape reproduced: cost is linear in n for every distribution, rear search\n"
      "beats front search for uniform (n/3 vs 2n/3) and is O(1) for constant\n"
      "intervals. The renewal model (column 5) tracks measurement; the paper's\n"
      "exponential<->uniform constant attribution appears transposed (see\n"
      "EXPERIMENTS.md).\n");
  return 0;
}
