// Experiment fig8-scheme4: the basic timing wheel's O(1) claims (Section 5).
//
// "This modified algorithm takes O(1) latency for START_TIMER, STOP_TIMER, and
// PER_TICK_BOOKKEEPING" for intervals under MaxInterval. Wall-clock latencies must
// stay flat as outstanding timers grow from 8 to 256k; per-tick cost is a few
// instructions ("it costs only a few more instructions for the same entity to step
// through an empty bucket").

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/basic_wheel.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

constexpr std::size_t kWheelSize = 1 << 16;

std::unique_ptr<BasicWheel> Loaded(std::size_t n) {
  auto wheel = std::make_unique<BasicWheel>(kWheelSize);
  rng::Xoshiro256 gen(42);
  for (std::size_t i = 0; i < n; ++i) {
    (void)wheel->StartTimer(1 + gen.NextBounded(kWheelSize - 1), i);
  }
  return wheel;
}

void BM_WheelStartStop(benchmark::State& state) {
  auto wheel = Loaded(static_cast<std::size_t>(state.range(0)));
  rng::Xoshiro256 gen(7);
  for (auto _ : state) {
    auto handle = wheel->StartTimer(1 + gen.NextBounded(kWheelSize - 1), 0);
    benchmark::DoNotOptimize(handle);
    wheel->StopTimer(handle.value());
  }
}

void BM_WheelTickThroughPopulation(benchmark::State& state) {
  // Ticking through a populated wheel: each tick visits one slot; expiring timers
  // are immediately re-armed by the handler so the population stays at n.
  auto wheel = std::make_unique<BasicWheel>(kWheelSize);
  rng::Xoshiro256 gen(9);
  wheel->set_expiry_handler([&](RequestId id, Tick) {
    (void)wheel->StartTimer(1 + gen.NextBounded(kWheelSize - 1), id);
  });
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    (void)wheel->StartTimer(1 + gen.NextBounded(kWheelSize - 1), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wheel->PerTickBookkeeping());
  }
  state.counters["work/tick"] =
      benchmark::Counter(static_cast<double>(wheel->counts().TickWork()) /
                         static_cast<double>(state.iterations()));
}

void BM_WheelRejectOutOfRange(benchmark::State& state) {
  // The guard itself must be O(1) and cheap.
  auto wheel = Loaded(1024);
  for (auto _ : state) {
    auto result = wheel->StartTimer(kWheelSize + 5, 0);
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace

BENCHMARK(BM_WheelStartStop)
    ->RangeMultiplier(8)
    ->Range(8, 262144)
    ->Name("fig8/scheme4/start_stop");
BENCHMARK(BM_WheelTickThroughPopulation)
    ->RangeMultiplier(8)
    ->Range(8, 262144)
    ->Name("fig8/scheme4/per_tick_rearming");
BENCHMARK(BM_WheelRejectOutOfRange)->Name("fig8/scheme4/reject_out_of_range");

BENCHMARK_MAIN();
