// Experiment sec7-vax: the paper's own measurement, regenerated.
//
// "The implementation took 13 cheap VAX instructions to insert a timer and 7 to
// delete a timer. The cost per tick was 4 instructions to skip an empty array
// location, and 6 instructions to decrement a timer and move to the next queue
// element. A further 9 instructions were needed to delete an expired timer and call
// the EXPIRY_PROCESSING routine. Thus even if we assume that every outstanding
// timer expires during one scan of the table, the average cost per tick is
// 4 + 15 * n/TableSize instructions."
//
// We run Scheme 6 at several load factors, weight our op counts with those exact
// constants, and fit the measured per-tick instruction cost against the closed
// form. An always-expire workload (no stops) reproduces the formula's worst-case
// assumption; the least-squares slope should land near 15 and the intercept near 4.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/metrics/vax_cost.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;

  constexpr std::size_t kTable = 256;
  metrics::VaxCostModel vax;

  std::printf("== sec7-vax: 'average cost per tick is 4 + 15 n/TableSize' (M=%zu) ==\n\n",
              kTable);
  bench::Table table({"n", "n/M", "measured vax/tick", "paper 4+15n/M", "err%"});

  std::vector<double> xs, ys;
  for (double load : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double n = load * kTable;
    workload::WorkloadSpec spec;
    spec.seed = 77;
    // Interval == TableSize exactly: "every outstanding timer expires during one
    // scan of the table", the formula's worst-case assumption — each timer is
    // visited exactly once and that visit costs the full 6 + 9 = 15 instructions.
    // (Random intervals of mean M average ~1.5 visits/life and steepen the slope
    // to ~6*1.5 + 9 = 18.)
    spec.intervals = workload::IntervalKind::kConstant;
    spec.interval_lo = kTable;
    spec.arrival_rate = n / static_cast<double>(kTable);  // Little: target n outstanding
    spec.stop_fraction = 0.0;  // every timer expires, the formula's assumption
    spec.warmup_starts = 4000;
    spec.measured_starts = 20000;

    HashedWheelUnsorted wheel(kTable);
    auto result = workload::Run(wheel, spec);

    const double n_measured = result.outstanding.mean();
    const double measured = vax.PerTick(result.measured_ops);
    const double predicted = metrics::VaxCostModel::PredictedPerTickScheme6(
        n_measured, static_cast<double>(kTable));
    xs.push_back(n_measured / kTable);
    ys.push_back(measured);
    table.Row({bench::Fmt(n_measured, 0), bench::Fmt(n_measured / kTable, 3),
               bench::Fmt(measured, 2), bench::Fmt(predicted, 2),
               bench::Fmt(100.0 * (measured - predicted) / predicted, 1)});
  }
  table.Print();

  // Least-squares fit measured = intercept + slope * (n/M).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double k = static_cast<double>(xs.size());
  const double slope = (k * sxy - sx * sy) / (k * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / k;
  std::printf("\nleast-squares fit: vax/tick = %.2f + %.2f * n/M   (paper: 4 + 15 * n/M)\n",
              intercept, slope);
  std::printf("\nThe slope bundles the 6-instruction decrement plus the amortized\n"
              "9-instruction expiry per timer per table scan; the intercept is the\n"
              "4-instruction empty-slot skip. \"If the size of the array is much larger\n"
              "than n, the average cost per tick can be close to 4 instructions\" —\n"
              "the first rows.\n");
  return 0;
}
