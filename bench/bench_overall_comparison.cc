// Experiment overall: the Section 7 conclusions, end to end.
//
// "For a general timer module, similar to the operating system facilities found in
// UNIX or VMS, that is expected to work well in a variety of environments, we
// recommend Scheme 6 or 7."
//
// Every scheme serves the same two mixed workloads — a retransmission-flavoured one
// (most timers stopped early) and a rate-control-flavoured one (every timer
// expires) — at small and large n. google-benchmark reports wall time per
// START_TIMER issued (bookkeeping, stops and expiries included), i.e. the cost of
// *being* the timer module for this stream.

#include <benchmark/benchmark.h>

#include "src/core/timer_facility.h"
#include "src/workload/workload.h"

namespace {

using namespace twheel;

workload::WorkloadSpec MakeSpec(bool stop_heavy, double outstanding) {
  workload::WorkloadSpec spec;
  spec.seed = 4242;
  spec.intervals = workload::IntervalKind::kExponential;
  spec.interval_mean = 512.0;
  spec.interval_cap = 16000;
  spec.arrival_rate = outstanding / spec.interval_mean;
  spec.stop_fraction = stop_heavy ? 0.85 : 0.0;
  spec.warmup_starts = 1000;
  spec.measured_starts = 20000;
  return spec;
}

void BM_Workload(benchmark::State& state) {
  const SchemeId scheme = static_cast<SchemeId>(state.range(0));
  const bool stop_heavy = state.range(1) != 0;
  const double outstanding = static_cast<double>(state.range(2));

  FacilityConfig config;
  config.scheme = scheme;
  config.wheel_size = scheme == SchemeId::kScheme4BasicWheel ||
                              scheme == SchemeId::kScheme4HybridList
                          ? 16384
                          : 256;
  config.level_sizes = {256, 64, 64};

  const auto spec = MakeSpec(stop_heavy, outstanding);
  double ticks = 0;
  for (auto _ : state) {
    auto service = MakeTimerService(config);
    auto result = workload::Run(*service, spec);
    benchmark::DoNotOptimize(result.expiries);
    ticks += static_cast<double>(result.ticks_run);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.measured_starts + spec.warmup_starts));
  state.counters["ticks/run"] = benchmark::Counter(ticks / static_cast<double>(state.iterations()));
  state.SetLabel(SchemeName(scheme));
}

void RegisterAll() {
  for (SchemeId id : kAllSchemes) {
    for (int stop_heavy : {1, 0}) {
      for (int n : {100, 5000}) {
        std::string name = std::string("overall/") + SchemeName(id) +
                           (stop_heavy ? "/retransmit_style" : "/rate_control_style") +
                           "/n=" + std::to_string(n);
        benchmark::RegisterBenchmark(name.c_str(), BM_Workload)
            ->Args({static_cast<int>(id), stop_heavy, n})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(3);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
