// Shared main() for the google-benchmark binaries whose JSON output is
// recorded into the repository (BENCH_*.json, via scripts/bench_record.sh).
//
// Why not BENCHMARK_MAIN(): the stock JSONReporter stamps the context's
// "library_build_type" from the libbenchmark *shared library's* compile flags,
// not from the flags this binary was built with. Distribution packages ship
// the library without NDEBUG, so every recording would claim "debug" even when
// the benchmark code itself — the thing actually being measured — was built
// -O2/Release, and scripts/bench_record.sh (which refuses to record debug
// numbers) could never record at all. TwheelJSONReporter reports the build
// type of THIS translation unit instead: the honest description of the
// measured code. Everything else (run data, aggregates, counters) is the
// inherited JSONReporter output, so downstream tooling parses the files
// unchanged.
//
// Usage — instead of BENCHMARK_MAIN():
//
//   TWHEEL_BENCHMARK_MAIN();                  // plain registration
//
//   int main(int argc, char** argv) {         // custom registration first
//     RegisterAll();
//     return twheel::bench::BenchmarkMain(argc, argv);
//   }

#ifndef TWHEEL_BENCH_BENCH_MAIN_H_
#define TWHEEL_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <ctime>
#include <ostream>
#include <string>

namespace twheel::bench {

// The build type of this translation unit — the flags the benchmark code and
// the twheel libraries in the same build tree were compiled with.
inline const char* TranslationUnitBuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// JSONReporter that writes the context block itself (with the honest
// library_build_type) and inherits run reporting from the stock reporter.
class TwheelJSONReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    const auto escape = [](const std::string& s) {
      std::string r;
      r.reserve(s.size());
      for (char c : s) {
        if (c == '"' || c == '\\') {
          r += '\\';
        }
        r += c;
      }
      return r;
    };
    char date[64] = "";
    std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
#if defined(_WIN32)
    localtime_s(&tm_buf, &now);
#else
    localtime_r(&now, &tm_buf);
#endif
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);

    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << date << "\",\n";
    out << "    \"host_name\": \"" << escape(context.sys_info.name) << "\",\n";
    if (Context::executable_name != nullptr) {
      out << "    \"executable\": \"" << escape(Context::executable_name)
          << "\",\n";
    }
    out << "    \"num_cpus\": " << context.cpu_info.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<long long>(context.cpu_info.cycles_per_second / 1e6)
        << ",\n";
    if (context.cpu_info.scaling != benchmark::CPUInfo::UNKNOWN) {
      out << "    \"cpu_scaling_enabled\": "
          << (context.cpu_info.scaling == benchmark::CPUInfo::ENABLED
                  ? "true"
                  : "false")
          << ",\n";
    }
    out << "    \"caches\": [\n";
    for (std::size_t i = 0; i < context.cpu_info.caches.size(); ++i) {
      const auto& cache = context.cpu_info.caches[i];
      out << "      {\n";
      out << "        \"type\": \"" << escape(cache.type) << "\",\n";
      out << "        \"level\": " << cache.level << ",\n";
      out << "        \"size\": " << cache.size << ",\n";
      out << "        \"num_sharing\": " << cache.num_sharing << "\n";
      out << "      }" << (i + 1 < context.cpu_info.caches.size() ? "," : "")
          << "\n";
    }
    out << "    ],\n";
    out << "    \"load_avg\": [";
    for (std::size_t i = 0; i < context.cpu_info.load_avg.size(); ++i) {
      out << (i != 0 ? "," : "") << context.cpu_info.load_avg[i];
    }
    out << "],\n";
    out << "    \"library_build_type\": \"" << TranslationUnitBuildType()
        << "\"\n";
    out << "  },\n";
    out << "  \"benchmarks\": [\n";
    return true;
  }
};

// Initialize, run, shut down — with the honest JSON reporter wired as the
// file reporter whenever --benchmark_out= was requested. (google-benchmark
// errors out if a file reporter is supplied without --benchmark_out, so the
// flag is sniffed before Initialize consumes argv.)
inline int BenchmarkMain(int argc, char** argv) {
  bool want_file = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      want_file = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (want_file) {
    benchmark::ConsoleReporter display;
    TwheelJSONReporter file_reporter;
    benchmark::RunSpecifiedBenchmarks(&display, &file_reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace twheel::bench

#define TWHEEL_BENCHMARK_MAIN()                                \
  int main(int argc, char** argv) {                            \
    return ::twheel::bench::BenchmarkMain(argc, argv);         \
  }                                                            \
  int main(int, char**)  // redeclaration swallows the macro's semicolon

#endif  // TWHEEL_BENCH_BENCH_MAIN_H_
