// Experiment lawn: the distinct-TTL crossover frontier — scheme 8 (Lawn)
// against schemes 4-7 as the number of distinct TTL values sweeps 4 .. 4096.
//
// Lawn's bet is that per-tick cost should scale with DEADLINE DIVERSITY, not
// population: each tick inspects one head per distinct-TTL bucket, so k TTL
// constants cost O(k) per tick whether 4 thousand or 4 million timers are
// live. The wheels make the opposite bet — per-tick cost follows population
// (bucket occupancy, migration traffic), not diversity. Sweeping D while
// holding the live population fixed maps where each bet wins:
//
//   lawn_tick/<scheme>/<D>/<live>  steady-state tick throughput (ticks/s,
//       fires/s as a counter): preload `live` timers round-robin over D
//       distinct TTLs, then run the per-tick loop with an expiry handler that
//       re-arms every fired timer at its original TTL — constant population,
//       the timer-module-as-kernel-facility regime. Lawn should be flat in
//       `live` and degrade only in D; the hashed wheels flat in D and degrade
//       in `live`/TableSize. The 4Mi-live rows are restricted to the O(1)-
//       insert schemes (lawn, basic, unsorted, hierarchical) so the recording
//       finishes in minutes; scheme 5's sorted insert is quadratic to preload
//       at that population, which is itself a Figure-9 result, not news.
//
//   lawn_start/<scheme>/<D>/<live>  start+stop pair cost at fixed population:
//       no ticks, pure mutation. Lawn must be flat across the whole D sweep
//       (bucket append via hash hit); lawn_capped64 shows the documented
//       fallback price — beyond 64 distinct TTLs new-TTL starts rear-search
//       the shared overflow list instead.
//
// scripts/bench_record.sh lawn records BENCH_lawn.json and prints the
// crossover table EXPERIMENTS.md quotes.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/lawn/lawn_timers.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

// TTLs spread across [64, ~16384]: well under every scheme's span (basic wheel
// 32768, hierarchy {256,64,64} spans 1Mi) and wide enough that the hashed
// wheels' 4096-slot tables see real revolution counts.
constexpr Duration kTtlBase = 64;
constexpr Duration kTtlSpread = 16320;

std::vector<Duration> MakeTtls(std::size_t distinct) {
  const Duration stride = std::max<Duration>(1, kTtlSpread / distinct);
  std::vector<Duration> ttls;
  ttls.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    ttls.push_back(kTtlBase + static_cast<Duration>(i) * stride);
  }
  return ttls;
}

std::unique_ptr<TimerService> MakeScheme(const std::string& label) {
  if (label == "lawn") {
    return std::make_unique<lawn::LawnTimers>();
  }
  if (label == "lawn_capped64") {
    lawn::LawnOptions options;
    options.max_distinct_ttls = 64;
    return std::make_unique<lawn::LawnTimers>(options);
  }
  FacilityConfig config;
  config.wheel_size = label == "basic32768" ? 32768 : 4096;
  config.level_sizes = {256, 64, 64};
  if (label == "basic32768") {
    config.scheme = SchemeId::kScheme4BasicWheel;
  } else if (label == "hybrid4096") {
    config.scheme = SchemeId::kScheme4HybridList;
  } else if (label == "sorted4096") {
    config.scheme = SchemeId::kScheme5HashedSorted;
  } else if (label == "unsorted4096") {
    config.scheme = SchemeId::kScheme6HashedUnsorted;
  } else {
    config.scheme = SchemeId::kScheme7Hierarchical;
  }
  return MakeTimerService(config);
}

// Steady-state tick throughput: `live` timers over D TTLs, every expiry
// re-armed at its original TTL from inside the handler.
void BM_LawnTick(benchmark::State& state, const std::string& label) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  const auto live = static_cast<std::size_t>(state.range(1));
  const std::vector<Duration> ttls = MakeTtls(distinct);
  auto service = MakeScheme(label);

  std::uint64_t fired = 0;
  TimerService* raw = service.get();
  service->set_expiry_handler([&fired, raw, &ttls](RequestId id, Tick) {
    ++fired;
    benchmark::DoNotOptimize(raw->StartTimer(ttls[id], id));
  });
  // Preload grouped by ascending TTL (request id = TTL index, so the handler
  // can re-arm without a side table). Ascending expiries keep the preload
  // linear for the capped lawn: every overflow insert rear-searches straight
  // to the tail instead of walking past the whole sorted list.
  for (std::size_t i = 0; i < live; ++i) {
    const RequestId id =
        static_cast<RequestId>(std::min(distinct - 1, i * distinct / live));
    if (!raw->StartTimer(ttls[id], id).has_value()) {
      state.SkipWithError("preload rejected");
      return;
    }
  }
  // Warm to steady state: cross the full TTL spread once so every bucket has
  // cycled at least once before measurement.
  for (Duration t = 0; t < kTtlBase + kTtlSpread; ++t) {
    raw->PerTickBookkeeping();
  }

  constexpr std::size_t kTicksPerIter = 64;
  for (auto _ : state) {
    for (std::size_t t = 0; t < kTicksPerIter; ++t) {
      benchmark::DoNotOptimize(raw->PerTickBookkeeping());
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kTicksPerIter));
  state.counters["fires/s"] = benchmark::Counter(
      static_cast<double>(fired), benchmark::Counter::kIsRate);
  state.counters["live"] = benchmark::Counter(static_cast<double>(live));
}

// Pure mutation cost at fixed population: one start + one stop per iteration,
// no ticks. The stop victim is a rolling slot in a preloaded handle ring, so
// the population and the bucket shapes stay constant.
void BM_LawnStart(benchmark::State& state, const std::string& label) {
  const auto distinct = static_cast<std::size_t>(state.range(0));
  const auto live = static_cast<std::size_t>(state.range(1));
  const std::vector<Duration> ttls = MakeTtls(distinct);
  auto service = MakeScheme(label);

  std::vector<TimerHandle> handles(live);
  // Ascending-TTL preload for the same reason as BM_LawnTick: the capped
  // lawn's overflow inserts must not go quadratic before measurement starts.
  for (std::size_t i = 0; i < live; ++i) {
    const std::size_t ttl_index = std::min(distinct - 1, i * distinct / live);
    StartResult r =
        service->StartTimer(ttls[ttl_index], static_cast<RequestId>(i));
    if (!r.has_value()) {
      state.SkipWithError("preload rejected");
      return;
    }
    handles[i] = r.value();
  }

  rng::Xoshiro256 gen(99);
  std::size_t cursor = 0;
  for (auto _ : state) {
    const std::size_t ttl_index = gen.NextBounded(distinct);
    if (service->StopTimer(handles[cursor]) != TimerError::kOk) {
      state.SkipWithError("stop of live handle failed");
      return;
    }
    StartResult r = service->StartTimer(ttls[ttl_index],
                                        static_cast<RequestId>(ttl_index));
    benchmark::DoNotOptimize(r);
    handles[cursor] = r.value();
    cursor = (cursor + 1) % live;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

constexpr std::array<const char*, 7> kAllLabels = {
    "lawn",       "lawn_capped64", "basic32768", "hybrid4096",
    "sorted4096", "unsorted4096",  "hier256x64x64"};
// O(1)-insert schemes only: preloading 4Mi into a sorted hash chain is
// quadratic, and the hybrid's per-slot lists fare no better.
constexpr std::array<const char*, 4> kBigLabels = {
    "lawn", "basic32768", "unsorted4096", "hier256x64x64"};

void RegisterAll() {
  constexpr std::int64_t kSmallLive = 1 << 16;   // 64Ki
  constexpr std::int64_t kBigLive = 1 << 22;     // 4Mi
  for (const char* label : kAllLabels) {
    for (std::int64_t distinct : {4, 16, 64, 256, 1024, 4096}) {
      benchmark::RegisterBenchmark(
          (std::string("lawn_tick/") + label).c_str(),
          [label](benchmark::State& s) { BM_LawnTick(s, label); })
          ->Args({distinct, kSmallLive});
      benchmark::RegisterBenchmark(
          (std::string("lawn_start/") + label).c_str(),
          [label](benchmark::State& s) { BM_LawnStart(s, label); })
          ->Args({distinct, kSmallLive});
    }
  }
  for (const char* label : kBigLabels) {
    for (std::int64_t distinct : {16, 256, 4096}) {
      benchmark::RegisterBenchmark(
          (std::string("lawn_tick/") + label).c_str(),
          [label](benchmark::State& s) { BM_LawnTick(s, label); })
          ->Args({distinct, kBigLive});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return twheel::bench::BenchmarkMain(argc, argv);
}
