// Experiment appA-hw: Appendix A.1's hardware-assist interrupt analysis.
//
// "In Scheme 6, the host is interrupted an average of T/M times per timer interval
// ... In Scheme 7, the host is interrupted at most m times ... If T and m are small
// and M is large, the interrupt overhead for such an implementation can be made
// negligible."
//
// A simulated scanning chip (src/hw/interrupt_model.h) absorbs empty-slot stepping
// and interrupts the host only for ticks with queue work. Rows sweep the mean timer
// interval T; columns give measured interrupts per expired timer against both
// models.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/timer_facility.h"
#include "src/hw/interrupt_model.h"
#include "src/hw/timer_chip.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

// Sparse population so per-tick interrupts are rarely shared between timers — the
// per-timer regime the appendix's formulas describe.
double MeasureInterruptsPerTimer(std::unique_ptr<TimerService> service, Duration mean_t,
                                 std::uint64_t seed) {
  hw::InterruptModel model(std::move(service));
  rng::Xoshiro256 gen(seed);
  rng::ExponentialInterval dist(static_cast<double>(mean_t));
  constexpr std::size_t kTimers = 64;
  for (std::size_t i = 0; i < kTimers; ++i) {
    // Stagger the starts so buckets rarely coincide.
    model.Run(97);
    Duration interval = dist.Draw(gen);
    if (interval > 50000) {
      interval = 50000;  // stay inside the Scheme 7 span
    }
    auto result = model.service().StartTimer(interval, i);
    TWHEEL_ASSERT(result.has_value());
  }
  model.Run(mean_t * 8);  // drain
  return model.InterruptsPerExpiry();
}

}  // namespace

int main() {
  constexpr std::size_t kTable = 256;
  const std::vector<std::size_t> kLevels = {64, 32, 32};  // m = 3, span 65536

  std::printf("== appA-hw: host interrupts with a scanning timer chip ==\n\n");
  bench::Table table({"mean T", "s6 interrupts/timer", "model T/M", "s7 interrupts/timer",
                      "bound m"});

  for (Duration mean_t : {Duration{256}, Duration{1024}, Duration{4096}, Duration{16384}}) {
    FacilityConfig s6;
    s6.scheme = SchemeId::kScheme6HashedUnsorted;
    s6.wheel_size = kTable;
    double i6 = MeasureInterruptsPerTimer(MakeTimerService(s6), mean_t, 1);

    FacilityConfig s7;
    s7.scheme = SchemeId::kScheme7Hierarchical;
    s7.level_sizes = kLevels;
    double i7 = MeasureInterruptsPerTimer(MakeTimerService(s7), mean_t, 1);

    table.Row({bench::FmtU(mean_t), bench::Fmt(i6, 2),
               bench::Fmt(static_cast<double>(mean_t) / kTable, 2), bench::Fmt(i7, 2),
               bench::Fmt(static_cast<double>(kLevels.size()), 0)});
  }
  table.Print();
  std::printf("\nScheme 6's interrupt load grows linearly with T/M; Scheme 7's stays under\n"
              "m = %zu regardless of T — the appendix's case for hierarchical wheels in\n"
              "hardware-assisted hosts with long timers and small chip memory.\n\n",
              kLevels.size());

  // Second table: the busy-bit protocol's full traffic, via the structural chip
  // model (hw::ChipAssistedWheel). "The only communication between the host and
  // chip is through interrupts" plus the host's busy/free notifications.
  std::printf("-- busy-bit protocol traffic (chip-assisted Scheme 6, M = %zu) --\n", kTable);
  bench::Table protocol({"mean T", "interrupts/timer", "busy msgs/timer",
                         "free msgs/timer", "host ticks charged"});
  for (Duration mean_t : {Duration{256}, Duration{4096}, Duration{16384}}) {
    hw::ChipAssistedWheel chip(kTable);
    rng::Xoshiro256 gen(9);
    rng::ExponentialInterval dist(static_cast<double>(mean_t));
    constexpr std::size_t kTimers = 64;
    for (std::size_t i = 0; i < kTimers; ++i) {
      chip.AdvanceBy(97);
      Duration interval = dist.Draw(gen);
      if (interval > 50000) {
        interval = 50000;
      }
      (void)chip.StartTimer(interval, i);
    }
    chip.AdvanceBy(mean_t * 8);
    const double expiries = static_cast<double>(chip.counts().expiries);
    protocol.Row({bench::FmtU(mean_t),
                  bench::Fmt(static_cast<double>(chip.host_interrupts()) / expiries, 2),
                  bench::Fmt(static_cast<double>(chip.busy_notifications()) / expiries, 2),
                  bench::Fmt(static_cast<double>(chip.free_notifications()) / expiries, 2),
                  bench::FmtU(chip.counts().empty_slot_checks)});
  }
  protocol.Print();
  std::printf("\nThe host is never charged for an empty tick (last column identically 0);\n"
              "it pays ~T/M interrupts plus ~1 busy + ~1 free message per timer.\n");
  return 0;
}
