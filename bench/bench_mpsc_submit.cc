// Experiment mpsc-submit: producer-side cost of the deferred-registration path.
//
// Appendix A.2 argues for sharded locks; the MPSC submission runtime goes one
// step further and removes the shard mutex from the producer path entirely —
// StartTimer/StopTimer become lock-free ring enqueues drained by the tick
// driver. The benchmark runs the ROADMAP's deployment shape (millions of live
// timers) rather than a toy wheel, because that is where the two submit paths
// genuinely diverge:
//
//   * locked submission must walk INTO the wheel on the producer thread: every
//     start hashes to a random slot of a multi-hundred-MB structure and edits
//     that slot's intrusive list under the shard mutex — two or three cache
//     misses per op that no amount of sharding removes;
//   * deferred submission touches only the hot per-shard ring and registration
//     table; and a start/stop pair whose cancel commits before the drain never
//     touches the wheel at all (the drain reclaims the entry with one CAS), so
//     short-lived timers — the common case for I/O timeouts — elide the cold
//     structure entirely.
//
// Deployment shape: a driver thread hot-loops batched AdvanceTo (1/16 of a
// lap per call; in MPSC mode each call also drains the rings), while 1/2/4/8
// producer threads hammer start/stop pairs:
//
//   locked    ShardedWheel(4, 1<<18)           each op locks a shard and edits
//                                              a random cold slot
//   deferred  ShardedWheel(4, 1<<18, submit)   each op is a lock-free ring
//                                              enqueue (SubmitPolicy::kSpin, so
//                                              backpressure blocks rather than
//                                              rejects and every iteration does
//                                              real work)
//
// scripts/bench_record.sh records this binary into BENCH_mpsc_submit.json and
// prints the locked-vs-deferred speedup per producer count.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <atomic>
#include <memory>
#include <thread>

#include "src/concurrent/sharded_wheel.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

constexpr std::size_t kShards = 4;
constexpr std::size_t kWheelSize = 1 << 18;  // slots per shard
constexpr std::size_t kPreload = 1 << 22;    // live timers across all shards
// Far beyond any tick count a run reaches: the preload never expires, so the
// wheel's live population stays constant for the whole measurement.
constexpr Duration kPreloadBase = 1u << 30;

std::unique_ptr<concurrent::ShardedWheel> g_service;
std::atomic<bool> g_stop_driver{false};
std::thread g_driver;

void Preload(concurrent::ShardedWheel& service) {
  rng::Xoshiro256 gen(42);
  for (std::size_t i = 0; i < kPreload; ++i) {
    // Spread across slots; kPreloadBase is a multiple of the wheel size, so
    // the slot comes from the random low bits alone.
    (void)service.StartTimer(kPreloadBase + gen.NextBounded(kWheelSize), i);
    if ((i & 1023) == 1023) {
      service.DrainSubmissions();  // no-op in locked mode; in MPSC mode keeps
                                   // the rings from filling before the driver
                                   // thread exists
    }
  }
  service.DrainSubmissions();
}

template <typename Make>
void RunSubmit(benchmark::State& state, Make make) {
  if (state.thread_index() == 0) {
    g_service = make();
    Preload(*g_service);
    g_stop_driver.store(false, std::memory_order_relaxed);
    g_driver = std::thread([] {
      // Hot tick loop in bounded batches (1/16 of a lap per AdvanceTo, so a
      // shard lock is held for one batch sweep at a time, not a whole lap):
      // the deployment tick path, continuously sweeping the live population
      // and (in MPSC mode) draining the rings at every batch boundary.
      while (!g_stop_driver.load(std::memory_order_relaxed)) {
        g_service->AdvanceTo(g_service->now() + kWheelSize / 16);
      }
    });
  }
  rng::Xoshiro256 gen(1000 + state.thread_index());
  for (auto _ : state) {
    auto handle = g_service->StartTimer(1 + gen.NextBounded(1 << 20), 0);
    benchmark::DoNotOptimize(handle);
    g_service->StopTimer(handle.value());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // one start + one stop
  if (state.thread_index() == 0) {
    g_stop_driver.store(true, std::memory_order_relaxed);
    g_driver.join();
    g_service.reset();
  }
}

void BM_SubmitLocked(benchmark::State& state) {
  RunSubmit(state, [] {
    return std::make_unique<concurrent::ShardedWheel>(kShards, kWheelSize);
  });
}

void BM_SubmitDeferred(benchmark::State& state) {
  RunSubmit(state, [] {
    concurrent::SubmitOptions submit;
    submit.ring_capacity = 1 << 18;
    // Per shard: its share of the preload plus a full ring of in-flight starts.
    submit.registration_capacity = 1 << 21;
    submit.on_full = concurrent::SubmitPolicy::kSpin;
    return std::make_unique<concurrent::ShardedWheel>(kShards, kWheelSize,
                                                      submit);
  });
}

}  // namespace

BENCHMARK(BM_SubmitLocked)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("mpsc_submit/locked");
BENCHMARK(BM_SubmitDeferred)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("mpsc_submit/deferred");

TWHEEL_BENCHMARK_MAIN();
