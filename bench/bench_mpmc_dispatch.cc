// MPMC tick pipeline: expiry dispatch throughput of a ShardedWheel driven by a
// DispatchPool, swept over drainers x shards x live timers.
//
// This is the payoff measurement for the multi-core tick pipeline: PR 3 made
// submission scale (MPSC rings), this PR makes *expiry delivery* scale (N
// drainers advancing and dispatching per-shard expiry batches, with work
// stealing). The wheel is preloaded with a steady-state population of
// kRepeatForever periodic timers — every fire re-arms on the expiry path
// (TryFirePeriodic), so the population is constant and every AdvanceTo(span)
// delivers ~live * span / mean_interval fires with zero refill traffic in the
// timed region. items_per_second therefore reads as sustained expiry
// dispatches per wall-clock second for that (drainers, shards, live) point.
//
// Counters per run:
//   steal_frac — stolen batches / published batches (how much the idle
//                drainers helped);
//   batches    — expiry batches published across the run.
//
// Single-core caveat: on a 1-CPU host (CI containers; see context.num_cpus in
// the recorded JSON) the drainer sweep measures oversubscription overhead, not
// parallel speedup — the curve is expected to be flat-to-slightly-negative
// there and only shows the >=3x at 4 drainers shape on real multi-core metal.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "bench/bench_main.h"
#include "src/concurrent/dispatch_pool.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/rng/rng.h"

namespace {

using twheel::Duration;
using twheel::RequestId;
using twheel::TimerService;
using twheel::concurrent::DispatchOptions;
using twheel::concurrent::DispatchPool;
using twheel::concurrent::ShardedWheel;
using twheel::concurrent::SubmitOptions;
using twheel::concurrent::SubmitPolicy;

constexpr std::size_t kWheelSize = 4096;
// Periodic cadences uniform in [kMinInterval, kMaxInterval]: ~1.6 fires per
// timer per span at the mean, so a span delivers more fires than live timers.
constexpr Duration kMinInterval = 64;
constexpr Duration kMaxInterval = 256;
constexpr Duration kSpan = 256;  // ticks delivered per timed AdvanceTo

std::size_t NextPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

void BM_MpmcDispatch(benchmark::State& state) {
  const std::size_t drainers = static_cast<std::size_t>(state.range(0));
  const std::uint32_t shards = static_cast<std::uint32_t>(state.range(1));
  const std::size_t live = static_cast<std::size_t>(state.range(2));

  // The whole preload sits in the submission rings until the first drain, so
  // the rings (and registration tables) are sized to the per-shard population.
  SubmitOptions submit;
  submit.ring_capacity = NextPow2(2 * live / shards + 2);
  submit.registration_capacity = NextPow2(2 * live / shards + 2);
  submit.on_full = SubmitPolicy::kReject;
  ShardedWheel wheel(shards, kWheelSize, submit);

  std::atomic<std::uint64_t> sink{0};
  wheel.set_expiry_handler([&sink](RequestId id, twheel::Tick) {
    sink.fetch_add(id, std::memory_order_relaxed);
  });

  twheel::rng::Xoshiro256 rng(42);
  for (std::size_t i = 0; i < live; ++i) {
    const Duration interval =
        kMinInterval + rng.NextBounded(kMaxInterval - kMinInterval + 1);
    auto started =
        wheel.StartPeriodic(interval, i, TimerService::kRepeatForever);
    if (!started.has_value()) {
      state.SkipWithError("preload rejected: capacities too small");
      return;
    }
  }
  // One single-threaded tick drains every ring and arms the population before
  // the pool (the pool must be the only clock driver once it exists).
  wheel.PerTickBookkeeping();

  DispatchOptions options;
  options.drainers = drainers;
  options.steal = true;
  DispatchPool pool(wheel, options);
  for (auto _ : state) {
    pool.AdvanceTo(wheel.now() + kSpan);
  }
  const std::uint64_t fires = pool.fires_dispatched();
  pool.Stop();
  benchmark::DoNotOptimize(sink.load());

  const auto counts = wheel.counts();
  state.SetItemsProcessed(static_cast<std::int64_t>(fires));
  state.counters["batches"] =
      benchmark::Counter(static_cast<double>(counts.dispatch_batches));
  state.counters["steal_frac"] = benchmark::Counter(
      counts.dispatch_batches == 0
          ? 0.0
          : static_cast<double>(counts.dispatch_steals) /
                static_cast<double>(counts.dispatch_batches));
}

void MpmcArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"drainers", "shards", "live"});
  for (std::int64_t drainers : {1, 2, 4, 8}) {
    for (std::int64_t shards : {16, 64}) {
      for (std::int64_t live : {std::int64_t{1} << 16, std::int64_t{1} << 20}) {
        bench->Args({drainers, shards, live});
      }
    }
  }
  bench->Unit(benchmark::kMillisecond);
  bench->UseRealTime();
}

BENCHMARK(BM_MpmcDispatch)->Apply(MpmcArgs)->Name("mpmc_dispatch");

}  // namespace

TWHEEL_BENCHMARK_MAIN();
