// Experiment static_dispatch: what the virtual TimerService interface costs,
// and what StaticTimerFacility<Scheme> (src/core/static_facility.h) saves.
//
// Every scheme is measured through both dispatch paths with identical loop
// code (the loop bodies are templates instantiated once per path):
//
//   static_dispatch/<scheme>/<op>/virtual
//       The scheme behind the opaque MakeTimerService factory, driven through
//       TimerService&. The factory lives in another translation unit, so the
//       compiler cannot see the dynamic type: every call is an honest vtable
//       dispatch and an optimization barrier.
//   static_dispatch/<scheme>/<op>/static
//       The same scheme held by value in StaticTimerFacility<Scheme>, whose
//       qualified forwards resolve at compile time and inline.
//
// Ops, chosen to bracket the dispatch-overhead-to-work ratio:
//
//   start_stop  StartTimer+StopTimer pair against a 4096-timer population —
//               two calls of moderate work (arena alloc/free + link/unlink).
//   restart     In-place relink over a preloaded population — the cheapest
//               client op, so dispatch overhead is proportionally largest.
//   tick        PerTickBookkeeping with 4096 periodic timers re-arming on
//               expiry — one call doing the most work; the delta bounds what
//               devirtualization is worth on the heavy path.
//
// Plus the record-layout half of the story (timer_record.h's hot/cold split):
//
//   space_at_scale/<live>
//       Measured PairedSlabArena slab footprint (not sizeof arithmetic) with
//       up to 100M live timers in a hashed wheel via the static facade.
//       Counters report hot/cold slab bytes and bytes per live timer; the
//       per-op working set is the 64-byte hot slab line, the cold bytes ride
//       in the parallel slab that per-op paths never touch.
//
// scripts/bench_record.sh records this binary into BENCH_static_dispatch.json
// and prints the per-scheme virtual-vs-static delta and the space table.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/baselines/heap_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/core/basic_wheel.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/hybrid_wheel.h"
#include "src/core/static_facility.h"
#include "src/core/timer_facility.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

constexpr std::size_t kPopulation = 4096;  // live timers during the op loops
constexpr Duration kMaxIv = 500;           // one-shot intervals in [1, 500]
constexpr Duration kMaxPeriod = 64;        // periodic cadences in [1, 64]
constexpr std::size_t kWheelSize = 512;    // basic wheel span covers kMaxIv
constexpr std::size_t kLevels[] = {256, 64, 64, 64};

// The virtual twin's construction parameters — identical to the static side's
// constructor arguments below, so the two rows differ only in dispatch.
FacilityConfig BenchConfig(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = kWheelSize;
  config.level_sizes = {256, 64, 64, 64};
  return config;
}

// ---------------------------------------------------------------------------
// Op loops. `Service` is either TimerService (every call a vtable dispatch —
// the dynamic type is factory-opaque) or StaticTimerFacility<Scheme> (every
// call a qualified forward, resolved at compile time). Same code, same seeds.

template <typename Service>
std::vector<TimerHandle> Preload(Service& service) {
  rng::Xoshiro256 gen(7);
  std::vector<TimerHandle> handles;
  handles.reserve(kPopulation);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    handles.push_back(
        service.StartTimer(1 + gen.NextBounded(kMaxIv), i).value());
  }
  return handles;
}

template <typename Service>
void StartStopBody(benchmark::State& state, Service& service) {
  const std::vector<TimerHandle> resident = Preload(service);
  rng::Xoshiro256 gen(11);
  for (auto _ : state) {
    StartResult started =
        service.StartTimer(1 + gen.NextBounded(kMaxIv), kPopulation);
    benchmark::DoNotOptimize(started);
    TimerError err = service.StopTimer(started.value());
    benchmark::DoNotOptimize(err);
  }
  state.SetItemsProcessed(state.iterations());  // start+stop pairs
}

template <typename Service>
void RestartBody(benchmark::State& state, Service& service) {
  std::vector<TimerHandle> handles = Preload(service);
  rng::Xoshiro256 gen(11);
  std::size_t i = 0;
  for (auto _ : state) {
    TimerError err =
        service.RestartTimer(handles[i], 1 + gen.NextBounded(kMaxIv));
    benchmark::DoNotOptimize(err);
    i = (i + 1) & (kPopulation - 1);
  }
  state.SetItemsProcessed(state.iterations());  // relinks
}

template <typename Service>
void TickBody(benchmark::State& state, Service& service) {
  service.set_expiry_handler([](RequestId, Tick) {});
  rng::Xoshiro256 gen(7);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    benchmark::DoNotOptimize(
        service.StartPeriodic(1 + gen.NextBounded(kMaxPeriod), i));
  }
  std::size_t fired = 0;
  for (auto _ : state) {
    fired += service.PerTickBookkeeping();
  }
  state.SetItemsProcessed(state.iterations());  // ticks
  state.counters["fires_per_tick"] =
      static_cast<double>(fired) / static_cast<double>(state.iterations());
}

// ---------------------------------------------------------------------------
// Registration: one virtual and one static row per scheme per op.

template <typename Scheme, typename... Args>
void RegisterScheme(SchemeId id, Args... args) {
  const std::string base = "static_dispatch/" + std::string(SchemeName(id));
  const FacilityConfig config = BenchConfig(id);

  benchmark::RegisterBenchmark(
      (base + "/start_stop/virtual").c_str(), [config](benchmark::State& st) {
        std::unique_ptr<TimerService> service = MakeTimerService(config);
        StartStopBody(st, *service);
      });
  benchmark::RegisterBenchmark(
      (base + "/start_stop/static").c_str(), [args...](benchmark::State& st) {
        StaticTimerFacility<Scheme> facility(args...);
        StartStopBody(st, facility);
      });

  benchmark::RegisterBenchmark(
      (base + "/restart/virtual").c_str(), [config](benchmark::State& st) {
        std::unique_ptr<TimerService> service = MakeTimerService(config);
        RestartBody(st, *service);
      });
  benchmark::RegisterBenchmark(
      (base + "/restart/static").c_str(), [args...](benchmark::State& st) {
        StaticTimerFacility<Scheme> facility(args...);
        RestartBody(st, facility);
      });

  benchmark::RegisterBenchmark(
      (base + "/tick/virtual").c_str(), [config](benchmark::State& st) {
        std::unique_ptr<TimerService> service = MakeTimerService(config);
        TickBody(st, *service);
      });
  benchmark::RegisterBenchmark(
      (base + "/tick/static").c_str(), [args...](benchmark::State& st) {
        StaticTimerFacility<Scheme> facility(args...);
        TickBody(st, facility);
      });
}

void RegisterDispatch() {
  RegisterScheme<UnorderedTimers>(SchemeId::kScheme1Unordered);
  RegisterScheme<HeapTimers>(SchemeId::kScheme3Heap);
  RegisterScheme<BasicWheel>(SchemeId::kScheme4BasicWheel, kWheelSize);
  RegisterScheme<HybridWheel>(SchemeId::kScheme4HybridList, kWheelSize);
  RegisterScheme<HashedWheelSorted>(SchemeId::kScheme5HashedSorted, kWheelSize);
  RegisterScheme<HashedWheelUnsorted>(SchemeId::kScheme6HashedUnsorted,
                                      kWheelSize);
  RegisterScheme<HierarchicalWheel>(SchemeId::kScheme7Hierarchical,
                                    std::span<const std::size_t>(kLevels));
}

// ---------------------------------------------------------------------------
// Space at scale: the measured arena footprint at N live timers.

void BM_SpaceAtScale(benchmark::State& state) {
  const std::size_t live = static_cast<std::size_t>(state.range(0));
  double hot_slab = 0;
  double cold_slab = 0;
  for (auto _ : state) {
    // Scheme 6 through the static facade: O(1) starts, 2^16 slots, intervals
    // spread across a 2^20-tick horizon (rounds absorb the range).
    StaticTimerFacility<HashedWheelUnsorted> facility(std::size_t{1} << 16);
    rng::Xoshiro256 gen(3);
    for (std::size_t i = 0; i < live; ++i) {
      benchmark::DoNotOptimize(
          facility.StartTimer(1 + gen.NextBounded(Duration{1} << 20), i));
    }
    hot_slab = static_cast<double>(facility.scheme().hot_slab_bytes());
    cold_slab = static_cast<double>(facility.scheme().cold_slab_bytes());
  }
  // items_per_second doubles as allocation throughput while the slabs grow.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(live));
  state.counters["live"] = static_cast<double>(live);
  state.counters["hot_slab_B"] = hot_slab;
  state.counters["cold_slab_B"] = cold_slab;
  state.counters["hot_B_per_live"] = hot_slab / static_cast<double>(live);
  state.counters["total_B_per_live"] =
      (hot_slab + cold_slab) / static_cast<double>(live);
}

}  // namespace

// 1M in ~70 MiB, 10M in ~0.7 GiB, 100M in ~7 GiB of record slabs (hot 64 B +
// cold slab alongside): one pass each — the number is a footprint, not a
// latency, so repetition buys nothing (Repetitions(1) holds even when the
// dispatch rows are recorded with --benchmark_repetitions).
BENCHMARK(BM_SpaceAtScale)
    ->Name("space_at_scale")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Repetitions(1)
    ->Arg(1'000'000)
    ->Arg(10'000'000)
    ->Arg(100'000'000);

int main(int argc, char** argv) {
  RegisterDispatch();
  return twheel::bench::BenchmarkMain(argc, argv);
}
