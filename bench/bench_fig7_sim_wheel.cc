// Experiment fig7-sim-wheel: the Figure 7 logic-simulation wheel versus the paper's
// wheels, on a timer-module workload.
//
// Section 4.2: "In Digital Simulations, most events happen within a short interval
// beyond the current time. Since timing wheel implementations rarely place event
// notices in the overflow list, they do not optimize this case. This is not true
// for a general purpose timer facility." The TEGAS wheel rescans its single,
// unsorted overflow list on every rotation — each far-future timer is touched once
// per cycle. Scheme 6 also touches each far timer once per cycle, but spread across
// buckets with no list rebuild; Scheme 4 simply bounds its range.
//
// Rows: interval spread (as a multiple of the wheel size) x structure, reporting
// bookkeeping ops per tick and the overflow-scan share. As intervals stretch beyond
// the cycle length, the TEGAS wheels' per-tick cost inflates with overflow
// residency while Scheme 6's stays at n/TableSize.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/sim/tegas_wheel.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;

  constexpr std::size_t kWheel = 64;
  std::printf("== fig7-sim-wheel: TEGAS overflow list vs hashed wheel (N = %zu) ==\n\n",
              kWheel);
  bench::Table table({"max interval", "structure", "ops/tick", "overflow scans",
                      "overflow moves", "p99 tick work"});

  for (Duration spread_multiplier : {Duration{1}, Duration{4}, Duration{16}}) {
    const Duration hi = kWheel * spread_multiplier;
    for (int which = 0; which < 3; ++which) {
      workload::WorkloadSpec spec;
      spec.seed = 700 + spread_multiplier;
      spec.intervals = workload::IntervalKind::kUniform;
      spec.interval_lo = 1;
      spec.interval_hi = hi;
      spec.arrival_rate = 4.0;
      spec.warmup_starts = 4000;
      spec.measured_starts = 40000;

      std::unique_ptr<TimerService> service;
      std::uint64_t scans = 0, moves = 0;
      std::string label;
      if (which == 0) {
        auto tegas = std::make_unique<sim::TegasWheel>(kWheel, sim::RotatePolicy::kFullCycle);
        sim::TegasWheel* raw = tegas.get();
        service = std::move(tegas);
        auto result = workload::Run(*service, spec);
        scans = raw->overflow_scans();
        moves = raw->overflow_drains();
        table.Row({std::to_string(hi), "tegas-full", bench::Fmt(result.tick_work.mean()),
                   bench::FmtU(scans), bench::FmtU(moves),
                   bench::FmtU(result.tick_work_hist.Quantile(0.99))});
      } else if (which == 1) {
        auto tegas = std::make_unique<sim::TegasWheel>(kWheel, sim::RotatePolicy::kHalfCycle);
        sim::TegasWheel* raw = tegas.get();
        service = std::move(tegas);
        auto result = workload::Run(*service, spec);
        scans = raw->overflow_scans();
        moves = raw->overflow_drains();
        table.Row({std::to_string(hi), "tegas-half", bench::Fmt(result.tick_work.mean()),
                   bench::FmtU(scans), bench::FmtU(moves),
                   bench::FmtU(result.tick_work_hist.Quantile(0.99))});
      } else {
        service = std::make_unique<HashedWheelUnsorted>(kWheel);
        auto result = workload::Run(*service, spec);
        table.Row({std::to_string(hi), "scheme6", bench::Fmt(result.tick_work.mean()),
                   "0", "0", bench::FmtU(result.tick_work_hist.Quantile(0.99))});
      }
    }
  }
  table.Print();
  std::printf("\nAt max interval == N everything fits one cycle and the structures tie.\n"
              "Beyond that, the TEGAS overflow list is rescanned every rotation (and\n"
              "every drained record is a second insertion), while Scheme 6's per-bucket\n"
              "rounds spread the same once-per-cycle touch with no list rebuilding.\n");
  return 0;
}
