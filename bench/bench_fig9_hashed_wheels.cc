// Experiment fig9-hashed: Schemes 5 and 6 (Section 6.1, Figure 9).
//
// The trade the two bucket disciplines make, measured across bucket load factors
// n/TableSize:
//   Scheme 5 (sorted buckets):  START_TIMER scans the bucket (avg O(1) only while
//                               n < TableSize); PER_TICK examines heads only.
//   Scheme 6 (unsorted):        START_TIMER O(1) worst case; PER_TICK walks the
//                               visited bucket — n/TableSize per tick on average.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;

  constexpr std::size_t kTable = 256;
  std::printf("== fig9-hashed: sorted vs unsorted buckets (TableSize = %zu) ==\n\n", kTable);
  bench::Table table({"n", "n/TableSize", "scheme", "cmp/start", "max cmp/start",
                      "ops/tick", "model n/M"});

  for (double load : {0.25, 1.0, 4.0, 16.0}) {
    const double n = load * kTable;
    workload::WorkloadSpec spec;
    spec.seed = 900 + static_cast<std::uint64_t>(load * 4);
    spec.intervals = workload::IntervalKind::kExponential;
    spec.interval_mean = 4096.0;  // >> TableSize: buckets hold many revolutions
    spec.interval_cap = 65536;
    spec.arrival_rate = n / spec.interval_mean;
    spec.warmup_starts = 6000 + static_cast<std::size_t>(4 * n);  // several mean lifetimes
    spec.measured_starts = 30000;

    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<TimerService> service;
      if (which == 0) {
        service = std::make_unique<HashedWheelSorted>(kTable);
      } else {
        service = std::make_unique<HashedWheelUnsorted>(kTable);
      }
      auto result = workload::Run(*service, spec);
      table.Row({bench::Fmt(result.outstanding.mean(), 0), bench::Fmt(load),
                 which == 0 ? "5 sorted" : "6 unsorted",
                 bench::Fmt(result.start_comparisons.mean(), 2),
                 bench::Fmt(result.start_comparisons.max(), 0),
                 bench::Fmt(result.tick_work.mean(), 2),
                 bench::Fmt(result.outstanding.mean() / kTable, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nScheme 6: cmp/start pinned at 0 at every load; ops/tick tracks the n/M\n"
      "model column. Scheme 5: cheap per-tick heads, but cmp/start grows linearly\n"
      "with bucket depth once n exceeds TableSize — \"depends too much on the hash\n"
      "distribution to be generally useful\" (Section 7).\n");
  return 0;
}
