// Experiment space: the paper's SPACE performance measure (Section 2), recorded.
//
// "SPACE: The memory required for the data structures used by the timer module."
// The paper's scattered space commentary, as recorded benchmark rows (this
// binary is wired into scripts/bench_record.sh -> BENCH_space.json):
//
//   space/<scheme>
//       Per-scheme SpaceProfile with 1000 timers outstanding, carried as
//       counters: fixed structure bytes, the scheme's essential per-record
//       bytes, the shared hot/cold record pair (the hot half is the per-op
//       cache footprint — pinned <= 64 by timer_record.h), and auxiliary
//       population-dependent storage. items_per_second is the start
//       throughput of the 1000-timer preload, so re-recordings also catch
//       allocation-path regressions.
//   space_coverage/<structure>
//       The structure cost of covering a full 32-bit interval range, the
//       paper's "it is difficult to justify 2^32 words of memory to implement
//       32 bit timers" scenario: flat wheel (arithmetic only — never
//       constructed), hashed wheel, 4x256 hierarchy, and Section 6.2's
//       s/min/h/day hierarchy (244 slots vs 8.64M flat).
//
// The wheels buy O(1) bookkeeping with fixed arrays; hashing and hierarchy
// shrink those arrays by 7 and 6-7 orders of magnitude respectively while
// keeping bounded per-tick work — the paper's central memory story.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/timer_facility.h"

namespace {

using namespace twheel;

// One row per scheme: configured as the other benches use them (wheels M=256,
// hierarchy 256/64/64), profiled with 1000 timers outstanding.
void BM_SpaceProfile(benchmark::State& state, SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = 256;
  config.level_sizes = {256, 64, 64};
  TimerService::SpaceProfile profile;
  for (auto _ : state) {
    auto service = MakeTimerService(config);
    for (RequestId i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(service->StartTimer(1 + (i % 200), i));
    }
    profile = service->Space();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["fixed_B"] = static_cast<double>(profile.fixed_bytes);
  state.counters["essential_B"] =
      static_cast<double>(profile.essential_record_bytes);
  state.counters["hot_B"] = static_cast<double>(profile.hot_record_bytes);
  state.counters["cold_B"] = static_cast<double>(profile.cold_record_bytes);
  state.counters["actual_B"] = static_cast<double>(profile.actual_record_bytes);
  state.counters["aux_B_at_1k"] = static_cast<double>(profile.auxiliary_bytes);
}

// Fixed structure to cover a 2^32-tick interval range. The flat wheel is pure
// arithmetic (nobody allocates 64 GiB of slot heads to make the paper's
// point); the compact structures are constructed and asked.
void BM_CoverageFlatWheel(benchmark::State& state) {
  const std::size_t slots = std::size_t{1} << 32;
  std::size_t fixed = 0;
  for (auto _ : state) {
    fixed = slots * sizeof(IntrusiveList<TimerRecord>);
    benchmark::DoNotOptimize(fixed);
  }
  state.counters["slots"] = static_cast<double>(slots);
  state.counters["fixed_B"] = static_cast<double>(fixed);
}

void BM_CoverageHashedWheel(benchmark::State& state) {
  std::size_t fixed = 0;
  for (auto _ : state) {
    HashedWheelUnsorted wheel(256);  // rounds absorb the range
    fixed = wheel.Space().fixed_bytes;
    benchmark::DoNotOptimize(fixed);
  }
  state.counters["slots"] = 256;
  state.counters["fixed_B"] = static_cast<double>(fixed);
}

void BM_CoverageHierarchy(benchmark::State& state,
                          std::initializer_list<std::size_t> levels,
                          std::size_t slots) {
  const std::vector<std::size_t> sizes(levels);
  std::size_t fixed = 0;
  for (auto _ : state) {
    HierarchicalWheel hierarchy(sizes);
    fixed = hierarchy.Space().fixed_bytes;
    benchmark::DoNotOptimize(fixed);
  }
  state.counters["slots"] = static_cast<double>(slots);
  state.counters["fixed_B"] = static_cast<double>(fixed);
}

void BM_CoverageHierarchy4x256(benchmark::State& state) {
  // 256^4 = 2^32 ticks spanned with 4 levels of 256.
  BM_CoverageHierarchy(state, {256, 256, 256, 256}, 1024);
}

void BM_CoverageHierarchyPaper(benchmark::State& state) {
  // Section 6.2: 60+60+24+100 = 244 locations vs 8.64 million flat slots.
  BM_CoverageHierarchy(state, {60, 60, 24, 100}, 244);
}

void RegisterAll() {
  for (SchemeId id : kAllSchemes) {
    benchmark::RegisterBenchmark(
        ("space/" + std::string(SchemeName(id))).c_str(),
        [id](benchmark::State& state) { BM_SpaceProfile(state, id); });
  }
  benchmark::RegisterBenchmark("space_coverage/flat_wheel_2^32",
                               BM_CoverageFlatWheel);
  benchmark::RegisterBenchmark("space_coverage/hashed_wheel_256",
                               BM_CoverageHashedWheel);
  benchmark::RegisterBenchmark("space_coverage/hierarchy_4x256",
                               BM_CoverageHierarchy4x256);
  benchmark::RegisterBenchmark("space_coverage/hierarchy_s_min_h_day",
                               BM_CoverageHierarchyPaper);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return twheel::bench::BenchmarkMain(argc, argv);
}
