// Experiment space: the paper's SPACE performance measure (Section 2), tabulated.
//
// "SPACE: The memory required for the data structures used by the timer module."
// The paper's scattered space commentary, in one table: Scheme 1's minimum, Scheme
// 2's pointer overhead, the wheels' memory-for-speed trade, Section 6.2's 244-slot
// hierarchy versus the 8.64-million-slot flat wheel, and Appendix A's chip memory.
//
// Two views: (a) configured instances as the other benches use them; (b) the
// structure cost of covering a full 32-bit interval range, the paper's "it is
// difficult to justify 2^32 words of memory to implement 32 bit timers" scenario.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/timer_facility.h"
#include "src/hw/timer_chip.h"

int main() {
  using namespace twheel;

  std::printf("== space: the Section 2 SPACE measure ==\n\n");
  std::printf("-- (a) configured instances (wheels M=256, hierarchy 256/64/64) --\n");
  bench::Table table({"scheme", "fixed bytes", "essential B/timer", "actual B/timer",
                      "aux B @1k timers"});
  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    config.wheel_size = 256;
    config.level_sizes = {256, 64, 64};
    auto service = MakeTimerService(config);
    for (RequestId i = 0; i < 1000; ++i) {
      (void)service->StartTimer(1 + (i % 200), i);
    }
    auto profile = service->Space();
    table.Row({std::string(service->name()), bench::FmtU(profile.fixed_bytes),
               bench::FmtU(profile.essential_record_bytes),
               bench::FmtU(profile.actual_record_bytes),
               bench::FmtU(profile.auxiliary_bytes)});
  }
  table.Print();

  std::printf("\n-- (b) fixed structure to cover a 32-bit interval range --\n");
  bench::Table coverage({"structure", "slots", "fixed bytes", "note"});
  const std::size_t head = sizeof(IntrusiveList<TimerRecord>);
  coverage.Row({"flat wheel (Scheme 4)", "4294967296",
                bench::FmtU(std::size_t{4294967296ULL} * head),
                "\"difficult to justify\""});
  coverage.Row({"hashed wheel (Scheme 6)", "256", bench::FmtU(256 * head),
                "rounds absorb the range"});
  {
    // 256 * 256 * 256 * 256 = 2^32 ticks with 4 levels of 256.
    HierarchicalWheel hierarchy(std::vector<std::size_t>{256, 256, 256, 256});
    coverage.Row({"hierarchy 4 x 256 (Scheme 7)", "1024",
                  bench::FmtU(hierarchy.Space().fixed_bytes),
                  "spans 2^32 exactly"});
  }
  {
    HierarchicalWheel paper(std::vector<std::size_t>{60, 60, 24, 100});
    coverage.Row({"paper's s/min/h/day hierarchy", "244",
                  bench::FmtU(paper.Space().fixed_bytes),
                  "vs 8.64M flat slots"});
  }
  coverage.Row({"sorted list (Scheme 2)", "0", "0", "all cost is per-record"});
  coverage.Print();

  std::printf("\nThe wheels buy O(1) bookkeeping with fixed arrays; hashing and hierarchy\n"
              "shrink those arrays by 7 and 6-7 orders of magnitude respectively while\n"
              "keeping bounded per-tick work — the paper's central memory story.\n");
  return 0;
}
