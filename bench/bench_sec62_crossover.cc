// Experiment sec62-crossover: the Scheme 6 vs Scheme 7 cost model (Section 6.2).
//
// "The total work done in Scheme 6 for [an] average sized timer is c(6) * T/M ...
// And in Scheme 7 it is bounded from above by c(7) * m ... The average cost per
// unit time for an average of n timers then becomes n*c(6)/M [Scheme 6] versus
// n*c(7)*m/T [Scheme 7]. ... for small values of T and large values of M, Scheme 6
// can be better than Scheme 7 for both START_TIMER and PER_TICK_BOOKKEEPING.
// However, for large values of T and small values of M, Scheme 7 will have a better
// average cost for PER_TICK_BOOKKEEPING but a greater cost for START_TIMER."
//
// Sweep the mean interval T at fixed comparable memory M; report bookkeeping ops
// per tick and per timer lifetime for both schemes, plus start cost. The crossover
// appears where T/M ~ c7*m/c6.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/timer_facility.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;

  // Comparable memory: Scheme 6 table of 256 slots; Scheme 7 hierarchy {64,32,32}
  // uses 128 slots and spans 65536 ticks.
  constexpr std::size_t kTable = 256;
  const std::vector<std::size_t> kLevels = {64, 32, 32};
  constexpr double kN = 512.0;  // steady-state outstanding timers

  std::printf("== sec62-crossover: Scheme 6 (M=%zu) vs Scheme 7 (levels 64/32/32) at n=%.0f ==\n\n",
              kTable, kN);
  bench::Table table({"mean T", "scheme", "ops/tick", "ops/timer-life", "cmp/start",
                      "model/tick"});

  for (double mean_t : {64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    workload::WorkloadSpec spec;
    spec.seed = 620 + static_cast<std::uint64_t>(mean_t);
    spec.intervals = workload::IntervalKind::kExponential;
    spec.interval_mean = mean_t;
    spec.interval_cap = 50000;  // keep inside the hierarchy span
    spec.arrival_rate = kN / mean_t;
    spec.warmup_starts = 4000;
    spec.measured_starts = 20000;

    for (int which = 0; which < 2; ++which) {
      FacilityConfig config;
      if (which == 0) {
        config.scheme = SchemeId::kScheme6HashedUnsorted;
        config.wheel_size = kTable;
      } else {
        config.scheme = SchemeId::kScheme7Hierarchical;
        config.level_sizes = kLevels;
      }
      auto service = MakeTimerService(config);
      auto result = workload::Run(*service, spec);

      const double n_measured = result.outstanding.mean();
      const double per_tick = result.tick_work.mean();
      const double per_life =
          result.expiries + result.stops_issued > 0
              ? static_cast<double>(result.measured_ops.decrement_visits +
                                    result.measured_ops.migrations)
                    / static_cast<double>(result.starts_issued)
              : 0.0;
      // The paper's models, with c6 = c7 = 1 elementary op.
      const double model = which == 0
                               ? n_measured / static_cast<double>(kTable)
                               : n_measured * static_cast<double>(kLevels.size()) / mean_t;
      table.Row({bench::Fmt(mean_t, 0), which == 0 ? "6" : "7", bench::Fmt(per_tick, 3),
                 bench::Fmt(per_life, 2), bench::Fmt(result.start_comparisons.mean(), 2),
                 bench::Fmt(model, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nScheme 6's per-tick cost stays at n/M regardless of T; Scheme 7's falls as\n"
      "n*m/T (each timer migrates at most m-1 times however long it lives). The\n"
      "crossover sits near T/M = m (T ~ %zu here); START_TIMER always costs Scheme 7\n"
      "its O(m) level search (cmp/start column), the paper's stated trade.\n",
      kTable * kLevels.size());
  return 0;
}
