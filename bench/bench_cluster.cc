// Experiment cluster: replication cost at the client — delivered callbacks/s
// for a steady-state population of >= 256Ki replicated sessions, swept over
// replication factor R in {1, 2, 3}.
//
// The cluster runs the async transport with lossless links (delays still
// apply), 3 nodes hosting Scheme 6 hashed wheels, and no fault schedule: the
// measurement isolates the protocol overhead itself — R arm messages per set,
// R-1 standby leases armed in the host schemes, the pop/notify/disarm/ack
// round per fire — not recovery behaviour (that is what tests/cluster/
// exercises). Every delivered fire immediately re-Sets its key, so the live
// population holds at kSessions for the whole run and each measured Step
// carries a steady mix of deliveries, re-arms, and lease disarms.
//
// scripts/bench_record.sh records this binary into BENCH_cluster.json; the
// per-R items/s (delivered client callbacks per second) is the headline:
// R=2 and R=3 buy failure survival at a measured multiple of the R=1 cost.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstdint>
#include <memory>

#include "src/cluster/cluster.h"

namespace {

using namespace twheel;

constexpr std::size_t kSessions = 1u << 18;  // 256Ki live replicated timers
constexpr std::size_t kNodes = 3;
// Interval spread: sessions re-arm across [1, kSpread], so every tick expires
// ~kSessions/kSpread timers once warm.
constexpr Duration kSpread = 1024;

Duration IntervalFor(std::uint64_t key) { return 1 + (key % kSpread); }

void BM_ClusterSteadyState(benchmark::State& state) {
  const auto replication = static_cast<std::uint32_t>(state.range(0));

  cluster::ClusterConfig config;
  config.nodes = kNodes;
  config.replication_factor = replication;
  config.link.loss_probability = 0.0;  // lossless: no retries in the measure
  config.link.delay_lo = 1;
  config.link.delay_hi = 2;
  config.node_scheme.scheme = SchemeId::kScheme6HashedUnsorted;
  config.node_scheme.wheel_size = 1u << 14;
  auto cluster = std::make_unique<cluster::TimerCluster>(config);

  // Steady state: every delivery re-arms its own key at the same cadence.
  cluster->set_fire_callback(
      [&cluster](std::uint64_t key, std::uint32_t, Tick) {
        cluster->Set(key, IntervalFor(key));
      });
  for (std::uint64_t key = 0; key < kSessions; ++key) {
    cluster->Set(key, IntervalFor(key));
  }
  // Warm through one full interval spread plus link delay so the arm traffic
  // settles and every tick thereafter carries its steady share of fires.
  for (Duration t = 0; t < kSpread + 16; ++t) {
    cluster->Step();
  }

  std::uint64_t delivered_base = cluster->stats().delivered;
  for (auto _ : state) {
    cluster->Step();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(cluster->stats().delivered - delivered_base));
  state.counters["live"] = static_cast<double>(cluster->live_timers());
  state.counters["R"] = replication;
}

}  // namespace

BENCHMARK(BM_ClusterSteadyState)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Name("cluster/steady_state_R");

TWHEEL_BENCHMARK_MAIN();
