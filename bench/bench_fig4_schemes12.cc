// Experiment fig4-schemes12: Figure 4's latency table for Schemes 1 and 2.
//
//              START_TIMER   STOP_TIMER   PER_TICK_BOOKKEEPING
//   Scheme 1      O(1)          O(1)            O(n)
//   Scheme 2      O(n)          O(1)            O(1)
//
// google-benchmark wall-clock measurements with n preloaded timers. The O(n) cells
// must grow ~linearly across the n range; the O(1) cells must stay flat.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/baselines/sorted_list_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

// Preload n timers with exponential lives far enough out that benchmark ticks
// never expire them. Intervals are inserted in descending order so the sorted
// list's preload is O(n) (each insert lands at the head) instead of O(n^2); the
// steady-state list contents are identical either way.
template <typename Scheme>
std::unique_ptr<Scheme> Loaded(std::size_t n) {
  auto scheme = std::make_unique<Scheme>();
  rng::Xoshiro256 gen(42);
  rng::ExponentialInterval dist(1 << 20);
  std::vector<Duration> intervals(n);
  for (auto& interval : intervals) {
    interval = dist.Draw(gen);
  }
  std::sort(intervals.rbegin(), intervals.rend());
  for (std::size_t i = 0; i < n; ++i) {
    (void)scheme->StartTimer(intervals[i], i);
  }
  return scheme;
}

template <typename Scheme>
void BM_StartStop(benchmark::State& state) {
  auto scheme = Loaded<Scheme>(static_cast<std::size_t>(state.range(0)));
  rng::Xoshiro256 gen(7);
  rng::ExponentialInterval dist(1 << 20);
  const std::uint64_t preload_comparisons = scheme->counts().comparisons;
  for (auto _ : state) {
    auto handle = scheme->StartTimer(dist.Draw(gen), 0);
    benchmark::DoNotOptimize(handle);
    scheme->StopTimer(handle.value());  // keeps n constant across iterations
  }
  state.counters["cmp/op"] = benchmark::Counter(
      static_cast<double>(scheme->counts().comparisons - preload_comparisons) /
      static_cast<double>(state.iterations()));
}

template <typename Scheme>
void BM_Tick(benchmark::State& state) {
  // Constant far-future expiries: the population must not drain mid-benchmark even
  // when small n makes individual ticks nanosecond-cheap (millions of iterations).
  auto scheme = std::make_unique<Scheme>();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    (void)scheme->StartTimer(Duration{1} << 40, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->PerTickBookkeeping());
  }
  state.counters["work/tick"] = benchmark::Counter(
      static_cast<double>(scheme->counts().TickWork()) /
      static_cast<double>(state.iterations()));
}

}  // namespace

BENCHMARK_TEMPLATE(BM_StartStop, UnorderedTimers)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Name("fig4/scheme1/start_stop");
BENCHMARK_TEMPLATE(BM_Tick, UnorderedTimers)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Name("fig4/scheme1/per_tick");
BENCHMARK_TEMPLATE(BM_StartStop, SortedListTimers)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Name("fig4/scheme2/start_stop");
BENCHMARK_TEMPLATE(BM_Tick, SortedListTimers)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Name("fig4/scheme2/per_tick");

BENCHMARK_MAIN();
