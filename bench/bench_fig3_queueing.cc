// Experiment fig3-mginf: the Figure 3 queueing model of a timer module.
//
// "We can use Little's result to obtain the average number in the queue; also the
// distribution of the remaining time of elements in the timer queue seen by a new
// request is the residual life density of the timer interval distribution."
//
// Rows: for each (interval distribution, arrival rate), the measured steady-state
// outstanding-timer count against lambda * E[T], and the measured front-scan
// fraction (the observable footprint of the residual-life distribution) against the
// renewal-theory prediction.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/sorted_list_timers.h"
#include "src/queueing/mginf.h"
#include "src/workload/workload.h"

int main() {
  using namespace twheel;
  using workload::IntervalKind;

  struct Case {
    const char* label;
    IntervalKind kind;
    double mean;
    Duration lo, hi;
    double scan_fraction;  // renewal-model P(residual < fresh draw)
  };
  const Case cases[] = {
      {"exponential(64)", IntervalKind::kExponential, 64.0, 0, 0,
       queueing::ScanFractionFrontExponential()},
      {"uniform[1,127]", IntervalKind::kUniform, 64.0, 1, 127,
       queueing::ScanFractionFrontUniform(1, 127)},
      {"constant(64)", IntervalKind::kConstant, 64.0, 64, 0,
       queueing::ScanFractionFrontConstant()},
  };
  const double rates[] = {0.25, 1.0, 4.0};

  std::printf("== fig3-mginf: timer module as M/G/inf queue ==\n\n");
  bench::Table table({"distribution", "lambda", "n = lambda*E[T]", "n measured", "err%",
                      "scan frac model", "scan frac measured"});

  for (const Case& c : cases) {
    for (double lambda : rates) {
      workload::WorkloadSpec spec;
      spec.seed = 1000 + static_cast<std::uint64_t>(lambda * 10);
      spec.intervals = c.kind;
      spec.interval_mean = c.mean;
      spec.interval_lo = c.lo;
      spec.interval_hi = c.hi;
      spec.arrival_rate = lambda;
      spec.warmup_starts = 4000;
      spec.measured_starts = 40000;

      SortedListTimers service(SearchDirection::kFromFront);
      auto result = workload::Run(service, spec);

      double predicted_n = queueing::ExpectedOutstanding(lambda, c.mean);
      double measured_n = result.outstanding.mean();
      double measured_fraction =
          measured_n > 0 ? (result.start_comparisons.mean() - 1.0) / measured_n : 0.0;

      table.Row({c.label, bench::Fmt(lambda), bench::Fmt(predicted_n, 1),
                 bench::Fmt(measured_n, 1),
                 bench::Fmt(100.0 * (measured_n - predicted_n) / predicted_n, 1),
                 bench::Fmt(c.scan_fraction, 3), bench::Fmt(measured_fraction, 3)});
    }
  }
  table.Print();
  std::printf("\nLittle's law holds within noise at every rate, and arrivals see\n"
              "residual-life-distributed remaining times (the scan-fraction column).\n");
  return 0;
}
