// Experiment fig6-trees: Figure 6's tree-based Scheme 3 latencies.
//
//   START_TIMER O(log n); STOP_TIMER O(1)/O(log n); PER_TICK O(1)
//
// plus the two caveats in the surrounding text: the unbalanced BST degenerates to a
// list under equal intervals, and lazy cancellation (the simulation idiom, here in
// the leftist heap) retains memory. Wall-clock via google-benchmark; the caveats as
// op-count counters.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/baselines/avl_timers.h"
#include "src/baselines/bst_timers.h"
#include "src/baselines/heap_timers.h"
#include "src/baselines/leftist_heap_timers.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

template <typename Scheme>
void BM_TreeStartStop(benchmark::State& state) {
  auto scheme = std::make_unique<Scheme>();
  rng::Xoshiro256 gen(42);
  rng::ExponentialInterval dist(1 << 20);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    (void)scheme->StartTimer(dist.Draw(gen), i);
  }
  const std::uint64_t preload_comparisons = scheme->counts().comparisons;
  for (auto _ : state) {
    auto handle = scheme->StartTimer(dist.Draw(gen), 0);
    benchmark::DoNotOptimize(handle);
    scheme->StopTimer(handle.value());
  }
  state.counters["cmp/op"] =
      benchmark::Counter(static_cast<double>(scheme->counts().comparisons - preload_comparisons) /
                         static_cast<double>(state.iterations()));
}

void BM_BstDegenerateConstantIntervals(benchmark::State& state) {
  // "Unbalanced binary trees easily degenerate into a linear list ... if a set of
  // equal timer intervals are inserted": start cost becomes O(n), not O(log n).
  auto scheme = std::make_unique<BstTimers>();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    (void)scheme->StartTimer(Duration{1} << 30, i);
  }
  for (auto _ : state) {
    auto handle = scheme->StartTimer(Duration{1} << 30, 0);
    benchmark::DoNotOptimize(handle);
    scheme->StopTimer(handle.value());
  }
  state.counters["height"] = benchmark::Counter(static_cast<double>(scheme->HeightSlow()));
}

void BM_AvlConstantIntervalsStayBalanced(benchmark::State& state) {
  // The balanced counterpoint to the BST degeneration: same adversarial input,
  // logarithmic cost (Figure 6's "balanced" column earning its rebalancing tax).
  auto scheme = std::make_unique<AvlTimers>();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    (void)scheme->StartTimer(Duration{1} << 30, i);
  }
  for (auto _ : state) {
    auto handle = scheme->StartTimer(Duration{1} << 30, 0);
    benchmark::DoNotOptimize(handle);
    scheme->StopTimer(handle.value());
  }
  state.counters["height"] = benchmark::Counter(static_cast<double>(scheme->HeightSlow()));
}

void BM_LeftistLazyCancelRetention(benchmark::State& state) {
  // STOP_TIMER is O(1) but memory is retained until corpses surface — report the
  // peak retention alongside the latency.
  auto scheme = std::make_unique<LeftistHeapTimers>();
  rng::Xoshiro256 gen(43);
  rng::ExponentialInterval dist(1 << 20);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<TimerHandle> handles;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(scheme->StartTimer(dist.Draw(gen), i).value());
  }
  std::size_t cursor = 0;
  double peak_retained = 0;
  for (auto _ : state) {
    // Stop one old timer and start a replacement: pure churn at constant n.
    benchmark::DoNotOptimize(scheme->StopTimer(handles[cursor]));
    handles[cursor] = scheme->StartTimer(dist.Draw(gen), cursor).value();
    cursor = (cursor + 1) % n;
    peak_retained = std::max(peak_retained, static_cast<double>(scheme->RetainedRecords()));
  }
  state.counters["peak_retained"] = benchmark::Counter(peak_retained);
}

}  // namespace

BENCHMARK_TEMPLATE(BM_TreeStartStop, HeapTimers)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Name("fig6/heap/start_stop");
BENCHMARK_TEMPLATE(BM_TreeStartStop, BstTimers)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Name("fig6/bst_random/start_stop");
BENCHMARK_TEMPLATE(BM_TreeStartStop, LeftistHeapTimers)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Name("fig6/leftist/start_stop");
BENCHMARK_TEMPLATE(BM_TreeStartStop, AvlTimers)
    ->RangeMultiplier(8)
    ->Range(64, 262144)
    ->Name("fig6/avl_balanced/start_stop");
BENCHMARK(BM_AvlConstantIntervalsStayBalanced)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Name("fig6/avl_constant_no_degenerate/start_stop");
BENCHMARK(BM_BstDegenerateConstantIntervals)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Name("fig6/bst_constant_degenerate/start_stop");
// Fixed iteration count: without ticks, every cancelled record is retained, so the
// benchmark's memory footprint is proportional to its iteration count.
BENCHMARK(BM_LeftistLazyCancelRetention)
    ->Arg(4096)
    ->Iterations(100000)
    ->Name("fig6/leftist_lazy_cancel/churn");

BENCHMARK_MAIN();
