// Experiment appA2-smp: Appendix A.2's symmetric-multiprocessing argument.
//
// "Algorithms that tie up a common data structure for a large period of time will
// reduce efficiency. For instance in Scheme 2, when Processor A inserts a timer
// into the ordered list other processors cannot process timer module routines until
// Processor A finishes and releases its semaphore. Scheme 5, 6, and 7 seem suited
// for implementation in symmetric multiprocessors."
//
// Threads hammer start/stop pairs against: (a) a global lock around Scheme 2 — the
// criticized configuration, whose critical section is the O(n) insertion scan;
// (b) a global lock around Scheme 6 — O(1) critical sections but still serialized;
// (c) the sharded Scheme 6 wheel — O(1) critical sections on independent locks.
// Throughput must collapse for (a), plateau for (b), and scale for (c).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/baselines/sorted_list_timers.h"
#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/rng/rng.h"

namespace {

using namespace twheel;

constexpr std::size_t kPreload = 2048;  // list depth: the Scheme 2 scan length

std::unique_ptr<TimerService> g_service;

void Preload(TimerService& service) {
  rng::Xoshiro256 gen(42);
  for (std::size_t i = 0; i < kPreload; ++i) {
    (void)service.StartTimer(1 + gen.NextBounded(1 << 20), i);
  }
}

template <typename Make>
void RunContended(benchmark::State& state, Make make) {
  if (state.thread_index() == 0) {
    g_service = make();
    Preload(*g_service);
  }
  rng::Xoshiro256 gen(1000 + state.thread_index());
  for (auto _ : state) {
    auto handle = g_service->StartTimer(1 + gen.NextBounded(1 << 20), 0);
    benchmark::DoNotOptimize(handle);
    g_service->StopTimer(handle.value());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // one start + one stop
  if (state.thread_index() == 0) {
    g_service.reset();
  }
}

void BM_GlobalLockScheme2(benchmark::State& state) {
  RunContended(state, [] {
    return std::make_unique<concurrent::LockedService>(std::make_unique<SortedListTimers>());
  });
}

void BM_GlobalLockScheme6(benchmark::State& state) {
  RunContended(state, [] {
    return std::make_unique<concurrent::LockedService>(
        std::make_unique<HashedWheelUnsorted>(4096));
  });
}

void BM_ShardedScheme6(benchmark::State& state) {
  RunContended(state, [] { return std::make_unique<concurrent::ShardedWheel>(16, 4096); });
}

}  // namespace

BENCHMARK(BM_GlobalLockScheme2)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("appA2/global_lock_scheme2");
BENCHMARK(BM_GlobalLockScheme6)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("appA2/global_lock_scheme6");
BENCHMARK(BM_ShardedScheme6)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("appA2/sharded_scheme6");

BENCHMARK_MAIN();
