// Experiment sec6-burstiness: Section 6.1.2's sharpest claim.
//
// "Notice that every TableSize ticks we decrement once all timers that are still
// living. Thus for n timers we do n/TableSize work on average per tick ...
// [regardless of the hash]. If all n timers hash into the same bucket, then every
// TableSize ticks we do O(n) work, but for intermediate ticks we do O(1) work.
// Thus the hash distribution in Scheme 6 only controls the 'burstiness' (variance)
// of the latency of PER_TICK_BOOKKEEPING, and not the average latency."
//
// Rows: three hash qualities — well-spread intervals, all-one-bucket intervals
// (constant multiples of TableSize), and a 4-bucket cluster — with identical n.
// The mean ops/tick column must match across rows; variance, p99, and max must not.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/metrics/histogram.h"
#include "src/metrics/running_stats.h"
#include "src/rng/rng.h"

int main() {
  using namespace twheel;

  constexpr std::size_t kTable = 256;
  constexpr std::size_t kTimers = 4096;  // n/M = 16
  constexpr Tick kMeasureTicks = 1 << 16;

  std::printf("== sec6-burstiness: hash quality moves variance, not mean (n=%zu, M=%zu) ==\n\n",
              kTimers, kTable);
  bench::Table table({"hash pattern", "mean ops/tick", "model n/M", "stddev", "p99", "max"});

  struct Pattern {
    const char* label;
    // Interval generator: re-arm intervals controlling the bucket distribution.
    Duration (*next)(rng::Xoshiro256&);
  };
  const Pattern patterns[] = {
      {"spread (uniform)",
       [](rng::Xoshiro256& g) { return Duration{1} + g.NextBounded(8 * kTable); }},
      {"one bucket (k*M)",
       [](rng::Xoshiro256& g) {
         return kTable * (1 + g.NextBounded(8));  // always slot (now + 0) of its bucket
       }},
      {"four buckets",
       [](rng::Xoshiro256& g) {
         return kTable * (1 + g.NextBounded(8)) + (g.NextBounded(4) * kTable / 4);
       }},
  };

  for (const Pattern& pattern : patterns) {
    HashedWheelUnsorted wheel(kTable);
    rng::Xoshiro256 gen(6);
    // Self-sustaining population: every expiry re-arms with the pattern's interval,
    // holding n constant forever.
    wheel.set_expiry_handler([&](RequestId id, Tick) {
      (void)wheel.StartTimer(pattern.next(gen), id);
    });
    for (std::size_t i = 0; i < kTimers; ++i) {
      (void)wheel.StartTimer(pattern.next(gen), i);
    }
    // Warmup one full revolution, then measure.
    wheel.AdvanceBy(kTable * 4);

    metrics::RunningStats stats;
    metrics::Histogram hist;
    for (Tick t = 0; t < kMeasureTicks; ++t) {
      auto before = wheel.counts();
      wheel.PerTickBookkeeping();
      std::uint64_t work = (wheel.counts() - before).TickWork();
      stats.Add(static_cast<double>(work));
      hist.Add(work);
    }
    table.Row({pattern.label, bench::Fmt(stats.mean(), 2),
               bench::Fmt(static_cast<double>(kTimers) / kTable, 2),
               bench::Fmt(stats.stddev(), 2), bench::FmtU(hist.Quantile(0.99)),
               bench::FmtU(hist.Quantile(1.0))});
  }
  table.Print();
  std::printf("\nAll rows share the mean (n/M = %.1f); the one-bucket row concentrates an\n"
              "entire revolution's work into single ticks (max ~ n), exactly the\n"
              "variance-only effect the paper uses to justify the cheap AND hash.\n",
              static_cast<double>(kTimers) / kTable);
  return 0;
}
