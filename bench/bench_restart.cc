// Experiment restart: in-place RestartTimer versus the stop+start fallback.
//
// Section 2's retransmission client restarts its per-connection timer on every
// ACK and almost never lets it expire, so the relink — not start or expiry —
// is the hot operation. RestartTimer keeps the record, the handle, and the
// generation and only moves the link; the fallback pays a full
// StopTimer+StartTimer round trip (unlink, retire the generation, allocate a
// fresh record, mint a fresh handle). Three benchmark families:
//
//   restart_micro/<scheme>/{inplace,stopstart}
//       Tight relink loop over a preloaded population, single-threaded, per
//       scheme. Pure per-relink cost; the acceptance bar (in-place >= 1.5x on
//       every wheel scheme) reads off these rows.
//   restart_tcp/<scheme>/{inplace,stopstart}
//       The src/workload RetransmitSpec replay — per-connection RTO timers
//       restarted on simulated ACK arrivals, ticks advancing, occasional real
//       retransmissions — measuring the same ratio inside a realistic mix.
//       items_per_second counts ACK relinks.
//   restart_mpsc/{inplace,stopstart}/threads:N
//       Multi-producer deferred ShardedWheel: producers relink their own
//       far-future timers while a driver thread sweeps AdvanceTo batches and
//       drains the rings. In-place is one kRestart ring command (no table
//       allocation, no new handle); the fallback is a cancel + start command
//       pair plus a registration-table alloc per relink.
//
// scripts/bench_record.sh records this binary into BENCH_restart.json and
// prints the in-place-vs-stopstart speedup per scheme and per producer count.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrent/sharded_wheel.h"
#include "src/core/timer_facility.h"
#include "src/rng/rng.h"
#include "src/workload/workload.h"

namespace {

using namespace twheel;

// ---------------------------------------------------------------------------
// Single-threaded families.

// Schemes under comparison: all five wheel variants (the acceptance set) plus
// two list/heap baselines for context.
constexpr SchemeId kBenchSchemes[] = {
    SchemeId::kScheme1Unordered,      SchemeId::kScheme3Heap,
    SchemeId::kScheme4BasicWheel,     SchemeId::kScheme4HybridList,
    SchemeId::kScheme5HashedSorted,   SchemeId::kScheme6HashedUnsorted,
    SchemeId::kScheme7Hierarchical,
};

FacilityConfig BenchConfig(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = 512;               // basic wheel span covers kMaxIv
  config.level_sizes = {256, 64, 64, 64};
  return config;
}

constexpr std::size_t kPopulation = 4096;  // live timers during the relink loop
constexpr Duration kMaxIv = 500;           // intervals drawn uniform in [1, 500]

struct Population {
  std::unique_ptr<TimerService> service;
  std::vector<TimerHandle> handles;
};

Population Preload(SchemeId id) {
  Population p;
  p.service = MakeTimerService(BenchConfig(id));
  p.service->set_expiry_handler([](RequestId, Tick) {});
  rng::Xoshiro256 gen(7);
  p.handles.reserve(kPopulation);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    p.handles.push_back(
        p.service->StartTimer(1 + gen.NextBounded(kMaxIv), i).value());
  }
  return p;
}

void BM_RestartMicroInplace(benchmark::State& state) {
  Population p = Preload(static_cast<SchemeId>(state.range(0)));
  rng::Xoshiro256 gen(11);
  std::size_t i = 0;
  for (auto _ : state) {
    TimerError err =
        p.service->RestartTimer(p.handles[i], 1 + gen.NextBounded(kMaxIv));
    benchmark::DoNotOptimize(err);
    i = (i + 1) & (kPopulation - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RestartMicroStopStart(benchmark::State& state) {
  Population p = Preload(static_cast<SchemeId>(state.range(0)));
  rng::Xoshiro256 gen(11);
  std::size_t i = 0;
  for (auto _ : state) {
    (void)p.service->StopTimer(p.handles[i]);
    p.handles[i] =
        p.service->StartTimer(1 + gen.NextBounded(kMaxIv), i).value();
    i = (i + 1) & (kPopulation - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

workload::RetransmitSpec TcpSpec(bool use_restart) {
  workload::RetransmitSpec spec;
  spec.seed = 42;
  spec.connections = 1024;
  spec.rto = 64;
  spec.ack_probability = 0.125;  // ~0.02% of RTO windows go quiet (loss)
  spec.ticks = 512;
  spec.use_restart = use_restart;
  return spec;
}

void BM_RestartTcp(benchmark::State& state, bool use_restart) {
  const SchemeId id = static_cast<SchemeId>(state.range(0));
  const workload::RetransmitSpec spec = TcpSpec(use_restart);
  std::size_t acks = 0;
  for (auto _ : state) {
    auto service = MakeTimerService(BenchConfig(id));
    const workload::RetransmitResult result =
        workload::RunRetransmit(*service, spec);
    benchmark::DoNotOptimize(result.retransmissions);
    acks += result.acks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(acks));
}

void BM_RestartTcpInplace(benchmark::State& state) { BM_RestartTcp(state, true); }
void BM_RestartTcpStopStart(benchmark::State& state) { BM_RestartTcp(state, false); }

// Registers one benchmark per scheme with the scheme name in the row label, so
// the JSON is self-describing (BM->range(0) carries the SchemeId).
void RegisterSingleThreaded() {
  for (SchemeId id : kBenchSchemes) {
    const std::string scheme = SchemeName(id);
    const auto arg = static_cast<std::int64_t>(id);
    benchmark::RegisterBenchmark(
        ("restart_micro/" + scheme + "/inplace").c_str(), BM_RestartMicroInplace)
        ->Arg(arg);
    benchmark::RegisterBenchmark(
        ("restart_micro/" + scheme + "/stopstart").c_str(),
        BM_RestartMicroStopStart)
        ->Arg(arg);
    benchmark::RegisterBenchmark(
        ("restart_tcp/" + scheme + "/inplace").c_str(), BM_RestartTcpInplace)
        ->Arg(arg);
    benchmark::RegisterBenchmark(
        ("restart_tcp/" + scheme + "/stopstart").c_str(), BM_RestartTcpStopStart)
        ->Arg(arg);
  }
}

// ---------------------------------------------------------------------------
// Multi-producer deferred ShardedWheel.

constexpr std::size_t kShards = 4;
constexpr std::size_t kWheelSize = 1 << 16;  // slots per shard
// Far beyond any tick count a run reaches, so relinked timers never expire and
// every RestartTimer call is a kOk relink of a live timer.
constexpr Duration kFarFuture = 1ull << 40;
constexpr std::size_t kPerThread = 4096;  // timers owned by each producer
constexpr std::size_t kMaxThreads = 8;

std::unique_ptr<concurrent::ShardedWheel> g_service;
// Preloaded by thread 0 (google-benchmark's loop-entry barrier orders the
// setup before any other thread's first iteration); slot t is thread t's
// private working set.
std::vector<std::vector<TimerHandle>> g_mine;
std::atomic<bool> g_stop_driver{false};
std::thread g_driver;

template <typename Body>
void RunMpsc(benchmark::State& state, Body body) {
  if (state.thread_index() == 0) {
    concurrent::SubmitOptions submit;
    submit.ring_capacity = 1 << 16;
    // Stop+start churn holds up to two generations of every producer timer
    // (cancel not yet drained + fresh start) plus slack.
    submit.registration_capacity = 1 << 18;
    submit.on_full = concurrent::SubmitPolicy::kSpin;
    g_service = std::make_unique<concurrent::ShardedWheel>(kShards, kWheelSize,
                                                           submit);
    g_mine.assign(kMaxThreads, {});
    rng::Xoshiro256 gen(99);
    for (std::size_t t = 0; t < kMaxThreads; ++t) {
      g_mine[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        g_mine[t].push_back(
            g_service->StartTimer(kFarFuture + gen.NextBounded(kWheelSize), i)
                .value());
      }
      g_service->DrainSubmissions();
    }
    g_stop_driver.store(false, std::memory_order_relaxed);
    g_driver = std::thread([] {
      // Deployment tick path: bounded AdvanceTo batches, draining the rings at
      // every batch boundary.
      while (!g_stop_driver.load(std::memory_order_relaxed)) {
        g_service->AdvanceTo(g_service->now() + kWheelSize / 16);
      }
    });
  }
  std::vector<TimerHandle>* mine = nullptr;
  rng::Xoshiro256 gen(1000 + state.thread_index());
  std::size_t i = 0;
  for (auto _ : state) {
    if (mine == nullptr) {  // first iteration: past the loop-entry barrier
      mine = &g_mine[static_cast<std::size_t>(state.thread_index())];
    }
    body(*mine, i, gen);
    i = (i + 1) & (kPerThread - 1);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_stop_driver.store(true, std::memory_order_relaxed);
    g_driver.join();
    g_service.reset();
    g_mine.clear();
  }
}

void BM_RestartMpscInplace(benchmark::State& state) {
  RunMpsc(state, [](std::vector<TimerHandle>& mine, std::size_t i,
                    rng::Xoshiro256& gen) {
    TimerError err = g_service->RestartTimer(
        mine[i], kFarFuture + gen.NextBounded(kWheelSize));
    benchmark::DoNotOptimize(err);
  });
}

void BM_RestartMpscStopStart(benchmark::State& state) {
  RunMpsc(state, [](std::vector<TimerHandle>& mine, std::size_t i,
                    rng::Xoshiro256& gen) {
    (void)g_service->StopTimer(mine[i]);
    mine[i] = g_service
                  ->StartTimer(kFarFuture + gen.NextBounded(kWheelSize), i)
                  .value();
  });
}

}  // namespace

BENCHMARK(BM_RestartMpscInplace)
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime()
    ->Name("restart_mpsc/inplace");
BENCHMARK(BM_RestartMpscStopStart)
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime()
    ->Name("restart_mpsc/stopstart");

int main(int argc, char** argv) {
  RegisterSingleThreaded();
  return twheel::bench::BenchmarkMain(argc, argv);
}
