// Experiment sec4-timeflow: the two time-flow mechanisms of Section 4, head to
// head on the same discrete-event simulation.
//
// Method 1 (GPSS/SIMULA): "the earliest event is immediately retrieved from some
// data structure (e.g. a priority queue) and the clock jumps to the time of this
// event" — Simulator::RunUntilIdleJumping over a peekable scheme.
// Method 2 (TEGAS/DECSIM): "the program ... increments the clock variable by c
// until it finds any outstanding events" — tick-stepping over a wheel.
//
// The trade is event density: sparse events favour jumping (no empty ticks at all);
// dense events favour the wheel (O(1) inserts, and "some entity needs to do O(1)
// work per tick to update the current time" anyway). Rows sweep mean event spacing;
// wall time per simulated event is the figure of merit.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/timer_facility.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace {

using namespace twheel;

struct RunResult {
  double wall_us_per_event = 0;
  std::uint64_t bookkeeping_calls = 0;
};

// A self-sustaining event cascade: each event schedules its successor at an
// exponential gap, `chains` of them in parallel, for `events` total firings.
RunResult Drive(SchemeId scheme, bool jump, double mean_gap, std::size_t chains,
                std::size_t events) {
  FacilityConfig config;
  config.scheme = scheme;
  config.wheel_size = 1 << 16;
  sim::Simulator simulator(MakeTimerService(config));
  rng::Xoshiro256 gen(4);
  rng::ExponentialInterval dist(mean_gap);

  std::size_t fired = 0;
  std::function<void()> hop = [&] {
    ++fired;
    if (fired + chains <= events) {
      simulator.After(dist.Draw(gen), hop);
    }
  };
  for (std::size_t c = 0; c < chains; ++c) {
    simulator.After(dist.Draw(gen), hop);
  }

  auto start = std::chrono::steady_clock::now();
  if (jump) {
    auto covered = simulator.RunUntilIdleJumping();
    TWHEEL_ASSERT(covered.has_value());
  } else {
    simulator.RunUntilIdle();
  }
  auto stop = std::chrono::steady_clock::now();

  RunResult result;
  result.wall_us_per_event = std::chrono::duration<double, std::micro>(stop - start).count() /
                             static_cast<double>(fired);
  result.bookkeeping_calls = simulator.service().counts().ticks;
  return result;
}

}  // namespace

int main() {
  std::printf("== sec4-timeflow: clock-jumping priority queue vs tick-stepping wheel ==\n\n");
  bench::Table table({"mean gap", "method", "us/event", "bookkeeping calls"});

  constexpr std::size_t kEvents = 200000;
  for (double gap : {2.0, 64.0, 4096.0}) {
    // Method 1: heap with clock jumping (16 sparse chains).
    auto jumping = Drive(SchemeId::kScheme3Heap, /*jump=*/true, gap, 16, kEvents);
    table.Row({bench::Fmt(gap, 0), "jump (heap, method 1)",
               bench::Fmt(jumping.wall_us_per_event, 3), bench::FmtU(jumping.bookkeeping_calls)});
    // Method 2: hashed wheel, tick stepping.
    auto ticking = Drive(SchemeId::kScheme6HashedUnsorted, /*jump=*/false, gap, 16, kEvents);
    table.Row({bench::Fmt(gap, 0), "tick (wheel, method 2)",
               bench::Fmt(ticking.wall_us_per_event, 3), bench::FmtU(ticking.bookkeeping_calls)});
  }
  table.Print();
  std::printf("\nWith sub-tick-dense events the wheel's O(1) inserts win; as events\n"
              "sparsen, tick-stepping pays ~gap empty bookkeeping calls per event while\n"
              "the jumping scheduler's cost stays flat — Section 4's observation that a\n"
              "timer module (which must tick anyway) and a simulator (which needn't)\n"
              "price empty time differently.\n");
  return 0;
}
