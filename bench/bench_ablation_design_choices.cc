// Ablations over the design parameters the paper leaves to the implementer:
//
//   (a) Scheme 6 table size — the memory/per-tick-work trade ("it is difficult to
//       justify 2^32 words of memory to implement 32 bit timers", Section 5; the
//       n/TableSize law prices every intermediate point).
//   (b) Scheme 7 geometry — how slot budget is split across levels changes both the
//       migration count and the START_TIMER level search.
//   (c) Scheme 7 migration policy — full/single-step/none trade bookkeeping ops
//       against expiry precision (Section 6.2's Wick Nichols discussion).
//
// Each table holds the workload fixed and sweeps one knob.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/metrics/running_stats.h"
#include "src/workload/workload.h"

namespace {

using namespace twheel;

workload::WorkloadSpec FixedWorkload(std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.intervals = workload::IntervalKind::kExponential;
  spec.interval_mean = 2048.0;
  spec.interval_cap = 30000;
  spec.arrival_rate = 1024.0 / 2048.0;  // ~1024 outstanding
  spec.stop_fraction = 0.3;
  spec.warmup_starts = 6000;
  spec.measured_starts = 25000;
  return spec;
}

void AblateTableSize() {
  std::printf("-- (a) Scheme 6 table size (n ~= 1024 outstanding) --\n");
  bench::Table table({"TableSize", "slots bytes*", "ops/tick", "p99 tick", "model n/M"});
  for (std::size_t size : {64, 256, 1024, 4096, 16384}) {
    HashedWheelUnsorted wheel(size);
    auto result = workload::Run(wheel, FixedWorkload(1));
    table.Row({bench::FmtU(size), bench::FmtU(size * 16),
               bench::Fmt(result.tick_work.mean(), 3),
               bench::FmtU(result.tick_work_hist.Quantile(0.99)),
               bench::Fmt(result.outstanding.mean() / static_cast<double>(size), 3)});
  }
  table.Print();
  std::printf("(* two pointers per slot head) Per-tick work falls as 1/M until the\n"
              "empty-slot walk dominates; past M ~ n the extra memory buys little.\n\n");
}

void AblateGeometry() {
  std::printf("-- (b) Scheme 7 level geometry (identical span ~2^18, n ~= 1024) --\n");
  bench::Table table({"levels", "slots", "ops/tick", "migrations/timer", "cmp/start"});
  struct Geometry {
    const char* label;
    std::vector<std::size_t> sizes;
  };
  // All spans within [2^18, 2^18.2] so the workload fits each identically.
  const Geometry geometries[] = {
      {"2 x 512", {512, 512}},
      {"3 x 64", {64, 64, 64}},
      {"4 x 23", {23, 23, 23, 23}},
      {"6 x 8", {8, 8, 8, 8, 8, 8}},
  };
  for (const auto& geometry : geometries) {
    HierarchicalWheel wheel(geometry.sizes);
    auto result = workload::Run(wheel, FixedWorkload(2));
    std::size_t slots = 0;
    for (std::size_t s : geometry.sizes) {
      slots += s;
    }
    table.Row({geometry.label, bench::FmtU(slots), bench::Fmt(result.tick_work.mean(), 3),
               bench::Fmt(static_cast<double>(result.measured_ops.migrations) /
                              static_cast<double>(result.starts_issued),
                          2),
               bench::Fmt(result.start_comparisons.mean(), 2)});
  }
  table.Print();
  std::printf("More levels -> fewer slots but more migrations and a longer level\n"
              "search; the paper's \"2 <= m <= 5 say\" window is where both stay small.\n\n");
}

void AblateMigrationPolicy() {
  std::printf("-- (c) Scheme 7 migration policy (levels 64/64/64, n ~= 1024) --\n");
  bench::Table table({"policy", "ops/tick", "migrations/timer", "mean |error|", "max |error|"});
  struct Policy {
    const char* label;
    MigrationPolicy policy;
  };
  const Policy policies[] = {
      {"full (exact)", MigrationPolicy::kFull},
      {"single-step", MigrationPolicy::kSingleStep},
      {"none (rounded)", MigrationPolicy::kNone},
  };
  for (const auto& p : policies) {
    HierarchicalWheelOptions options;
    options.migration = p.policy;
    HierarchicalWheel wheel(std::vector<std::size_t>{64, 64, 64}, options);

    // Measure expiry error directly: request ids encode the exact expiry.
    metrics::RunningStats error;
    wheel.set_expiry_handler([&](RequestId id, Tick when) {
      const Tick exact = id;  // id == start + interval, set below
      error.Add(static_cast<double>(when > exact ? when - exact : exact - when));
    });
    rng::Xoshiro256 gen(33);
    rng::ExponentialInterval dist(2048.0);
    metrics::OpCounts before = wheel.counts();
    std::size_t started = 0;
    for (Tick t = 0; t < 60000; ++t) {
      if (gen.NextBool(0.5)) {
        Duration interval = dist.Draw(gen);
        if (interval > 30000) {
          interval = 30000;
        }
        (void)wheel.StartTimer(interval, wheel.now() + interval);
        ++started;
      }
      wheel.PerTickBookkeeping();
    }
    wheel.AdvanceBy(40000);
    metrics::OpCounts delta = wheel.counts() - before;
    table.Row({p.label,
               bench::Fmt(static_cast<double>(delta.TickWork()) /
                              static_cast<double>(delta.ticks),
                          3),
               bench::Fmt(static_cast<double>(delta.migrations) /
                              static_cast<double>(started),
                          2),
               bench::Fmt(error.mean(), 1), bench::Fmt(error.max(), 0)});
  }
  table.Print();
  std::printf("Dropping migrations cuts bookkeeping at the price of expiry error\n"
              "bounded by the insertion level's granularity (\"a loss in precision of\n"
              "up to 50%%\"); single-step sits between, as the paper suggests.\n");
}

}  // namespace

int main() {
  std::printf("== ablations: implementation knobs the paper parameterizes ==\n\n");
  AblateTableSize();
  AblateGeometry();
  AblateMigrationPolicy();
  return 0;
}
