#!/usr/bin/env bash
# Build and run the recorded benchmarks, writing one BENCH_<name>.json per
# experiment at the repository root, with a python summary when python3 is
# available:
#
#   sparse_tick   BENCH_sparse_tick.json — loop-vs-batched tick advancement
#                 (*_Loop = one PerTickBookkeeping call per tick, *_Batched =
#                 one occupancy-bitmap AdvanceTo per span) per wheel scheme.
#   mpsc_submit   BENCH_mpsc_submit.json — locked vs. deferred (MPSC ring)
#                 start/stop submission throughput at 1/2/4/8 producer threads
#                 against a driver thread sweeping a 4Mi-timer wheel.
#   restart       BENCH_restart.json — in-place RestartTimer vs the
#                 StopTimer+StartTimer fallback: tight relink loop and
#                 TCP-retransmission replay per scheme single-threaded, plus
#                 multi-producer relinks against the deferred ShardedWheel.
#   periodic      BENCH_periodic.json — expiry-path periodic re-arm: relink vs
#                 the stop+start round trip (micro + whole-lap families per
#                 scheme), and the networked timer server's end-to-end callback
#                 throughput at up to millions of concurrent sessions.
#   mpmc_dispatch BENCH_mpmc_dispatch.json — DispatchPool expiry dispatch
#                 throughput over drainers x shards x live periodic timers
#                 (the MPMC tick pipeline; see bench/bench_mpmc_dispatch.cc
#                 for the single-core caveat on the drainer sweep).
#   lawn          BENCH_lawn.json — scheme 8 (Lawn) distinct-TTL crossover
#                 frontier vs schemes 4-7: steady-state tick throughput and
#                 start+stop cost swept over 4..4096 distinct TTLs at 64Ki
#                 and 4Mi live timers (bench/bench_lawn.cc).
#   space         BENCH_space.json — the Section 2 SPACE measure per scheme
#                 (fixed/essential/hot/cold/auxiliary bytes as counters) plus
#                 the 2^32-range coverage comparison (bench/bench_space.cc).
#   static_dispatch
#                 BENCH_static_dispatch.json — virtual TimerService vs
#                 StaticTimerFacility<Scheme> per scheme per op
#                 (start_stop/restart/tick), and the measured hot/cold slab
#                 footprint out to 100M live timers
#                 (bench/bench_static_dispatch.cc).
#   cluster       BENCH_cluster.json — the replicated timer cluster's
#                 steady-state delivered-callback throughput at 256Ki live
#                 replicated sessions, swept over replication factor
#                 R in {1, 2, 3} (bench/bench_cluster.cc): what failure
#                 survival costs as a multiple of the R=1 protocol overhead.
#
# Recordings are performance claims, so they are only taken from an optimized
# build: benchmarks are built in a dedicated -DCMAKE_BUILD_TYPE=Release tree
# (default: build-bench, separate from the dev/test build), and after each run
# the emitted JSON's context.library_build_type is checked — a "debug"
# recording is deleted and the script fails rather than committing numbers
# measured on unoptimized code. Compare a fresh recording against a committed
# one with scripts/bench_compare.py.
#
# Usage:
#   scripts/bench_record.sh                         # record every experiment
#   scripts/bench_record.sh mpsc_submit             # just one
#   scripts/bench_record.sh all --benchmark_repetitions=5
#
# Environment:
#   BUILD_DIR=<dir>   bench build directory (default: build-bench; configured
#                     as Release by this script)
#   JOBS=<n>          parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"

TARGET="all"
case "${1:-}" in
  sparse_tick|mpsc_submit|restart|periodic|mpmc_dispatch|lawn|space|static_dispatch|cluster|all)
    TARGET="$1"
    shift ;;
esac

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null

# Refuse to keep a recording whose context says the measured code was built
# without optimization. bench_main.h stamps library_build_type from the
# benchmark binary's own NDEBUG (not the libbenchmark .so), so "debug" here
# means the numbers really were taken on -O0 code.
check_release() {
  local out="$1"
  local build_type
  if command -v python3 >/dev/null 2>&1; then
    build_type="$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1])).get("context",{}).get("library_build_type","missing"))' "$out")"
  else
    build_type="$(grep -o '"library_build_type": "[a-z]*"' "$out" |
      head -n1 | cut -d'"' -f4 || echo missing)"
  fi
  if [ "$build_type" != "release" ]; then
    rm -f "$out"
    echo "ERROR: $out reported library_build_type=$build_type;" \
      "refusing to record benchmarks from an unoptimized build." >&2
    echo "       (build dir: $BUILD_DIR — delete it and rerun, or point" \
      "BUILD_DIR at a Release tree.)" >&2
    exit 1
  fi
}

record() {
  local bench="$1" out="$2"
  shift 2
  cmake --build "$BUILD_DIR" -j "$JOBS" --target "$bench"
  "$BUILD_DIR"/bench/"$bench" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "$@"
  check_release "$out"
  echo
  echo "Recorded $out"
}

summarize() {
  command -v python3 >/dev/null 2>&1 || return 0
  python3 - "$@"
}

if [ "$TARGET" = "sparse_tick" ] || [ "$TARGET" = "all" ]; then
  record bench_sparse_tick BENCH_sparse_tick.json "$@"
  summarize BENCH_sparse_tick.json <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# benchmark_repetitions > 1 adds *_mean/_median/_stddev rows; prefer the mean
# when present, plain rows otherwise.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if name.endswith("_mean") or base not in rows:
        rows[base] = b["real_time"]

print(f"{'scheme':<24}{'loop ns/span':>16}{'batched ns/span':>18}{'speedup':>10}")
for name, loop_ns in sorted(rows.items()):
    if not name.endswith("_Loop"):
        continue
    batched = rows.get(name[: -len("_Loop")] + "_Batched")
    if batched is None:
        continue
    scheme = name[len("BM_"):-len("_Loop")]
    print(f"{scheme:<24}{loop_ns:>16.0f}{batched:>18.0f}{loop_ns / batched:>9.1f}x")
PYEOF
fi

if [ "$TARGET" = "mpsc_submit" ] || [ "$TARGET" = "all" ]; then
  record bench_mpsc_submit BENCH_mpsc_submit.json "$@"
  summarize BENCH_mpsc_submit.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[(mode, threads)] = items_per_second; prefer the *_mean rows when
# benchmark_repetitions > 1 adds aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    m = re.match(r"mpsc_submit/(locked|deferred)/real_time/threads:(\d+)", name)
    if not m or "items_per_second" not in b:
        continue
    key = (m.group(1), int(m.group(2)))
    if name.endswith("_mean") or key not in rows:
        rows[key] = b["items_per_second"]

print(f"{'producers':<12}{'locked ops/s':>16}{'deferred ops/s':>18}{'speedup':>10}")
for threads in sorted({t for (_, t) in rows}):
    locked = rows.get(("locked", threads))
    deferred = rows.get(("deferred", threads))
    if locked is None or deferred is None:
        continue
    print(f"{threads:<12}{locked:>16,.0f}{deferred:>18,.0f}"
          f"{deferred / locked:>9.1f}x")
PYEOF
fi

if [ "$TARGET" = "restart" ] || [ "$TARGET" = "all" ]; then
  record bench_restart BENCH_restart.json "$@"
  summarize BENCH_restart.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[name] = items_per_second; prefer *_mean rows when repetitions add
# aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if "items_per_second" not in b:
        continue
    if name.endswith("_mean") or base not in rows:
        rows[base] = b["items_per_second"]

for family in ("restart_micro", "restart_tcp"):
    print(f"{family}:")
    print(f"  {'scheme':<26}{'stopstart/s':>14}{'inplace/s':>14}{'speedup':>10}")
    schemes = sorted({
        m.group(1)
        for n in rows
        if (m := re.match(rf"{family}/([^/]+)/(inplace|stopstart)(?:/|$)", n))
    })
    for scheme in schemes:
        inplace = next((v for n, v in rows.items()
                        if n.startswith(f"{family}/{scheme}/inplace")), None)
        stopstart = next((v for n, v in rows.items()
                          if n.startswith(f"{family}/{scheme}/stopstart")), None)
        if inplace is None or stopstart is None:
            continue
        print(f"  {scheme:<26}{stopstart:>14,.0f}{inplace:>14,.0f}"
              f"{inplace / stopstart:>9.2f}x")
    print()

mpsc = {}
for name, ips in rows.items():
    m = re.match(r"restart_mpsc/(inplace|stopstart)/real_time/threads:(\d+)", name)
    if m:
        mpsc[(m.group(1), int(m.group(2)))] = ips
if mpsc:
    print("restart_mpsc (deferred ShardedWheel):")
    print(f"  {'producers':<12}{'stopstart/s':>14}{'inplace/s':>14}{'speedup':>10}")
    for threads in sorted({t for (_, t) in mpsc}):
        inplace = mpsc.get(("inplace", threads))
        stopstart = mpsc.get(("stopstart", threads))
        if inplace is None or stopstart is None:
            continue
        print(f"  {threads:<12}{stopstart:>14,.0f}{inplace:>14,.0f}"
              f"{inplace / stopstart:>9.2f}x")
PYEOF
fi

if [ "$TARGET" = "periodic" ] || [ "$TARGET" = "all" ]; then
  record bench_periodic BENCH_periodic.json "$@"
  summarize BENCH_periodic.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[name] = items_per_second; prefer *_mean rows when repetitions add
# aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if "items_per_second" not in b:
        continue
    if name.endswith("_mean") or base not in rows:
        rows[base] = b["items_per_second"]

for family in ("periodic_rearm_micro", "periodic_lap"):
    print(f"{family}:")
    print(f"  {'scheme':<26}{'stopstart/s':>14}{'relink/s':>14}{'speedup':>10}")
    schemes = sorted({
        m.group(1)
        for n in rows
        if (m := re.match(rf"{family}/([^/]+)/(relink|stopstart)(?:/|$)", n))
    })
    for scheme in schemes:
        relink = next((v for n, v in rows.items()
                       if n.startswith(f"{family}/{scheme}/relink")), None)
        stopstart = next((v for n, v in rows.items()
                          if n.startswith(f"{family}/{scheme}/stopstart")), None)
        if relink is None or stopstart is None:
            continue
        print(f"  {scheme:<26}{stopstart:>14,.0f}{relink:>14,.0f}"
              f"{relink / stopstart:>9.2f}x")
    print()

server = {
    (m.group(1), int(m.group(3))): ips
    for name, ips in rows.items()
    if (m := re.match(r"periodic_server/([^/]+)/(\d+)/(\d+)", name))
}
if server:
    print("periodic_server (end-to-end callbacks/s):")
    print(f"  {'scheme':<26}{'sessions':>12}{'callbacks/s':>14}")
    for (scheme, sessions) in sorted(server):
        print(f"  {scheme:<26}{sessions:>12,}{server[(scheme, sessions)]:>14,.0f}")
PYEOF
fi

if [ "$TARGET" = "mpmc_dispatch" ] || [ "$TARGET" = "all" ]; then
  record bench_mpmc_dispatch BENCH_mpmc_dispatch.json "$@"
  summarize BENCH_mpmc_dispatch.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

ncpus = data.get("context", {}).get("num_cpus", "?")

# rows[(drainers, shards, live)] = (items_per_second, steal_frac); prefer
# *_mean rows when repetitions add aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    m = re.match(
        r"mpmc_dispatch/drainers:(\d+)/shards:(\d+)/live:(\d+)", name)
    if not m or "items_per_second" not in b:
        continue
    key = tuple(int(g) for g in m.groups())
    if name.endswith("_mean") or key not in rows:
        rows[key] = (b["items_per_second"], b.get("steal_frac", 0.0))

print(f"mpmc_dispatch (sustained expiry dispatches/s; host num_cpus={ncpus}):")
for (shards, live) in sorted({(s, l) for (_, s, l) in rows}):
    print(f"  shards={shards} live={live:,}:")
    print(f"    {'drainers':<10}{'fires/s':>16}{'steal_frac':>12}{'vs 1':>8}")
    base = rows.get((1, shards, live), (None, 0.0))[0]
    for drainers in sorted({d for (d, s, l) in rows if (s, l) == (shards, live)}):
        ips, steal = rows[(drainers, shards, live)]
        rel = f"{ips / base:>7.2f}x" if base else f"{'-':>8}"
        print(f"    {drainers:<10}{ips:>16,.0f}{steal:>12.3f}{rel}")
    print()
print("NOTE: drainer scaling above 1 requires num_cpus > 1; on a single-CPU")
print("host the sweep measures oversubscription overhead (expected flat).")
PYEOF
fi

if [ "$TARGET" = "lawn" ] || [ "$TARGET" = "all" ]; then
  record bench_lawn BENCH_lawn.json "$@"
  summarize BENCH_lawn.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[(family, scheme, distinct, live)] = items_per_second; prefer *_mean
# rows when repetitions add aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    m = re.match(r"(lawn_tick|lawn_start)/([^/]+)/(\d+)/(\d+)", name)
    if not m or "items_per_second" not in b:
        continue
    key = (m.group(1), m.group(2), int(m.group(3)), int(m.group(4)))
    if name.endswith("_mean") or key not in rows:
        rows[key] = b["items_per_second"]

for family, unit in (("lawn_tick", "ticks/s"), ("lawn_start", "pairs/s")):
    sub = {k: v for k, v in rows.items() if k[0] == family}
    if not sub:
        continue
    for live in sorted({k[3] for k in sub}):
        distincts = sorted({k[2] for k in sub if k[3] == live})
        print(f"{family} ({unit}) at live={live:,}:")
        header = f"  {'scheme':<16}" + "".join(f"{f'D={d}':>12}" for d in distincts)
        print(header)
        schemes = sorted({k[1] for k in sub if k[3] == live})
        for scheme in schemes:
            cells = []
            for d in distincts:
                v = sub.get((family, scheme, d, live))
                cells.append(f"{v:>12,.0f}" if v is not None else f"{'-':>12}")
            print(f"  {scheme:<16}" + "".join(cells))
        print()
print("Crossover read: lawn's tick cost grows with D (one head probe per")
print("distinct TTL) and is flat in live; the wheels are flat in D and pay")
print("per-population migration/occupancy costs. lawn_capped64 beyond D=64")
print("shows the documented overflow-list fallback price.")
PYEOF
fi

if [ "$TARGET" = "space" ] || [ "$TARGET" = "all" ]; then
  record bench_space BENCH_space.json "$@"
  summarize BENCH_space.json <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[name] = benchmark dict (counters ride at the top level); prefer *_mean
# rows when repetitions add aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if name.endswith("_mean") or base not in rows:
        rows[base] = b

print(f"{'scheme':<24}{'fixed B':>12}{'essential':>11}{'hot':>6}{'cold':>6}"
      f"{'actual':>8}{'aux @1k':>10}")
for name in sorted(n for n in rows if n.startswith("space/")):
    b = rows[name]
    print(f"{name[len('space/'):]:<24}{b.get('fixed_B', 0):>12,.0f}"
          f"{b.get('essential_B', 0):>11,.0f}{b.get('hot_B', 0):>6,.0f}"
          f"{b.get('cold_B', 0):>6,.0f}{b.get('actual_B', 0):>8,.0f}"
          f"{b.get('aux_B_at_1k', 0):>10,.0f}")
print()
print(f"{'coverage of a 2^32-tick range':<34}{'slots':>14}{'fixed B':>18}")
for name in sorted(n for n in rows if n.startswith("space_coverage/")):
    b = rows[name]
    print(f"{name[len('space_coverage/'):]:<34}{b.get('slots', 0):>14,.0f}"
          f"{b.get('fixed_B', 0):>18,.0f}")
PYEOF
fi

if [ "$TARGET" = "cluster" ] || [ "$TARGET" = "all" ]; then
  record bench_cluster BENCH_cluster.json "$@"
  summarize BENCH_cluster.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[R] = benchmark dict; prefer *_mean rows when repetitions add
# aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    m = re.match(r"cluster/steady_state_R/(\d+)", name)
    if not m or "items_per_second" not in b:
        continue
    key = int(m.group(1))
    if name.endswith("_mean") or key not in rows:
        rows[key] = b

print("cluster steady state (delivered client callbacks/s, 256Ki sessions):")
print(f"  {'R':<4}{'callbacks/s':>16}{'live':>12}{'vs R=1':>10}")
base = rows.get(1, {}).get("items_per_second")
for r in sorted(rows):
    b = rows[r]
    ips = b["items_per_second"]
    rel = f"{base / ips:>9.2f}x" if base and ips else f"{'-':>10}"
    print(f"  {r:<4}{ips:>16,.0f}{b.get('live', 0):>12,.0f}{rel}")
print()
print("Read: every client timer costs R arms, R-1 standby leases in the host")
print("wheels, and a pop/notify/disarm round per fire; 'vs R=1' is the")
print("throughput COST multiple of that redundancy (higher = slower).")
PYEOF
fi

if [ "$TARGET" = "static_dispatch" ] || [ "$TARGET" = "all" ]; then
  record bench_static_dispatch BENCH_static_dispatch.json "$@"
  summarize BENCH_static_dispatch.json <<'PYEOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# rows[name] = benchmark dict; prefer *_mean rows when repetitions add
# aggregates.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if name.endswith("_mean") or base not in rows:
        rows[base] = b

print("virtual vs static dispatch (ns/op; delta = virtual/static - 1):")
pairs = sorted({
    (m.group(1), m.group(2))
    for n in rows
    if (m := re.match(r"static_dispatch/([^/]+)/([^/]+)/(virtual|static)$", n))
})
print(f"  {'scheme':<24}{'op':<12}{'virtual':>10}{'static':>10}{'delta':>9}")
for scheme, op in pairs:
    v = rows.get(f"static_dispatch/{scheme}/{op}/virtual")
    s = rows.get(f"static_dispatch/{scheme}/{op}/static")
    if v is None or s is None:
        continue
    vt, st = v["real_time"], s["real_time"]
    print(f"  {scheme:<24}{op:<12}{vt:>10.1f}{st:>10.1f}"
          f"{(vt / st - 1) * 100:>+8.1f}%")
print()

scale = {
    int(m.group(1)): b
    for n, b in rows.items()
    if (m := re.match(r"space_at_scale/(\d+)", n))
}
if scale:
    print("space at scale (measured slab footprint, hashed wheel, static path):")
    print(f"  {'live':>12}{'hot slab MiB':>14}{'cold slab MiB':>15}"
          f"{'hot B/live':>12}{'total B/live':>14}{'starts/s':>14}")
    for live in sorted(scale):
        b = scale[live]
        print(f"  {live:>12,}{b.get('hot_slab_B', 0) / 2**20:>14,.1f}"
              f"{b.get('cold_slab_B', 0) / 2**20:>15,.1f}"
              f"{b.get('hot_B_per_live', 0):>12,.1f}"
              f"{b.get('total_B_per_live', 0):>14,.1f}"
              f"{b.get('items_per_second', 0):>14,.0f}")
print()
print("Read: both rows run identical loop code over identically-constructed")
print("schemes, so the delta isolates dispatch — vtable call vs inlined")
print("qualified call. The cheap ops (single-digit-ns restart/start_stop on")
print("the O(1) wheels) carry the honest per-call cost; on heavy ops (tick,")
print("us/call) dispatch is in the noise and the delta is inlining/code-")
print("layout luck that can swing either way. Record with")
print("--benchmark_repetitions=3 on a busy 1-CPU host; the summary folds the")
print("_mean rows. Hot B/live pins the 64-byte record at every scale.")
PYEOF
fi
