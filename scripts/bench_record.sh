#!/usr/bin/env bash
# Build and run the sparse-tick benchmark, recording the loop-vs-batched numbers
# for every wheel scheme into BENCH_sparse_tick.json at the repository root.
# The *_Loop entries are the "before" (one PerTickBookkeeping call per tick);
# the *_Batched entries are the "after" (one occupancy-bitmap AdvanceTo per
# span). A per-scheme speedup summary is printed when python3 is available.
#
# Usage:
#   scripts/bench_record.sh                 # default single repetition
#   scripts/bench_record.sh --benchmark_repetitions=5
#
# Environment:
#   BUILD_DIR=<dir>   build directory (default: build)
#   JOBS=<n>          parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
OUT="BENCH_sparse_tick.json"

cmake -S . -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_sparse_tick

"$BUILD_DIR"/bench/bench_sparse_tick \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo
echo "Recorded $OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# benchmark_repetitions > 1 adds *_mean/_median/_stddev rows; prefer the mean
# when present, plain rows otherwise.
rows = {}
for b in data.get("benchmarks", []):
    name = b["name"]
    if name.endswith(("_median", "_stddev", "_cv")):
        continue
    base = name[: -len("_mean")] if name.endswith("_mean") else name
    if name.endswith("_mean") or base not in rows:
        rows[base] = b["real_time"]

print(f"{'scheme':<24}{'loop ns/span':>16}{'batched ns/span':>18}{'speedup':>10}")
for name, loop_ns in sorted(rows.items()):
    if not name.endswith("_Loop"):
        continue
    batched = rows.get(name[: -len("_Loop")] + "_Batched")
    if batched is None:
        continue
    scheme = name[len("BM_"):-len("_Loop")]
    print(f"{scheme:<24}{loop_ns:>16.0f}{batched:>18.0f}{loop_ns / batched:>9.1f}x")
PYEOF
fi
