#!/usr/bin/env python3
"""Compare a freshly recorded google-benchmark JSON against a committed one.

Usage:
    scripts/bench_compare.py [--strict] [--threshold PCT] COMMITTED FRESH

Prints a per-benchmark delta table and flags regressions beyond the threshold
(default 10%). A benchmark regresses when its fresh numbers are worse than the
committed ones: lower items_per_second, or (when no throughput counter exists)
higher real_time. Benchmarks present on only one side are listed but never
count as regressions — renames and new coverage are not performance changes.

With --strict the exit status is nonzero when any regression was flagged, so
recording scripts and CI can gate on it; without it the script only reports.

Repetition aggregates are folded the same way the bench_record.sh summaries
fold them: *_mean rows are preferred over the per-repetition rows, and
*_median/_stddev/_cv rows are ignored.
"""

import argparse
import json
import signal
import sys

# Die quietly when piped into head/less instead of tracebacking on SIGPIPE.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_rows(path):
    """name -> (metric_name, value); one row per logical benchmark."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    rows = {}
    preferred = set()  # names whose value came from a *_mean aggregate
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if name.endswith(("_median", "_stddev", "_cv", "_BigO", "_RMS")):
            continue
        is_mean = name.endswith("_mean")
        base = name[: -len("_mean")] if is_mean else name
        if base in preferred and not is_mean:
            continue
        if "items_per_second" in bench:
            value = ("items_per_second", float(bench["items_per_second"]))
        elif "real_time" in bench:
            value = ("real_time", float(bench["real_time"]))
        else:
            continue
        if is_mean or base not in rows:
            rows[base] = value
            if is_mean:
                preferred.add(base)
    return rows


def build_type(path):
    try:
        with open(path) as f:
            return json.load(f).get("context", {}).get("library_build_type", "?")
    except (OSError, json.JSONDecodeError):
        return "?"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files per benchmark.")
    parser.add_argument("committed", help="baseline JSON (the committed file)")
    parser.add_argument("fresh", help="candidate JSON (the fresh recording)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero if any regression exceeds the "
                             "threshold")
    args = parser.parse_args()

    old_rows = load_rows(args.committed)
    new_rows = load_rows(args.fresh)

    print(f"baseline:  {args.committed} (build: {build_type(args.committed)})")
    print(f"candidate: {args.fresh} (build: {build_type(args.fresh)})")
    print()

    shared = sorted(set(old_rows) & set(new_rows))
    only_old = sorted(set(old_rows) - set(new_rows))
    only_new = sorted(set(new_rows) - set(old_rows))

    regressions = []
    width = max((len(n) for n in shared), default=20)
    print(f"{'benchmark':<{width}}  {'metric':<16}{'baseline':>14}"
          f"{'candidate':>14}{'delta':>9}")
    for name in shared:
        old_metric, old_value = old_rows[name]
        new_metric, new_value = new_rows[name]
        if old_metric != new_metric or old_value == 0:
            print(f"{name:<{width}}  metric changed "
                  f"({old_metric} -> {new_metric}); skipped")
            continue
        delta_pct = (new_value - old_value) / old_value * 100.0
        # items_per_second: higher is better. real_time: lower is better.
        worse_pct = -delta_pct if old_metric == "items_per_second" else delta_pct
        flag = ""
        if worse_pct > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, worse_pct))
        print(f"{name:<{width}}  {old_metric:<16}{old_value:>14,.1f}"
              f"{new_value:>14,.1f}{delta_pct:>+8.1f}%{flag}")

    for name in only_old:
        print(f"{name:<{width}}  only in baseline (removed or renamed)")
    for name in only_new:
        print(f"{name:<{width}}  only in candidate (new)")

    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for name, worse in sorted(regressions, key=lambda r: -r[1]):
            print(f"  {name}: {worse:.1f}% worse")
        if args.strict:
            return 1
    else:
        print(f"no regressions beyond {args.threshold:.0f}% "
              f"({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
