#!/usr/bin/env bash
# Pre-merge verification gate: build and run the full test suite three times —
# plain, under AddressSanitizer+UBSan, and under ThreadSanitizer — each in its
# own build directory so the configurations never contaminate one another.
#
# Usage:
#   scripts/verify.sh              # all three configurations
#   scripts/verify.sh plain        # just the plain build
#   scripts/verify.sh asan tsan    # any subset, in order
#   scripts/verify.sh --quick      # inner-loop mode: plain build only, torture
#                                  # episodes cut to 4 and cluster fault-matrix
#                                  # episodes cut to 4 (pre-set
#                                  # TWHEEL_TORTURE_EPISODES /
#                                  # TWHEEL_CLUSTER_EPISODES still win);
#                                  # combine with configs to quicken a subset,
#                                  # e.g. `scripts/verify.sh --quick tsan`
#
# Environment:
#   JOBS=<n>          parallel build jobs (default: nproc)
#   CTEST_ARGS=...    extra arguments forwarded to ctest (e.g. -R ModelCheck)
#   TWHEEL_TORTURE_EPISODES=<n>
#                     episodes per case for the `torture`-labelled concurrent
#                     tests (including the restart, periodic, and mpmc torture
#                     suites); when unset, the plain build runs the tests'
#                     default (50) and the sanitizer builds run reduced counts
#                     (asan 12, tsan 8) since each episode costs ~20x there.
#   TWHEEL_CLUSTER_EPISODES=<n>
#                     episodes per (adversary, scheme) cell of the replicated-
#                     cluster fault matrix (tests/cluster/cluster_fault_test).
#                     When unset the matrix runs its built-in floor of 100
#                     episodes per cell in EVERY configuration — the ISSUE-10
#                     acceptance bar holds under ASan and TSan too, and the
#                     episodes are cheap enough (~2 s plain for all 1200) that
#                     the sanitizer gate stays tractable without a reduction.
#
# Every configuration runs the FULL ctest suite, so the `restart`-labelled
# tests (restart_differential_test, restart_regression_test,
# restart_torture_test), the `periodic`-labelled tests
# (periodic_differential_test, periodic_regression_test, periodic_torture_test,
# timer_server_test), the `mpmc`-labelled tests (mpmc_torture_test's
# kMultiTicker/kStealStorm episodes, dispatch_pool_test), and the
# `lawn`-labelled tests (lawn_regression_test, slop_differential_test, plus the
# scheme-8 rows of every kAllSchemes-parameterized suite), the
# `layout`-labelled tests (layout_test: hot/cold TimerRecord offset, union, and
# slab-alignment pins), the `facade`-labelled tests (static_facade_test:
# StaticTimerFacility differential + lockstep byte-equality vs the virtual
# path), and the `cluster`-labelled tests (the replicated timer cluster:
# fault-matrix oracle episodes, failover timing, twin/cross-scheme
# determinism, the facade differential torture, wire-decode robustness, and
# the channel counter-snapshot race — the last two are exactly the suites the
# ASan/UBSan and TSan legs exist to arm) are exercised plain, under ASan+UBSan,
# and under TSan on every gate run. `ctest -L restart` / `ctest -L periodic` /
# `ctest -L mpmc` / `ctest -L lawn` / `ctest -L layout` / `ctest -L facade` /
# `ctest -L cluster` in any build directory runs just them.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

QUICK=0
CONFIGS=()
for arg in "$@"; do
  if [ "$arg" = "--quick" ]; then
    QUICK=1
  else
    CONFIGS+=("$arg")
  fi
done
if [ ${#CONFIGS[@]} -eq 0 ]; then
  if [ "$QUICK" = 1 ]; then
    CONFIGS=(plain)
  else
    CONFIGS=(plain asan tsan)
  fi
fi

# Pre-set TWHEEL_TORTURE_EPISODES / TWHEEL_CLUSTER_EPISODES win over the
# per-config defaults and the --quick reduction.
USER_TORTURE_EPISODES="${TWHEEL_TORTURE_EPISODES:-}"
USER_CLUSTER_EPISODES="${TWHEEL_CLUSTER_EPISODES:-}"

run_config() {
  local name="$1" build_dir="$2" episodes="$3"
  shift 3
  if [ "$QUICK" = 1 ]; then
    episodes=4
    export TWHEEL_CLUSTER_EPISODES="${USER_CLUSTER_EPISODES:-4}"
  elif [ -n "$USER_CLUSTER_EPISODES" ]; then
    export TWHEEL_CLUSTER_EPISODES="$USER_CLUSTER_EPISODES"
  else
    # Unset means the fault matrix runs its built-in 100-episode floor.
    unset TWHEEL_CLUSTER_EPISODES
  fi
  export TWHEEL_TORTURE_EPISODES="${USER_TORTURE_EPISODES:-$episodes}"
  echo "=== [$name] configure ==="
  cmake -S . -B "$build_dir" "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] test ==="
  # shellcheck disable=SC2086
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
  echo "=== [$name] OK ==="
}

for config in "${CONFIGS[@]}"; do
  case "$config" in
    plain)
      run_config plain build 50 ;;
    asan)
      # halt_on_error: the first report fails the test instead of scrolling by.
      ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
      run_config asan build-asan 12 -DTWHEEL_SANITIZE=address ;;
    tsan)
      TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      run_config tsan build-tsan 8 -DTWHEEL_SANITIZE=thread ;;
    *)
      echo "unknown configuration '$config' (use plain|asan|tsan)" >&2
      exit 2 ;;
  esac
done

echo "All requested configurations passed: ${CONFIGS[*]}"
