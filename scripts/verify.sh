#!/usr/bin/env bash
# Pre-merge verification gate: build and run the full test suite three times —
# plain, under AddressSanitizer+UBSan, and under ThreadSanitizer — each in its
# own build directory so the configurations never contaminate one another.
#
# Usage:
#   scripts/verify.sh              # all three configurations
#   scripts/verify.sh plain        # just the plain build
#   scripts/verify.sh asan tsan    # any subset, in order
#   scripts/verify.sh --quick      # inner-loop mode: plain build only, torture
#                                  # episodes cut to 4 (a pre-set
#                                  # TWHEEL_TORTURE_EPISODES still wins);
#                                  # combine with configs to quicken a subset,
#                                  # e.g. `scripts/verify.sh --quick tsan`
#
# Environment:
#   JOBS=<n>          parallel build jobs (default: nproc)
#   CTEST_ARGS=...    extra arguments forwarded to ctest (e.g. -R ModelCheck)
#   TWHEEL_TORTURE_EPISODES=<n>
#                     episodes per case for the `torture`-labelled concurrent
#                     tests (including the restart, periodic, and mpmc torture
#                     suites); when unset, the plain build runs the tests'
#                     default (50) and the sanitizer builds run reduced counts
#                     (asan 12, tsan 8) since each episode costs ~20x there.
#
# Every configuration runs the FULL ctest suite, so the `restart`-labelled
# tests (restart_differential_test, restart_regression_test,
# restart_torture_test), the `periodic`-labelled tests
# (periodic_differential_test, periodic_regression_test, periodic_torture_test,
# timer_server_test), the `mpmc`-labelled tests (mpmc_torture_test's
# kMultiTicker/kStealStorm episodes, dispatch_pool_test), and the
# `lawn`-labelled tests (lawn_regression_test, slop_differential_test, plus the
# scheme-8 rows of every kAllSchemes-parameterized suite), the
# `layout`-labelled tests (layout_test: hot/cold TimerRecord offset, union, and
# slab-alignment pins), and the `facade`-labelled tests (static_facade_test:
# StaticTimerFacility differential + lockstep byte-equality vs the virtual
# path) are exercised plain, under ASan+UBSan, and under TSan on every gate
# run. `ctest -L restart` / `ctest -L periodic` / `ctest -L mpmc` /
# `ctest -L lawn` / `ctest -L layout` / `ctest -L facade` in any build
# directory runs just them.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

QUICK=0
CONFIGS=()
for arg in "$@"; do
  if [ "$arg" = "--quick" ]; then
    QUICK=1
  else
    CONFIGS+=("$arg")
  fi
done
if [ ${#CONFIGS[@]} -eq 0 ]; then
  if [ "$QUICK" = 1 ]; then
    CONFIGS=(plain)
  else
    CONFIGS=(plain asan tsan)
  fi
fi

# A pre-set TWHEEL_TORTURE_EPISODES wins over the per-config defaults.
USER_TORTURE_EPISODES="${TWHEEL_TORTURE_EPISODES:-}"

run_config() {
  local name="$1" build_dir="$2" episodes="$3"
  shift 3
  if [ "$QUICK" = 1 ]; then
    episodes=4
  fi
  export TWHEEL_TORTURE_EPISODES="${USER_TORTURE_EPISODES:-$episodes}"
  echo "=== [$name] configure ==="
  cmake -S . -B "$build_dir" "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] test ==="
  # shellcheck disable=SC2086
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
  echo "=== [$name] OK ==="
}

for config in "${CONFIGS[@]}"; do
  case "$config" in
    plain)
      run_config plain build 50 ;;
    asan)
      # halt_on_error: the first report fails the test instead of scrolling by.
      ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
      run_config asan build-asan 12 -DTWHEEL_SANITIZE=address ;;
    tsan)
      TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      run_config tsan build-tsan 8 -DTWHEEL_SANITIZE=thread ;;
    *)
      echo "unknown configuration '$config' (use plain|asan|tsan)" >&2
      exit 2 ;;
  esac
done

echo "All requested configurations passed: ${CONFIGS[*]}"
