// The Section 3.2 hardware-single-timer variant, as a host-side event loop.
//
// "If Scheme 2 is implemented by a host processor, the interrupt overhead on every
// tick can be avoided if there is hardware support to maintain a single timer. The
// hardware timer is set to expire at the time at which the timer at the head of the
// list is due to expire. The hardware intercepts all clock ticks and interrupts the
// host only when a timer actually expires."
//
// Usage: ./build/examples/single_timer_host [timers] [horizon]
//
// The "hardware timer" is the NextExpiryHint/FastForward capability: instead of a
// bookkeeping call per tick, the host asks the ordered list for the head expiry,
// sleeps (jumps) to one tick before it, and takes a single "interrupt" (the
// bookkeeping call that fires it). The program reports how many per-tick interrupts
// the hardware absorbed.

#include <cstdio>
#include <cstdlib>

#include "src/baselines/sorted_list_timers.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

int main(int argc, char** argv) {
  using namespace twheel;

  std::size_t num_timers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  Tick horizon = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;

  SortedListTimers timers(SearchDirection::kFromRear);
  std::size_t fired = 0;
  rng::Xoshiro256 gen(11);
  rng::ExponentialInterval think(static_cast<double>(horizon) / 50.0);

  // Each expiry re-arms, so the list stays populated: a steady drizzle of work
  // separated by long dead stretches — the worst case for per-tick interrupts.
  timers.set_expiry_handler([&](RequestId id, Tick) {
    ++fired;
    (void)timers.StartTimer(think.Draw(gen), id);
  });
  for (std::size_t i = 0; i < num_timers; ++i) {
    (void)timers.StartTimer(think.Draw(gen), i);
  }

  std::uint64_t host_interrupts = 0;
  while (timers.now() < horizon) {
    auto next = timers.NextExpiryHint();
    if (!next.has_value() || *next > horizon) {
      timers.FastForward(horizon);
      break;
    }
    if (*next - 1 > timers.now()) {
      timers.FastForward(*next - 1);  // the hardware swallows these ticks
    }
    timers.PerTickBookkeeping();  // one host interrupt: the timer actually expired
    ++host_interrupts;
  }

  std::printf("single-timer-host: %zu timers over %llu simulated ticks\n", num_timers,
              static_cast<unsigned long long>(horizon));
  std::printf("  expiries handled        %zu\n", fired);
  std::printf("  host interrupts         %llu  (one per expiry tick)\n",
              static_cast<unsigned long long>(host_interrupts));
  std::printf("  tick interrupts avoided %llu  (%.4f%% of ticks were dead time)\n",
              static_cast<unsigned long long>(horizon - host_interrupts),
              100.0 * static_cast<double>(horizon - host_interrupts) /
                  static_cast<double>(horizon));
  std::printf("  START_TIMER cost stays the ordered list's O(n): %.1f comparisons/insert\n",
              static_cast<double>(timers.counts().comparisons) /
                  static_cast<double>(timers.counts().start_calls));
  return 0;
}
