// The paper's motivating scenario (Section 1): "consider a server with 200
// connections and 3 timers per connection" riding on a lossy network.
//
// Usage: ./build/examples/retransmission_server [connections] [loss%] [ticks] [scheme]
//   scheme: 1..7 selecting the paper's scheme number (default 6)
//
// Runs the simulated transport server with the chosen timer scheme and reports both
// protocol statistics and the timer module's op-count profile — notice how many
// timers are started and *stopped* versus how few expire, the ratio that motivates
// O(1) START/STOP_TIMER.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/net/server.h"

namespace {

twheel::SchemeId SchemeFromNumber(int n) {
  using twheel::SchemeId;
  switch (n) {
    case 1:
      return SchemeId::kScheme1Unordered;
    case 2:
      return SchemeId::kScheme2SortedFront;
    case 3:
      return SchemeId::kScheme3Heap;
    case 4:
      return SchemeId::kScheme4BasicWheel;
    case 5:
      return SchemeId::kScheme5HashedSorted;
    case 6:
      return SchemeId::kScheme6HashedUnsorted;
    case 7:
      return SchemeId::kScheme7Hierarchical;
    default:
      std::fprintf(stderr, "scheme must be 1..7\n");
      std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace twheel;

  net::ServerConfig config;
  config.num_connections = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  double loss_percent = argc > 2 ? std::strtod(argv[2], nullptr) : 5.0;
  Tick ticks = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50000;
  int scheme_number = argc > 4 ? std::atoi(argv[4]) : 6;

  config.seed = 2026;
  config.channel.loss_probability = loss_percent / 100.0;
  config.channel.delay_lo = 2;
  config.channel.delay_hi = 12;
  config.connection.rto_initial = 50;
  config.connection.rto_max = 800;
  config.connection.think_time = 25;
  config.connection.keepalive_interval = 1000;
  config.connection.death_interval = 8000;
  config.host_scheme.scheme = SchemeFromNumber(scheme_number);
  config.host_scheme.wheel_size = 16384;  // covers the death interval for Scheme 4
  config.host_scheme.level_sizes = {256, 64, 64};

  net::Server server(config);
  std::printf("server: %zu connections, %.1f%% loss, %llu ticks, scheme %s\n",
              config.num_connections, loss_percent,
              static_cast<unsigned long long>(ticks),
              SchemeName(config.host_scheme.scheme));
  server.Run(ticks);

  auto stats = server.TotalStats();
  std::printf("\nprotocol:\n");
  std::printf("  data segments sent     %10llu\n",
              static_cast<unsigned long long>(stats.data_sent));
  std::printf("  retransmissions        %10llu  (%.2f%% of sends)\n",
              static_cast<unsigned long long>(stats.retransmissions),
              100.0 * static_cast<double>(stats.retransmissions) /
                  static_cast<double>(stats.data_sent + stats.retransmissions));
  std::printf("  acks received          %10llu\n",
              static_cast<unsigned long long>(stats.acks_received));
  std::printf("  keepalive probes       %10llu\n",
              static_cast<unsigned long long>(stats.keepalives_sent));
  std::printf("  peer-death declarations%10llu\n",
              static_cast<unsigned long long>(stats.deaths));
  std::printf("  packets dropped        %10llu of %llu\n",
              static_cast<unsigned long long>(server.uplink().dropped() +
                                              server.downlink().dropped()),
              static_cast<unsigned long long>(server.uplink().sent() +
                                              server.downlink().sent()));

  const auto& counts = server.host_counts();
  std::printf("\ntimer module (%s):\n", SchemeName(config.host_scheme.scheme));
  std::printf("  START_TIMER calls      %10llu\n",
              static_cast<unsigned long long>(counts.start_calls));
  std::printf("  STOP_TIMER calls       %10llu  <- acks cancel timers\n",
              static_cast<unsigned long long>(counts.stop_calls));
  std::printf("  expiries               %10llu  <- \"these timers rarely expire\"\n",
              static_cast<unsigned long long>(counts.expiries));
  std::printf("  outstanding at end     %10zu  (~3 per connection)\n",
              server.host_outstanding());
  std::printf("  per-tick bookkeeping work: %.3f ops/tick average\n",
              static_cast<double>(counts.TickWork()) / static_cast<double>(counts.ticks));
  return 0;
}
