// Rate-based flow control with timers — the paper's second timer category:
// "algorithms in which the notion of time or relative time is integral: ...
// rate-based flow control in communications... These timers almost always expire."
//
// Usage: ./build/examples/rate_limiter [flows] [ticks]
//
// Each flow owns a token bucket refilled by a periodic timer (re-armed from its own
// expiry handler) and a traffic source that tries to send in bursts. In contrast to
// the retransmission example, nearly every timer here runs to expiry — the workload
// where Scheme 1's cheap starts lose to its O(n) per-tick scan, and a wheel shines.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace {

struct Flow {
  twheel::sim::Simulator& sim;
  twheel::rng::Xoshiro256& rng;
  twheel::Duration refill_every;
  int burst_capacity;

  int tokens = 0;
  std::uint64_t admitted = 0;
  std::uint64_t throttled = 0;

  void Start() {
    tokens = burst_capacity;
    Refill();
    Offer();
  }

  void Refill() {
    // Periodic timer, re-armed from its own expiry: "these timers almost always
    // expire" — no stop ever happens on this path.
    sim.After(refill_every, [this] {
      if (tokens < burst_capacity) {
        ++tokens;
      }
      Refill();
    });
  }

  void Offer() {
    // Bursty source: a clump of packets, then a pause.
    sim.After(1 + rng.NextBounded(3 * refill_every), [this] {
      std::uint64_t burst = 1 + rng.NextBounded(4);
      for (std::uint64_t i = 0; i < burst; ++i) {
        if (tokens > 0) {
          --tokens;
          ++admitted;
        } else {
          ++throttled;
        }
      }
      Offer();
    });
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace twheel;

  std::size_t flows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  Tick horizon = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = 512;
  sim::Simulator simulator(MakeTimerService(config));
  rng::Xoshiro256 rng(99);

  std::vector<Flow> pool;
  pool.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    pool.push_back(Flow{simulator, rng, /*refill_every=*/10 + (i % 7) * 5,
                        /*burst_capacity=*/static_cast<int>(4 + i % 5)});
  }
  for (auto& flow : pool) {
    flow.Start();
  }

  for (Tick t = 0; t < horizon; ++t) {
    simulator.Step();
  }

  std::uint64_t admitted = 0, throttled = 0;
  for (const auto& flow : pool) {
    admitted += flow.admitted;
    throttled += flow.throttled;
  }
  const auto& counts = simulator.service().counts();
  std::printf("rate limiter: %zu flows over %llu ticks\n", flows,
              static_cast<unsigned long long>(horizon));
  std::printf("  packets admitted  %10llu\n", static_cast<unsigned long long>(admitted));
  std::printf("  packets throttled %10llu (%.1f%%)\n",
              static_cast<unsigned long long>(throttled),
              100.0 * static_cast<double>(throttled) /
                  static_cast<double>(admitted + throttled));
  std::printf("  timer module: %llu starts, %llu expiries, %llu stops "
              "(almost-always-expire workload)\n",
              static_cast<unsigned long long>(counts.start_calls),
              static_cast<unsigned long long>(counts.expiries),
              static_cast<unsigned long long>(counts.stop_calls));
  std::printf("  per-tick work: %.3f ops/tick\n",
              static_cast<double>(counts.TickWork()) / static_cast<double>(counts.ticks));
  return 0;
}
