// A discrete-event simulation whose time-flow mechanism is a timing wheel —
// Section 4's claim that "timer algorithms can be used to implement time flow
// mechanisms in simulations", demonstrated on an M/M/1 queue.
//
// Usage: ./build/examples/discrete_event_sim [lambda_percent] [mu_percent] [ticks]
//
// Customers arrive Poisson(lambda), are served exponential(mu) by one server, and
// the simulation's entire event set (arrivals, service completions) lives in a
// Scheme 7 hierarchical wheel. The measured queue statistics are checked against
// the analytic M/M/1 results (rho/(1-rho) customers in system), which doubles as an
// end-to-end validation that the wheel delivers events at the right instants.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "src/core/timer_facility.h"
#include "src/metrics/running_stats.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace {

struct Mm1 {
  Mm1(twheel::sim::Simulator& simulator, double lambda_rate, double mu_rate)
      : sim(simulator), lambda(lambda_rate), mu(mu_rate) {}

  twheel::sim::Simulator& sim;
  double lambda;
  double mu;
  twheel::rng::Xoshiro256 rng{12345};

  std::deque<twheel::Tick> queue;  // arrival time of each waiting/being-served job
  bool busy = false;
  twheel::metrics::RunningStats time_in_system;
  twheel::metrics::RunningStats jobs_in_system_samples;
  std::uint64_t completed = 0;

  twheel::Duration DrawExp(double rate) {
    double u = rng.NextDouble();
    double x = -std::log(1.0 - u) / rate;
    auto ticks = static_cast<twheel::Duration>(std::ceil(x));
    return ticks == 0 ? 1 : ticks;
  }

  void ScheduleArrival() {
    sim.After(DrawExp(lambda), [this] { OnArrival(); });
  }

  void OnArrival() {
    queue.push_back(sim.now());
    if (!busy) {
      busy = true;
      sim.After(DrawExp(mu), [this] { OnServiceDone(); });
    }
    ScheduleArrival();
  }

  void OnServiceDone() {
    time_in_system.Add(static_cast<double>(sim.now() - queue.front()));
    queue.pop_front();
    ++completed;
    if (!queue.empty()) {
      sim.After(DrawExp(mu), [this] { OnServiceDone(); });
    } else {
      busy = false;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace twheel;

  double lambda = (argc > 1 ? std::atof(argv[1]) : 0.8) / 100.0;  // jobs per tick
  double mu = (argc > 2 ? std::atof(argv[2]) : 1.25) / 100.0;
  Tick horizon = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000000;

  FacilityConfig config;
  config.scheme = SchemeId::kScheme7Hierarchical;
  config.level_sizes = {256, 64, 64, 64};  // spans 67M ticks
  sim::Simulator simulator(MakeTimerService(config));

  Mm1 model(simulator, lambda, mu);
  model.ScheduleArrival();

  for (Tick t = 0; t < horizon; ++t) {
    simulator.Step();
    if (t % 1000 == 0) {
      model.jobs_in_system_samples.Add(static_cast<double>(model.queue.size()));
    }
  }

  double rho = lambda / mu;
  double predicted_jobs = rho / (1.0 - rho);
  double predicted_time = predicted_jobs / lambda;

  std::printf("M/M/1 on a hierarchical timing wheel (lambda=%.4f, mu=%.4f, rho=%.2f)\n",
              lambda, mu, rho);
  std::printf("  completed jobs            %llu\n",
              static_cast<unsigned long long>(model.completed));
  std::printf("  jobs in system   measured %.3f   analytic %.3f\n",
              model.jobs_in_system_samples.mean(), predicted_jobs);
  std::printf("  time in system   measured %.1f   analytic %.1f ticks\n",
              model.time_in_system.mean(), predicted_time);
  std::printf("  event-set ops: %llu starts, %llu expiries, %llu migrations\n",
              static_cast<unsigned long long>(simulator.service().counts().start_calls),
              static_cast<unsigned long long>(simulator.service().counts().expiries),
              static_cast<unsigned long long>(simulator.service().counts().migrations));
  return 0;
}
