// Quickstart: the four-routine timer facility in a dozen lines.
//
// Build & run:   ./build/examples/quickstart
//
// Creates the paper's recommended general-purpose configuration (Scheme 6, a hashed
// timing wheel), starts a few timers, cancels one, and drives the tick loop — the
// whole public API surface of twheel::TimerService.

#include <cstdio>

#include "src/core/timer_facility.h"

int main() {
  using namespace twheel;

  // Pick a scheme by configuration. Scheme 6 = hashed wheel, unsorted buckets:
  // O(1) start/stop, O(n/TableSize) amortized per-tick work.
  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = 256;  // power of two: the hash is a single AND
  auto timers = MakeTimerService(config);

  // EXPIRY_PROCESSING: one handler per service; each timer carries a cookie.
  timers->set_expiry_handler([](RequestId id, Tick now) {
    std::printf("  tick %4llu: timer %llu expired\n",
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(id));
  });

  // START_TIMER(interval, request_id).
  auto coffee = timers->StartTimer(30, /*request_id=*/1);
  auto lunch = timers->StartTimer(120, /*request_id=*/2);
  auto nap = timers->StartTimer(500, /*request_id=*/3);
  if (!coffee.has_value() || !lunch.has_value() || !nap.has_value()) {
    std::printf("failed to start timers\n");
    return 1;
  }
  std::printf("started 3 timers (outstanding: %zu)\n", timers->outstanding());

  // STOP_TIMER: O(1) via the handle; stale handles are detected, not corrupted.
  if (timers->StopTimer(lunch.value()) == TimerError::kOk) {
    std::printf("cancelled timer 2 before expiry\n");
  }

  // PER_TICK_BOOKKEEPING: the clock is yours to drive — one call per tick.
  timers->AdvanceBy(600);

  // Cancelling an already-expired timer is safe and reports kNoSuchTimer.
  TimerError err = timers->StopTimer(coffee.value());
  std::printf("stopping the expired timer 1 reports: %s\n", TimerErrorName(err));

  // Every scheme keeps the paper's operation counts.
  const auto& counts = timers->counts();
  std::printf("op counts: %llu starts, %llu stops, %llu ticks, %llu expiries, "
              "%llu empty-slot checks\n",
              static_cast<unsigned long long>(counts.start_calls),
              static_cast<unsigned long long>(counts.stop_calls),
              static_cast<unsigned long long>(counts.ticks),
              static_cast<unsigned long long>(counts.expiries),
              static_cast<unsigned long long>(counts.empty_slot_checks));
  return 0;
}
