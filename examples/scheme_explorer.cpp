// Compare all seven schemes on one workload — the paper's Figures 4 and 6 as a CLI.
//
// Usage: ./build/examples/scheme_explorer [outstanding] [starts] [stop%]
//
// Drives an identical Poisson/exponential request stream through every scheme and
// prints a table of the measured costs: comparisons per START_TIMER, bookkeeping
// ops per tick, VAX-weighted instruction estimates, and wall time. The analytic
// rows of Figure 4 / Figure 6 emerge as the n-dependence of each column.

#include <cstdio>
#include <cstdlib>

#include "src/core/timer_facility.h"
#include "src/metrics/vax_cost.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  using namespace twheel;

  double outstanding = argc > 1 ? std::atof(argv[1]) : 200.0;
  std::size_t starts = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50000;
  double stop_fraction = (argc > 3 ? std::atof(argv[3]) : 30.0) / 100.0;

  // lambda * E[T] = outstanding (Little's law): fix E[T]=128, derive lambda.
  workload::WorkloadSpec spec;
  spec.seed = 7;
  spec.intervals = workload::IntervalKind::kExponential;
  spec.interval_mean = 128.0;
  spec.interval_cap = 4000;
  spec.arrival_rate = outstanding / spec.interval_mean;
  spec.stop_fraction = stop_fraction;
  spec.warmup_starts = starts / 10;
  spec.measured_starts = starts;

  std::printf("workload: poisson(%.3f/tick) x exponential(mean %.0f), %zu starts, "
              "%.0f%% stopped -> ~%.0f outstanding\n\n",
              spec.arrival_rate, spec.interval_mean, starts, 100 * stop_fraction,
              outstanding);
  std::printf("%-24s %12s %12s %12s %12s %10s\n", "scheme", "cmp/start", "ops/tick",
              "vax/start", "vax/tick", "wall ms");

  metrics::VaxCostModel vax;
  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    config.wheel_size = id == SchemeId::kScheme4BasicWheel ||
                                id == SchemeId::kScheme4HybridList
                            ? 8192
                            : 256;
    config.level_sizes = {256, 64, 64};
    auto service = MakeTimerService(config);
    auto result = workload::Run(*service, spec);

    const auto& ops = result.measured_ops;
    double vax_per_start =
        ops.start_calls
            ? (vax.insert * static_cast<double>(ops.insert_link_ops) +
               vax.compare * static_cast<double>(ops.comparisons)) /
                  static_cast<double>(ops.start_calls)
            : 0.0;
    std::printf("%-24s %12.2f %12.2f %12.1f %12.1f %10.1f\n",
                result.scheme_name.c_str(), result.start_comparisons.mean(),
                result.tick_work.mean(), vax_per_start, vax.PerTick(ops),
                result.wall_seconds * 1000.0);
  }

  std::printf("\ncolumns: cmp/start = key comparisons per START_TIMER; ops/tick = "
              "bookkeeping ops per tick;\nvax/* = Section 7 instruction-weighted "
              "costs. Note Scheme 2's cmp/start growing with n while wheels stay "
              "flat,\nand Scheme 1's ops/tick tracking n while Scheme 2's stays "
              "constant (Figure 4).\n");
  return 0;
}
