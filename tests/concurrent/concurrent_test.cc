// Appendix A.2: thread-safe wrappers. Functional correctness under concurrent
// start/stop churn for both the global-lock wrapper and the sharded wheel.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/baselines/sorted_list_timers.h"
#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"

namespace twheel::concurrent {
namespace {

TEST(LockedServiceTest, BehavesLikeInnerService) {
  LockedService service(std::make_unique<SortedListTimers>());
  std::vector<std::pair<Tick, RequestId>> fired;
  service.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });
  auto a = service.StartTimer(5, 1);
  auto b = service.StartTimer(10, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(service.outstanding(), 2u);
  EXPECT_EQ(service.StopTimer(b.value()), TimerError::kOk);
  service.AdvanceBy(10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{5, 1}));
  EXPECT_EQ(service.now(), 10u);
  EXPECT_EQ(service.counts().start_calls, 2u);
}

TEST(ShardedWheelTest, SingleThreadedContract) {
  ShardedWheel wheel(4, 64);
  std::vector<std::pair<Tick, RequestId>> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });
  auto a = wheel.StartTimer(5, 1);
  auto b = wheel.StartTimer(5, 2);
  auto c = wheel.StartTimer(200, 3);  // beyond table size: rounds logic
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(wheel.outstanding(), 3u);
  EXPECT_EQ(wheel.StopTimer(b.value()), TimerError::kOk);
  EXPECT_EQ(wheel.StopTimer(b.value()), TimerError::kNoSuchTimer);
  wheel.AdvanceBy(200);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{5, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, RequestId>{200, 3}));
  EXPECT_EQ(wheel.now(), 200u);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(ShardedWheelTest, HandlesRoundRobinAcrossShards) {
  ShardedWheel wheel(4, 64);
  std::vector<TimerHandle> handles;
  for (RequestId id = 0; id < 8; ++id) {
    auto r = wheel.StartTimer(50, id);
    ASSERT_TRUE(r.has_value());
    handles.push_back(r.value());
  }
  // Top byte of the slot is the shard: round-robin covers all four shards twice.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(handles[i].slot >> 24, i % 4);
  }
  for (const auto& h : handles) {
    EXPECT_EQ(wheel.StopTimer(h), TimerError::kOk);
  }
}

TEST(ShardedWheelTest, ExpiryHandlerMayReArm) {
  // Dispatch happens outside shard locks, so handlers can start timers.
  ShardedWheel wheel(2, 16);
  int fires = 0;
  wheel.set_expiry_handler([&](RequestId id, Tick) {
    if (++fires < 5) {
      ASSERT_TRUE(wheel.StartTimer(3, id + 1).has_value());
    }
  });
  ASSERT_TRUE(wheel.StartTimer(3, 0).has_value());
  wheel.AdvanceBy(15);
  EXPECT_EQ(fires, 5);
}

template <typename MakeService>
void ConcurrentChurn(MakeService make) {
  auto service = make();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> stopped{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto r = service->StartTimer(1 + (i % 100), static_cast<RequestId>(t) << 32 | i);
        ASSERT_TRUE(r.has_value());
        started.fetch_add(1, std::memory_order_relaxed);
        if (i % 2 == 0) {
          if (service->StopTimer(r.value()) == TimerError::kOk) {
            stopped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  go.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(started.load(), kThreads * kOpsPerThread);
  // Half of each thread's timers were stopped immediately; ticking must drain the
  // rest without corruption. (No ticks ran concurrently in this test; tick-vs-start
  // interleaving is exercised by the SMP bench.)
  std::size_t remaining = service->outstanding();
  EXPECT_EQ(remaining, started.load() - stopped.load());
  std::size_t total_expired = 0;
  for (int i = 0; i < 200; ++i) {
    total_expired += service->PerTickBookkeeping();
  }
  EXPECT_EQ(total_expired, remaining);
  EXPECT_EQ(service->outstanding(), 0u);
}

TEST(ConcurrencyChurnTest, LockedSortedList) {
  ConcurrentChurn([] {
    return std::make_unique<LockedService>(std::make_unique<SortedListTimers>());
  });
}

TEST(ConcurrencyChurnTest, ShardedWheelFourShards) {
  ConcurrentChurn([] { return std::make_unique<ShardedWheel>(16, 128); });
}

TEST(ConcurrencyChurnTest, StartsDuringTicks) {
  // One thread ticks continuously while others start/stop; counts must balance.
  ShardedWheel wheel(8, 64);
  std::atomic<std::uint64_t> fired{0};
  wheel.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });
  std::atomic<bool> stop_ticking{false};
  std::atomic<std::uint64_t> started{0}, cancelled{0};

  std::thread ticker([&] {
    while (!stop_ticking.load()) {
      wheel.PerTickBookkeeping();
    }
  });
  std::vector<std::thread> starters;
  for (int t = 0; t < 3; ++t) {
    starters.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        auto r = wheel.StartTimer(1 + (i % 50), static_cast<RequestId>(t) * 100000 + i);
        ASSERT_TRUE(r.has_value());
        started.fetch_add(1);
        if (i % 3 == 0 && wheel.StopTimer(r.value()) == TimerError::kOk) {
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : starters) {
    s.join();
  }
  // Drain what remains.
  for (int i = 0; i < 100; ++i) {
    wheel.PerTickBookkeeping();
  }
  stop_ticking.store(true);
  ticker.join();
  EXPECT_EQ(fired.load() + cancelled.load(), started.load());
  EXPECT_EQ(wheel.outstanding(), 0u);
}

}  // namespace
}  // namespace twheel::concurrent
