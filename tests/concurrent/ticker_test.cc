// TickerThread: wall-clock tick delivery, catch-up behaviour, and clean shutdown.
// Timing assertions use generous bounds so the test is robust on loaded machines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/concurrent/ticker.h"
#include "src/core/hashed_wheel_unsorted.h"

namespace twheel::concurrent {
namespace {

TEST(TickerThreadTest, DeliversTicksAtRoughlyTheConfiguredRate) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  {
    TickerThread ticker(service, std::chrono::microseconds(500));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ticker.Stop();
    // 50ms at 0.5ms/tick = ~100 ticks; allow a wide band.
    EXPECT_GE(ticker.ticks_delivered(), 40u);
    EXPECT_LE(ticker.ticks_delivered(), 300u);
    EXPECT_EQ(service.now(), ticker.ticks_delivered());
  }
}

TEST(TickerThreadTest, TimersFireUnderWallClockDrive) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  std::atomic<int> fired{0};
  service.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });
  auto handle = service.StartTimer(10, 1);
  ASSERT_TRUE(handle.has_value());

  TickerThread ticker(service, std::chrono::microseconds(200));
  // Wait for the expiry rather than a fixed sleep.
  for (int i = 0; i < 1000 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  EXPECT_EQ(fired.load(), 1);
}

TEST(TickerThreadTest, ConcurrentStartsWhileTicking) {
  ShardedWheel wheel(4, 64);
  std::atomic<std::uint64_t> fired{0};
  wheel.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });

  TickerThread ticker(wheel, std::chrono::microseconds(100));
  std::uint64_t started = 0, cancelled = 0;
  for (int i = 0; i < 2000; ++i) {
    auto handle = wheel.StartTimer(1 + (i % 40), i);
    ASSERT_TRUE(handle.has_value());
    ++started;
    if (i % 4 == 0 && wheel.StopTimer(handle.value()) == TimerError::kOk) {
      ++cancelled;
    }
  }
  // Let the remainder drain under wall-clock drive.
  for (int i = 0; i < 2000 && fired.load() + cancelled < started; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  EXPECT_EQ(fired.load() + cancelled, started);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(TickerThreadTest, StopIsIdempotentAndFinal) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  TickerThread ticker(service, std::chrono::microseconds(200));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticker.Stop();
  const std::uint64_t at_stop = ticker.ticks_delivered();
  ticker.Stop();  // second stop: no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticker.ticks_delivered(), at_stop) << "ticks after Stop()";
}

TEST(TickerThreadTest, DestructorStops) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  {
    TickerThread ticker(service, std::chrono::microseconds(200));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // destructor joins
  const Tick at_destroy = service.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.now(), at_destroy);
}

}  // namespace
}  // namespace twheel::concurrent
