// TickerThread: wall-clock tick delivery, catch-up behaviour, and clean shutdown.
// Timing assertions use generous bounds so the test is robust on loaded machines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/concurrent/ticker.h"
#include "src/core/hashed_wheel_unsorted.h"

namespace twheel::concurrent {
namespace {

TEST(TickerThreadTest, DeliversTicksAtRoughlyTheConfiguredRate) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  {
    TickerThread ticker(service, std::chrono::microseconds(500));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ticker.Stop();
    // 50ms at 0.5ms/tick = ~100 ticks; allow a wide band.
    EXPECT_GE(ticker.ticks_delivered(), 40u);
    EXPECT_LE(ticker.ticks_delivered(), 300u);
    EXPECT_EQ(service.now(), ticker.ticks_delivered());
  }
}

TEST(TickerThreadTest, TimersFireUnderWallClockDrive) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  std::atomic<int> fired{0};
  service.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });
  auto handle = service.StartTimer(10, 1);
  ASSERT_TRUE(handle.has_value());

  TickerThread ticker(service, std::chrono::microseconds(200));
  // Wait for the expiry rather than a fixed sleep.
  for (int i = 0; i < 1000 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  EXPECT_EQ(fired.load(), 1);
}

TEST(TickerThreadTest, ConcurrentStartsWhileTicking) {
  ShardedWheel wheel(4, 64);
  std::atomic<std::uint64_t> fired{0};
  wheel.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });

  TickerThread ticker(wheel, std::chrono::microseconds(100));
  std::uint64_t started = 0, cancelled = 0;
  for (int i = 0; i < 2000; ++i) {
    auto handle = wheel.StartTimer(1 + (i % 40), i);
    ASSERT_TRUE(handle.has_value());
    ++started;
    if (i % 4 == 0 && wheel.StopTimer(handle.value()) == TimerError::kOk) {
      ++cancelled;
    }
  }
  // Let the remainder drain under wall-clock drive.
  for (int i = 0; i < 2000 && fired.load() + cancelled < started; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  EXPECT_EQ(fired.load() + cancelled, started);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

// A service whose bookkeeping is slow — the regression case for Stop() latency.
// If the ticker's catch-up loop does not re-check stopping_ between deliveries,
// Stop() blocks behind the ENTIRE accumulated backlog (here: ~2 s of pending
// ticks at 5 ms each, >10 s of handler time) instead of at most the one call in
// flight.
class SlowService final : public TimerService {
 public:
  StartResult StartTimer(Duration, RequestId) override {
    return TimerError::kNoCapacity;
  }
  TimerError StopTimer(TimerHandle) override { return TimerError::kNoSuchTimer; }
  std::size_t PerTickBookkeeping() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ++now_;
    return 0;
  }
  Tick now() const override { return now_; }
  std::size_t outstanding() const override { return 0; }
  metrics::OpCounts counts() const override { return {}; }
  std::string_view name() const override { return "slow-for-test"; }
  void set_expiry_handler(ExpiryHandler) override {}
  SpaceProfile Space() const override { return {}; }

 private:
  std::atomic<Tick> now_{0};
};

TEST(TickerThreadTest, StopIsPromptDuringCatchUpBurst) {
  SlowService service;
  // Period far below the 5 ms bookkeeping cost: the ticker falls behind
  // immediately and is permanently in catch-up.
  TickerThread ticker(service, std::chrono::microseconds(100));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Backlog at this point: ~2000 due ticks x 5 ms = ~10 s of handler time.
  const auto stop_begin = std::chrono::steady_clock::now();
  ticker.Stop();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_begin;
  // Must wait for at most the one bookkeeping call in flight, plus scheduling
  // slack — nowhere near the backlog.
  EXPECT_LT(stop_elapsed, std::chrono::milliseconds(500))
      << "Stop() blocked behind the catch-up backlog";
  EXPECT_GE(ticker.ticks_delivered(), 1u);
}

// Records how the ticker partitions delivery into AdvanceTo batches. The first
// call blocks long enough for a >10k-tick backlog to pile up at the 10 µs
// period; the adaptive chunking must then coalesce that backlog into a handful
// of batched calls instead of 10k+ virtual calls.
class BatchRecordingService final : public TimerService {
 public:
  StartResult StartTimer(Duration, RequestId) override {
    return TimerError::kNoCapacity;
  }
  TimerError StopTimer(TimerHandle) override { return TimerError::kNoSuchTimer; }
  std::size_t PerTickBookkeeping() override {
    ++now_;
    return 0;
  }
  std::size_t AdvanceTo(Tick target) override {
    if (calls_.fetch_add(1) == 0) {
      // Build the backlog while the ticker is stuck inside its first delivery.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    const Tick base = now_.load();
    if (base < 10000) {
      calls_below_10k_.fetch_add(1);
    }
    Tick batch = target - base;
    Tick biggest = max_batch_.load();
    while (batch > biggest && !max_batch_.compare_exchange_weak(biggest, batch)) {
    }
    now_.store(target);
    return 0;
  }
  Tick now() const override { return now_.load(); }
  std::size_t outstanding() const override { return 0; }
  metrics::OpCounts counts() const override { return {}; }
  std::string_view name() const override { return "batch-recorder"; }
  void set_expiry_handler(ExpiryHandler) override {}
  SpaceProfile Space() const override { return {}; }

  std::uint64_t calls_below_10k() const { return calls_below_10k_.load(); }
  Tick max_batch() const { return max_batch_.load(); }

 private:
  std::atomic<Tick> now_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> calls_below_10k_{0};
  std::atomic<Tick> max_batch_{0};
};

TEST(TickerThreadTest, CatchUpBacklogIsCoalescedIntoBatchedAdvances) {
  BatchRecordingService service;
  TickerThread ticker(service, std::chrono::microseconds(10));
  // 150 ms of blockage at 10 µs/tick is a ~15k-tick backlog. Wait until it has
  // been worked off.
  for (int i = 0; i < 5000 && ticker.ticks_delivered() < 10000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  ASSERT_GE(ticker.ticks_delivered(), 10000u) << "backlog never materialized";
  // Crossing the first 10k simulated ticks must take a handful of AdvanceTo
  // calls, not one per tick (the pre-batching ticker needed >= 10000).
  EXPECT_LE(service.calls_below_10k(), 64u);
  // And at least one call must have carried a genuinely large batch.
  EXPECT_GE(service.max_batch(), 4096u);
  // ticks_delivered() counts simulated ticks, however they were chunked.
  EXPECT_EQ(service.now(), ticker.ticks_delivered());
}

TEST(TickerThreadTest, StopIsIdempotentAndFinal) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  TickerThread ticker(service, std::chrono::microseconds(200));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticker.Stop();
  const std::uint64_t at_stop = ticker.ticks_delivered();
  ticker.Stop();  // second stop: no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticker.ticks_delivered(), at_stop) << "ticks after Stop()";
}

TEST(TickerThreadTest, DestructorStops) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  {
    TickerThread ticker(service, std::chrono::microseconds(200));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // destructor joins
  const Tick at_destroy = service.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.now(), at_destroy);
}

}  // namespace
}  // namespace twheel::concurrent
