// TickerThread under hostile *client* load: slow expiry handlers that make every
// bookkeeping call expensive. ticker_test.cc covers slow services and batching
// with inert stubs; here a real wheel full of re-arming timers builds an
// unbounded catch-up backlog of handler work, and the PR-1/PR-2 promptness
// guarantees must survive it:
//   * Stop() waits for at most the one bookkeeping call in flight (the adaptive
//     chunk collapses to a single tick when a tick costs more than the 10 ms
//     chunk budget), never for the accumulated backlog;
//   * no bookkeeping call — PerTickBookkeeping or AdvanceTo — starts after
//     Stop() has returned.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/concurrent/sharded_wheel.h"
#include "src/concurrent/ticker.h"

namespace twheel::concurrent {
namespace {

using std::chrono::steady_clock;

TEST(TickerStressTest, SlowExpiryHandlersDoNotHoldStopHostage) {
  ShardedWheel wheel(1, 64);
  // Every fired timer sleeps 2 ms in its handler and re-arms at interval 1, so
  // once seeded the wheel owes ~population * 2 ms of handler time per simulated
  // tick — at a 100 µs period the ticker is permanently in catch-up, and the
  // outstanding backlog is worth tens of seconds of handler work.
  constexpr int kPopulation = 32;
  std::atomic<std::uint64_t> fired{0};
  wheel.set_expiry_handler([&wheel, &fired](RequestId id, Tick) {
    fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto rearm = wheel.StartTimer(1, id);
    ASSERT_TRUE(rearm.has_value());
  });
  for (int i = 0; i < kPopulation; ++i) {
    ASSERT_TRUE(wheel.StartTimer(1 + (i % 4), i).has_value());
  }

  TickerThread ticker(wheel, std::chrono::microseconds(100));
  // Accumulate a real backlog: wait until some expiries have actually been
  // dispatched (so the slow-handler path is in flight), then a little longer.
  for (int i = 0; i < 5000 && fired.load(std::memory_order_relaxed) < 64; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_GE(fired.load(std::memory_order_relaxed), 64u)
      << "handler load never materialized";

  const auto stop_begin = steady_clock::now();
  ticker.Stop();
  const auto stop_elapsed = steady_clock::now() - stop_begin;
  // One in-flight call is ~population * 2 ms (the adaptive chunk is 1 tick once
  // a tick costs more than the chunk budget); the backlog behind it is worth
  // tens of seconds. Generous bound for sanitizer builds — still an order of
  // magnitude below draining the backlog.
  EXPECT_LT(stop_elapsed, std::chrono::seconds(2))
      << "Stop() blocked behind the handler backlog";
}

// Forwards to a real wheel while counting bookkeeping entries; Freeze() arms
// the after-stop detector.
class BookkeepingProbe final : public TimerService {
 public:
  explicit BookkeepingProbe(TimerService& inner) : inner_(inner) {}

  void Freeze() { frozen_.store(true, std::memory_order_seq_cst); }
  std::uint64_t bookkeeping_calls() const { return calls_.load(); }
  std::uint64_t calls_after_freeze() const { return late_calls_.load(); }

  StartResult StartTimer(Duration interval, RequestId id) override {
    return inner_.StartTimer(interval, id);
  }
  TimerError StopTimer(TimerHandle handle) override {
    return inner_.StopTimer(handle);
  }
  std::size_t PerTickBookkeeping() override {
    Count();
    return inner_.PerTickBookkeeping();
  }
  std::size_t AdvanceTo(Tick target) override {
    Count();
    return inner_.AdvanceTo(target);
  }
  std::optional<Tick> NextExpiryHint() const override {
    return inner_.NextExpiryHint();
  }
  bool FastForward(Tick target) override { return inner_.FastForward(target); }
  Tick now() const override { return inner_.now(); }
  std::size_t outstanding() const override { return inner_.outstanding(); }
  metrics::OpCounts counts() const override { return inner_.counts(); }
  std::string_view name() const override { return "bookkeeping-probe"; }
  void set_expiry_handler(ExpiryHandler handler) override {
    inner_.set_expiry_handler(std::move(handler));
  }
  SpaceProfile Space() const override { return inner_.Space(); }

 private:
  void Count() {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (frozen_.load(std::memory_order_seq_cst)) {
      late_calls_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  TimerService& inner_;
  std::atomic<bool> frozen_{false};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> late_calls_{0};
};

TEST(TickerStressTest, NoBookkeepingCallRunsAfterStopReturns) {
  ShardedWheel wheel(1, 64);
  std::atomic<std::uint64_t> fired{0};
  // A mildly slow handler keeps the ticker inside catch-up bursts so Stop() is
  // very likely to interrupt one mid-burst — the interesting case.
  wheel.set_expiry_handler([&wheel, &fired](RequestId id, Tick) {
    fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    (void)wheel.StartTimer(1 + (id % 3), id);
  });
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(wheel.StartTimer(1 + (i % 4), i).has_value());
  }

  BookkeepingProbe probe(wheel);
  TickerThread ticker(probe, std::chrono::microseconds(100));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ticker.Stop();
  probe.Freeze();  // Stop() has returned: nothing may call bookkeeping anymore
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(probe.bookkeeping_calls(), 0u);
  EXPECT_EQ(probe.calls_after_freeze(), 0u)
      << "a bookkeeping call ran after Stop() returned";
}

}  // namespace
}  // namespace twheel::concurrent
