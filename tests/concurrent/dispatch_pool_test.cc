// DispatchPool and the split tick protocol (AdvanceShard / DispatchShard /
// CommitNow): deterministic single-threaded protocol tests (including a
// directly-driven steal), the counts() coherence regression under N concurrent
// drainers, and the shutdown-promptness contract mid catch-up burst.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/concurrent/dispatch_pool.h"
#include "src/concurrent/sharded_wheel.h"

namespace twheel::concurrent {
namespace {

SubmitOptions Generous() {
  SubmitOptions submit;
  submit.ring_capacity = 8192;
  submit.registration_capacity = 8192;
  submit.on_full = SubmitPolicy::kReject;
  return submit;
}

using FireLog = std::vector<std::pair<RequestId, Tick>>;

// Handler appends under a mutex: pool tests dispatch from several threads.
struct SafeLog {
  std::mutex mutex;
  FireLog fires;
  void Install(ShardedWheel& wheel) {
    wheel.set_expiry_handler([this](RequestId id, Tick when) {
      std::lock_guard<std::mutex> lock(mutex);
      fires.emplace_back(id, when);
    });
  }
};

// --- Split protocol, driven directly (no pool, fully deterministic) --------

TEST(SplitTickProtocolTest, AdvanceShardPublishesDispatchShardDelivers) {
  ShardedWheel wheel(1, 64, Generous());  // one shard: routing is trivial
  SafeLog log;
  log.Install(wheel);

  ASSERT_TRUE(wheel.StartTimer(5, 42).has_value());
  EXPECT_FALSE(wheel.HasPendingBatches(0));

  // The advance drains, claims, and publishes — but delivers nothing itself.
  EXPECT_EQ(wheel.AdvanceShard(0, 5), 1u);
  EXPECT_EQ(wheel.ShardCursor(0), 5u);
  EXPECT_TRUE(wheel.HasPendingBatches(0));
  EXPECT_TRUE(log.fires.empty()) << "AdvanceShard must not run handlers";
  EXPECT_EQ(wheel.counts().dispatch_batches, 1u);

  // Owner dispatch delivers the batch; a second dispatch finds nothing.
  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/true), 1u);
  ASSERT_EQ(log.fires.size(), 1u);
  EXPECT_EQ(log.fires[0], (std::pair<RequestId, Tick>{42, 5}));
  EXPECT_FALSE(wheel.HasPendingBatches(0));
  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/true), 0u);
  EXPECT_EQ(wheel.counts().dispatch_steals, 0u);
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);

  // The clock only commits what CommitNow was told about.
  EXPECT_EQ(wheel.now(), 0u);
  wheel.CommitNow(5);
  EXPECT_EQ(wheel.now(), 5u);
}

TEST(SplitTickProtocolTest, NonOwnerDispatchIsACountedStealExactlyOnce) {
  ShardedWheel wheel(1, 64, Generous());
  SafeLog log;
  log.Install(wheel);

  ASSERT_TRUE(wheel.StartTimer(3, 7).has_value());
  EXPECT_EQ(wheel.AdvanceShard(0, 3), 1u);

  // A thief (owner=false) delivers the very same batch the owner would have —
  // exactly once, counted as a steal.
  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/false), 1u);
  EXPECT_EQ(wheel.counts().dispatch_steals, 1u);
  ASSERT_EQ(log.fires.size(), 1u);
  EXPECT_EQ(log.fires[0], (std::pair<RequestId, Tick>{7, 3}));
  // Nothing left for the owner: the claim CAS transferred the whole chain.
  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/true), 0u);
  EXPECT_EQ(log.fires.size(), 1u);
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);
}

TEST(SplitTickProtocolTest, StackedBatchesDeliverOldestFirst) {
  ShardedWheel wheel(1, 64, Generous());
  SafeLog log;
  log.Install(wheel);

  // Two separate advances stack two batches (LIFO on the stack); one dispatch
  // must deliver them FIFO — ticks 2 then 4 — or the order counter trips.
  ASSERT_TRUE(wheel.StartTimer(2, 100).has_value());
  ASSERT_TRUE(wheel.StartTimer(4, 200).has_value());
  EXPECT_EQ(wheel.AdvanceShard(0, 2), 1u);
  EXPECT_EQ(wheel.AdvanceShard(0, 4), 1u);
  EXPECT_EQ(wheel.counts().dispatch_batches, 2u);

  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/false), 2u);
  ASSERT_EQ(log.fires.size(), 2u);
  EXPECT_EQ(log.fires[0], (std::pair<RequestId, Tick>{100, 2}));
  EXPECT_EQ(log.fires[1], (std::pair<RequestId, Tick>{200, 4}));
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);
  // Steals count per batch delivered, not per claimed chain.
  EXPECT_EQ(wheel.counts().dispatch_steals, 2u);
}

TEST(SplitTickProtocolTest, StolenCancelRaceSuppressesExactlyOnce) {
  // A cancel that lands after the advance collected the expiry loses: the
  // claim at AdvanceShard already committed the fire, StopTimer returns
  // kNoSuchTimer, and the (possibly stolen) dispatch still delivers it.
  ShardedWheel wheel(1, 64, Generous());
  SafeLog log;
  log.Install(wheel);

  auto handle = wheel.StartTimer(2, 9);
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(wheel.AdvanceShard(0, 2), 1u);
  EXPECT_EQ(wheel.StopTimer(handle.value()), TimerError::kNoSuchTimer)
      << "the claim must beat the cancel once the batch is published";
  EXPECT_EQ(wheel.DispatchShard(0, /*owner=*/false), 1u);
  ASSERT_EQ(log.fires.size(), 1u);
  EXPECT_EQ(log.fires[0].first, 9u);
}

// --- DispatchPool, manual mode ---------------------------------------------

TEST(DispatchPoolTest, ManualAdvanceDeliversEverythingAndCommitsNow) {
  ShardedWheel wheel(4, 64, Generous());
  SafeLog log;
  log.Install(wheel);

  constexpr std::size_t kTimers = 64;
  for (std::size_t i = 0; i < kTimers; ++i) {
    ASSERT_TRUE(wheel.StartTimer(1 + (i % 32), 1000 + i).has_value());
  }

  DispatchOptions options;
  options.drainers = 3;  // 3 drainers over 4 shards: uneven ownership
  DispatchPool pool(wheel, options);
  const std::size_t fired = pool.AdvanceTo(40);
  EXPECT_EQ(fired, kTimers);
  EXPECT_EQ(wheel.now(), 40u);
  EXPECT_EQ(wheel.outstanding(), 0u);
  EXPECT_EQ(log.fires.size(), kTimers);
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);
  pool.Stop();

  // Exactly-once across the pool: every cookie appears exactly once.
  std::vector<bool> seen(kTimers, false);
  for (const auto& [cookie, when] : log.fires) {
    const std::size_t i = static_cast<std::size_t>(cookie - 1000);
    ASSERT_LT(i, kTimers);
    EXPECT_FALSE(seen[i]) << "cookie " << cookie << " delivered twice";
    seen[i] = true;
    EXPECT_EQ(when, 1 + (i % 32));
  }
}

TEST(DispatchPoolTest, ManualAdvanceIsRepeatableAcrossEpochs) {
  ShardedWheel wheel(2, 64, Generous());
  SafeLog log;
  log.Install(wheel);
  DispatchOptions options;
  options.drainers = 2;
  DispatchPool pool(wheel, options);

  for (Tick target = 8; target <= 64; target += 8) {
    ASSERT_TRUE(wheel.StartTimer(4, target).has_value());
    pool.AdvanceTo(target);
    EXPECT_EQ(wheel.now(), target);
  }
  pool.Stop();
  EXPECT_EQ(log.fires.size(), 8u);
  EXPECT_EQ(wheel.outstanding(), 0u);
  EXPECT_EQ(pool.fires_dispatched(), 8u);
}

// Satellite: counts() coherence under concurrent drainers — the conservation
// law start_calls == expiries + kOk cancels + outstanding must hold exactly at
// quiesce no matter how many drainers raced the dispatch (client-view claim
// counters, not the inner wheels' ghost-inflated totals).
TEST(DispatchPoolTest, CountsConservationHoldsUnderConcurrentDrainers) {
  ShardedWheel wheel(4, 64, Generous());
  SafeLog log;
  log.Install(wheel);
  DispatchOptions options;
  options.drainers = 4;
  DispatchPool pool(wheel, options);

  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kOpsPerProducer = 400;
  std::atomic<std::size_t> ok_cancels{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::vector<TimerHandle> live;
      for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
        auto r = wheel.StartTimer(1 + ((p * 131 + i * 17) % 48),
                                  (p << 20) | i);
        ASSERT_TRUE(r.has_value()) << "generous capacity rejected a start";
        live.push_back(r.value());
        if (i % 3 == 0 && !live.empty()) {
          if (wheel.StopTimer(live.back()) == TimerError::kOk) {
            ok_cancels.fetch_add(1, std::memory_order_relaxed);
          }
          live.pop_back();
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Drive the pool while producers are live, then join and quiesce.
  for (int i = 0; i < 16; ++i) {
    pool.AdvanceTo(wheel.now() + 8);
  }
  for (std::thread& t : producers) {
    t.join();
  }
  while (wheel.outstanding() != 0) {
    pool.AdvanceTo(wheel.now() + 64);
  }
  pool.Stop();

  const auto counts = wheel.counts();
  EXPECT_EQ(counts.start_calls, kProducers * kOpsPerProducer);
  EXPECT_EQ(counts.start_calls,
            counts.expiries + ok_cancels.load() + wheel.outstanding())
      << "counts() snapshot incoherent after concurrent dispatch: expiries="
      << counts.expiries << " cancels=" << ok_cancels.load();
  EXPECT_EQ(log.fires.size(), counts.expiries);
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);
}

// --- DispatchPool, ticker mode ---------------------------------------------

TEST(DispatchPoolTest, TickerModeFiresWithoutExternalDriving) {
  ShardedWheel wheel(2, 64, Generous());
  SafeLog log;
  log.Install(wheel);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wheel.StartTimer(1 + i, 50 + i).has_value());
  }
  DispatchOptions options;
  options.drainers = 2;
  options.tick_period = std::chrono::microseconds(100);
  DispatchPool pool(wheel, options);
  // 8 ticks owed after ~1ms; spin until the pool delivered all 8 fires.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (wheel.outstanding() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.Stop();
  EXPECT_EQ(wheel.outstanding(), 0u) << "ticker pool never delivered";
  EXPECT_EQ(log.fires.size(), 8u);
  EXPECT_EQ(wheel.dispatch_order_violations(), 0u);
}

// Satellite: shutdown promptness. N per-shard tickers mid catch-up burst —
// a microscopic period plus a bounded chunk size means the drainers are
// permanently behind schedule, always inside a catch-up burst. Stop() must
// abandon the burst between chunks (never wait out the accumulated debt) and
// run no bookkeeping after it returns.
TEST(DispatchPoolTest, StopIsPromptMidCatchUpBurstAndFinal) {
  ShardedWheel wheel(4, 64, Generous());
  SafeLog log;
  log.Install(wheel);
  // Self-re-arming load: periodic timers keep every future tick populated, so
  // the catch-up burst always has real expiry work to deliver.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        wheel.StartPeriodic(1 + (i % 8), 9000 + i, TimerService::kRepeatForever)
            .has_value());
  }
  DispatchOptions options;
  options.drainers = 4;
  options.tick_period = std::chrono::microseconds(1);  // unmeetable pace
  options.max_chunk_ticks = 32;
  DispatchPool pool(wheel, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    // The burst is real: laps were delivered while we slept (an infinite
    // periodic never retires, so laps land in periodic_fires, not expiries).
    std::lock_guard<std::mutex> lock(log.mutex);
    ASSERT_FALSE(log.fires.empty()) << "ticker pool delivered nothing";
  }

  const auto stop_begin = std::chrono::steady_clock::now();
  pool.Stop();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_begin;
  // ~50ms at 1µs/tick leaves ~50k ticks of debt per drainer; a prompt Stop
  // abandons it within a few chunks. The bound is deliberately loose for slow
  // CI, but far below the many seconds the full debt would cost.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(stop_elapsed)
                .count(),
            2000)
      << "Stop() waited out the catch-up burst instead of abandoning it";

  // No bookkeeping after Stop: clock, fires, and counters are all frozen.
  const Tick now_after_stop = wheel.now();
  const auto counts_after_stop = wheel.counts();
  const std::size_t fires_after_stop = [&] {
    std::lock_guard<std::mutex> lock(log.mutex);
    return log.fires.size();
  }();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wheel.now(), now_after_stop);
  const auto counts_later = wheel.counts();
  EXPECT_EQ(counts_later.periodic_fires, counts_after_stop.periodic_fires);
  EXPECT_EQ(counts_later.dispatch_batches, counts_after_stop.dispatch_batches);
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    EXPECT_EQ(log.fires.size(), fires_after_stop);
  }
  // Stop() delivered every batch that was still published: nothing pending.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(wheel.HasPendingBatches(s)) << "shard " << s;
  }

  // The wheel is still a valid single-driver service afterwards: the absolute-
  // target advance re-converges the unequal shard cursors and keeps firing.
  const std::uint64_t before = wheel.counts().periodic_fires;
  wheel.AdvanceTo(wheel.now() + 16);
  EXPECT_GT(wheel.counts().periodic_fires, before)
      << "periodic load must keep firing under post-pool manual driving";
}

TEST(DispatchPoolTest, StopIsIdempotentAndDestructorSafe) {
  ShardedWheel wheel(2, 64, Generous());
  SafeLog log;
  log.Install(wheel);
  ASSERT_TRUE(wheel.StartTimer(4, 1).has_value());
  DispatchOptions options;
  options.drainers = 2;
  options.tick_period = std::chrono::microseconds(50);
  {
    DispatchPool pool(wheel, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.Stop();
    pool.Stop();  // idempotent
  }  // destructor calls Stop again
  SUCCEED();
}

}  // namespace
}  // namespace twheel::concurrent
