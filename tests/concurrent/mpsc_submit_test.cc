// Deferred-registration (MPSC) mode of ShardedWheel, driven single-threaded:
// visibility point, exact deadlines, pending-cancel reconciliation, backpressure
// policies, generation-checked handles, the new OpCounts fields, and the
// NextExpiryHint/AdvanceTo ordering fix (a start enqueued before AdvanceTo is
// drained before the batch advances, so the hint can never cause it to be
// skipped).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/concurrent/sharded_wheel.h"

namespace twheel::concurrent {
namespace {

SubmitOptions Generous() {
  SubmitOptions submit;
  submit.ring_capacity = 1024;
  submit.registration_capacity = 1024;
  submit.on_full = SubmitPolicy::kReject;
  return submit;
}

using FireLog = std::vector<std::pair<RequestId, Tick>>;

void Capture(ShardedWheel& wheel, FireLog& log) {
  wheel.set_expiry_handler(
      [&log](RequestId id, Tick when) { log.emplace_back(id, when); });
}

TEST(MpscSubmitTest, DeferredStartFiresAtExactDeadline) {
  ShardedWheel wheel(1, 64, Generous());
  EXPECT_EQ(wheel.name(), "scheme6-sharded-mpsc");
  FireLog log;
  Capture(wheel, log);

  auto handle = wheel.StartTimer(5, 42);
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(wheel.outstanding(), 1u) << "pending timers count as outstanding";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(wheel.PerTickBookkeeping(), 0u);
  }
  EXPECT_EQ(wheel.PerTickBookkeeping(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (std::pair<RequestId, Tick>{42, 5}));
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(MpscSubmitTest, ZeroIntervalRejected) {
  ShardedWheel wheel(1, 64, Generous());
  auto result = wheel.StartTimer(0, 1);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), TimerError::kZeroInterval);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(MpscSubmitTest, CancelBeforeDrainNeverRegisters) {
  ShardedWheel wheel(1, 64, Generous());
  FireLog log;
  Capture(wheel, log);

  auto handle = wheel.StartTimer(3, 7);
  ASSERT_TRUE(handle.has_value());
  // The start command has NOT drained yet; the cancel must still win
  // synchronously (pending-cancel reconciliation).
  EXPECT_EQ(wheel.StopTimer(handle.value()), TimerError::kOk);
  EXPECT_EQ(wheel.outstanding(), 0u);
  for (int i = 0; i < 8; ++i) {
    wheel.PerTickBookkeeping();
  }
  EXPECT_TRUE(log.empty()) << "cancelled-before-drain timer fired";
  // Both commands were still consumed from the ring.
  EXPECT_GE(wheel.counts().drained_commands, 2u);
}

TEST(MpscSubmitTest, CancelAfterDrainRemoves) {
  ShardedWheel wheel(1, 64, Generous());
  FireLog log;
  Capture(wheel, log);

  auto handle = wheel.StartTimer(10, 7);
  ASSERT_TRUE(handle.has_value());
  wheel.PerTickBookkeeping();  // drains: the timer is now in the inner wheel
  EXPECT_EQ(wheel.StopTimer(handle.value()), TimerError::kOk);
  EXPECT_EQ(wheel.outstanding(), 0u);
  for (int i = 0; i < 16; ++i) {
    wheel.PerTickBookkeeping();
  }
  EXPECT_TRUE(log.empty());
}

TEST(MpscSubmitTest, StaleHandlesAlwaysRefused) {
  ShardedWheel wheel(1, 64, Generous());
  FireLog log;
  Capture(wheel, log);

  auto fired = wheel.StartTimer(2, 1);
  ASSERT_TRUE(fired.has_value());
  wheel.PerTickBookkeeping();
  wheel.PerTickBookkeeping();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(wheel.StopTimer(fired.value()), TimerError::kNoSuchTimer);

  auto cancelled = wheel.StartTimer(5, 2);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(wheel.StopTimer(cancelled.value()), TimerError::kOk);
  EXPECT_EQ(wheel.StopTimer(cancelled.value()), TimerError::kNoSuchTimer);

  EXPECT_EQ(wheel.StopTimer(kInvalidHandle), TimerError::kNoSuchTimer);
}

TEST(MpscSubmitTest, RecycledEntryBumpsGeneration) {
  ShardedWheel wheel(1, 64, Generous());
  auto first = wheel.StartTimer(5, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(wheel.StopTimer(first.value()), TimerError::kOk);
  wheel.PerTickBookkeeping();  // reclaim the entry
  // The freed entry is reused; the old handle must stay dead even if the slot
  // coincides.
  auto second = wheel.StartTimer(50, 2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(wheel.StopTimer(first.value()), TimerError::kNoSuchTimer);
  EXPECT_EQ(wheel.StopTimer(second.value()), TimerError::kOk);
}

TEST(MpscSubmitTest, RejectPolicySurfacesNoCapacityAndRecovers) {
  SubmitOptions submit;
  submit.ring_capacity = 2;
  submit.registration_capacity = 8;
  submit.on_full = SubmitPolicy::kReject;
  ShardedWheel wheel(1, 64, submit);

  auto a = wheel.StartTimer(10, 1);
  auto b = wheel.StartTimer(10, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Ring full (2 undrained start commands): reject, with full rollback.
  auto c = wheel.StartTimer(10, 3);
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error(), TimerError::kNoCapacity);
  EXPECT_EQ(wheel.outstanding(), 2u);
  wheel.PerTickBookkeeping();  // drain frees the ring
  EXPECT_TRUE(wheel.StartTimer(10, 4).has_value());
}

TEST(MpscSubmitTest, RegistrationTableExhaustionRejects) {
  SubmitOptions submit;
  submit.ring_capacity = 16;
  submit.registration_capacity = 2;
  submit.on_full = SubmitPolicy::kReject;
  ShardedWheel wheel(1, 64, submit);

  auto a = wheel.StartTimer(10, 1);
  auto b = wheel.StartTimer(10, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  auto c = wheel.StartTimer(10, 3);
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error(), TimerError::kNoCapacity);
  // Cancelling one start (still pending) frees its entry at the next drain.
  EXPECT_EQ(wheel.StopTimer(a.value()), TimerError::kOk);
  wheel.PerTickBookkeeping();
  EXPECT_TRUE(wheel.StartTimer(10, 4).has_value());
}

TEST(MpscSubmitTest, CountsExposeSubmissionTraffic) {
  ShardedWheel wheel(1, 64, Generous());
  FireLog log;
  Capture(wheel, log);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wheel.StartTimer(3, i).has_value());
  }
  auto counts = wheel.counts();
  EXPECT_EQ(counts.enqueued_starts, 5u);
  EXPECT_EQ(counts.drained_commands, 0u) << "nothing drained yet";
  for (int i = 0; i < 3; ++i) {
    wheel.PerTickBookkeeping();
  }
  counts = wheel.counts();
  EXPECT_EQ(counts.enqueued_starts, 5u);
  EXPECT_EQ(counts.drained_commands, 5u);
  EXPECT_EQ(counts.submit_retries, 0u) << "single-threaded: wait-free";
  EXPECT_EQ(log.size(), 5u);
}

TEST(MpscSubmitTest, RoundRobinAcrossShardsStillExact) {
  ShardedWheel wheel(4, 64, Generous());
  FireLog log;
  Capture(wheel, log);
  for (RequestId id = 0; id < 8; ++id) {
    ASSERT_TRUE(wheel.StartTimer(3, id).has_value());
  }
  EXPECT_EQ(wheel.outstanding(), 8u);
  EXPECT_EQ(wheel.AdvanceTo(3), 8u);
  EXPECT_EQ(log.size(), 8u);
  for (const auto& [id, when] : log) {
    EXPECT_EQ(when, 3u);
  }
}

// --- The NextExpiryHint / AdvanceTo ordering fix -----------------------------

TEST(MpscSubmitTest, HintCoversPendingSubmissions) {
  ShardedWheel wheel(4, 64, Generous());
  EXPECT_FALSE(wheel.NextExpiryHint().has_value());
  auto handle = wheel.StartTimer(7, 1);
  ASSERT_TRUE(handle.has_value());
  // The command has not drained — no inner wheel knows about the timer — yet
  // the hint must already cover it.
  auto hint = wheel.NextExpiryHint();
  ASSERT_TRUE(hint.has_value());
  EXPECT_LE(*hint, 7u);
}

TEST(MpscSubmitTest, StartEnqueuedBeforeAdvanceIsNeverSkipped) {
  ShardedWheel wheel(4, 64, Generous());
  FireLog log;
  Capture(wheel, log);
  // Enqueue, then immediately batch-advance far past the deadline in one call.
  // The batch path must drain first, register the timer at its exact deadline,
  // and dispatch it inside the batch — not discover the slot after crossing it.
  ASSERT_TRUE(wheel.StartTimer(7, 99).has_value());
  EXPECT_EQ(wheel.AdvanceTo(40), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (std::pair<RequestId, Tick>{99, 7}));
}

TEST(MpscSubmitTest, FastForwardToHintDispatchesThePendingTimer) {
  ShardedWheel wheel(4, 64, Generous());
  FireLog log;
  Capture(wheel, log);
  ASSERT_TRUE(wheel.StartTimer(7, 5).has_value());
  const auto hint = wheel.NextExpiryHint();
  ASSERT_TRUE(hint.has_value());
  // A driver sleeping until the hint then fast-forwarding must not lose the
  // still-queued start: FastForward delegates to the draining batch path.
  EXPECT_TRUE(wheel.FastForward(*hint));
  wheel.PerTickBookkeeping();  // cross the deadline tick itself if hint < 7
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 7u);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(MpscSubmitTest, HintFallsBackToInnerWheelAfterDrain) {
  ShardedWheel wheel(1, 64, Generous());
  FireLog log;
  Capture(wheel, log);
  ASSERT_TRUE(wheel.StartTimer(5, 1).has_value());
  wheel.PerTickBookkeeping();  // drained: now the inner wheel owns the deadline
  auto hint = wheel.NextExpiryHint();
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 5u);
  wheel.AdvanceTo(5);
  ASSERT_EQ(log.size(), 1u);
  // Everything fired and the pending hint was reset by the drain: no hint.
  EXPECT_FALSE(wheel.NextExpiryHint().has_value());
}

TEST(MpscSubmitTest, SpaceIncludesSubmissionStructures) {
  ShardedWheel locked(2, 64);
  ShardedWheel deferred(2, 64, Generous());
  EXPECT_GT(deferred.Space().fixed_bytes, locked.Space().fixed_bytes)
      << "rings and registration tables must be accounted";
}

}  // namespace
}  // namespace twheel::concurrent
