// Scheme 2 (Section 3.2, Figure 2): ordered-list specifics — both search
// directions, scan-cost asymmetries, and the hardware single-timer hook.

#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/sorted_list_timers.h"

namespace twheel {
namespace {

TEST(SortedListTest, Figure2OrderingAndHeadExpiry) {
  // Figure 2's queue: timers due at 10:23:12, 10:23:24, 10:24:03 (as offsets here);
  // a new 10:24:01 timer belongs between the second and third elements.
  SortedListTimers timers;
  std::vector<std::pair<Tick, RequestId>> fired;
  timers.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });

  ASSERT_TRUE(timers.StartTimer(12, 1).has_value());
  ASSERT_TRUE(timers.StartTimer(24, 2).has_value());
  ASSERT_TRUE(timers.StartTimer(63, 3).has_value());
  ASSERT_TRUE(timers.StartTimer(61, 4).has_value());  // the 10:24:01 insertion

  EXPECT_EQ(timers.NextExpiry(), 12u);
  timers.AdvanceBy(63);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{12, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, RequestId>{24, 2}));
  EXPECT_EQ(fired[2], (std::pair<Tick, RequestId>{61, 4}));
  EXPECT_EQ(fired[3], (std::pair<Tick, RequestId>{63, 3}));
}

TEST(SortedListTest, FrontAndRearSearchesProduceSameOrder) {
  for (auto direction : {SearchDirection::kFromFront, SearchDirection::kFromRear}) {
    SortedListTimers timers(direction);
    std::vector<RequestId> fired;
    timers.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
    const Duration intervals[] = {50, 10, 30, 10, 70, 30};
    for (RequestId id = 0; id < 6; ++id) {
      ASSERT_TRUE(timers.StartTimer(intervals[id], id).has_value());
    }
    timers.AdvanceBy(80);
    // Equal expiries (10,10 and 30,30) stay FIFO under either search direction.
    EXPECT_EQ(fired, (std::vector<RequestId>{1, 3, 2, 5, 0, 4})) << "direction "
        << static_cast<int>(direction);
  }
}

TEST(SortedListTest, FrontSearchScanCountMatchesRank) {
  SortedListTimers timers(SearchDirection::kFromFront);
  // List will hold expiries {10, 20, 30}; inserting 25 from the front examines 3
  // elements (10, 20, then 30 which terminates the scan).
  ASSERT_TRUE(timers.StartTimer(10, 1).has_value());
  ASSERT_TRUE(timers.StartTimer(20, 2).has_value());
  ASSERT_TRUE(timers.StartTimer(30, 3).has_value());
  auto before = timers.counts();
  ASSERT_TRUE(timers.StartTimer(25, 4).has_value());
  EXPECT_EQ((timers.counts() - before).comparisons, 3u);
}

TEST(SortedListTest, RearSearchScanCountMatchesReverseRank) {
  SortedListTimers timers(SearchDirection::kFromRear);
  ASSERT_TRUE(timers.StartTimer(10, 1).has_value());
  ASSERT_TRUE(timers.StartTimer(20, 2).has_value());
  ASSERT_TRUE(timers.StartTimer(30, 3).has_value());
  auto before = timers.counts();
  ASSERT_TRUE(timers.StartTimer(25, 4).has_value());
  // From the rear: examines 30, then 20 which terminates.
  EXPECT_EQ((timers.counts() - before).comparisons, 2u);
}

TEST(SortedListTest, RearSearchConstantIntervalsIsO1) {
  // "If timers are always inserted at the rear of the list, this search strategy
  // yields an O(1) START_TIMER latency. This happens, for instance, if all timers
  // intervals have the same value."
  SortedListTimers timers(SearchDirection::kFromRear);
  for (RequestId id = 0; id < 1000; ++id) {
    auto before = timers.counts();
    ASSERT_TRUE(timers.StartTimer(100, id).has_value());
    EXPECT_LE((timers.counts() - before).comparisons, 1u) << "insert " << id;
    timers.PerTickBookkeeping();
  }
}

TEST(SortedListTest, FrontSearchConstantIntervalsIsOn) {
  // The mirror image: constant intervals are the worst case for front search.
  SortedListTimers timers(SearchDirection::kFromFront);
  for (RequestId id = 0; id < 100; ++id) {
    ASSERT_TRUE(timers.StartTimer(1000, id).has_value());
  }
  auto before = timers.counts();
  ASSERT_TRUE(timers.StartTimer(1000, 999).has_value());
  EXPECT_EQ((timers.counts() - before).comparisons, 100u);
}

TEST(SortedListTest, NextExpiryTracksHead) {
  SortedListTimers timers;
  EXPECT_EQ(timers.NextExpiry(), 0u);
  auto h = timers.StartTimer(40, 1);
  ASSERT_TRUE(h.has_value());
  ASSERT_TRUE(timers.StartTimer(60, 2).has_value());
  EXPECT_EQ(timers.NextExpiry(), 40u);
  EXPECT_EQ(timers.StopTimer(h.value()), TimerError::kOk);
  EXPECT_EQ(timers.NextExpiry(), 60u);
}

TEST(SortedListTest, PerTickCostIsConstantWhenNothingExpires) {
  SortedListTimers timers;
  for (RequestId id = 0; id < 500; ++id) {
    ASSERT_TRUE(timers.StartTimer(10000 + id, id).has_value());
  }
  auto before = timers.counts();
  timers.AdvanceBy(100);
  auto delta = timers.counts() - before;
  EXPECT_EQ(delta.comparisons, 100u);  // exactly one head comparison per tick
  EXPECT_EQ(delta.decrement_visits, 0u);
}

}  // namespace
}  // namespace twheel
