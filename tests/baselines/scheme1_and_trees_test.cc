// Scheme 1 (Section 3.1) and Scheme 3 (Section 4.1.1) specifics: per-tick O(n)
// decrements, heap/BST/leftist invariants under randomized churn, the unbalanced-BST
// degeneration the paper warns about, and the lazy-cancellation memory growth of the
// simulation idiom.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "src/baselines/bst_timers.h"
#include "src/baselines/heap_timers.h"
#include "src/baselines/leftist_heap_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

TEST(UnorderedTimersTest, PerTickDecrementsEveryOutstandingTimer) {
  UnorderedTimers timers;
  for (RequestId id = 0; id < 100; ++id) {
    ASSERT_TRUE(timers.StartTimer(1000, id).has_value());
  }
  auto before = timers.counts();
  timers.AdvanceBy(10);
  auto delta = timers.counts() - before;
  EXPECT_EQ(delta.decrement_visits, 1000u);  // 100 timers x 10 ticks: Figure 4's O(n)
}

TEST(UnorderedTimersTest, StartAndStopAreConstantTime) {
  UnorderedTimers timers;
  for (RequestId id = 0; id < 1000; ++id) {
    ASSERT_TRUE(timers.StartTimer(500, id).has_value());
  }
  auto before = timers.counts();
  auto h = timers.StartTimer(500, 9999);
  ASSERT_TRUE(h.has_value());
  ASSERT_EQ(timers.StopTimer(h.value()), TimerError::kOk);
  auto delta = timers.counts() - before;
  EXPECT_EQ(delta.comparisons, 0u);
  EXPECT_EQ(delta.insert_link_ops, 1u);
  EXPECT_EQ(delta.delete_unlink_ops, 1u);
}

TEST(UnorderedTimersTest, CompareModeEquivalentToDecrementMode) {
  // Section 3.1: "instead of doing a DECREMENT, we can store the absolute time at
  // which timers expire and do a COMPARE" — observable behaviour must be identical.
  UnorderedTimers decrement(0, Scheme1Mode::kDecrement);
  UnorderedTimers compare(0, Scheme1Mode::kCompare);
  EXPECT_EQ(compare.name(), "scheme1-unordered-compare");

  std::vector<std::pair<Tick, RequestId>> fired_a, fired_b;
  decrement.set_expiry_handler([&](RequestId id, Tick t) { fired_a.push_back({t, id}); });
  compare.set_expiry_handler([&](RequestId id, Tick t) { fired_b.push_back({t, id}); });

  rng::Xoshiro256 gen(23);
  std::vector<TimerHandle> ha, hb;
  for (int step = 0; step < 2000; ++step) {
    std::uint64_t action = gen.NextBounded(8);
    if (action < 4) {
      Duration interval = 1 + gen.NextBounded(64);
      auto a = decrement.StartTimer(interval, step);
      auto b = compare.StartTimer(interval, step);
      ASSERT_TRUE(a.has_value() && b.has_value());
      ha.push_back(a.value());
      hb.push_back(b.value());
    } else if (action < 6 && !ha.empty()) {
      std::size_t idx = gen.NextBounded(ha.size());
      TimerError ea = decrement.StopTimer(ha[idx]);
      TimerError eb = compare.StopTimer(hb[idx]);
      EXPECT_EQ(ea, eb);
      ha[idx] = ha.back();
      hb[idx] = hb.back();
      ha.pop_back();
      hb.pop_back();
    } else {
      Duration ticks = 1 + gen.NextBounded(4);
      decrement.AdvanceBy(ticks);
      compare.AdvanceBy(ticks);
    }
  }
  decrement.AdvanceBy(70);
  compare.AdvanceBy(70);
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(decrement.counts().decrement_visits, compare.counts().decrement_visits)
      << "both modes do the same O(n) per-tick scan";
}

// ---- Randomized structural-invariant churn, shared across the tree schemes. ----

template <typename Scheme>
void ChurnAndCheck(Scheme& scheme, std::uint64_t seed,
                   const std::function<void(Scheme&)>& check) {
  rng::Xoshiro256 gen(seed);
  std::vector<TimerHandle> live;
  RequestId next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    std::uint64_t action = gen.NextBounded(10);
    if (action < 5) {  // start
      auto r = scheme.StartTimer(1 + gen.NextBounded(200), next_id++);
      ASSERT_TRUE(r.has_value());
      live.push_back(r.value());
    } else if (action < 8 && !live.empty()) {  // stop a random live handle
      std::size_t idx = gen.NextBounded(live.size());
      (void)scheme.StopTimer(live[idx]);  // may be stale if it already expired
      live[idx] = live.back();
      live.pop_back();
    } else {  // tick
      scheme.AdvanceBy(1 + gen.NextBounded(8));
    }
    if (step % 64 == 0) {
      check(scheme);
    }
  }
  check(scheme);
}

TEST(HeapTimersTest, InvariantHoldsUnderChurn) {
  HeapTimers heap;
  ChurnAndCheck<HeapTimers>(heap, 11, [](HeapTimers& h) {
    ASSERT_TRUE(h.CheckHeapInvariant());
  });
}

TEST(BstTimersTest, InvariantHoldsUnderChurn) {
  BstTimers bst;
  ChurnAndCheck<BstTimers>(bst, 12, [](BstTimers& b) {
    ASSERT_TRUE(b.CheckBstInvariant());
  });
}

TEST(LeftistHeapTimersTest, InvariantHoldsUnderChurn) {
  LeftistHeapTimers leftist;
  ChurnAndCheck<LeftistHeapTimers>(leftist, 13, [](LeftistHeapTimers& l) {
    ASSERT_TRUE(l.CheckLeftistInvariant());
  });
}

TEST(HeapTimersTest, StartCostIsLogarithmic) {
  // Sift-up comparisons for the n-th insert are bounded by log2(n) + 1.
  HeapTimers heap;
  rng::Xoshiro256 gen(14);
  for (RequestId id = 0; id < 4096; ++id) {
    auto before = heap.counts();
    ASSERT_TRUE(heap.StartTimer(1 + gen.NextBounded(100000), id).has_value());
    auto delta = heap.counts() - before;
    EXPECT_LE(delta.comparisons, std::ceil(std::log2(id + 2)) + 1) << "insert " << id;
  }
}

TEST(BstTimersTest, RandomIntervalsGiveLogHeight) {
  BstTimers bst;
  rng::Xoshiro256 gen(15);
  for (RequestId id = 0; id < 4096; ++id) {
    ASSERT_TRUE(bst.StartTimer(1 + gen.NextBounded(1 << 30), id).has_value());
  }
  // Expected height for a random BST is ~2.99 log2(n) ~= 36; allow slack.
  EXPECT_LE(bst.HeightSlow(), 60u);
}

TEST(BstTimersTest, ConstantIntervalsDegenerateToList) {
  // "Unfortunately, unbalanced binary trees easily degenerate into a linear list;
  // this can happen, for instance, if a set of equal timer intervals are inserted."
  BstTimers bst;
  constexpr std::size_t kN = 512;
  for (RequestId id = 0; id < kN; ++id) {
    ASSERT_TRUE(bst.StartTimer(10000, id).has_value());
  }
  EXPECT_EQ(bst.HeightSlow(), kN);  // a pure right spine

  // And the insertion cost is linear, not logarithmic.
  auto before = bst.counts();
  ASSERT_TRUE(bst.StartTimer(10000, kN).has_value());
  EXPECT_EQ((bst.counts() - before).comparisons, kN);
}

TEST(BstTimersTest, ExpiryDrainsInOrderAfterDegeneration) {
  BstTimers bst;
  std::vector<RequestId> fired;
  bst.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  for (RequestId id = 0; id < 64; ++id) {
    ASSERT_TRUE(bst.StartTimer(5, id).has_value());
  }
  bst.AdvanceBy(5);
  ASSERT_EQ(fired.size(), 64u);
  for (RequestId id = 0; id < 64; ++id) {
    EXPECT_EQ(fired[id], id);  // (expiry, seq) keys keep FIFO order
  }
}

TEST(LeftistHeapTimersTest, LazyCancellationRetainsMemory) {
  // Section 4.2: "such an approach can cause the memory needs to grow unboundedly
  // beyond the number of timers outstanding at any time."
  LeftistHeapTimers leftist;
  std::vector<TimerHandle> handles;
  for (RequestId id = 0; id < 1000; ++id) {
    auto r = leftist.StartTimer(100000, id);
    ASSERT_TRUE(r.has_value());
    handles.push_back(r.value());
  }
  for (const auto& h : handles) {
    ASSERT_EQ(leftist.StopTimer(h), TimerError::kOk);
  }
  EXPECT_EQ(leftist.outstanding(), 0u);
  EXPECT_EQ(leftist.RetainedRecords(), 1000u);  // all still occupying memory

  // The corpses are reclaimed only as they surface at the root.
  leftist.AdvanceBy(1);
  EXPECT_EQ(leftist.RetainedRecords(), 0u);  // root-surfacing drained them all
}

TEST(LeftistHeapTimersTest, CancelledTimersNeverFire) {
  LeftistHeapTimers leftist;
  std::size_t fired = 0;
  leftist.set_expiry_handler([&](RequestId, Tick) { ++fired; });
  auto a = leftist.StartTimer(5, 1);
  auto b = leftist.StartTimer(5, 2);
  auto c = leftist.StartTimer(5, 3);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  ASSERT_EQ(leftist.StopTimer(b.value()), TimerError::kOk);
  // Double-stop of a lazily-cancelled timer is still detected.
  EXPECT_EQ(leftist.StopTimer(b.value()), TimerError::kNoSuchTimer);
  leftist.AdvanceBy(5);
  EXPECT_EQ(fired, 2u);
}

TEST(LeftistHeapTimersTest, MergeKeepsFifoForEqualKeys) {
  LeftistHeapTimers leftist;
  std::vector<RequestId> fired;
  leftist.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  for (RequestId id = 0; id < 8; ++id) {
    ASSERT_TRUE(leftist.StartTimer(3, id).has_value());
  }
  leftist.AdvanceBy(3);
  EXPECT_EQ(fired, (std::vector<RequestId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace twheel
