// AVL-specific tests: the balance invariant under churn, immunity to the
// constant-interval degeneration that collapses the unbalanced BST, and the
// rotation overhead that makes balanced trees "more expensive" on average
// (Section 4.1.1 / Figure 6 note).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/baselines/avl_timers.h"
#include "src/baselines/bst_timers.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

TEST(AvlTimersTest, InvariantHoldsUnderChurn) {
  AvlTimers avl;
  rng::Xoshiro256 gen(17);
  std::vector<TimerHandle> live;
  RequestId next_id = 0;
  for (int step = 0; step < 5000; ++step) {
    std::uint64_t action = gen.NextBounded(10);
    if (action < 5) {
      auto result = avl.StartTimer(1 + gen.NextBounded(500), next_id++);
      ASSERT_TRUE(result.has_value());
      live.push_back(result.value());
    } else if (action < 8 && !live.empty()) {
      std::size_t idx = gen.NextBounded(live.size());
      (void)avl.StopTimer(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      avl.AdvanceBy(1 + gen.NextBounded(8));
    }
    if (step % 64 == 0) {
      ASSERT_TRUE(avl.CheckAvlInvariant()) << "step " << step;
    }
  }
  ASSERT_TRUE(avl.CheckAvlInvariant());
}

TEST(AvlTimersTest, ConstantIntervalsDoNotDegenerate) {
  // The input that collapses BstTimers into a list keeps the AVL logarithmic.
  AvlTimers avl;
  BstTimers bst;
  constexpr std::size_t kN = 4096;
  for (RequestId id = 0; id < kN; ++id) {
    ASSERT_TRUE(avl.StartTimer(100000, id).has_value());
    ASSERT_TRUE(bst.StartTimer(100000, id).has_value());
  }
  EXPECT_EQ(bst.HeightSlow(), kN);                       // the degeneration
  EXPECT_LE(avl.HeightSlow(), 1.45 * std::log2(kN) + 2);  // AVL height bound
  ASSERT_TRUE(avl.CheckAvlInvariant());

  // And the next insert is O(log n), not O(n).
  auto before = avl.counts();
  ASSERT_TRUE(avl.StartTimer(100000, kN).has_value());
  EXPECT_LE((avl.counts() - before).comparisons, 20u);
}

TEST(AvlTimersTest, WorstCaseStartBoundedLogarithmically) {
  AvlTimers avl;
  rng::Xoshiro256 gen(18);
  std::uint64_t worst = 0;
  for (RequestId id = 0; id < 8192; ++id) {
    auto before = avl.counts().comparisons;
    ASSERT_TRUE(avl.StartTimer(1 + gen.NextBounded(1 << 30), id).has_value());
    worst = std::max(worst, avl.counts().comparisons - before);
  }
  // Height bound 1.44 log2(8192) ~= 19.
  EXPECT_LE(worst, 20u);
}

TEST(AvlTimersTest, DeletionsTriggerRebalancing) {
  // Figure 6: stop is O(log n) for balanced trees *because of rebalancing* — so
  // rebalancing must actually happen on deletes. Build a tree, delete one flank.
  AvlTimers avl;
  std::vector<TimerHandle> handles;
  for (RequestId id = 0; id < 1024; ++id) {
    auto result = avl.StartTimer(1 + id, id);  // sorted inserts: rotation-heavy
    ASSERT_TRUE(result.has_value());
    handles.push_back(result.value());
  }
  const std::uint64_t rotations_after_inserts = avl.rotations();
  EXPECT_GT(rotations_after_inserts, 0u);

  // Delete the early half; the remaining tree must stay balanced via rotations.
  for (std::size_t i = 0; i < 512; ++i) {
    ASSERT_EQ(avl.StopTimer(handles[i]), TimerError::kOk);
  }
  EXPECT_GT(avl.rotations(), rotations_after_inserts);
  ASSERT_TRUE(avl.CheckAvlInvariant());
  EXPECT_EQ(avl.outstanding(), 512u);
}

TEST(AvlTimersTest, ExpiryOrderFifoAmongEqual) {
  AvlTimers avl;
  std::vector<RequestId> fired;
  avl.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  for (RequestId id = 0; id < 32; ++id) {
    ASSERT_TRUE(avl.StartTimer(5, id).has_value());
  }
  avl.AdvanceBy(5);
  ASSERT_EQ(fired.size(), 32u);
  for (RequestId id = 0; id < 32; ++id) {
    EXPECT_EQ(fired[id], id);
  }
}

TEST(AvlTimersTest, UnbalancedCheaperOnRandomInputs) {
  // Myhrhaug's observation, measured: on random inputs the plain BST does fewer
  // total operations (no rotations) despite its worse height constant.
  AvlTimers avl;
  BstTimers bst;
  rng::Xoshiro256 gen_a(19), gen_b(19);
  for (RequestId id = 0; id < 20000; ++id) {
    ASSERT_TRUE(avl.StartTimer(1 + gen_a.NextBounded(1 << 24), id).has_value());
    ASSERT_TRUE(bst.StartTimer(1 + gen_b.NextBounded(1 << 24), id).has_value());
  }
  // AVL pays comparisons plus one rotation-ish unit per insert on average.
  double avl_cost = static_cast<double>(avl.counts().comparisons + avl.rotations());
  double bst_cost = static_cast<double>(bst.counts().comparisons);
  EXPECT_GT(avl_cost, bst_cost * 0.6) << "sanity: costs are comparable";
  // The AVL's shallower tree does win comparisons, but rotations eat the margin:
  EXPECT_LT(avl.counts().comparisons, bst.counts().comparisons);
  EXPECT_GT(avl.rotations(), 0u);
}

}  // namespace
}  // namespace twheel
