// The Section 4.2 logic-simulation wheel: overflow-list mechanics, the
// growing-overflow defect the paper identifies, and the half-cycle mitigation.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/tegas_wheel.h"
#include "src/workload/workload.h"

namespace twheel::sim {
namespace {

TEST(TegasWheelTest, ExactExpiryWithinAndBeyondCycle) {
  TegasWheel wheel(16);
  std::vector<std::pair<Tick, RequestId>> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });
  ASSERT_TRUE(wheel.StartTimer(5, 1).has_value());    // in-cycle
  ASSERT_TRUE(wheel.StartTimer(15, 2).has_value());   // last in-cycle slot
  ASSERT_TRUE(wheel.StartTimer(16, 3).has_value());   // first overflow
  ASSERT_TRUE(wheel.StartTimer(100, 4).has_value());  // deep overflow
  EXPECT_EQ(wheel.OverflowSizeSlow(), 2u);
  wheel.AdvanceBy(100);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{5, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, RequestId>{15, 2}));
  EXPECT_EQ(fired[2], (std::pair<Tick, RequestId>{16, 3}));
  EXPECT_EQ(fired[3], (std::pair<Tick, RequestId>{100, 4}));
  EXPECT_EQ(wheel.OverflowSizeSlow(), 0u);
}

TEST(TegasWheelTest, LateInCycleInsertsOverflowMoreOften) {
  // "As time increases within a cycle and we travel down the array it becomes more
  // likely that event records will be inserted in the overflow list."
  TegasWheel early(16);
  ASSERT_TRUE(early.StartTimer(10, 1).has_value());  // at tick 0: fits cycle 0
  EXPECT_EQ(early.OverflowSizeSlow(), 0u);

  TegasWheel late(16);
  late.AdvanceBy(10);                               // cursor late in the cycle
  ASSERT_TRUE(late.StartTimer(10, 1).has_value());  // same interval now overflows
  EXPECT_EQ(late.OverflowSizeSlow(), 1u);
}

TEST(TegasWheelTest, HalfCycleRotationReducesOverflowInsertions) {
  // DECSIM's mitigation: draining twice per cycle keeps the array's coverage window
  // at least half a cycle ahead, so a mid-cycle insert of a near-future event that
  // the full-cycle wheel banishes to overflow goes straight into the array.
  TegasWheel full(16, RotatePolicy::kFullCycle);
  TegasWheel half(16, RotatePolicy::kHalfCycle);
  std::size_t full_fired = 0, half_fired = 0;
  full.set_expiry_handler([&](RequestId, Tick) { ++full_fired; });
  half.set_expiry_handler([&](RequestId, Tick) { ++half_fired; });

  full.AdvanceBy(10);  // late in cycle 0: full wheel covers only up to tick 15
  half.AdvanceBy(10);  // half wheel drained at tick 8: covered up to tick 23
  ASSERT_TRUE(full.StartTimer(10, 1).has_value());  // due at 20
  ASSERT_TRUE(half.StartTimer(10, 1).has_value());
  EXPECT_EQ(full.OverflowSizeSlow(), 1u);
  EXPECT_EQ(half.OverflowSizeSlow(), 0u);

  // Both still fire exactly on time.
  full.AdvanceBy(10);
  half.AdvanceBy(10);
  EXPECT_EQ(full_fired, 1u);
  EXPECT_EQ(half_fired, 1u);
}

TEST(TegasWheelTest, OverflowRescannedEveryRotation) {
  // The cost the paper's schemes avoid: a far-future event is examined once per
  // wheel rotation while it waits.
  TegasWheel wheel(16);
  ASSERT_TRUE(wheel.StartTimer(160, 1).has_value());  // 10 cycles out
  wheel.AdvanceBy(159);
  // Scanned at each of the 9 intermediate rotations (ticks 16..144) plus the
  // rotation that finally drains it (tick 160 not yet reached).
  EXPECT_EQ(wheel.overflow_scans(), 9u);
  EXPECT_EQ(wheel.overflow_drains(), 0u);
  wheel.AdvanceBy(1);
  EXPECT_EQ(wheel.overflow_scans(), 10u);
  EXPECT_EQ(wheel.overflow_drains(), 1u);
  EXPECT_EQ(wheel.counts().expiries, 1u);
}

TEST(TegasWheelTest, StopWorksInBothResidences) {
  TegasWheel wheel(16);
  std::size_t fired = 0;
  wheel.set_expiry_handler([&](RequestId, Tick) { ++fired; });
  auto in_cycle = wheel.StartTimer(5, 1);
  auto in_overflow = wheel.StartTimer(100, 2);
  ASSERT_TRUE(in_cycle.has_value() && in_overflow.has_value());
  EXPECT_EQ(wheel.StopTimer(in_cycle.value()), TimerError::kOk);
  EXPECT_EQ(wheel.StopTimer(in_overflow.value()), TimerError::kOk);
  wheel.AdvanceBy(128);
  EXPECT_EQ(fired, 0u);
}

TEST(TegasWheelTest, MatchesPredictedTraceOnRandomWorkload) {
  // The TEGAS wheel is also an exact timer service; pin it with the differential
  // machinery.
  workload::WorkloadSpec spec;
  spec.seed = 31;
  spec.intervals = workload::IntervalKind::kUniform;
  spec.interval_lo = 1;
  spec.interval_hi = 300;
  spec.arrival_rate = 1.0;
  spec.stop_fraction = 0.3;
  spec.measured_starts = 3000;
  for (RotatePolicy policy : {RotatePolicy::kFullCycle, RotatePolicy::kHalfCycle}) {
    TegasWheel wheel(32, policy);
    auto result = workload::Run(wheel, spec);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), workload::PredictedTrace(spec))
        << wheel.name();
  }
}

}  // namespace
}  // namespace twheel::sim
