// Tests for the discrete-event simulator built on the timer facility (Section 4's
// "timer algorithms can be used to implement time flow mechanisms").

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/sim/simulator.h"

namespace twheel::sim {
namespace {

std::unique_ptr<Simulator> MakeSim(SchemeId scheme) {
  FacilityConfig config;
  config.scheme = scheme;
  config.wheel_size = 256;
  config.level_sizes = {16, 16, 16};
  return std::make_unique<Simulator>(MakeTimerService(config));
}

class SimulatorTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(SimulatorTest, ActionsRunAtScheduledTimes) {
  auto sim = MakeSim(GetParam());
  std::vector<std::pair<Tick, int>> ran;
  sim->After(5, [&] { ran.push_back({sim->now(), 1}); });
  sim->After(2, [&] { ran.push_back({sim->now(), 2}); });
  sim->After(9, [&] { ran.push_back({sim->now(), 3}); });
  sim->RunUntilIdle();
  ASSERT_EQ(ran.size(), 3u);
  EXPECT_EQ(ran[0], (std::pair<Tick, int>{2, 2}));
  EXPECT_EQ(ran[1], (std::pair<Tick, int>{5, 1}));
  EXPECT_EQ(ran[2], (std::pair<Tick, int>{9, 3}));
}

TEST_P(SimulatorTest, ActionsCanScheduleFurtherActions) {
  // The defining property of a simulation: "the simulation proceeds by processing
  // the earliest event, which in turn may schedule further events."
  auto sim = MakeSim(GetParam());
  int depth = 0;
  std::function<void()> cascade = [&] {
    ++depth;
    if (depth < 10) {
      sim->After(3, cascade);
    }
  };
  sim->After(3, cascade);
  Tick advanced = sim->RunUntilIdle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(advanced, 30u);
  EXPECT_EQ(sim->now(), 30u);
}

TEST_P(SimulatorTest, CancelPreventsExecution) {
  auto sim = MakeSim(GetParam());
  bool ran = false;
  EventToken token = sim->After(5, [&] { ran = true; });
  ASSERT_TRUE(token.valid());
  EXPECT_TRUE(sim->Cancel(token));
  EXPECT_FALSE(sim->Cancel(token));  // second cancel reports failure
  sim->RunUntilIdle(20);
  EXPECT_FALSE(ran);
}

TEST_P(SimulatorTest, CancelAfterExecutionReportsFalse) {
  auto sim = MakeSim(GetParam());
  EventToken token = sim->After(2, [] {});
  sim->RunUntilIdle();
  EXPECT_FALSE(sim->Cancel(token));
}

TEST_P(SimulatorTest, RunUntilIdleRespectsTickBudget) {
  auto sim = MakeSim(GetParam());
  bool ran = false;
  sim->After(100, [&] { ran = true; });
  EXPECT_EQ(sim->RunUntilIdle(10), 10u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim->pending(), 1u);
  sim->RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST_P(SimulatorTest, CancellationInsideActionWorks) {
  auto sim = MakeSim(GetParam());
  bool victim_ran = false;
  EventToken victim = sim->After(10, [&] { victim_ran = true; });
  sim->After(5, [&] { EXPECT_TRUE(sim->Cancel(victim)); });
  sim->RunUntilIdle();
  EXPECT_FALSE(victim_ran);
}

TEST_P(SimulatorTest, PeriodicFiresEveryPeriod) {
  auto sim = MakeSim(GetParam());
  std::vector<Tick> fired;
  EventToken token = sim->Every(7, [&] { fired.push_back(sim->now()); });
  ASSERT_TRUE(token.valid());
  for (int i = 0; i < 50; ++i) {
    sim->Step();
  }
  ASSERT_EQ(fired.size(), 7u);
  for (std::size_t k = 0; k < fired.size(); ++k) {
    EXPECT_EQ(fired[k], 7 * (k + 1)) << "phase drifted";
  }
  EXPECT_TRUE(sim->Cancel(token));
  for (int i = 0; i < 50; ++i) {
    sim->Step();
  }
  EXPECT_EQ(fired.size(), 7u);
}

TEST_P(SimulatorTest, PeriodicMayCancelItself) {
  auto sim = MakeSim(GetParam());
  int runs = 0;
  EventToken token;
  token = sim->Every(3, [&] {
    if (++runs == 4) {
      EXPECT_TRUE(sim->Cancel(token));
    }
  });
  for (int i = 0; i < 60; ++i) {
    sim->Step();
  }
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(sim->pending(), 0u);
}

TEST_P(SimulatorTest, PeriodicCancelBetweenFiresStopsTheSeries) {
  // The token refers to the SAME underlying registration across runs (the
  // service relinks the record on its expiry path rather than re-registering),
  // so a cancel landing mid-period — after some runs have already happened —
  // must stop the series using the original token.
  auto sim = MakeSim(GetParam());
  int runs = 0;
  EventToken token = sim->Every(5, [&] { ++runs; });
  ASSERT_TRUE(token.valid());
  for (int i = 0; i < 12; ++i) {  // runs at 5 and 10; next due at 15
    sim->Step();
  }
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(sim->Cancel(token));
  EXPECT_EQ(sim->pending(), 0u);
  for (int i = 0; i < 20; ++i) {
    sim->Step();
  }
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(sim->Cancel(token));  // second cancel reports failure
}

TEST_P(SimulatorTest, PeriodicAndOneShotsCoexist) {
  auto sim = MakeSim(GetParam());
  std::vector<std::string> log;
  sim->Every(10, [&] { log.push_back("tick@" + std::to_string(sim->now())); });
  sim->After(15, [&] { log.push_back("once@" + std::to_string(sim->now())); });
  for (int i = 0; i < 30; ++i) {
    sim->Step();
  }
  EXPECT_EQ(log, (std::vector<std::string>{"tick@10", "once@15", "tick@20", "tick@30"}));
  EXPECT_EQ(sim->pending(), 1u);  // the periodic stays armed
}

TEST(SimulatorJumpTest, JumpingMatchesSteppingForPeekableSchemes) {
  // Section 4's two time-flow methods must produce identical event trajectories.
  for (SchemeId id : {SchemeId::kScheme2SortedFront, SchemeId::kScheme3Heap,
                      SchemeId::kScheme3Bst}) {
    auto stepped = MakeSim(id);
    auto jumped = MakeSim(id);
    std::vector<std::pair<Tick, int>> log_stepped, log_jumped;
    auto arm = [](Simulator& sim, std::vector<std::pair<Tick, int>>& log) {
      for (int k = 1; k <= 12; ++k) {
        sim.After(k * 97, [&sim, &log, k] { log.push_back({sim.now(), k}); });
      }
    };
    arm(*stepped, log_stepped);
    arm(*jumped, log_jumped);
    Tick ticks = stepped->RunUntilIdle();
    auto jumps = jumped->RunUntilIdleJumping();
    ASSERT_TRUE(jumps.has_value()) << SchemeName(id);
    EXPECT_EQ(log_stepped, log_jumped) << SchemeName(id);
    EXPECT_EQ(ticks, *jumps) << SchemeName(id);
    EXPECT_EQ(stepped->now(), jumped->now()) << SchemeName(id);
    // The jumping run must have paid far fewer bookkeeping calls.
    EXPECT_LT(jumped->service().counts().ticks, stepped->service().counts().ticks / 10);
  }
}

TEST(SimulatorJumpTest, WheelsJumpViaOccupancyBitmap) {
  // Historically the wheels lacked NextExpiryHint/FastForward and this fell
  // back to nullopt; the occupancy bitmap gives them the capability, so the
  // GPSS/SIMULA-style time flow now works on a hashed wheel too.
  auto sim = MakeSim(SchemeId::kScheme6HashedUnsorted);
  bool ran = false;
  sim->After(100, [&ran] { ran = true; });
  const auto covered = sim->RunUntilIdleJumping();
  ASSERT_TRUE(covered.has_value());
  EXPECT_EQ(*covered, 100u);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim->now(), 100u);
  // Dead time is crossed by FastForward, whose ticks the "hardware" absorbs.
  EXPECT_LT(sim->service().counts().ticks, 100u / 10);
}

TEST(SimulatorJumpTest, JumpRespectsTickBudget) {
  auto sim = MakeSim(SchemeId::kScheme3Heap);
  bool ran = false;
  sim->After(1000, [&] { ran = true; });
  auto covered = sim->RunUntilIdleJumping(100);
  ASSERT_TRUE(covered.has_value());
  EXPECT_EQ(*covered, 100u);
  EXPECT_EQ(sim->now(), 100u);
  EXPECT_FALSE(ran);
  sim->RunUntilIdleJumping();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim->now(), 1000u);
}

// The whole matrix, bounded-range wheels included: every delay and period in
// the parametrized tests stays under the 256-slot wheel span, so Scheme 4's
// OverflowPolicy::kReject never triggers and periodic re-arms (delay == period
// <= the client's original, validated interval) are in range by construction.
INSTANTIATE_TEST_SUITE_P(Schemes, SimulatorTest, ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<SchemeId>& param_info) {
                           std::string name = SchemeName(param_info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace twheel::sim
