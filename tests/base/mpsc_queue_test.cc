// MpscRing: single-thread edge cases (full ring, wraparound, drain-while-empty,
// bounded drains) plus a randomized multi-producer differential test against a
// mutex-protected model. The concurrent cases are where TSan earns its keep —
// scripts/verify.sh runs this suite in all three sanitizer configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/mpsc_queue.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

TEST(MpscRingTest, DrainWhileEmpty) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.EmptyFromConsumer());
  bool emptied = false;
  const std::size_t drained =
      ring.Drain(8, [](const int&) { FAIL() << "drained from empty ring"; },
                 &emptied);
  EXPECT_EQ(drained, 0u);
  EXPECT_TRUE(emptied);
}

TEST(MpscRingTest, FullRingRejectsAndRecovers) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  // Full: the reject must not perturb the ring (no ticket is claimed).
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_FALSE(ring.TryPush(100));
  std::vector<int> out;
  bool emptied = false;
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }, &emptied), 4u);
  EXPECT_TRUE(emptied);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Rejected values are gone; the ring is immediately usable again.
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }), 1u);
  EXPECT_EQ(out.back(), 7);
}

TEST(MpscRingTest, WraparoundPreservesFifo) {
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  // Many laps around a tiny ring with varying occupancy.
  for (int lap = 0; lap < 100; ++lap) {
    const std::size_t burst = 1 + (lap % 4);
    for (std::size_t i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPush(next_in));
      ++next_in;
    }
    ring.Drain(burst, [&](const std::uint64_t& v) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    });
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_TRUE(ring.EmptyFromConsumer());
}

TEST(MpscRingTest, DrainHonorsLimit) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  std::vector<int> out;
  bool emptied = true;
  EXPECT_EQ(ring.Drain(2, [&](const int& v) { out.push_back(v); }, &emptied), 2u);
  EXPECT_FALSE(emptied) << "limit-bounded drain must not report empty";
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }, &emptied), 4u);
  EXPECT_TRUE(emptied);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(MpscRingTest, ReservedTicketParksDrainUntilPublish) {
  // Two-phase push: a reserved-but-unpublished cell is a hard FIFO cut — the
  // consumer must not drain it or anything behind it. ShardSubmitQueue's
  // restart protocol leans on this to interpose a commit CAS between the
  // reserve and the publish.
  MpscRing<int> ring(8);
  ASSERT_TRUE(ring.TryPush(1));
  std::uint64_t ticket;
  ASSERT_TRUE(ring.TryReserve(&ticket));
  ASSERT_TRUE(ring.TryPush(3));  // later ticket, parked behind the reservation
  std::vector<int> out;
  bool emptied = false;
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }, &emptied),
            1u)
      << "drain must stop at the unpublished cell";
  EXPECT_TRUE(emptied) << "the cut ends the drain, not the limit";
  EXPECT_EQ(out, (std::vector<int>{1}));
  ring.Publish(ticket, 2);
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3})) << "ticket order preserved";
  EXPECT_TRUE(ring.EmptyFromConsumer());
}

TEST(MpscRingTest, ReserveDetectsFullWithoutPerturbing) {
  MpscRing<int> ring(4);
  std::uint64_t tickets[4];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryReserve(&tickets[i]));
  }
  std::uint64_t overflow;
  EXPECT_FALSE(ring.TryReserve(&overflow)) << "all cells reserved: full";
  EXPECT_FALSE(ring.TryPush(99));
  for (int i = 3; i >= 0; --i) {
    ring.Publish(tickets[i], i);  // publish order need not match ticket order
  }
  std::vector<int> out;
  EXPECT_EQ(ring.Drain(8, [&](const int& v) { out.push_back(v); }), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3})) << "drain is in ticket order";
  EXPECT_TRUE(ring.TryPush(7)) << "ring immediately reusable";
}

TEST(MpscRingTest, UncontendedPushReportsNoRetries) {
  MpscRing<int> ring(8);
  std::uint64_t retries = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPush(i, &retries));
  }
  EXPECT_EQ(retries, 0u) << "single-producer pushes must be wait-free";
}

// ---------------------------------------------------------------------------
// Randomized multi-producer differential: producers mirror every successful
// push into a mutex-protected model; the consumer drains concurrently. The ring
// must deliver exactly the model's multiset, in per-producer FIFO order.
// ---------------------------------------------------------------------------

struct Item {
  std::uint32_t producer;
  std::uint64_t seq;
};

TEST(MpscRingTest, MultiProducerDifferentialAgainstMutexModel) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  // Small enough that the ring fills under contention (exercising the full
  // path and wraparound thousands of times).
  MpscRing<Item> ring(64);

  std::mutex model_mutex;
  std::deque<Item> model;  // multiset reference; order across producers is racy
  std::atomic<std::uint64_t> total_retries{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      rng::Xoshiro256 rng(0xabcd1234 + p);
      std::uint64_t retries = 0;
      for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
        const Item item{p, seq};
        {
          // Mirror BEFORE pushing: once the consumer sees the item, the model
          // must already contain it.
          std::lock_guard<std::mutex> lock(model_mutex);
          model.push_back(item);
        }
        while (!ring.TryPush(item, &retries)) {
          std::this_thread::yield();  // full: wait for the consumer
        }
        if (rng.NextBool(0.01)) {
          std::this_thread::yield();  // jitter the interleavings
        }
      }
      total_retries.fetch_add(retries, std::memory_order_relaxed);
    });
  }

  std::vector<Item> consumed;
  consumed.reserve(kProducers * kPerProducer);
  while (consumed.size() < kProducers * kPerProducer) {
    ring.Drain(64, [&](const Item& item) { consumed.push_back(item); });
  }
  for (std::thread& t : producers) {
    t.join();
  }

  ASSERT_EQ(consumed.size(), kProducers * kPerProducer);
  EXPECT_TRUE(ring.EmptyFromConsumer());

  // Per-producer FIFO: each producer's sequence numbers arrive in order.
  std::uint64_t next_seq[kProducers] = {};
  for (const Item& item : consumed) {
    ASSERT_LT(item.producer, kProducers);
    ASSERT_EQ(item.seq, next_seq[item.producer])
        << "producer " << item.producer << " reordered";
    ++next_seq[item.producer];
  }
  // Multiset equality with the model (sorted comparison).
  std::vector<Item> expected(model.begin(), model.end());
  auto key = [](const Item& i) {
    return (static_cast<std::uint64_t>(i.producer) << 48) | i.seq;
  };
  std::sort(consumed.begin(), consumed.end(),
            [&](const Item& a, const Item& b) { return key(a) < key(b); });
  std::sort(expected.begin(), expected.end(),
            [&](const Item& a, const Item& b) { return key(a) < key(b); });
  ASSERT_EQ(consumed.size(), expected.size());
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    ASSERT_EQ(key(consumed[i]), key(expected[i])) << "multiset divergence";
  }
}

}  // namespace
}  // namespace twheel
