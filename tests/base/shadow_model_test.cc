// Shadow-model fuzzing of the base containers: long random operation sequences
// executed simultaneously against the intrusive/slab implementations and trivially
// correct standard-library references, with full-state comparison at checkpoints.

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/slab_arena.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

struct Node : ListNode {
  explicit Node(int v) : value(v) {}
  int value;
};

class ListShadowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListShadowTest, MatchesStdListUnderRandomOps) {
  rng::Xoshiro256 gen(GetParam());
  IntrusiveList<Node> list;
  std::list<Node*> shadow;
  std::vector<Node*> pool;
  int next_value = 0;

  auto verify = [&] {
    ASSERT_EQ(list.CountSlow(), shadow.size());
    auto it = shadow.begin();
    for (Node* n = list.front(); n != nullptr; n = list.Next(n), ++it) {
      ASSERT_EQ(n, *it);
    }
    // Backward too.
    auto rit = shadow.rbegin();
    for (Node* n = list.back(); n != nullptr; n = list.Prev(n), ++rit) {
      ASSERT_EQ(n, *rit);
    }
  };

  for (int step = 0; step < 4000; ++step) {
    switch (gen.NextBounded(6)) {
      case 0: {  // push front
        Node* n = new Node(next_value++);
        pool.push_back(n);
        list.PushFront(n);
        shadow.push_front(n);
        break;
      }
      case 1: {  // push back
        Node* n = new Node(next_value++);
        pool.push_back(n);
        list.PushBack(n);
        shadow.push_back(n);
        break;
      }
      case 2: {  // insert before a random linked element
        if (shadow.empty()) {
          break;
        }
        auto pos = shadow.begin();
        std::advance(pos, gen.NextBounded(shadow.size()));
        Node* n = new Node(next_value++);
        pool.push_back(n);
        list.InsertBefore(n, *pos);
        shadow.insert(pos, n);
        break;
      }
      case 3: {  // unlink a random element
        if (shadow.empty()) {
          break;
        }
        auto pos = shadow.begin();
        std::advance(pos, gen.NextBounded(shadow.size()));
        (*pos)->Unlink();
        shadow.erase(pos);
        break;
      }
      case 4: {  // pop front
        if (shadow.empty()) {
          break;
        }
        Node* popped = list.PopFront();
        ASSERT_EQ(popped, shadow.front());
        shadow.pop_front();
        break;
      }
      default: {  // splice a freshly built list onto the back
        IntrusiveList<Node> other;
        std::size_t extras = gen.NextBounded(4);
        for (std::size_t i = 0; i < extras; ++i) {
          Node* n = new Node(next_value++);
          pool.push_back(n);
          other.PushBack(n);
          shadow.push_back(n);
        }
        list.SpliceAll(other);
        break;
      }
    }
    if (step % 256 == 0) {
      verify();
    }
  }
  verify();

  while (!list.empty()) {
    list.PopFront();
  }
  for (Node* n : pool) {
    delete n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListShadowTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ArenaShadowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaShadowTest, MatchesMapUnderRandomChurn) {
  rng::Xoshiro256 gen(GetParam() * 31 + 7);
  SlabArena<int> arena;
  std::map<std::uint64_t, std::pair<SlabRef, int>> shadow;  // key -> (ref, value)
  std::vector<SlabRef> dead_refs;
  std::uint64_t next_key = 0;
  int next_value = 0;

  for (int step = 0; step < 20000; ++step) {
    std::uint64_t action = gen.NextBounded(10);
    if (action < 5) {  // allocate
      auto [obj, ref] = arena.Allocate(next_value);
      ASSERT_NE(obj, nullptr);
      ASSERT_EQ(*obj, next_value);
      shadow[next_key++] = {ref, next_value};
      ++next_value;
    } else if (action < 8 && !shadow.empty()) {  // free a random live ref
      auto it = shadow.begin();
      std::advance(it, gen.NextBounded(shadow.size()));
      arena.Free(it->second.first);
      dead_refs.push_back(it->second.first);
      shadow.erase(it);
    } else if (!dead_refs.empty()) {  // probe a dead ref: must stay dead
      const SlabRef& ref = dead_refs[gen.NextBounded(dead_refs.size())];
      ASSERT_EQ(arena.Get(ref), nullptr);
    }

    if (step % 512 == 0) {
      ASSERT_EQ(arena.live(), shadow.size());
      for (const auto& [key, entry] : shadow) {
        int* obj = arena.Get(entry.first);
        ASSERT_NE(obj, nullptr) << "live ref resolved to null";
        ASSERT_EQ(*obj, entry.second) << "live ref points at wrong object";
      }
    }
  }
  // Final sweep and teardown.
  ASSERT_EQ(arena.live(), shadow.size());
  for (const auto& [key, entry] : shadow) {
    arena.Free(entry.first);
  }
  EXPECT_EQ(arena.live(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaShadowTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace twheel
