// OccupancyBitmap: the two-level bit structure behind every wheel's batched
// AdvanceTo. Correctness here is load-bearing for the jump differential suite,
// so beyond the targeted edge cases (word boundaries, summary wrap, the
// distance-size() self case) there is a randomized differential against a naive
// vector<bool> reference model.

#include "src/base/bitmap.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "src/rng/rng.h"

namespace twheel {
namespace {

// Sizes straddling every structural boundary: single word, exact word, word+1,
// exact summary word (64*64), summary word + 1.
const std::size_t kSizes[] = {1, 2, 63, 64, 65, 100, 128, 129, 512, 4096, 4097};

// Naive reference: walk the ring forward one slot at a time.
std::optional<std::size_t> NaiveNextSetDistance(const std::vector<bool>& bits,
                                                std::size_t from) {
  for (std::size_t d = 1; d <= bits.size(); ++d) {
    if (bits[(from + d) % bits.size()]) {
      return d;
    }
  }
  return std::nullopt;
}

TEST(OccupancyBitmapTest, EmptyBitmapHasNoNextSet) {
  for (const std::size_t size : kSizes) {
    OccupancyBitmap bitmap(size);
    EXPECT_EQ(bitmap.size(), size);
    EXPECT_EQ(bitmap.count(), 0u);
    EXPECT_FALSE(bitmap.any());
    for (std::size_t from = 0; from < size; from += (size > 7 ? 7 : 1)) {
      EXPECT_EQ(bitmap.NextSetDistance(from), std::nullopt) << size;
    }
  }
}

TEST(OccupancyBitmapTest, SetAndClearAreIdempotent) {
  OccupancyBitmap bitmap(130);
  bitmap.Set(7);
  bitmap.Set(7);
  EXPECT_EQ(bitmap.count(), 1u);
  EXPECT_TRUE(bitmap.Test(7));
  bitmap.Set(64);
  bitmap.Set(129);
  EXPECT_EQ(bitmap.count(), 3u);
  bitmap.Clear(7);
  bitmap.Clear(7);
  EXPECT_EQ(bitmap.count(), 2u);
  EXPECT_FALSE(bitmap.Test(7));
  bitmap.Clear(64);
  bitmap.Clear(129);
  EXPECT_FALSE(bitmap.any());
}

TEST(OccupancyBitmapTest, SingleBitDistancesFromEveryOrigin) {
  const std::size_t size = 100;
  const std::size_t set_at = 37;
  OccupancyBitmap bitmap(size);
  bitmap.Set(set_at);
  for (std::size_t from = 0; from < size; ++from) {
    const std::size_t expected =
        from == set_at ? size : (set_at + size - from) % size;
    ASSERT_EQ(bitmap.NextSetDistance(from), expected) << "from " << from;
  }
}

// The only set slot being the query origin itself means "one full revolution":
// exactly the wheel case of a record due TableSize ticks out sitting in the
// cursor's own slot.
TEST(OccupancyBitmapTest, DistanceToSelfIsFullRevolution) {
  for (const std::size_t size : kSizes) {
    OccupancyBitmap bitmap(size);
    const std::size_t slot = size / 2;
    bitmap.Set(slot);
    EXPECT_EQ(bitmap.NextSetDistance(slot), size) << size;
  }
}

// Wrap that must route through the summary level: 4096 slots = 64 slot words =
// one full summary word; 4097 forces a second summary word.
TEST(OccupancyBitmapTest, WrapAcrossSummaryWords) {
  {
    OccupancyBitmap bitmap(4096);
    bitmap.Set(0);
    EXPECT_EQ(bitmap.NextSetDistance(4095), 1u);
    EXPECT_EQ(bitmap.NextSetDistance(0), 4096u);
    bitmap.Clear(0);
    bitmap.Set(100);
    EXPECT_EQ(bitmap.NextSetDistance(200), 4096u - 100u);
  }
  {
    OccupancyBitmap bitmap(4097);
    bitmap.Set(4096);  // lone bit in the second summary word
    EXPECT_EQ(bitmap.NextSetDistance(0), 4096u);
    EXPECT_EQ(bitmap.NextSetDistance(4096), 4097u);
    bitmap.Set(5);
    EXPECT_EQ(bitmap.NextSetDistance(4096), 6u);  // wraps back into word 0
  }
}

TEST(OccupancyBitmapTest, ForEachSetVisitsAscending) {
  OccupancyBitmap bitmap(300);
  const std::vector<std::size_t> slots = {0, 1, 63, 64, 65, 128, 255, 299};
  for (const std::size_t s : slots) {
    bitmap.Set(s);
  }
  std::vector<std::size_t> seen;
  bitmap.ForEachSet([&seen](std::size_t index) { seen.push_back(index); });
  EXPECT_EQ(seen, slots);
}

TEST(OccupancyBitmapTest, BytesForCountsBothLevels) {
  EXPECT_EQ(OccupancyBitmap::BytesFor(64), (1 + 1) * sizeof(std::uint64_t));
  EXPECT_EQ(OccupancyBitmap::BytesFor(65), (2 + 1) * sizeof(std::uint64_t));
  EXPECT_EQ(OccupancyBitmap::BytesFor(4096), (64 + 1) * sizeof(std::uint64_t));
  EXPECT_EQ(OccupancyBitmap::BytesFor(4097), (65 + 2) * sizeof(std::uint64_t));
}

// Randomized differential against the naive reference: mixed set/clear churn,
// then count / membership / circular distance / enumeration must agree at every
// step.
TEST(OccupancyBitmapTest, RandomizedDifferentialAgainstNaiveModel) {
  for (const std::size_t size : kSizes) {
    rng::Xoshiro256 rng(size * 7919 + 1);
    OccupancyBitmap bitmap(size);
    std::vector<bool> reference(size, false);
    const std::size_t steps = size < 64 ? 400 : 1200;
    std::size_t expected_count = 0;
    for (std::size_t step = 0; step < steps; ++step) {
      const std::size_t index = rng.NextBounded(size);
      if (rng.NextBool(0.55)) {
        if (!reference[index]) {
          ++expected_count;
        }
        reference[index] = true;
        bitmap.Set(index);
      } else {
        if (reference[index]) {
          --expected_count;
        }
        reference[index] = false;
        bitmap.Clear(index);
      }
      ASSERT_EQ(bitmap.count(), expected_count) << "size " << size;
      ASSERT_EQ(bitmap.Test(index), static_cast<bool>(reference[index]));
      const std::size_t from = rng.NextBounded(size);
      ASSERT_EQ(bitmap.NextSetDistance(from),
                NaiveNextSetDistance(reference, from))
          << "size " << size << " step " << step << " from " << from;
    }
    std::vector<std::size_t> via_bitmap;
    bitmap.ForEachSet([&via_bitmap](std::size_t i) { via_bitmap.push_back(i); });
    std::vector<std::size_t> via_reference;
    for (std::size_t i = 0; i < size; ++i) {
      if (reference[i]) {
        via_reference.push_back(i);
      }
    }
    ASSERT_EQ(via_bitmap, via_reference) << "size " << size;
  }
}

}  // namespace
}  // namespace twheel
