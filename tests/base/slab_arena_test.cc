// Unit tests for the generational slab arena that backs timer records.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/base/slab_arena.h"

namespace twheel {
namespace {

struct Payload {
  explicit Payload(int v = 0) : value(v) { ++live_count; }
  ~Payload() { --live_count; }
  int value;
  static int live_count;
};
int Payload::live_count = 0;

TEST(SlabArenaTest, AllocateAndResolve) {
  SlabArena<Payload> arena;
  auto [obj, ref] = arena.Allocate(42);
  ASSERT_NE(obj, nullptr);
  EXPECT_TRUE(ref.valid());
  EXPECT_EQ(obj->value, 42);
  EXPECT_EQ(arena.Get(ref), obj);
  EXPECT_EQ(arena.live(), 1u);
  arena.Free(ref);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(SlabArenaTest, StaleRefResolvesToNull) {
  SlabArena<Payload> arena;
  auto [obj, ref] = arena.Allocate(1);
  (void)obj;
  arena.Free(ref);
  EXPECT_EQ(arena.Get(ref), nullptr);

  // Slot recycled: old ref must still be dead, new ref alive.
  auto [obj2, ref2] = arena.Allocate(2);
  EXPECT_EQ(ref2.slot, ref.slot);
  EXPECT_NE(ref2.generation, ref.generation);
  EXPECT_EQ(arena.Get(ref), nullptr);
  EXPECT_EQ(arena.Get(ref2), obj2);
  arena.Free(ref2);
}

TEST(SlabArenaTest, InvalidAndOutOfRangeRefs) {
  SlabArena<Payload> arena;
  EXPECT_EQ(arena.Get(SlabRef{}), nullptr);
  EXPECT_EQ(arena.Get(SlabRef{999, 0}), nullptr);
}

TEST(SlabArenaTest, AddressesStableAcrossGrowth) {
  // Records are linked intrusively, so growth must never move live objects.
  SlabArena<Payload> arena;
  std::vector<Payload*> ptrs;
  std::vector<SlabRef> refs;
  for (int i = 0; i < 5000; ++i) {  // crosses several 1024-slot chunks
    auto [obj, ref] = arena.Allocate(i);
    ptrs.push_back(obj);
    refs.push_back(ref);
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(arena.Get(refs[i]), ptrs[i]);
    EXPECT_EQ(ptrs[i]->value, i);
  }
  for (const auto& ref : refs) {
    arena.Free(ref);
  }
}

TEST(SlabArenaTest, CapacityBound) {
  SlabArena<Payload> arena(3);
  auto a = arena.Allocate(1);
  auto b = arena.Allocate(2);
  auto c = arena.Allocate(3);
  ASSERT_NE(c.first, nullptr);
  auto d = arena.Allocate(4);
  EXPECT_EQ(d.first, nullptr);
  EXPECT_FALSE(d.second.valid());
  // Freeing re-admits.
  arena.Free(b.second);
  auto e = arena.Allocate(5);
  EXPECT_NE(e.first, nullptr);
  arena.Free(a.second);
  arena.Free(c.second);
  arena.Free(e.second);
}

TEST(SlabArenaTest, DestructorRunsOnFree) {
  Payload::live_count = 0;
  SlabArena<Payload> arena;
  auto [obj, ref] = arena.Allocate(1);
  (void)obj;
  EXPECT_EQ(Payload::live_count, 1);
  arena.Free(ref);
  EXPECT_EQ(Payload::live_count, 0);
}

TEST(SlabArenaTest, ArenaDestructorReclaimsLeakedObjects) {
  Payload::live_count = 0;
  {
    SlabArena<Payload> arena;
    arena.Allocate(1);
    arena.Allocate(2);
    EXPECT_EQ(Payload::live_count, 2);
  }
  EXPECT_EQ(Payload::live_count, 0);
}

TEST(SlabArenaTest, FreeListIsLifo) {
  SlabArena<Payload> arena;
  auto a = arena.Allocate(1);
  auto b = arena.Allocate(2);
  arena.Free(a.second);
  arena.Free(b.second);
  auto c = arena.Allocate(3);
  EXPECT_EQ(c.second.slot, b.second.slot);  // most recently freed first
  auto d = arena.Allocate(4);
  EXPECT_EQ(d.second.slot, a.second.slot);
  arena.Free(c.second);
  arena.Free(d.second);
}

TEST(SlabArenaTest, GenerationsIsolateManyRecycles) {
  SlabArena<Payload> arena;
  std::set<std::uint32_t> generations;
  SlabRef first;
  for (int i = 0; i < 100; ++i) {
    auto [obj, ref] = arena.Allocate(i);
    (void)obj;
    if (i == 0) {
      first = ref;
    }
    EXPECT_EQ(ref.slot, first.slot);
    generations.insert(ref.generation);
    arena.Free(ref);
  }
  EXPECT_EQ(generations.size(), 100u);
}

TEST(SlabArenaDeathTest, DoubleFreeAborts) {
  SlabArena<Payload> arena;
  auto [obj, ref] = arena.Allocate(1);
  (void)obj;
  arena.Free(ref);
  EXPECT_DEATH(arena.Free(ref), "stale SlabRef");
}

}  // namespace
}  // namespace twheel
