// Unit tests for the Expected<T, E> fallible-result type.

#include <gtest/gtest.h>

#include "src/base/expected.h"
#include "src/base/types.h"

namespace twheel {
namespace {

using IntResult = Expected<int, TimerError>;

TEST(ExpectedTest, HoldsValue) {
  IntResult r(7);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ExpectedTest, HoldsError) {
  IntResult r(TimerError::kNoCapacity);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), TimerError::kNoCapacity);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ExpectedTest, CopyPreservesAlternative) {
  IntResult v(3);
  IntResult e(TimerError::kZeroInterval);
  IntResult v2 = v;
  IntResult e2 = e;
  EXPECT_EQ(v2.value(), 3);
  EXPECT_EQ(e2.error(), TimerError::kZeroInterval);
}

TEST(ExpectedTest, AssignmentSwitchesAlternative) {
  IntResult r(3);
  r = IntResult(TimerError::kNoSuchTimer);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), TimerError::kNoSuchTimer);
  r = IntResult(11);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 11);
}

TEST(ExpectedTest, MutableValueAccess) {
  IntResult r(1);
  r.value() = 9;
  EXPECT_EQ(r.value(), 9);
}

TEST(ExpectedTest, WorksWithHandlePayload) {
  using HandleResult = Expected<TimerHandle, TimerError>;
  HandleResult ok(TimerHandle{4, 2});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value().slot, 4u);
  EXPECT_EQ(ok.value().generation, 2u);
  HandleResult bad(TimerError::kIntervalOutOfRange);
  EXPECT_FALSE(bad.has_value());
}

TEST(ExpectedDeathTest, ValueOnErrorAborts) {
  IntResult r(TimerError::kNoCapacity);
  EXPECT_DEATH((void)r.value(), "assertion failed");
}

TEST(ExpectedDeathTest, ErrorOnValueAborts) {
  IntResult r(1);
  EXPECT_DEATH((void)r.error(), "assertion failed");
}

TEST(TimerErrorTest, NamesAreStable) {
  EXPECT_STREQ(TimerErrorName(TimerError::kOk), "kOk");
  EXPECT_STREQ(TimerErrorName(TimerError::kIntervalOutOfRange), "kIntervalOutOfRange");
  EXPECT_STREQ(TimerErrorName(TimerError::kZeroInterval), "kZeroInterval");
  EXPECT_STREQ(TimerErrorName(TimerError::kNoCapacity), "kNoCapacity");
  EXPECT_STREQ(TimerErrorName(TimerError::kNoSuchTimer), "kNoSuchTimer");
}

}  // namespace
}  // namespace twheel
