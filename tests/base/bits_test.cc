// Unit tests for power-of-two helpers (the Scheme 5/6 AND-instruction hash relies on
// these invariants).

#include <gtest/gtest.h>

#include "src/base/bits.h"

namespace twheel {
namespace {

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(BitsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4), 2u);
  EXPECT_EQ(Log2Floor(255), 7u);
  EXPECT_EQ(Log2Floor(256), 8u);
  EXPECT_EQ(Log2Floor(~0ULL), 63u);
}

TEST(BitsTest, MaskConsistency) {
  // The hashed wheels compute slot = value & (size - 1); check against modulo for a
  // spread of sizes and values.
  for (std::uint32_t k = 1; k <= 16; ++k) {
    std::uint64_t size = 1ULL << k;
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, size - 1, size, size + 1,
          std::uint64_t{12345678}}) {
      EXPECT_EQ(v & (size - 1), v % size) << "size=" << size << " v=" << v;
    }
  }
}

TEST(BitsTest, ConstexprUsable) {
  static_assert(IsPowerOfTwo(64));
  static_assert(NextPowerOfTwo(33) == 64);
  static_assert(Log2Floor(64) == 6);
  SUCCEED();
}

}  // namespace
}  // namespace twheel
