// Unit tests for the intrusive doubly-linked list underlying every scheme's O(1)
// STOP_TIMER (Section 3.2).

#include <gtest/gtest.h>

#include <vector>

#include "src/base/intrusive_list.h"

namespace twheel {
namespace {

struct Node : ListNode {
  explicit Node(int v) : value(v) {}
  int value;
};

std::vector<int> Values(const IntrusiveList<Node>& list) {
  std::vector<int> out;
  for (Node* n = list.front(); n != nullptr; n = list.Next(n)) {
    out.push_back(n->value);
  }
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  IntrusiveList<Node> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.CountSlow(), 0u);
}

TEST(IntrusiveListTest, PushFrontOrders) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);
  EXPECT_EQ(Values(list), (std::vector<int>{3, 2, 1}));
  while (!list.empty()) {
    list.PopFront();
  }
}

TEST(IntrusiveListTest, PushBackOrders) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front()->value, 1);
  EXPECT_EQ(list.back()->value, 3);
  while (!list.empty()) {
    list.PopFront();
  }
}

TEST(IntrusiveListTest, UnlinkFromMiddleWithoutListReference) {
  // The crucial O(1) STOP_TIMER property: a node removes itself knowing nothing
  // about which list holds it.
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  b.Unlink();
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.linked());
  EXPECT_TRUE(a.linked());
  a.Unlink();
  c.Unlink();
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, UnlinkFrontAndBack) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  a.Unlink();
  EXPECT_EQ(list.front()->value, 2);
  c.Unlink();
  EXPECT_EQ(list.back()->value, 2);
  b.Unlink();
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, InsertBeforePosition) {
  IntrusiveList<Node> list;
  Node a(1), c(3), b(2);
  list.PushBack(&a);
  list.PushBack(&c);
  list.InsertBefore(&b, &c);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
  a.Unlink();
  b.Unlink();
  c.Unlink();
}

TEST(IntrusiveListTest, PopFrontReturnsInOrder) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, NextPrevTraversal) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.Next(&a), &b);
  EXPECT_EQ(list.Next(&c), nullptr);
  EXPECT_EQ(list.Prev(&c), &b);
  EXPECT_EQ(list.Prev(&a), nullptr);
  a.Unlink();
  b.Unlink();
  c.Unlink();
}

TEST(IntrusiveListTest, SpliceAllMovesAll) {
  IntrusiveList<Node> dst;
  IntrusiveList<Node> src;
  Node a(1), b(2), c(3), d(4);
  dst.PushBack(&a);
  dst.PushBack(&b);
  src.PushBack(&c);
  src.PushBack(&d);
  dst.SpliceAll(src);
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(Values(dst), (std::vector<int>{1, 2, 3, 4}));
  while (!dst.empty()) {
    dst.PopFront();
  }
}

TEST(IntrusiveListTest, SpliceAllFromEmptyIsNoop) {
  IntrusiveList<Node> dst;
  IntrusiveList<Node> src;
  Node a(1);
  dst.PushBack(&a);
  dst.SpliceAll(src);
  EXPECT_EQ(dst.CountSlow(), 1u);
  a.Unlink();
}

TEST(IntrusiveListTest, SpliceIntoEmptyList) {
  IntrusiveList<Node> dst;
  IntrusiveList<Node> src;
  Node a(1), b(2);
  src.PushBack(&a);
  src.PushBack(&b);
  dst.SpliceAll(src);
  EXPECT_EQ(Values(dst), (std::vector<int>{1, 2}));
  EXPECT_TRUE(src.empty());
  a.Unlink();
  b.Unlink();
}

// The slot-drain pattern every wheel uses: splice the whole bucket into a local
// batch in O(1), then pop records one by one — and while draining, new records
// may be pushed back into the (now detached) source bucket without disturbing
// the batch. FIFO order must hold on both lists throughout.
TEST(IntrusiveListTest, SpliceAllThenDrainWithConcurrentReinsertion) {
  IntrusiveList<Node> slot;
  Node a(1), b(2), c(3), d(4);
  slot.PushBack(&a);
  slot.PushBack(&b);
  slot.PushBack(&c);

  IntrusiveList<Node> pending;
  pending.SpliceAll(slot);
  EXPECT_TRUE(slot.empty());

  std::vector<int> drained;
  while (!pending.empty()) {
    Node* node = pending.PopFront();
    drained.push_back(node->value);
    if (node->value == 1) {
      slot.PushBack(&d);  // handler re-arms into the same bucket mid-drain
    }
  }
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Values(slot), (std::vector<int>{4}));
  d.Unlink();
}

TEST(IntrusiveListTest, ReinsertionAfterUnlink) {
  IntrusiveList<Node> list;
  Node a(1);
  for (int i = 0; i < 100; ++i) {
    list.PushBack(&a);
    EXPECT_TRUE(a.linked());
    a.Unlink();
    EXPECT_FALSE(a.linked());
  }
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListDeathTest, DoubleUnlinkAborts) {
  IntrusiveList<Node> list;
  Node a(1);
  list.PushBack(&a);
  a.Unlink();
  EXPECT_DEATH(a.Unlink(), "assertion failed");
}

TEST(IntrusiveListDeathTest, DoubleInsertAborts) {
  IntrusiveList<Node> list;
  Node a(1);
  list.PushBack(&a);
  EXPECT_DEATH(list.PushBack(&a), "already in a list");
  a.Unlink();
}

}  // namespace
}  // namespace twheel
