// Failover timing properties (ISSUE satellite): on lossless fixed-delay links
// the rank ladder is EXACT — kill the owner and the rank-1 survivor pops at
// deadline + failover_delay on the nose; kill ranks 0 and 1 and rank 2 pops at
// deadline + 2 * failover_delay. And in every case, faulted or not, no fire
// ever pops before the original deadline.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cluster_oracle.h"
#include "src/cluster/fault_schedule.h"

namespace twheel::cluster {
namespace {

constexpr Duration kFailover = 12;
constexpr Duration kLinkDelay = 2;
constexpr Duration kInterval = 40;  // deadline, with the Set at tick 0

ClusterConfig LosslessConfig(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 5;
  config.replication_factor = 3;
  config.failover_delay = kFailover;
  config.seed = seed;
  config.link.loss_probability = 0.0;
  config.link.delay_lo = kLinkDelay;
  config.link.delay_hi = kLinkDelay;
  return config;
}

// The replica placement is a pure function of (key, R, nodes, seed), so a
// throwaway cluster answers rank questions before the real one is built with
// its kill schedule.
std::vector<NodeId> RanksFor(const ClusterConfig& config, std::uint64_t key) {
  TimerCluster probe(config);
  return probe.ReplicaSetFor(key, config.replication_factor);
}

struct Fired {
  std::vector<Tick> pops;
  std::vector<Tick> deliveries;
};

Fired RunWithKills(const ClusterConfig& config, std::uint64_t key,
                   const std::vector<FaultEvent>& kills) {
  FaultSchedule schedule;
  schedule.events = kills;
  TimerCluster cluster(config, schedule);
  Fired fired;
  cluster.set_fire_callback(
      [&fired, &cluster](std::uint64_t, std::uint32_t, Tick pop) {
        fired.pops.push_back(pop);
        fired.deliveries.push_back(cluster.now());
      });
  EXPECT_TRUE(cluster.Set(key, kInterval));
  cluster.Drain(2000);
  EXPECT_TRUE(cluster.quiesced());

  ClusterOracle oracle(config, schedule);
  const OracleReport report = oracle.Check(cluster.events(), cluster.stats());
  EXPECT_TRUE(report.ok) << report.violation;
  return fired;
}

TEST(ClusterFailoverTest, UnfaultedOwnerPopsAtTheDeadline) {
  const ClusterConfig config = LosslessConfig(7);
  const Fired fired = RunWithKills(config, 1, {});
  ASSERT_EQ(fired.pops.size(), 1u);
  EXPECT_EQ(fired.pops[0], kInterval);
  EXPECT_EQ(fired.deliveries[0], kInterval + kLinkDelay);
}

TEST(ClusterFailoverTest, KilledOwnerFailsOverAfterExactlyOneDelay) {
  const ClusterConfig config = LosslessConfig(7);
  const std::vector<NodeId> ranks = RanksFor(config, 1);
  const Fired fired =
      RunWithKills(config, 1, {{20, FaultKind::kKill, ranks[0]}});
  ASSERT_EQ(fired.pops.size(), 1u) << "exactly one survivor delivery";
  EXPECT_EQ(fired.pops[0], kInterval + kFailover);
  EXPECT_EQ(fired.deliveries[0], kInterval + kFailover + kLinkDelay);
}

TEST(ClusterFailoverTest, TwoKillsDescendTheLadderTwice) {
  const ClusterConfig config = LosslessConfig(7);
  const std::vector<NodeId> ranks = RanksFor(config, 1);
  const Fired fired = RunWithKills(config, 1,
                                   {{15, FaultKind::kKill, ranks[0]},
                                    {22, FaultKind::kKill, ranks[1]}});
  ASSERT_EQ(fired.pops.size(), 1u);
  EXPECT_EQ(fired.pops[0], kInterval + 2 * kFailover);
}

TEST(ClusterFailoverTest, TakeoverIsNeverEarlyAndAlwaysWithinOneDelay) {
  // Property sweep: any single owner-kill strictly before the deadline (but
  // after the arms landed) yields exactly one pop at deadline + failover —
  // never before the original deadline, never later than the ladder step.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ClusterConfig config = LosslessConfig(seed);
    const std::uint64_t key = 100 + seed;
    const std::vector<NodeId> ranks = RanksFor(config, key);
    const Tick kill_at = 3 + (seed * 5) % (kInterval - 4);
    const Fired fired =
        RunWithKills(config, key, {{kill_at, FaultKind::kKill, ranks[0]}});
    ASSERT_EQ(fired.pops.size(), 1u) << "seed " << seed;
    EXPECT_GE(fired.pops[0], kInterval)
        << "seed " << seed << ": fired before the original deadline";
    EXPECT_EQ(fired.pops[0], kInterval + kFailover) << "seed " << seed;
  }
}

TEST(ClusterFailoverTest, StandbyLeasesAreReapedWithoutDuplicates) {
  // After the rank-1 takeover delivers, the coordinator's disarm must reap the
  // rank-2 lease before it pops: one delivery, zero duplicate receipts, and a
  // lease_disarms count showing the reap actually happened.
  const ClusterConfig config = LosslessConfig(7);
  const std::vector<NodeId> ranks = RanksFor(config, 1);
  FaultSchedule schedule;
  schedule.events = {{20, FaultKind::kKill, ranks[0]}};
  TimerCluster cluster(config, schedule);
  std::size_t fires = 0;
  cluster.set_fire_callback(
      [&fires](std::uint64_t, std::uint32_t, Tick) { ++fires; });
  ASSERT_TRUE(cluster.Set(1, kInterval));
  cluster.Drain(2000);
  ASSERT_TRUE(cluster.quiesced());
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(cluster.stats().delivered, 1u);
  EXPECT_EQ(cluster.stats().duplicate_suppressed, 0u);
  EXPECT_EQ(cluster.stats().lease_disarms, 1u)
      << "the rank-2 standby lease was never reaped";
}

}  // namespace
}  // namespace twheel::cluster
