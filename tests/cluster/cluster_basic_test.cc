// TimerCluster basics: exact client semantics on the synchronous transport,
// eventual exactly-once on the lossy async transport with no faults, and the
// replica-placement function's contract. Every episode ends with a
// ClusterOracle::Check pass — the oracle is exercised here on the EASY cases
// so a fault-matrix failure (cluster_fault_test.cc) can be trusted to indict
// the protocol, not the referee.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cluster_oracle.h"
#include "src/cluster/fault_schedule.h"

namespace twheel::cluster {
namespace {

struct Fire {
  std::uint64_t key;
  std::uint32_t gen;
  Tick pop;
  friend bool operator==(const Fire&, const Fire&) = default;
};

class FireLog {
 public:
  explicit FireLog(TimerCluster& cluster) {
    cluster.set_fire_callback(
        [this](std::uint64_t key, std::uint32_t gen, Tick pop) {
          fires_.push_back({key, gen, pop});
        });
  }
  const std::vector<Fire>& fires() const { return fires_; }

 private:
  std::vector<Fire> fires_;
};

void ExpectOracleOk(const TimerCluster& cluster, const ClusterConfig& config,
                    const FaultSchedule& schedule = {}) {
  ClusterOracle oracle(config, schedule);
  const OracleReport report = oracle.Check(cluster.events(), cluster.stats());
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(ClusterBasicTest, SynchronousFiresAtExactDeadlines) {
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  FireLog log(cluster);

  EXPECT_FALSE(cluster.Set(1, 0)) << "zero interval must be refused";
  ASSERT_TRUE(cluster.Set(1, 5));
  ASSERT_TRUE(cluster.Set(2, 3));
  EXPECT_EQ(cluster.live_timers(), 2u);
  for (int t = 0; t < 10; ++t) {
    cluster.Step();
  }
  const std::vector<Fire> want = {{2, 1, 3}, {1, 1, 5}};
  EXPECT_EQ(log.fires(), want);
  EXPECT_TRUE(cluster.quiesced());
  EXPECT_EQ(cluster.stats().delivered, 2u);
  EXPECT_EQ(cluster.stats().duplicate_suppressed, 0u);
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, AcknowledgedCancelNeverFires) {
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  FireLog log(cluster);

  ASSERT_TRUE(cluster.Set(7, 10));
  for (int t = 0; t < 4; ++t) {
    cluster.Step();
  }
  ASSERT_TRUE(cluster.Cancel(7));
  EXPECT_FALSE(cluster.Cancel(7)) << "second cancel must miss";
  cluster.Drain(100);
  EXPECT_TRUE(cluster.quiesced());
  EXPECT_TRUE(log.fires().empty());
  EXPECT_EQ(cluster.stats().cancels, 1u);
  EXPECT_EQ(cluster.stats().cancel_misses, 1u);
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, RestartMovesTheDeadline) {
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  FireLog log(cluster);

  ASSERT_TRUE(cluster.Set(1, 4));
  cluster.Step();
  cluster.Step();  // now = 2, original deadline 4
  EXPECT_FALSE(cluster.Restart(1, 0));
  EXPECT_FALSE(cluster.Restart(99, 5)) << "restart of unknown key must miss";
  ASSERT_TRUE(cluster.Restart(1, 10));  // new deadline 12, gen 2
  cluster.Drain(50);
  const std::vector<Fire> want = {{1, 2, 12}};
  EXPECT_EQ(log.fires(), want) << "must fire at the restarted deadline only";
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, ReplacingSetSupersedesTheOldGeneration) {
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  FireLog log(cluster);

  ASSERT_TRUE(cluster.Set(1, 5));
  cluster.Step();  // now = 1
  ASSERT_TRUE(cluster.Set(1, 7));  // gen 2, deadline 8 — gen 1 must not fire
  cluster.Drain(50);
  const std::vector<Fire> want = {{1, 2, 8}};
  EXPECT_EQ(log.fires(), want);
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, FireCallbackMayReenterTheCluster) {
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  int fires = 0;
  cluster.set_fire_callback(
      [&cluster, &fires](std::uint64_t key, std::uint32_t, Tick) {
        if (++fires < 4) {
          cluster.Set(key, 3);  // re-arm the same key from inside delivery
        }
      });
  ASSERT_TRUE(cluster.Set(1, 3));
  cluster.Drain(50);
  EXPECT_EQ(fires, 4) << "chain of in-callback re-sets: 3, 6, 9, 12";
  EXPECT_TRUE(cluster.quiesced());
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, ReplicaSetsAreDistinctRankedAndDeterministic) {
  ClusterConfig config;
  config.nodes = 4;
  TimerCluster cluster(config);
  bool node_used[4] = {false, false, false, false};
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::vector<NodeId> set = cluster.ReplicaSetFor(key, 2);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_NE(set[0], set[1]);
    EXPECT_LT(set[0], 4u);
    EXPECT_LT(set[1], 4u);
    EXPECT_EQ(set, cluster.ReplicaSetFor(key, 2)) << "must be a pure function";
    node_used[set[0]] = true;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(node_used[i]) << "placement never owns node " << i;
  }
  // Replication clamps to the cluster size.
  EXPECT_EQ(cluster.ReplicaSetFor(1, 99).size(), 4u);
  EXPECT_EQ(cluster.ReplicaSetFor(1, 0).size(), 1u);
}

TEST(ClusterBasicTest, LossyAsyncNoFaultsIsStillExactlyOnce) {
  ClusterConfig config;  // default links: 5% loss, delay 2..10
  config.nodes = 4;
  config.replication_factor = 2;
  config.seed = 3;
  TimerCluster cluster(config);
  FireLog log(cluster);

  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(cluster.Set(key, 1 + (key % 40)));
  }
  for (int t = 0; t < 10; ++t) {
    cluster.Step();
  }
  // Cancel a band mid-flight; the acks are immediate (coordinator-local).
  std::uint64_t cancelled = 0;
  for (std::uint64_t key = 20; key < 30; ++key) {
    if (cluster.Cancel(key)) {
      ++cancelled;
    }
  }
  cluster.Drain(5000);
  ASSERT_TRUE(cluster.quiesced());
  EXPECT_EQ(log.fires().size(), kKeys - cancelled);
  EXPECT_EQ(cluster.stats().delivered, kKeys - cancelled);
  EXPECT_GT(cluster.link_drops(), 0u) << "lossy links were never exercised";
  ExpectOracleOk(cluster, config);
}

TEST(ClusterBasicTest, OracleRejectsADoctoredTrace) {
  // The referee must actually referee: duplicate a fire event and the check
  // fails; drop the delivery and the completeness check fails.
  ClusterConfig config;
  config.synchronous_transport = true;
  TimerCluster cluster(config);
  FireLog log(cluster);
  ASSERT_TRUE(cluster.Set(1, 3));
  cluster.Drain(20);
  ClusterOracle oracle(config, {});
  ASSERT_TRUE(oracle.Check(cluster.events(), cluster.stats()).ok);

  std::vector<ClientEvent> doctored = cluster.events();
  doctored.push_back(doctored.back());  // second kFired for the same gen
  EXPECT_FALSE(oracle.Check(doctored, cluster.stats()).ok);

  std::vector<ClientEvent> lost(cluster.events().begin(),
                                cluster.events().end() - 1);
  EXPECT_FALSE(oracle.Check(lost, cluster.stats()).ok)
      << "a lost fire must fail completeness";
}

}  // namespace
}  // namespace twheel::cluster
